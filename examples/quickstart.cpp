// Quickstart: the "hello world" counter on both software stacks, served by
// a real HTTP server on 127.0.0.1 and driven over real sockets.
//
//   $ ./example_quickstart
//
// Walks through: deploying the two containers, Create/Get/Set/Destroy via
// each stack's client, and the notification round trip.
#include <cstdio>

#include "counter/wsrf_counter.hpp"
#include "counter/wst_counter.hpp"
#include "net/tcp.hpp"
#include "wsn/consumer.hpp"

using namespace gs;

namespace {

// The deployment needs its base URL before the container can exist; an
// ephemeral-port server is created first against this forwarder.
class ForwardingEndpoint final : public net::Endpoint {
 public:
  net::Endpoint* target = nullptr;
  net::HttpResponse handle(const net::HttpRequest& request) override {
    return target->handle(request);
  }
};

}  // namespace

int main() {
  std::printf("== gridstacks quickstart ==\n\n");

  // In-process fabric for the notification sinks (deliveries stay local).
  net::VirtualNetwork local;
  net::VirtualCaller wsn_sink(local, {.keep_alive = false});
  net::VirtualCaller wse_sink(local, {.transport = net::TransportKind::kSoapTcp});
  wsn::NotificationConsumer inbox;
  local.bind("client.local", inbox);

  // --- Stack A: WSRF / WS-Notification ---------------------------------------
  ForwardingEndpoint fwd_a;
  net::HttpServer server_a(fwd_a, 0, 2);
  counter::WsrfCounterDeployment wsrf({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .write_through_cache = true,
      .container = {},
      .notification_sink = &wsn_sink,
      .address_base = server_a.base_url(),
  });
  fwd_a.target = &wsrf.container();
  std::printf("WSRF/WS-Notification container listening at %s\n",
              server_a.base_url().c_str());

  net::TcpSoapCaller wire;
  counter::WsrfCounterClient a(wire, wsrf.counter_address());
  soap::EndpointReference a_epr = a.create();
  std::printf("  created a WS-Resource; EPR address=%s\n",
              a_epr.address().c_str());
  std::printf("  get() = %d\n", a.get());
  auto sub = a.subscribe(soap::EndpointReference("http://client.local/inbox"));
  a.set(41);
  std::printf("  set(41); get() = %d, DoubleValue property = %d\n", a.get(),
              a.double_value());
  if (inbox.wait_for(1, 2000)) {
    auto notes = inbox.received();
    std::printf("  received WS-Notification on topic '%s' (new value %s)\n",
                notes[0].topic.c_str(),
                notes[0].payload->child_local("Value")->text().c_str());
  }
  sub.unsubscribe();
  a.destroy();
  std::printf("  destroyed via WS-ResourceLifetime\n\n");

  // --- Stack B: WS-Transfer / WS-Eventing -------------------------------------
  ForwardingEndpoint fwd_b;
  net::HttpServer server_b(fwd_b, 0, 2);
  counter::WstCounterDeployment wst({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .container = {},
      .notification_sink = &wse_sink,
      .address_base = server_b.base_url(),
      .subscription_file = {},
  });
  fwd_b.target = &wst.container();
  std::printf("WS-Transfer/WS-Eventing container listening at %s\n",
              server_b.base_url().c_str());

  inbox.clear();
  counter::WstCounterClient b(wire, wst.counter_address(), wst.source_address());
  soap::EndpointReference b_epr = b.create();
  std::printf("  Create() named the resource %s\n",
              b_epr.reference_property(wst::transfer_id_qname())->c_str());
  std::printf("  Get() = %d\n", b.get());
  auto handle = b.subscribe(soap::EndpointReference("http://client.local/inbox"));
  b.set(7);
  std::printf("  Put(7); Get() = %d\n", b.get());
  if (inbox.wait_for(1, 2000)) {
    std::printf("  received WS-Eventing push (subscription expires: %s)\n",
                handle.expires == wse::WseSubscription::kNever
                    ? "never"
                    : std::to_string(handle.expires).c_str());
  }
  wse::WseSubscriptionProxy mgr(wire, handle.manager);
  mgr.unsubscribe();
  b.remove();
  std::printf("  Delete() removed the resource\n\n");

  server_a.stop();
  server_b.stop();
  std::printf("Both stacks ran the same application over real sockets.\n");
  return 0;
}
