// WS-BrokeredNotification with demand-based publishing — the interaction
// the paper estimates generates "an order of magnitude" more messages than
// anything else in the specs, spanning up to six services.
//
//   $ ./example_brokered_notification
#include <cstdio>

#include "container/container.hpp"
#include "net/virtual_network.hpp"
#include "wsn/broker.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"

using namespace gs;

int main() {
  std::printf("== Demand-based brokered notification ==\n\n");

  common::ManualClock clock(0);
  net::VirtualNetwork net;
  net::WireMeter meter;
  net::VirtualCaller caller(net, {.meter = &meter});

  // --- Publisher side: an event source with its own subscription manager.
  xmldb::XmlDatabase pub_db(std::make_unique<xmldb::MemoryBackend>());
  container::Container pub_container({.clock = &clock});
  wsrf::ResourceHome pub_subs(pub_db, "subs", &pub_container.lifetime());
  wsn::SubscriptionManagerService pub_manager(pub_subs,
                                              "http://pub/Subscriptions");
  container::Service source("SensorSource");
  wsn::TopicNamespace topics;
  topics.add("sensors/temperature");
  wsn::NotificationProducer producer(
      {&caller, "http://pub/Source", &pub_manager, &clock}, std::move(topics));
  producer.register_into(source);
  pub_container.deploy("/Source", source);
  pub_container.deploy("/Subscriptions", pub_manager);
  net.bind("pub", pub_container);

  // --- Broker side.
  xmldb::XmlDatabase broker_db(std::make_unique<xmldb::MemoryBackend>());
  container::Container broker_container({.clock = &clock});
  wsrf::ResourceHome broker_subs(broker_db, "subs", &broker_container.lifetime());
  wsrf::ResourceHome registrations(broker_db, "reg",
                                   &broker_container.lifetime());
  wsn::SubscriptionManagerService broker_manager(broker_subs,
                                                 "http://broker/Subscriptions");
  wsn::TopicNamespace broker_topics;
  broker_topics.add("sensors/temperature");
  wsn::BrokerService broker({&caller, "http://broker/Broker", &broker_manager,
                             &clock},
                            registrations, std::move(broker_topics));
  broker_container.deploy("/Broker", broker);
  broker_container.deploy("/Subscriptions", broker_manager);
  net.bind("broker", broker_container);

  wsn::NotificationConsumer dashboard;
  net.bind("dashboard", dashboard);

  xml::Element reading(xml::QName("urn:sensors", "Reading"));
  reading.append_element(xml::QName("urn:sensors", "Celsius")).set_text("21");

  // 1. The publisher registers demand-based; the broker subscribes back to
  //    it and immediately PAUSES that subscription (no consumers yet).
  std::int64_t before = meter.messages();
  wsn::BrokerProxy broker_proxy(caller,
                                soap::EndpointReference("http://broker/Broker"));
  broker_proxy.register_publisher(soap::EndpointReference("http://pub/Source"),
                                  {"sensors/temperature"},
                                  /*demand_based=*/true);
  std::printf("registration alone moved %lld messages across %s\n",
              static_cast<long long>(meter.messages() - before),
              "publisher, its sub manager, and the broker");

  // 2. Publishing now reaches nobody — the broker exerts no demand.
  size_t delivered = producer.notify("sensors/temperature", reading);
  std::printf("publish with no consumers: delivered to %zu (paused)\n",
              delivered);

  // 3. A dashboard subscribes at the broker; the broker RESUMES the
  //    publisher-side subscription.
  wsn::NotificationProducerProxy sub_proxy(
      caller, soap::EndpointReference("http://broker/Broker"));
  wsn::Filter filter;
  filter.set_topic(wsn::TopicExpression::parse(
      wsn::TopicExpression::Dialect::kConcrete, "sensors/temperature"));
  soap::EndpointReference sub_epr = sub_proxy.subscribe(
      soap::EndpointReference("http://dashboard/sink"), filter);
  std::printf("dashboard subscribed at the broker -> demand exists\n");

  delivered = producer.notify("sensors/temperature", reading);
  std::printf("publish with a consumer: delivered to %zu (the broker), ",
              delivered);
  if (dashboard.wait_for(1, 2000)) {
    std::printf("relayed to the dashboard\n");
  }

  // 4. The dashboard unsubscribes; the broker pauses the publisher again.
  wsn::SubscriptionProxy sub(caller, sub_epr);
  sub.unsubscribe();
  broker.recheck_demand();
  delivered = producer.notify("sensors/temperature", reading);
  std::printf("publish after unsubscribe: delivered to %zu (paused again)\n\n",
              delivered);

  std::printf("total control+event messages for this tiny scenario: %lld —\n"
              "the amplification the paper warns about.\n",
              static_cast<long long>(meter.messages()));
  return 0;
}
