// Grid-in-a-Box job submission: the paper's Figure 5 workflow end to end,
// on the WSRF stack with every message X.509-signed, then the same job on
// the WS-Transfer stack — including the manual unreserve that stack
// requires.
//
//   $ ./example_gridbox_job_submission
#include <cstdio>
#include <filesystem>

#include "gridbox/clients.hpp"
#include "wsn/consumer.hpp"

using namespace gs;

int main() {
  std::printf("== Grid-in-a-Box: remote execution in one VO ==\n\n");

  // PKI for the VO: a CA, host credentials, an admin and a user.
  std::mt19937_64 rng(7);
  auto ca = security::CertificateAuthority::create("CN=GridCA,O=VO", 1024, rng);
  auto issue = [&](const std::string& dn) {
    return ca.issue(dn, 1024, rng, 0,
                    std::numeric_limits<common::TimeMs>::max());
  };
  security::Credential vo_host = issue("CN=vo-host,O=VO");
  security::Credential node_host = issue("CN=node1-host,O=VO");
  security::Credential admin_cred = issue("CN=admin,O=VO");
  security::Credential alice_cred = issue("CN=alice,O=VO");
  auto sec = [&](const security::Credential& c) {
    return container::ProxySecurity{&c, &ca.root(),
                                    &common::RealClock::instance()};
  };
  std::printf("issued X.509 credentials under %s\n\n",
              ca.root().subject_dn.c_str());

  common::ManualClock clock(0);
  net::VirtualNetwork net(net::NetworkProfile::distributed());
  net::WireMeter meter;
  net::VirtualCaller caller(net, {.meter = &meter});
  net::VirtualCaller outcalls(net, {.meter = &meter});
  net::VirtualCaller sink(net, {.keep_alive = false});

  container::ContainerConfig central_cc{container::SecurityMode::kX509,
                                        &ca.root(), &vo_host, &clock};
  container::ContainerConfig node_cc{container::SecurityMode::kX509,
                                     &ca.root(), &node_host, &clock};

  gridbox::WsrfGridDeployment grid({
      .backend = std::make_unique<xmldb::MemoryBackend>(),
      .central_container = central_cc,
      .outcall_caller = &outcalls,
      .outcall_security = sec(node_host),
      .notification_sink = &sink,
      .central_base = "http://vo.example",
      .reservation_ttl_ms = 4LL * 3600 * 1000,
      .admin_dn = "CN=admin,O=VO",
  });
  auto scratch = std::filesystem::temp_directory_path() / "gs-example-gridbox";
  std::filesystem::remove_all(scratch);
  grid.add_host({.host = "node1",
                 .base = "http://node1.example",
                 .backend = std::make_unique<xmldb::MemoryBackend>(),
                 .container = node_cc,
                 .file_root = scratch});
  net.bind("vo.example", grid.central_container());
  net.bind("node1.example", grid.host_container("node1"));
  wsn::NotificationConsumer inbox;
  net.bind("alice.example", inbox);

  // Admin bootstraps the VO.
  gridbox::WsrfAdminClient admin(caller, grid, {"CN=admin,O=VO", sec(admin_cred)});
  admin.add_account("CN=alice,O=VO", {gridbox::kPrivilegeSubmit});
  admin.register_site({"node1", grid.exec_address("node1"),
                       grid.data_address("node1"), {"blast"}});
  std::printf("[admin] account for alice + site node1 registered\n\n");

  gridbox::WsrfUserClient alice(caller, grid,
                                {"CN=alice,O=VO", sec(alice_cred)});

  std::printf("[1]  what resources are available for 'blast'?\n");
  auto sites = alice.get_available_resources("blast");
  std::printf("     -> %zu site(s); using host '%s'\n", sites.size(),
              sites[0].host.c_str());

  std::printf("[4]  reserve the host (scheduled termination: 4h)\n");
  auto reservation = alice.make_reservation(sites[0].host);

  std::printf("[5]  create a directory WS-Resource on the DataService\n");
  auto directory = alice.create_directory(sites[0].data_address);

  std::printf("[7]  stage in input.dat\n");
  alice.upload(directory, "input.dat", "ACGTACGTACGT");
  std::printf("     Files property: %s\n",
              alice.list_files(directory)[0].c_str());

  std::printf("[10] subscribe for the completion notification\n");
  alice.subscribe_completion(sites[0].exec_address,
                             soap::EndpointReference("http://alice.example/in"));

  std::printf("[9]  start the job (ExecService verifies + claims the "
              "reservation)\n");
  auto job = alice.start_job(sites[0].exec_address,
                             "sim:duration=30000,exit=0", reservation,
                             directory);
  std::printf("     job status: %s\n", alice.job_status(job).c_str());

  std::printf("...  30 seconds of simulated compute pass\n");
  clock.advance(31'000);
  grid.job_runner("node1").poll();

  if (inbox.wait_for(1, 2000)) {
    auto notes = inbox.received();
    std::printf("[10] async notification: topic=%s exit=%s\n",
                notes[0].topic.c_str(),
                notes[0].payload->child_local("ExitCode")->text().c_str());
  }
  std::printf("     job status: %s (exit %d)\n", alice.job_status(job).c_str(),
              *alice.job_exit_code(job));

  std::printf("[11] cleanup: destroy job + directory (reservation was\n"
              "     destroyed automatically when the job completed)\n");
  alice.destroy(job);
  alice.destroy(directory);
  std::printf("     host available again: %zu site(s)\n\n",
              alice.get_available_resources("blast").size());

  std::printf("wire totals: %lld messages, %lld bytes, %lld connects\n",
              static_cast<long long>(meter.messages()),
              static_cast<long long>(meter.bytes()),
              static_cast<long long>(meter.connects()));
  std::printf("\nDone. (The WS-Transfer variant of this VO runs the same\n"
              "workflow — see tests/gridbox_test.cpp — but the reservation\n"
              "must be removed manually: Put mode 'U' on the unified\n"
              "allocation service, or the host leaks.)\n");
  return 0;
}
