// Grid monitoring: two containers on the virtual fabric, each publishing
// its own telemetry over a different stack — WS-Notification from one,
// WS-Eventing from the other — into a MonitorConsumer per stack. The
// monitoring traffic itself rides the delivery queues and retry machinery,
// including through an injected 20%-drop route.
//
// On exit the run dumps a Chrome trace (open chrome://tracing or
// https://ui.perfetto.dev and load the printed path) plus the event log.
//
//   $ ./example_grid_monitor
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "container/container.hpp"
#include "net/retry.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/export.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/trace.hpp"
#include "wse/service.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"

using namespace gs;

namespace {

void print_health_table(const char* stack,
                        const telemetry::MonitorConsumer& monitor) {
  for (const auto& state : monitor.states()) {
    std::printf("  [%s] %-22s seq=%llu snapshots=%llu alerts=%llu%s%s\n",
                stack, state.producer.c_str(),
                static_cast<unsigned long long>(state.last_seq),
                static_cast<unsigned long long>(state.snapshots),
                static_cast<unsigned long long>(state.alerts),
                state.last_alert.empty() ? "" : " last_alert=",
                state.last_alert.c_str());
    for (const auto& [name, total] : state.counter_totals) {
      std::printf("        %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(total));
    }
    for (const auto& [name, p99] : state.histogram_p99_us) {
      std::printf("        %-32s p99=%.1fus\n", name.c_str(), p99);
    }
  }
}

}  // namespace

int main() {
  std::printf("== Grid monitoring over both stacks ==\n\n");

  common::ManualClock clock(1000);
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  telemetry::MetricsRegistry registry_a;  // container A's metrics
  telemetry::MetricsRegistry registry_b;  // container B's metrics

  // Monitoring deliveries retry through injected faults; the schedule is
  // simulated against the manual clock so the run is instant.
  net::RetryPolicy retry{
      .max_attempts = 8, .base_delay_ms = 1, .jitter = 0.0, .seed = 7};

  // --- container A publishes over WS-Notification --------------------------
  xmldb::XmlDatabase db(std::make_unique<xmldb::MemoryBackend>(), {});
  container::Container container_a({.clock = &clock});
  wsrf::ResourceHome subs(db, "subs", &container_a.lifetime());
  wsn::SubscriptionManagerService manager(subs, "http://grid-a/Subscriptions");
  container::Service source_service("Source");
  net::VirtualCaller wsn_raw(net, {.keep_alive = false});
  net::RetryingCaller wsn_sink(wsn_raw, retry, &clock, [](common::TimeMs) {});
  wsn::NotificationProducer wsn_producer(
      {&wsn_sink, "http://grid-a/Source", &manager, &clock},
      telemetry::monitor_topics());
  wsn_producer.register_into(source_service);
  container_a.deploy("/Source", source_service);
  container_a.deploy("/Subscriptions", manager);
  net.bind("grid-a", container_a);

  // --- container B publishes over WS-Eventing ------------------------------
  container::Container container_b({.clock = &clock});
  wse::SubscriptionStore store;
  wse::WseSubscriptionManagerService wse_manager(store, "http://grid-b/Subs",
                                                 clock);
  wse::EventSourceService events("Events", store, wse_manager, clock);
  net::VirtualCaller wse_raw(net, {.transport = net::TransportKind::kSoapTcp});
  net::RetryingCaller wse_sink(wse_raw, retry, &clock, [](common::TimeMs) {});
  wse::NotificationManager notifier(store, wse_sink, clock);
  container_b.deploy("/Events", events);
  container_b.deploy("/Subs", wse_manager);
  net.bind("grid-b", container_b);

  // --- one MonitorConsumer per stack, each behind a lossy route ------------
  telemetry::MonitorConsumer ops_wsn;
  telemetry::MonitorConsumer ops_wse;
  net.bind("ops-wsn", ops_wsn);
  net.bind("ops-wse", ops_wse);
  ops_wsn.subscribe_wsn(caller, "http://grid-a/Source", "http://ops-wsn/sink");
  ops_wse.subscribe_wse(caller, "http://grid-b/Events", "http://ops-wse/sink");
  net.set_fault_policy("ops-wsn", {.drop_probability = 0.2, .seed = 42});
  net.set_fault_policy("ops-wse", {.drop_probability = 0.2, .seed = 43});
  std::printf("subscribed a MonitorConsumer per stack; both routes drop 20%%\n\n");

  telemetry::MonitorProducer producer_a({.registry = &registry_a,
                                         .producer_address = "http://grid-a/Source",
                                         .wsn = &wsn_producer,
                                         .clock = &clock,
                                         .interval_ms = 1000});
  telemetry::MonitorProducer producer_b({.registry = &registry_b,
                                         .producer_address = "http://grid-b/Events",
                                         .wse = &notifier,
                                         .clock = &clock,
                                         .interval_ms = 1000});
  producer_a.add_rule({.name = "request-surge",
                       .metric = "app.requests",
                       .kind = telemetry::AlertRule::Kind::kCounterRate,
                       .threshold = 100.0});
  producer_b.add_rule({.name = "slow-dispatch",
                       .metric = "app.dispatch",
                       .kind = telemetry::AlertRule::Kind::kHistogramP99,
                       .threshold = 5000.0});

  // --- simulate three monitoring intervals of grid activity ----------------
  for (int interval = 1; interval <= 3; ++interval) {
    telemetry::SpanScope span("interval.work", "example");
    // Container A serves a burst of requests; the third interval surges.
    registry_a.counter("app.requests").add(interval == 3 ? 250 : 40);
    // Container B's dispatch latency degrades over time.
    for (int i = 0; i < 50; ++i) {
      registry_b.histogram("app.dispatch").record(1000 * interval * (1 + i % 3));
    }
    clock.advance(1000);
    producer_a.poll();
    producer_b.poll();
    std::printf("after interval %d:\n", interval);
    print_health_table("wsn", ops_wsn);
    print_health_table("wse", ops_wse);
    std::printf("\n");
  }

  // --- exit: dump the Chrome trace + event log ------------------------------
  auto dir = std::filesystem::temp_directory_path();
  auto trace_path = dir / "grid_monitor.trace.json";
  auto events_path = dir / "grid_monitor.events.log";
  {
    std::ofstream out(trace_path);
    out << telemetry::export_chrome_trace(
        telemetry::TraceLog::global().snapshot());
  }
  {
    std::ofstream out(events_path);
    out << telemetry::EventLog::global().to_text();
  }
  std::printf("chrome trace written to %s\n", trace_path.c_str());
  std::printf("  (load it in chrome://tracing or https://ui.perfetto.dev)\n");
  std::printf("event log written to %s\n", events_path.c_str());
  std::printf("\nwarn events logged: %llu (injected faults, retries, alerts)\n",
              static_cast<unsigned long long>(
                  telemetry::EventLog::global().count(telemetry::Level::kWarn)));
  return 0;
}
