// WS-ServiceGroup as a grid service registry — the WSRF "extra feature"
// whose utility the paper debates ("WSRF does have additional
// functionality WS-Transfer lacks (brokered notification, service groups,
// lifetime management...) The utility of these features is an open
// question.") This example shows the case for it: execution sites register
// themselves with a bounded-lifetime entry and re-register while alive, so
// the registry is self-cleaning — dead sites vanish without an
// administrator, something the WS-Transfer site registry cannot express.
//
//   $ ./example_service_group_registry
#include <cstdio>

#include "container/container.hpp"
#include "net/virtual_network.hpp"
#include "wsrf/client.hpp"
#include "wsrf/service_group.hpp"

using namespace gs;

namespace {
xml::QName reg(const char* local) { return {"urn:registry", local}; }
}  // namespace

int main() {
  std::printf("== Self-cleaning site registry on WS-ServiceGroup ==\n\n");

  common::ManualClock clock(0);
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});

  xmldb::XmlDatabase db(std::make_unique<xmldb::MemoryBackend>());
  container::Container container({.clock = &clock});
  wsrf::ResourceHome entries(db, "entries", &container.lifetime());
  wsrf::ServiceGroupService registry("SiteRegistry", entries,
                                     "http://vo.example/Registry");
  // Content rule: only SiteInfo documents may be registered.
  registry.add_content_rule(reg("SiteInfo"));
  container.deploy("/Registry", registry);
  net.bind("vo.example", container);

  wsrf::ServiceGroupProxy proxy(caller,
                                soap::EndpointReference("http://vo.example/Registry"));

  // Two sites register with 60-second leases.
  auto register_site = [&](const char* host, const char* app) {
    auto content = std::make_unique<xml::Element>(reg("SiteInfo"));
    content->set_attr("host", host);
    content->set_attr("application", app);
    return proxy.add(soap::EndpointReference(std::string("http://") + host + "/Exec"),
                     std::move(content), clock.now() + 60'000);
  };
  soap::EndpointReference lease1 = register_site("node1", "blast");
  (void)register_site("node2", "render");
  std::printf("node1 and node2 registered with 60s leases -> %zu entries\n",
              proxy.entries().size());

  // The content rule keeps junk out.
  auto junk = std::make_unique<xml::Element>(xml::QName("urn:junk", "Spam"));
  try {
    proxy.add(soap::EndpointReference("http://spam/Exec"), std::move(junk));
  } catch (const soap::SoapFault& f) {
    std::printf("junk registration refused: %s\n", f.what());
  }

  // node1 stays alive: its heartbeat renews the entry's termination time.
  clock.advance(45'000);
  wsrf::WsResourceProxy heartbeat(caller, lease1);
  heartbeat.set_termination_time(clock.now() + 60'000);
  std::printf("t=45s  node1 heartbeat renewed its lease\n");

  // node2 went dark; its lease runs out.
  clock.advance(30'000);
  auto live = proxy.entries();
  std::printf("t=75s  registry now lists %zu site(s):", live.size());
  for (const auto& entry : live) {
    std::printf(" %s", entry.content->attr("host")->c_str());
  }
  std::printf("  (node2 expired, nobody cleaned it up by hand)\n");

  // Explicit deregistration is just Destroy on the entry resource.
  wsrf::WsResourceProxy entry1(caller, lease1);
  entry1.destroy();
  std::printf("t=75s  node1 deregistered explicitly -> %zu entries\n",
              proxy.entries().size());

  std::printf("\nThe WS-Transfer variant would model sites as plain\n"
              "documents — no leases, no content rules; stale entries wait\n"
              "for an admin, exactly like its leaked reservations.\n");
  return 0;
}
