// Sensor monitoring: the "excellent replacement for SNMP" scenario from the
// paper's introduction — device state exposed as a WS-Resource, monitored
// two ways:
//   * WSRF: resource properties per metric, QueryResourceProperties with
//     XPath for fleet-style probes, WS-Notification for threshold alerts;
//   * WS-Transfer: the whole device document fetched with Get, threshold
//     alerts via a WS-Eventing XPath content filter.
//
//   $ ./example_sensor_monitor
#include <cstdio>

#include "container/container.hpp"
#include "net/virtual_network.hpp"
#include "wse/client.hpp"
#include "wsn/client.hpp"
#include "wsn/consumer.hpp"
#include "wsn/producer.hpp"
#include "wsrf/client.hpp"
#include "wst/client.hpp"
#include "xml/writer.hpp"

using namespace gs;

namespace {
const char* kNs = "urn:devices";
xml::QName dev(const char* local) { return {kNs, local}; }

std::unique_ptr<xml::Element> device_state(int temperature, int fan_rpm) {
  auto doc = std::make_unique<xml::Element>(dev("Device"));
  doc->append_element(dev("Temperature")).set_text(std::to_string(temperature));
  doc->append_element(dev("FanRpm")).set_text(std::to_string(fan_rpm));
  return doc;
}
}  // namespace

int main() {
  std::printf("== Device monitoring on both stacks ==\n\n");

  common::ManualClock clock(0);
  net::VirtualNetwork net;
  net::VirtualCaller caller(net, {});
  net::VirtualCaller sink(net, {.keep_alive = false});
  net::VirtualCaller tcp_sink(net, {.transport = net::TransportKind::kSoapTcp});
  wsn::NotificationConsumer alerts;
  net.bind("ops.example", alerts);

  // ------------------------- WSRF agent --------------------------------------
  xmldb::XmlDatabase db(std::make_unique<xmldb::MemoryBackend>(),
                        {.write_through_cache = true});
  container::Container agent({.clock = &clock});
  wsrf::ResourceHome devices(db, "devices", &agent.lifetime());
  wsrf::ResourceHome subs(db, "subs", &agent.lifetime());
  wsn::SubscriptionManagerService manager(subs, "http://agent/Subscriptions");

  wsrf::PropertySet props;
  props.declare_stored(dev("Temperature"));
  props.declare_stored(dev("FanRpm"));
  // A computed health property, like the paper's DoubleValue.
  props.declare_computed(dev("Health"), [](const xml::Element& state) {
    std::vector<std::unique_ptr<xml::Element>> out;
    int t = std::stoi(state.child(dev("Temperature"))->text());
    auto el = std::make_unique<xml::Element>(dev("Health"));
    el->set_text(t < 70 ? "nominal" : "overheating");
    out.push_back(std::move(el));
    return out;
  });
  wsrf::WsrfService service("DeviceAgent", devices, std::move(props),
                            "http://agent/Device");
  service.import_resource_properties();
  service.import_query_resource_properties();
  service.import_resource_lifetime();

  wsn::TopicNamespace topics;
  topics.add("device/threshold");
  wsn::NotificationProducer producer(
      {&sink, "http://agent/Device", &manager, &clock}, std::move(topics));
  producer.register_into(service);
  service.on_property_changed([&](const std::string& id, const xml::QName&) {
    auto state = devices.try_load(id);
    if (!state) return;
    int t = std::stoi(state->child(dev("Temperature"))->text());
    if (t >= 70) {
      xml::Element alert(dev("ThresholdAlert"));
      alert.append_element(dev("Temperature")).set_text(std::to_string(t));
      producer.notify("device/threshold", alert);
    }
  });
  agent.deploy("/Device", service);
  agent.deploy("/Subscriptions", manager);
  net.bind("agent", agent);

  soap::EndpointReference rack42 =
      service.create_resource(device_state(45, 2400));
  std::printf("[wsrf] device 'rack42' registered as a WS-Resource\n");

  wsrf::WsResourceProxy probe(caller, rack42);
  std::printf("[wsrf] GetResourceProperty(Temperature) = %s, Health = %s\n",
              probe.get_property_text(dev("Temperature")).c_str(),
              probe.get_property_text(dev("Health")).c_str());

  auto hot = probe.query("/ResourceProperties[Temperature > 70]");
  std::printf("[wsrf] XPath probe 'Temperature > 70' matched: %s\n",
              hot.empty() ? "no" : "yes");

  wsn::NotificationProducerProxy np(caller, rack42);
  wsn::Filter f;
  f.set_topic(wsn::TopicExpression::parse(
      wsn::TopicExpression::Dialect::kConcrete, "device/threshold"));
  np.subscribe(soap::EndpointReference("http://ops.example/alerts"), f);

  probe.update_property_text(dev("Temperature"), "82");
  if (alerts.wait_for(1, 2000)) {
    std::printf("[wsrf] threshold alert received: temperature %s\n",
                alerts.received()[0]
                    .payload->child(dev("Temperature"))
                    ->text()
                    .c_str());
  }
  std::printf("[wsrf] Health now: %s\n\n",
              probe.get_property_text(dev("Health")).c_str());

  // ---------------------- WS-Transfer agent ----------------------------------
  xmldb::XmlDatabase db2(std::make_unique<xmldb::MemoryBackend>());
  container::Container agent2({.clock = &clock});
  wse::SubscriptionStore store;
  wse::WseSubscriptionManagerService manager2(store, "http://agent2/Subs", clock);
  wse::EventSourceService source("DeviceEvents", store, manager2, clock);
  wse::NotificationManager notifier(store, tcp_sink, clock);

  wst::TransferService::Hooks hooks;
  hooks.on_put = [&](const std::string& id, const xml::Element& replacement,
                     container::RequestContext&) -> std::unique_ptr<xml::Element> {
    db2.store("devices", id, replacement);
    int t = std::stoi(replacement.child(dev("Temperature"))->text());
    if (t >= 70) {
      xml::Element alert(dev("ThresholdAlert"));
      alert.append_element(dev("Temperature")).set_text(std::to_string(t));
      notifier.notify("device/threshold", alert, std::string(kNs) + "/Alert");
    }
    return nullptr;
  };
  wst::TransferService transfer("DeviceAgent", db2, "devices",
                                "http://agent2/Device", std::move(hooks));
  agent2.deploy("/Device", transfer);
  agent2.deploy("/DeviceEvents", source);
  agent2.deploy("/Subs", manager2);
  net.bind("agent2", agent2);

  alerts.clear();
  wst::TransferProxy factory(caller, soap::EndpointReference("http://agent2/Device"));
  auto created = factory.create(device_state(50, 2000));
  std::printf("[wst]  device stored; Get() returns the whole document:\n");
  wst::TransferProxy device(caller, created.resource);
  std::printf("       %s\n", xml::write(*device.get()).c_str());

  wse::EventSourceProxy events(caller,
                               soap::EndpointReference("http://agent2/DeviceEvents"));
  events.subscribe(soap::EndpointReference("http://ops.example/alerts"),
                   wse::FilterDialect::kXPath,
                   "/ThresholdAlert[Temperature >= 70]");

  device.put(device_state(91, 4800));
  if (alerts.wait_for(1, 2000)) {
    std::printf("[wst]  WS-Eventing alert received (XPath content filter)\n");
  }

  std::printf("\nSame monitoring semantics, two stacks — the get/set state\n"
              "surface the paper calls 'an excellent replacement for SNMP'.\n");
  return 0;
}
