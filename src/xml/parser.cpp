#include "xml/parser.hpp"

#include <cctype>
#include <map>
#include <vector>

namespace gs::xml {
namespace {

constexpr std::string_view kXmlnsUri = "http://www.w3.org/2000/xmlns/";

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

// Appends the UTF-8 encoding of a Unicode code point.
void append_utf8(std::string& out, unsigned long cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

// Stack of in-scope namespace bindings (prefix -> URI). An empty URI entry
// represents an undeclaration.
class NsScope {
 public:
  NsScope() { bind("xml", "http://www.w3.org/XML/1998/namespace"); }

  void push() { marks_.push_back(bindings_.size()); }
  void pop() {
    bindings_.resize(marks_.back());
    marks_.pop_back();
  }
  void bind(std::string prefix, std::string uri) {
    bindings_.emplace_back(std::move(prefix), std::move(uri));
  }
  // Resolves a prefix ("" = default namespace). Returns nullptr when unbound.
  const std::string* resolve(std::string_view prefix) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == prefix) return &it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string, std::string>> bindings_;
  std::vector<size_t> marks_;
};

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Document parse_document() {
    skip_prolog();
    Document doc;
    doc.root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return doc;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line_, static_cast<int>(pos_ - line_start_) + 1);
  }

  bool at_end() const noexcept { return pos_ >= in_.size(); }
  char peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  bool starts_with(std::string_view s) const {
    return in_.compare(pos_, s.size(), s) == 0;
  }

  char advance() {
    if (at_end()) fail("unexpected end of input");
    char c = in_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    advance();
  }

  void expect_str(std::string_view s) {
    if (!starts_with(s)) fail("expected '" + std::string(s) + "'");
    for (size_t i = 0; i < s.size(); ++i) advance();
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  void skip_prolog() {
    skip_ws();
    if (starts_with("<?xml")) {
      while (!at_end() && !starts_with("?>")) advance();
      expect_str("?>");
    }
    skip_misc();
    if (starts_with("<!DOCTYPE")) fail("DTDs are not supported");
  }

  // Skips whitespace, comments and PIs between markup.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<?")) {
        skip_pi();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    expect_str("<!--");
    while (!at_end() && !starts_with("-->")) advance();
    expect_str("-->");
  }

  void skip_pi() {
    expect_str("<?");
    while (!at_end() && !starts_with("?>")) advance();
    expect_str("?>");
  }

  std::string read_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string out;
    while (!at_end() && is_name_char(peek())) out += advance();
    return out;
  }

  // Splits "prefix:local"; prefix is "" when absent.
  static std::pair<std::string, std::string> split_name(const std::string& raw) {
    auto colon = raw.find(':');
    if (colon == std::string::npos) return {"", raw};
    return {raw.substr(0, colon), raw.substr(colon + 1)};
  }

  std::string read_attr_value() {
    char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    std::string out;
    while (peek() != quote) {
      char c = advance();
      if (c == '&') {
        out += read_entity();
      } else if (c == '<') {
        fail("'<' in attribute value");
      } else {
        out += c;
      }
    }
    advance();  // closing quote
    return out;
  }

  // Called just after the '&'; returns the replacement text.
  std::string read_entity() {
    std::string name;
    while (peek() != ';') {
      name += advance();
      if (name.size() > 10) fail("malformed entity reference");
    }
    advance();  // ';'
    if (name == "lt") return "<";
    if (name == "gt") return ">";
    if (name == "amp") return "&";
    if (name == "quot") return "\"";
    if (name == "apos") return "'";
    if (!name.empty() && name[0] == '#') {
      unsigned long cp = 0;
      try {
        cp = (name.size() > 1 && (name[1] == 'x' || name[1] == 'X'))
                 ? std::stoul(name.substr(2), nullptr, 16)
                 : std::stoul(name.substr(1), nullptr, 10);
      } catch (const std::exception&) {
        fail("malformed character reference &" + name + ";");
      }
      if (cp == 0 || cp > 0x10FFFF) fail("character reference out of range");
      std::string out;
      append_utf8(out, cp);
      return out;
    }
    fail("unknown entity &" + name + ";");
  }

  std::unique_ptr<Element> parse_element() {
    // Bound recursion: wire input must not be able to exhaust the stack.
    if (++depth_ > kMaxDepth) fail("document nesting exceeds the depth limit");
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } depth_guard{depth_};

    expect('<');
    std::string raw_name = read_name();

    // First pass over attributes: raw names and values, in document order.
    struct RawAttr {
      std::string name;
      std::string value;
    };
    std::vector<RawAttr> raw_attrs;
    for (;;) {
      skip_ws();
      char c = peek();
      if (c == '>' || c == '/') break;
      std::string aname = read_name();
      skip_ws();
      expect('=');
      skip_ws();
      raw_attrs.push_back({std::move(aname), read_attr_value()});
    }

    ns_.push();
    struct ScopeGuard {
      NsScope& ns;
      ~ScopeGuard() { ns.pop(); }
    } guard{ns_};

    // Register namespace declarations before resolving any names.
    std::vector<std::pair<std::string, std::string>> decls;
    for (const auto& a : raw_attrs) {
      if (a.name == "xmlns") {
        ns_.bind("", a.value);
        decls.emplace_back("", a.value);
      } else if (a.name.starts_with("xmlns:")) {
        std::string prefix = a.name.substr(6);
        if (prefix.empty()) fail("empty namespace prefix");
        ns_.bind(prefix, a.value);
        decls.emplace_back(prefix, a.value);
      }
    }

    auto [prefix, local] = split_name(raw_name);
    auto el = std::make_unique<Element>(resolve_element_name(prefix, local));
    for (auto& [p, u] : decls) el->declare_prefix(p, u);

    for (auto& a : raw_attrs) {
      if (a.name == "xmlns" || a.name.starts_with("xmlns:")) continue;
      auto [ap, al] = split_name(a.name);
      el->set_attr(resolve_attr_name(ap, al), std::move(a.value));
    }

    if (peek() == '/') {
      advance();
      expect('>');
      return el;
    }
    expect('>');

    parse_content(*el);

    // Closing tag: </raw_name>
    expect_str("</");
    std::string close = read_name();
    if (close != raw_name)
      fail("mismatched closing tag </" + close + "> for <" + raw_name + ">");
    skip_ws();
    expect('>');
    return el;
  }

  QName resolve_element_name(const std::string& prefix, const std::string& local) {
    const std::string* uri = ns_.resolve(prefix);
    if (!uri) {
      if (prefix.empty()) return QName(local);
      fail("unbound namespace prefix '" + prefix + "'");
    }
    if (uri->empty()) return QName(local);  // undeclared default ns
    return QName(*uri, local);
  }

  QName resolve_attr_name(const std::string& prefix, const std::string& local) {
    if (prefix.empty()) return QName(local);  // unprefixed attrs: no namespace
    const std::string* uri = ns_.resolve(prefix);
    if (!uri || uri->empty()) fail("unbound namespace prefix '" + prefix + "'");
    return QName(*uri, local);
  }

  void parse_content(Element& parent) {
    std::string text;
    auto flush_text = [&] {
      if (!text.empty()) {
        parent.append_text(std::move(text));
        text.clear();
      }
    };
    for (;;) {
      if (at_end()) fail("unexpected end of input inside element");
      if (starts_with("</")) {
        flush_text();
        return;
      }
      if (starts_with("<!--")) {
        flush_text();
        size_t start = pos_ + 4;
        skip_comment();
        parent.append(std::make_unique<CharData>(
            NodeKind::kComment, std::string(in_.substr(start, pos_ - 3 - start))));
        continue;
      }
      if (starts_with("<![CDATA[")) {
        flush_text();
        expect_str("<![CDATA[");
        std::string cdata;
        while (!starts_with("]]>")) {
          if (at_end()) fail("unterminated CDATA section");
          cdata += advance();
        }
        expect_str("]]>");
        parent.append(std::make_unique<CharData>(NodeKind::kCData, std::move(cdata)));
        continue;
      }
      if (starts_with("<?")) {
        flush_text();
        skip_pi();
        continue;
      }
      if (peek() == '<') {
        flush_text();
        parent.append(parse_element());
        continue;
      }
      char c = advance();
      if (c == '&') {
        text += read_entity();
      } else {
        text += c;
      }
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t line_start_ = 0;
  int depth_ = 0;
  NsScope ns_;
};

}  // namespace

Document parse(std::string_view input) { return Parser(input).parse_document(); }

std::unique_ptr<Element> parse_element(std::string_view input) {
  return parse(input).root;
}

}  // namespace gs::xml
