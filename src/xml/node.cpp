#include "xml/node.hpp"

#include <algorithm>

namespace gs::xml {

void Element::set_attr(QName name, std::string value) {
  for (auto& a : attrs_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attrs_.push_back({std::move(name), std::move(value)});
}

std::optional<std::string> Element::attr(const QName& name) const {
  for (const auto& a : attrs_) {
    if (a.name == name) return a.value;
  }
  return std::nullopt;
}

std::optional<std::string> Element::attr(std::string_view local) const {
  for (const auto& a : attrs_) {
    if (a.name.local() == local) return a.value;
  }
  return std::nullopt;
}

bool Element::remove_attr(const QName& name) {
  auto it = std::find_if(attrs_.begin(), attrs_.end(),
                         [&](const Attribute& a) { return a.name == name; });
  if (it == attrs_.end()) return false;
  attrs_.erase(it);
  return true;
}

Node& Element::append(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::append_element(QName name) {
  auto el = std::make_unique<Element>(std::move(name));
  return static_cast<Element&>(append(std::move(el)));
}

void Element::append_text(std::string text) {
  // Keep the tree in the form serialization produces: empty text is not
  // representable, and adjacent text nodes coalesce (they are
  // indistinguishable on the wire).
  if (text.empty()) return;
  if (!children_.empty() && children_.back()->kind() == NodeKind::kText) {
    auto* last = static_cast<CharData*>(children_.back().get());
    last->set_text(last->text() + text);
    return;
  }
  append(std::make_unique<CharData>(NodeKind::kText, std::move(text)));
}

bool Element::remove_child(const Node& child) {
  auto it = std::find_if(
      children_.begin(), children_.end(),
      [&](const std::unique_ptr<Node>& n) { return n.get() == &child; });
  if (it == children_.end()) return false;
  children_.erase(it);
  return true;
}

std::unique_ptr<Node> Element::detach_child(const Node& child) {
  auto it = std::find_if(
      children_.begin(), children_.end(),
      [&](const std::unique_ptr<Node>& n) { return n.get() == &child; });
  if (it == children_.end()) return nullptr;
  std::unique_ptr<Node> out = std::move(*it);
  children_.erase(it);
  out->parent_ = nullptr;
  return out;
}

Element* Element::child(const QName& name) {
  for (auto& c : children_) {
    if (c->kind() == NodeKind::kElement) {
      auto* el = static_cast<Element*>(c.get());
      if (el->name() == name) return el;
    }
  }
  return nullptr;
}

const Element* Element::child(const QName& name) const {
  return const_cast<Element*>(this)->child(name);
}

Element* Element::child_local(std::string_view local) {
  for (auto& c : children_) {
    if (c->kind() == NodeKind::kElement) {
      auto* el = static_cast<Element*>(c.get());
      if (el->name().local() == local) return el;
    }
  }
  return nullptr;
}

const Element* Element::child_local(std::string_view local) const {
  return const_cast<Element*>(this)->child_local(local);
}

std::vector<Element*> Element::child_elements() {
  std::vector<Element*> out;
  for (auto& c : children_) {
    if (c->kind() == NodeKind::kElement) out.push_back(static_cast<Element*>(c.get()));
  }
  return out;
}

std::vector<const Element*> Element::child_elements() const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kElement)
      out.push_back(static_cast<const Element*>(c.get()));
  }
  return out;
}

std::vector<const Element*> Element::children_named(const QName& name) const {
  std::vector<const Element*> out;
  for (const auto* el : child_elements()) {
    if (el->name() == name) out.push_back(el);
  }
  return out;
}

std::string Element::text() const {
  std::string out;
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kText || c->kind() == NodeKind::kCData) {
      out += static_cast<const CharData*>(c.get())->text();
    }
  }
  return out;
}

void Element::set_text(std::string text) {
  children_.clear();
  append_text(std::move(text));
}

std::unique_ptr<Node> Element::clone() const { return clone_element(); }

std::unique_ptr<Element> Element::clone_element() const {
  auto out = std::make_unique<Element>(name_);
  out->attrs_ = attrs_;
  out->ns_decls_ = ns_decls_;
  for (const auto& c : children_) out->append(c->clone());
  return out;
}

bool Element::deep_equal(const Element& a, const Element& b) {
  if (a.name_ != b.name_) return false;
  if (a.attrs_.size() != b.attrs_.size()) return false;
  for (const auto& attr : a.attrs_) {
    auto v = b.attr(attr.name);
    if (!v || *v != attr.value) return false;
  }
  // Compare children in order, ignoring comments.
  auto significant = [](const std::vector<std::unique_ptr<Node>>& kids) {
    std::vector<const Node*> out;
    for (const auto& k : kids) {
      if (k->kind() != NodeKind::kComment) out.push_back(k.get());
    }
    return out;
  };
  auto ka = significant(a.children_);
  auto kb = significant(b.children_);
  if (ka.size() != kb.size()) return false;
  for (size_t i = 0; i < ka.size(); ++i) {
    const Node* na = ka[i];
    const Node* nb = kb[i];
    bool ea = na->kind() == NodeKind::kElement;
    bool eb = nb->kind() == NodeKind::kElement;
    if (ea != eb) return false;
    if (ea) {
      if (!deep_equal(*static_cast<const Element*>(na),
                      *static_cast<const Element*>(nb)))
        return false;
    } else {
      if (static_cast<const CharData*>(na)->text() !=
          static_cast<const CharData*>(nb)->text())
        return false;
    }
  }
  return true;
}

}  // namespace gs::xml
