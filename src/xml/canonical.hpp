// Canonical XML (c14n-lite).
//
// XML digital signatures must agree on one octet stream for a given logical
// document. This canonicalizer produces a deterministic serialization:
// attributes sorted by (namespace URI, local name), namespace bindings
// rendered as deterministic `ns{n}` prefixes in first-use order, comments
// stripped, CDATA folded into text, and text content passed through with
// standard escaping. It intentionally trades full C14N 1.0 conformance for
// a compact spec with the same essential property: logically-equal documents
// canonicalize identically.
#pragma once

#include <string>

#include "xml/node.hpp"

namespace gs::xml {

/// Canonical octet stream for the subtree rooted at `root`.
std::string canonicalize(const Element& root);

}  // namespace gs::xml
