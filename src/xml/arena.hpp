// Bump-pointer arena for the zero-copy XML wire path.
//
// The DOM in node.hpp pays one heap allocation per node plus several per
// name/attribute string; on the request hot path that churn dominates
// container.parse_us. The arena backs the pull parser in pull.hpp: nodes
// and attribute arrays are bump-allocated in large blocks and freed all at
// once when the document dies. Types placed here must be trivially
// destructible — the arena never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

#include "xml/probe.hpp"

namespace gs::xml {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 8 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* alloc(std::size_t n, std::size_t align) {
    if (blocks_.empty() || !fits(blocks_.back(), n, align)) grow(n + align);
    Block& b = blocks_.back();
    std::size_t at = (b.used + align - 1) & ~(align - 1);
    b.used = at + n;
    used_ += n;
    probe::add_arena_bytes(n);
    return b.data.get() + at;
  }

  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return new (alloc(sizeof(T), alignof(T))) T{std::forward<Args>(args)...};
  }

  template <typename T>
  T* make_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    if (count == 0) return nullptr;
    T* out = static_cast<T*>(alloc(sizeof(T) * count, alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (out + i) T{};
    return out;
  }

  /// Copies `s` into the arena and returns a view of the copy.
  std::string_view copy(std::string_view s) {
    if (s.empty()) return {};
    char* out = static_cast<char*>(alloc(s.size(), 1));
    std::char_traits<char>::copy(out, s.data(), s.size());
    return {out, s.size()};
  }

  /// Payload bytes handed out (excludes block slack).
  std::size_t bytes_used() const noexcept { return used_; }
  std::size_t blocks() const noexcept { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static bool fits(const Block& b, std::size_t n, std::size_t align) {
    std::size_t at = (b.used + align - 1) & ~(align - 1);
    return at + n <= b.size;
  }

  void grow(std::size_t at_least) {
    std::size_t size = std::max(block_bytes_, at_least);
    blocks_.push_back(Block{std::make_unique<char[]>(size), size, 0});
  }

  std::size_t block_bytes_;
  std::size_t used_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace gs::xml
