#include "xml/canonical.hpp"

#include <algorithm>
#include <map>

#include "xml/writer.hpp"

namespace gs::xml {
namespace {

class Canonicalizer {
 public:
  std::string run(const Element& root) {
    walk(root);
    return std::move(out_);
  }

 private:
  // Deterministic prefix for a namespace URI: assigned in first-use document
  // order, so equal trees get equal prefixes regardless of source prefixes.
  // First use also records the binding in `new_bindings` so the current
  // element emits the xmlns declaration (equal trees allocate at the same
  // positions, keeping the octet stream deterministic).
  std::string prefix_for(const std::string& uri,
                         std::vector<std::pair<std::string, std::string>>&
                             new_bindings) {
    auto [it, inserted] = prefixes_.try_emplace(uri, prefixes_.size());
    std::string prefix = "ns" + std::to_string(it->second);
    if (inserted) new_bindings.emplace_back(prefix, uri);
    return prefix;
  }

  std::string qualified(const QName& name,
                        std::vector<std::pair<std::string, std::string>>&
                            new_bindings) {
    if (name.ns().empty()) return name.local();
    return prefix_for(name.ns(), new_bindings) + ":" + name.local();
  }

  void walk(const Element& el) {
    std::vector<std::pair<std::string, std::string>> new_bindings;
    std::string tag = qualified(el.name(), new_bindings);

    // Attributes sorted by (URI, local), values escaped.
    std::vector<Attribute> attrs(el.attributes());
    std::sort(attrs.begin(), attrs.end(), [](const Attribute& a, const Attribute& b) {
      return std::tie(a.name.ns(), a.name.local()) <
             std::tie(b.name.ns(), b.name.local());
    });
    std::string attr_text;
    for (const auto& a : attrs) {
      attr_text += ' ';
      attr_text += qualified(a.name, new_bindings);
      attr_text += "=\"";
      attr_text += escape_text(a.value, /*in_attribute=*/true);
      attr_text += '"';
    }

    out_ += '<';
    out_ += tag;
    for (const auto& [prefix, uri] : new_bindings) {
      out_ += " xmlns:";
      out_ += prefix;
      out_ += "=\"";
      out_ += escape_text(uri, /*in_attribute=*/true);
      out_ += '"';
    }
    out_ += attr_text;
    out_ += '>';

    for (const auto& c : el.children()) {
      switch (c->kind()) {
        case NodeKind::kElement:
          walk(static_cast<const Element&>(*c));
          break;
        case NodeKind::kText:
        case NodeKind::kCData:  // CDATA folds into text
          out_ += escape_text(static_cast<const CharData&>(*c).text());
          break;
        case NodeKind::kComment:
          break;  // comments are not signed
      }
    }
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  std::string out_;
  std::map<std::string, size_t> prefixes_;
};

}  // namespace

std::string canonicalize(const Element& root) { return Canonicalizer().run(root); }

}  // namespace gs::xml
