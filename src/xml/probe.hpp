// Thread-local XML allocation probe.
//
// Counts DOM node constructions and arena bytes on the current thread so the
// container can report per-request allocation pressure (xml.nodes_per_request,
// xml.arena_bytes) and the bench harness can measure — not assert — the
// fast-path allocation win. Counters are monotonic; callers snapshot before
// and after a request and record the delta.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gs::xml::probe {

struct AllocStats {
  std::uint64_t dom_nodes = 0;    // DOM Node constructions
  std::uint64_t arena_bytes = 0;  // bytes bump-allocated by Arena
};

inline thread_local AllocStats tl_stats;

inline void add_dom_node() noexcept { ++tl_stats.dom_nodes; }
inline void add_arena_bytes(std::size_t n) noexcept {
  tl_stats.arena_bytes += n;
}

/// Monotonic counters for the current thread.
inline AllocStats snapshot() noexcept { return tl_stats; }

}  // namespace gs::xml::probe
