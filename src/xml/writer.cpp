#include "xml/writer.hpp"

#include <vector>

namespace gs::xml {
namespace {

// Tracks in-scope prefix->URI bindings during serialization.
class PrefixScope {
 public:
  void push() { marks_.push_back(bindings_.size()); }
  void pop() {
    bindings_.resize(marks_.back());
    marks_.pop_back();
  }
  void bind(std::string prefix, std::string uri) {
    bindings_.emplace_back(std::move(prefix), std::move(uri));
  }
  // Innermost prefix bound to this URI, or nullptr. `allow_default` is false
  // for attributes, which cannot use the default namespace.
  const std::string* prefix_for(const std::string& uri, bool allow_default) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->second != uri) continue;
      if (!allow_default && it->first.empty()) continue;
      // The binding must not be shadowed by a later one with the same prefix.
      if (resolve(it->first) == &it->second) return &it->first;
    }
    return nullptr;
  }
  const std::string* resolve(const std::string& prefix) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == prefix) return &it->second;
    }
    return nullptr;
  }
  bool prefix_taken(const std::string& prefix) const {
    return resolve(prefix) != nullptr;
  }
  /// Current bindings, outermost first (template-compilation probe capture).
  const PrefixBindings& bindings() const noexcept { return bindings_; }

 private:
  PrefixBindings bindings_;
  std::vector<size_t> marks_;
};

class Writer {
 public:
  explicit Writer(const WriteOptions& opts) : opts_(opts) {}

  std::string run(const Element& root) {
    if (opts_.declaration) out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (opts_.declaration && opts_.pretty) out_ += '\n';
    write_element(root, 0);
    return std::move(out_);
  }

  /// Donates a buffer whose capacity the writer reuses (cleared first).
  void adopt_buffer(std::string&& buf) {
    out_ = std::move(buf);
    out_.clear();
  }

  /// Template compilation: skip no-namespace elements named `probe_local`,
  /// recording position + prefix state instead of emitting them.
  void set_probe(std::string_view probe_local, std::vector<ProbePoint>* probes) {
    probe_local_ = probe_local;
    probes_ = probes;
  }

  /// Template rendering: seed the scope and generated-prefix counter with
  /// the state captured at a ProbePoint, then write a sibling sequence.
  std::string run_fragment(const std::vector<const Element*>& nodes,
                           const PrefixBindings& bindings, int& gen_counter) {
    for (const auto& [prefix, uri] : bindings) scope_.bind(prefix, uri);
    gen_counter_ = gen_counter;
    for (const Element* el : nodes) write_element(*el, 0);
    gen_counter = gen_counter_;
    return std::move(out_);
  }

 private:
  void indent(int depth) {
    out_ += '\n';
    out_.append(static_cast<size_t>(depth) * 2, ' ');
  }

  void write_element(const Element& el, int depth) {
    if (probes_ && el.name().ns().empty() && el.name().local() == probe_local_) {
      probes_->push_back({out_.size(), scope_.bindings(), gen_counter_});
      return;
    }
    scope_.push();

    // Declarations explicitly hinted on this element.
    std::vector<std::pair<std::string, std::string>> new_decls;
    for (const auto& [prefix, uri] : el.ns_decls()) {
      if (const std::string* bound = scope_.resolve(prefix);
          bound && *bound == uri) {
        continue;  // already in scope
      }
      scope_.bind(prefix, uri);
      new_decls.emplace_back(prefix, uri);
    }

    std::string tag = qualify(el.name(), /*is_attribute=*/false, new_decls);

    out_ += '<';
    out_ += tag;

    // Attribute names may force additional declarations.
    std::vector<std::pair<std::string, std::string>> attr_text;
    for (const auto& a : el.attributes()) {
      attr_text.emplace_back(qualify(a.name, /*is_attribute=*/true, new_decls),
                             a.value);
    }
    for (const auto& [prefix, uri] : new_decls) {
      out_ += ' ';
      out_ += prefix.empty() ? "xmlns" : "xmlns:" + prefix;
      out_ += "=\"";
      out_ += escape_text(uri, true);
      out_ += '"';
    }
    for (const auto& [name, value] : attr_text) {
      out_ += ' ';
      out_ += name;
      out_ += "=\"";
      out_ += escape_text(value, true);
      out_ += '"';
    }

    if (!el.has_children()) {
      out_ += "/>";
      scope_.pop();
      return;
    }
    out_ += '>';

    bool mixed = false;
    for (const auto& c : el.children()) {
      if (c->kind() == NodeKind::kText || c->kind() == NodeKind::kCData) {
        mixed = true;
        break;
      }
    }
    bool pretty_here = opts_.pretty && !mixed;

    for (const auto& c : el.children()) {
      switch (c->kind()) {
        case NodeKind::kElement:
          if (pretty_here) indent(depth + 1);
          write_element(static_cast<const Element&>(*c), depth + 1);
          break;
        case NodeKind::kText:
          out_ += escape_text(static_cast<const CharData&>(*c).text());
          break;
        case NodeKind::kCData:
          out_ += "<![CDATA[";
          out_ += static_cast<const CharData&>(*c).text();
          out_ += "]]>";
          break;
        case NodeKind::kComment:
          if (pretty_here) indent(depth + 1);
          out_ += "<!--";
          out_ += static_cast<const CharData&>(*c).text();
          out_ += "-->";
          break;
      }
    }
    if (pretty_here) indent(depth);
    out_ += "</";
    out_ += tag;
    out_ += '>';
    scope_.pop();
  }

  // Returns the serialized (possibly prefixed) name, creating a namespace
  // declaration in `new_decls` if the URI is not yet reachable.
  std::string qualify(const QName& name, bool is_attribute,
                      std::vector<std::pair<std::string, std::string>>& new_decls) {
    if (name.ns().empty()) {
      // For elements, a no-namespace name requires the default namespace to
      // be unset in scope. We only undeclare if a default namespace applies.
      if (!is_attribute) {
        if (const std::string* dflt = scope_.resolve(""); dflt && !dflt->empty()) {
          scope_.bind("", "");
          new_decls.emplace_back("", "");
        }
      }
      return name.local();
    }
    if (const std::string* p = scope_.prefix_for(name.ns(), !is_attribute)) {
      return p->empty() ? name.local() : *p + ":" + name.local();
    }
    // Invent a prefix.
    std::string prefix;
    do {
      prefix = "n" + std::to_string(++gen_counter_);
    } while (scope_.prefix_taken(prefix));
    scope_.bind(prefix, name.ns());
    new_decls.emplace_back(prefix, name.ns());
    return prefix + ":" + name.local();
  }

  const WriteOptions& opts_;
  std::string out_;
  PrefixScope scope_;
  int gen_counter_ = 0;
  std::string_view probe_local_;
  std::vector<ProbePoint>* probes_ = nullptr;
};

}  // namespace

std::string escape_text(std::string_view raw, bool in_attribute) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"':
        if (in_attribute) {
          out += "&quot;";
        } else {
          out += c;
        }
        break;
      // Whitespace in attribute values must ride as character references:
      // a parser normalizes literal tab/CR/LF to spaces, so event messages
      // and fault text would not round-trip. (Our parser decodes &#n;.)
      case '\t':
        out += in_attribute ? "&#9;" : "\t";
        break;
      case '\n':
        out += in_attribute ? "&#10;" : "\n";
        break;
      case '\r':
        out += in_attribute ? "&#13;" : "\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining C0 controls are not legal XML 1.0 characters at all,
          // even as references; substitute U+FFFD so arbitrary fault/event
          // payloads can never produce an unparseable document.
          out += "\xEF\xBF\xBD";
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string write(const Element& root, const WriteOptions& options) {
  return Writer(options).run(root);
}

void write_into(std::string& out, const Element& root, const WriteOptions& options) {
  Writer w(options);
  w.adopt_buffer(std::move(out));
  out = w.run(root);
}

std::string write_with_probes(const Element& root, std::string_view probe_local,
                              std::vector<ProbePoint>& probes) {
  WriteOptions opts;
  Writer w(opts);
  w.set_probe(probe_local, &probes);
  return w.run(root);
}

std::string write_fragment(const std::vector<const Element*>& nodes,
                           const PrefixBindings& bindings, int& gen_counter) {
  WriteOptions opts;
  Writer w(opts);
  return w.run_fragment(nodes, bindings, gen_counter);
}

}  // namespace gs::xml
