// Qualified names (namespace URI + local part) for XML elements/attributes.
#pragma once

#include <compare>
#include <string>
#include <string_view>

namespace gs::xml {

/// A qualified XML name: a namespace URI plus a local part.
///
/// The prefix used on the wire is a serialization detail and is not part of
/// a QName's identity; two QNames compare equal iff URI and local part match.
class QName {
 public:
  QName() = default;
  /// Name in no namespace.
  explicit QName(std::string local) : local_(std::move(local)) {}
  QName(std::string ns_uri, std::string local)
      : ns_(std::move(ns_uri)), local_(std::move(local)) {}

  const std::string& ns() const noexcept { return ns_; }
  const std::string& local() const noexcept { return local_; }

  bool empty() const noexcept { return local_.empty(); }

  /// Clark notation: "{uri}local", or just "local" when in no namespace.
  /// Useful for diagnostics and map keys.
  std::string clark() const {
    if (ns_.empty()) return local_;
    return "{" + ns_ + "}" + local_;
  }

  friend bool operator==(const QName&, const QName&) = default;
  friend auto operator<=>(const QName&, const QName&) = default;

 private:
  std::string ns_;
  std::string local_;
};

}  // namespace gs::xml
