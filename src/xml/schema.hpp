// Schema-lite: structural schemas for XML documents.
//
// The paper's key qualitative finding about WS-Transfer is that it carries
// no input/output schema — clients must know resource document shapes by
// out-of-band agreement, whereas WSRF publishes the resource-property
// document schema in the service's WSDL. This module gives the WSRF side a
// concrete, checkable schema object and gives tests/benches a way to
// demonstrate the WS-Transfer failure mode (documents that silently violate
// the out-of-band contract).
//
// A Schema describes one element: its qualified name, the attributes it
// requires, the typed text content it may carry, and its child elements
// with occurrence bounds. Validation reports all violations, not just the
// first one.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "xml/node.hpp"

namespace gs::xml {

/// Primitive content types (subset of XSD).
enum class ContentType { kNone, kString, kInteger, kDouble, kBoolean, kAny };

/// Declaration of one element, possibly with nested child declarations.
class ElementDecl {
 public:
  explicit ElementDecl(QName name, ContentType content = ContentType::kNone)
      : name_(std::move(name)), content_(content) {}

  const QName& name() const noexcept { return name_; }
  ContentType content() const noexcept { return content_; }

  /// Declares a required attribute.
  ElementDecl& require_attr(QName name) {
    required_attrs_.push_back(std::move(name));
    return *this;
  }

  /// Declares a child element with occurrence bounds.
  /// Returns the child declaration for further refinement.
  ElementDecl& child(ElementDecl decl, size_t min_occurs = 1,
                     size_t max_occurs = 1);
  ElementDecl& child_unbounded(ElementDecl decl, size_t min_occurs = 0) {
    return child(std::move(decl), min_occurs,
                 std::numeric_limits<size_t>::max());
  }

  /// Allows child elements not covered by any declaration (xsd:any).
  ElementDecl& open_content() {
    open_content_ = true;
    return *this;
  }

  struct ChildSpec {
    std::unique_ptr<ElementDecl> decl;
    size_t min_occurs;
    size_t max_occurs;
  };
  const std::vector<ChildSpec>& children() const noexcept { return children_; }
  const std::vector<QName>& required_attrs() const noexcept { return required_attrs_; }
  bool is_open() const noexcept { return open_content_; }

 private:
  QName name_;
  ContentType content_;
  std::vector<QName> required_attrs_;
  std::vector<ChildSpec> children_;
  bool open_content_ = false;
};

/// One validation problem, with the path to the offending element.
struct SchemaViolation {
  std::string path;     // e.g. "/Counter/Value"
  std::string message;  // human-readable description
};

/// Validation outcome; empty violations == valid.
struct ValidationResult {
  std::vector<SchemaViolation> violations;
  bool valid() const noexcept { return violations.empty(); }
  /// All messages joined with "; " (diagnostics).
  std::string summary() const;
};

/// A document schema: a single root element declaration.
class Schema {
 public:
  explicit Schema(ElementDecl root) : root_(std::move(root)) {}
  const ElementDecl& root() const noexcept { return root_; }

  /// Validates `doc` against this schema.
  ValidationResult validate(const Element& doc) const;

 private:
  ElementDecl root_;
};

}  // namespace gs::xml
