// Namespace-aware XML parser.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "xml/node.hpp"

namespace gs::xml {

/// Thrown on malformed input; carries a 1-based line/column position.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line, int column)
      : std::runtime_error(message + " at line " + std::to_string(line) +
                           ", column " + std::to_string(column)),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses a complete XML document and returns its root element.
///
/// Supported: prolog (`<?xml ...?>`), namespaces (default + prefixed,
/// including undeclaration), attributes, character data, the five built-in
/// entities plus decimal/hex character references, comments, CDATA sections
/// and processing instructions (skipped). DTDs are rejected.
///
/// Throws ParseError on malformed input.
Document parse(std::string_view input);

/// Parses and returns the root element directly (common case).
std::unique_ptr<Element> parse_element(std::string_view input);

}  // namespace gs::xml
