// XPath 1.0 subset used across the two stacks:
//   * WSRF QueryResourceProperties (XPath dialect)
//   * WS-Eventing / WS-Notification message-content filters
//   * queries over collections in the Xindice-substitute database
//
// Supported: location paths over child / attribute / descendant-or-self /
// self / parent axes ('/', '//', '@', '.', '..'), name tests with namespace
// prefixes and wildcards, node tests text() and node(), predicates
// (positional and boolean), the union operator, arithmetic/relational/
// boolean operators, and the core function library (string, number, boolean,
// not, true, false, count, position, last, name, local-name, contains,
// starts-with, concat, string-length, normalize-space, floor, ceiling,
// round).
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "xml/node.hpp"

namespace gs::xml {

/// Thrown for syntax errors and evaluation-time type errors.
class XPathError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A node in the XPath data model: an element, an attribute (owner + index),
/// or a character-data node.
struct XPathNode {
  const Element* element = nullptr;   // element node, or attribute owner
  const CharData* chardata = nullptr; // text node
  int attr_index = -1;                // >= 0 for an attribute node

  bool is_element() const noexcept {
    return element != nullptr && attr_index < 0 && chardata == nullptr;
  }
  bool is_attribute() const noexcept { return attr_index >= 0; }
  bool is_text() const noexcept { return chardata != nullptr; }

  /// XPath string-value of the node.
  std::string string_value() const;

  static XPathNode of(const Element& el) { return {&el, nullptr, -1}; }

  friend bool operator==(const XPathNode&, const XPathNode&) = default;
};

using NodeSet = std::vector<XPathNode>;

/// An XPath value: node-set, boolean, number or string.
class XPathValue {
 public:
  XPathValue() : v_(NodeSet{}) {}
  explicit XPathValue(NodeSet ns) : v_(std::move(ns)) {}
  explicit XPathValue(bool b) : v_(b) {}
  explicit XPathValue(double d) : v_(d) {}
  explicit XPathValue(std::string s) : v_(std::move(s)) {}

  bool is_node_set() const noexcept { return std::holds_alternative<NodeSet>(v_); }
  bool is_boolean() const noexcept { return std::holds_alternative<bool>(v_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(v_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }

  /// Conversions per XPath 1.0 semantics.
  bool to_boolean() const;
  double to_number() const;
  std::string to_string() const;
  const NodeSet& node_set() const;

 private:
  std::variant<NodeSet, bool, double, std::string> v_;
};

/// A compiled XPath expression; reusable across evaluations and threads.
class XPathExpr {
 public:
  /// Compiles `text`. `namespaces` maps prefixes used in the expression to
  /// namespace URIs. Throws XPathError on syntax errors.
  static XPathExpr compile(std::string_view text,
                           std::map<std::string, std::string> namespaces = {});

  XPathExpr(XPathExpr&&) noexcept;
  XPathExpr& operator=(XPathExpr&&) noexcept;
  ~XPathExpr();

  /// Evaluates with `context` as the context node (also the document root
  /// for absolute paths).
  XPathValue eval(const Element& context) const;

  /// Convenience: evaluates and converts to bool (filter predicates).
  bool matches(const Element& context) const { return eval(context).to_boolean(); }

  /// Convenience: evaluates and returns the selected elements only.
  std::vector<const Element*> select_elements(const Element& context) const;

  const std::string& text() const noexcept { return text_; }

 private:
  struct Impl;
  explicit XPathExpr(std::unique_ptr<Impl> impl, std::string text);
  std::unique_ptr<Impl> impl_;
  std::string text_;
};

/// One-shot helper: compile + select elements.
std::vector<const Element*> xpath_select(
    const Element& context, std::string_view expr,
    std::map<std::string, std::string> namespaces = {});

}  // namespace gs::xml
