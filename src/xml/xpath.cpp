#include "xml/xpath.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>

namespace gs::xml {
namespace {

std::string element_string_value(const Element& el) {
  std::string out;
  std::function<void(const Element&)> walk = [&](const Element& e) {
    for (const auto& c : e.children()) {
      if (c->kind() == NodeKind::kText || c->kind() == NodeKind::kCData) {
        out += static_cast<const CharData&>(*c).text();
      } else if (c->kind() == NodeKind::kElement) {
        walk(static_cast<const Element&>(*c));
      }
    }
  };
  walk(el);
  return out;
}

std::string format_number(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == 0) return "0";
  if (d == static_cast<long long>(d)) return std::to_string(static_cast<long long>(d));
  std::ostringstream os;
  os << d;
  return os.str();
}

double string_to_number(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return std::nan("");
  size_t e = s.find_last_not_of(" \t\r\n");
  std::string t = s.substr(b, e - b + 1);
  try {
    size_t used = 0;
    double d = std::stod(t, &used);
    if (used != t.size()) return std::nan("");
    return d;
  } catch (const std::exception&) {
    return std::nan("");
  }
}

}  // namespace

std::string XPathNode::string_value() const {
  if (is_attribute()) return element->attributes()[static_cast<size_t>(attr_index)].value;
  if (is_text()) return chardata->text();
  return element_string_value(*element);
}

bool XPathValue::to_boolean() const {
  if (auto* b = std::get_if<bool>(&v_)) return *b;
  if (auto* d = std::get_if<double>(&v_)) return *d != 0 && !std::isnan(*d);
  if (auto* s = std::get_if<std::string>(&v_)) return !s->empty();
  return !std::get<NodeSet>(v_).empty();
}

double XPathValue::to_number() const {
  if (auto* d = std::get_if<double>(&v_)) return *d;
  if (auto* b = std::get_if<bool>(&v_)) return *b ? 1.0 : 0.0;
  return string_to_number(to_string());
}

std::string XPathValue::to_string() const {
  if (auto* s = std::get_if<std::string>(&v_)) return *s;
  if (auto* b = std::get_if<bool>(&v_)) return *b ? "true" : "false";
  if (auto* d = std::get_if<double>(&v_)) return format_number(*d);
  const auto& ns = std::get<NodeSet>(v_);
  return ns.empty() ? std::string() : ns.front().string_value();
}

const NodeSet& XPathValue::node_set() const {
  if (!is_node_set()) throw XPathError("expected a node-set");
  return std::get<NodeSet>(v_);
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

namespace {

enum class Tok {
  kEnd, kSlash, kSlashSlash, kDot, kDotDot, kAt, kLBracket, kRBracket,
  kLParen, kRParen, kComma, kPipe, kStar, kName, kLiteral, kNumber,
  kEq, kNe, kLt, kLe, kGt, kGe, kPlus, kMinus,
};

struct Token {
  Tok kind;
  std::string text;   // for kName / kLiteral
  double number = 0;  // for kNumber
};

class Lexer {
 public:
  explicit Lexer(std::string_view in) : in_(in) { next(); }

  const Token& cur() const { return cur_; }
  // Previous token kind, used to disambiguate '*' (wildcard vs multiply) and
  // operator names ('and', 'or', 'div', 'mod').
  bool prev_was_operand() const { return prev_operand_; }

  void next() {
    prev_operand_ = cur_.kind == Tok::kName || cur_.kind == Tok::kLiteral ||
                    cur_.kind == Tok::kNumber || cur_.kind == Tok::kRParen ||
                    cur_.kind == Tok::kRBracket || cur_.kind == Tok::kDot ||
                    cur_.kind == Tok::kDotDot || cur_.kind == Tok::kStar;
    skip_ws();
    if (pos_ >= in_.size()) {
      cur_ = {Tok::kEnd, "", 0};
      return;
    }
    char c = in_[pos_];
    switch (c) {
      case '/':
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '/') {
          pos_ += 2;
          cur_ = {Tok::kSlashSlash, "", 0};
        } else {
          ++pos_;
          cur_ = {Tok::kSlash, "", 0};
        }
        return;
      case '.':
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '.') {
          pos_ += 2;
          cur_ = {Tok::kDotDot, "", 0};
          return;
        }
        if (pos_ + 1 < in_.size() && std::isdigit(static_cast<unsigned char>(in_[pos_ + 1]))) {
          lex_number();
          return;
        }
        ++pos_;
        cur_ = {Tok::kDot, "", 0};
        return;
      case '@': ++pos_; cur_ = {Tok::kAt, "", 0}; return;
      case '[': ++pos_; cur_ = {Tok::kLBracket, "", 0}; return;
      case ']': ++pos_; cur_ = {Tok::kRBracket, "", 0}; return;
      case '(': ++pos_; cur_ = {Tok::kLParen, "", 0}; return;
      case ')': ++pos_; cur_ = {Tok::kRParen, "", 0}; return;
      case ',': ++pos_; cur_ = {Tok::kComma, "", 0}; return;
      case '|': ++pos_; cur_ = {Tok::kPipe, "", 0}; return;
      case '*': ++pos_; cur_ = {Tok::kStar, "", 0}; return;
      case '+': ++pos_; cur_ = {Tok::kPlus, "", 0}; return;
      case '-': ++pos_; cur_ = {Tok::kMinus, "", 0}; return;
      case '=': ++pos_; cur_ = {Tok::kEq, "", 0}; return;
      case '!':
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '=') {
          pos_ += 2;
          cur_ = {Tok::kNe, "", 0};
          return;
        }
        throw XPathError("unexpected '!' in XPath expression");
      case '<':
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '=') {
          pos_ += 2;
          cur_ = {Tok::kLe, "", 0};
        } else {
          ++pos_;
          cur_ = {Tok::kLt, "", 0};
        }
        return;
      case '>':
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '=') {
          pos_ += 2;
          cur_ = {Tok::kGe, "", 0};
        } else {
          ++pos_;
          cur_ = {Tok::kGt, "", 0};
        }
        return;
      case '"':
      case '\'': {
        char quote = c;
        size_t end = in_.find(quote, pos_ + 1);
        if (end == std::string_view::npos) throw XPathError("unterminated literal");
        cur_ = {Tok::kLiteral, std::string(in_.substr(pos_ + 1, end - pos_ - 1)), 0};
        pos_ = end + 1;
        return;
      }
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          lex_number();
          return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
          size_t start = pos_;
          while (pos_ < in_.size() &&
                 (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
                  in_[pos_] == '_' || in_[pos_] == '-' || in_[pos_] == '.' ||
                  in_[pos_] == ':')) {
            ++pos_;
          }
          cur_ = {Tok::kName, std::string(in_.substr(start, pos_ - start)), 0};
          return;
        }
        throw XPathError(std::string("unexpected character '") + c + "' in XPath");
    }
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) ++pos_;
  }
  void lex_number() {
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '.')) {
      ++pos_;
    }
    cur_ = {Tok::kNumber, "", std::stod(std::string(in_.substr(start, pos_ - start)))};
  }

  std::string_view in_;
  size_t pos_ = 0;
  Token cur_{Tok::kEnd, "", 0};
  bool prev_operand_ = false;
};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

enum class Axis { kChild, kAttribute, kDescendantOrSelf, kSelf, kParent, kDescendant };

enum class NodeTestKind { kName, kAnyName, kText, kAnyNode };

struct NodeTest {
  NodeTestKind kind = NodeTestKind::kAnyNode;
  QName name;  // for kName (URI resolved at compile time)
};

struct Expr;

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<std::unique_ptr<Expr>> predicates;
};

enum class Op {
  kOr, kAnd, kEq, kNe, kLt, kLe, kGt, kGe, kPlus, kMinus, kMul, kDiv, kMod,
  kUnion, kNegate,
  kPath,      // steps applied to an optional base expression
  kLiteral, kNumber, kFunction,
};

struct Expr {
  Op op;
  std::vector<std::unique_ptr<Expr>> args;
  // kPath:
  bool absolute = false;
  std::unique_ptr<Expr> base;  // filter expr the path applies to, or null
  std::vector<Step> steps;
  // kLiteral / kFunction name / kNumber:
  std::string str;
  double num = 0;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class ExprParser {
 public:
  ExprParser(std::string_view text, const std::map<std::string, std::string>& ns)
      : lex_(text), ns_(ns) {}

  std::unique_ptr<Expr> parse() {
    auto e = parse_or();
    if (lex_.cur().kind != Tok::kEnd) throw XPathError("trailing tokens in XPath");
    return e;
  }

 private:
  bool at_name(const char* s) const {
    return lex_.cur().kind == Tok::kName && lex_.cur().text == s;
  }

  std::unique_ptr<Expr> make_binary(Op op, std::unique_ptr<Expr> l,
                                    std::unique_ptr<Expr> r) {
    auto e = std::make_unique<Expr>();
    e->op = op;
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    return e;
  }

  std::unique_ptr<Expr> parse_or() {
    auto l = parse_and();
    while (at_name("or") && lex_.prev_was_operand()) {
      lex_.next();
      l = make_binary(Op::kOr, std::move(l), parse_and());
    }
    return l;
  }

  std::unique_ptr<Expr> parse_and() {
    auto l = parse_equality();
    while (at_name("and") && lex_.prev_was_operand()) {
      lex_.next();
      l = make_binary(Op::kAnd, std::move(l), parse_equality());
    }
    return l;
  }

  std::unique_ptr<Expr> parse_equality() {
    auto l = parse_relational();
    for (;;) {
      Tok k = lex_.cur().kind;
      if (k == Tok::kEq || k == Tok::kNe) {
        lex_.next();
        l = make_binary(k == Tok::kEq ? Op::kEq : Op::kNe, std::move(l),
                        parse_relational());
      } else {
        return l;
      }
    }
  }

  std::unique_ptr<Expr> parse_relational() {
    auto l = parse_additive();
    for (;;) {
      Tok k = lex_.cur().kind;
      Op op;
      switch (k) {
        case Tok::kLt: op = Op::kLt; break;
        case Tok::kLe: op = Op::kLe; break;
        case Tok::kGt: op = Op::kGt; break;
        case Tok::kGe: op = Op::kGe; break;
        default: return l;
      }
      lex_.next();
      l = make_binary(op, std::move(l), parse_additive());
    }
  }

  std::unique_ptr<Expr> parse_additive() {
    auto l = parse_multiplicative();
    for (;;) {
      Tok k = lex_.cur().kind;
      if (k == Tok::kPlus || k == Tok::kMinus) {
        lex_.next();
        l = make_binary(k == Tok::kPlus ? Op::kPlus : Op::kMinus, std::move(l),
                        parse_multiplicative());
      } else {
        return l;
      }
    }
  }

  std::unique_ptr<Expr> parse_multiplicative() {
    auto l = parse_unary();
    for (;;) {
      if (lex_.cur().kind == Tok::kStar && lex_.prev_was_operand()) {
        lex_.next();
        l = make_binary(Op::kMul, std::move(l), parse_unary());
      } else if ((at_name("div") || at_name("mod")) && lex_.prev_was_operand()) {
        Op op = at_name("div") ? Op::kDiv : Op::kMod;
        lex_.next();
        l = make_binary(op, std::move(l), parse_unary());
      } else {
        return l;
      }
    }
  }

  std::unique_ptr<Expr> parse_unary() {
    if (lex_.cur().kind == Tok::kMinus) {
      lex_.next();
      auto e = std::make_unique<Expr>();
      e->op = Op::kNegate;
      e->args.push_back(parse_unary());
      return e;
    }
    return parse_union();
  }

  std::unique_ptr<Expr> parse_union() {
    auto l = parse_path();
    while (lex_.cur().kind == Tok::kPipe) {
      lex_.next();
      l = make_binary(Op::kUnion, std::move(l), parse_path());
    }
    return l;
  }

  // Is the current token the start of a primary (non-path) expression?
  bool at_primary_start() {
    Tok k = lex_.cur().kind;
    if (k == Tok::kLiteral || k == Tok::kNumber || k == Tok::kLParen) return true;
    if (k == Tok::kName) {
      // A function call — unless it is a node-test name.
      const std::string& t = lex_.cur().text;
      if (t == "text" || t == "node" || t == "comment") return false;
      return peek_is_lparen();
    }
    return false;
  }

  bool peek_is_lparen() {
    // The lexer has 1-token lookahead only; copy it to peek.
    Lexer probe = lex_;
    probe.next();
    return probe.cur().kind == Tok::kLParen;
  }

  std::unique_ptr<Expr> parse_path() {
    auto e = std::make_unique<Expr>();
    e->op = Op::kPath;

    if (at_primary_start()) {
      e->base = parse_primary();
      // Optional trailing predicates on the filter expression.
      // (Handled inside parse_primary for function calls returning node-sets.)
      if (lex_.cur().kind != Tok::kSlash && lex_.cur().kind != Tok::kSlashSlash) {
        return e->base ? std::move(e->base) : std::move(e);
      }
      if (lex_.cur().kind == Tok::kSlashSlash) {
        lex_.next();
        Step s;
        s.axis = Axis::kDescendantOrSelf;
        s.test.kind = NodeTestKind::kAnyNode;
        e->steps.push_back(std::move(s));
      } else {
        lex_.next();
      }
      parse_relative_path(*e);
      return e;
    }

    if (lex_.cur().kind == Tok::kSlash) {
      e->absolute = true;
      lex_.next();
      if (!at_step_start()) return e;  // bare "/"
    } else if (lex_.cur().kind == Tok::kSlashSlash) {
      e->absolute = true;
      lex_.next();
      Step s;
      s.axis = Axis::kDescendantOrSelf;
      s.test.kind = NodeTestKind::kAnyNode;
      e->steps.push_back(std::move(s));
    }
    parse_relative_path(*e);
    return e;
  }

  bool at_step_start() {
    Tok k = lex_.cur().kind;
    return k == Tok::kName || k == Tok::kStar || k == Tok::kAt || k == Tok::kDot ||
           k == Tok::kDotDot;
  }

  void parse_relative_path(Expr& path) {
    path.steps.push_back(parse_step());
    for (;;) {
      if (lex_.cur().kind == Tok::kSlash) {
        lex_.next();
        path.steps.push_back(parse_step());
      } else if (lex_.cur().kind == Tok::kSlashSlash) {
        lex_.next();
        Step s;
        s.axis = Axis::kDescendantOrSelf;
        s.test.kind = NodeTestKind::kAnyNode;
        path.steps.push_back(std::move(s));
        path.steps.push_back(parse_step());
      } else {
        return;
      }
    }
  }

  Step parse_step() {
    Step s;
    switch (lex_.cur().kind) {
      case Tok::kDot:
        lex_.next();
        s.axis = Axis::kSelf;
        s.test.kind = NodeTestKind::kAnyNode;
        return s;
      case Tok::kDotDot:
        lex_.next();
        s.axis = Axis::kParent;
        s.test.kind = NodeTestKind::kAnyNode;
        return s;
      case Tok::kAt:
        lex_.next();
        s.axis = Axis::kAttribute;
        s.test = parse_node_test(/*attribute=*/true);
        break;
      default:
        s.axis = Axis::kChild;
        s.test = parse_node_test(/*attribute=*/false);
        break;
    }
    while (lex_.cur().kind == Tok::kLBracket) {
      lex_.next();
      s.predicates.push_back(parse_or());
      if (lex_.cur().kind != Tok::kRBracket) throw XPathError("expected ']'");
      lex_.next();
    }
    return s;
  }

  NodeTest parse_node_test(bool attribute) {
    NodeTest t;
    if (lex_.cur().kind == Tok::kStar) {
      lex_.next();
      t.kind = NodeTestKind::kAnyName;
      return t;
    }
    if (lex_.cur().kind != Tok::kName) throw XPathError("expected a node test");
    std::string raw = lex_.cur().text;
    lex_.next();
    if (raw == "text" && lex_.cur().kind == Tok::kLParen) {
      lex_.next();
      if (lex_.cur().kind != Tok::kRParen) throw XPathError("expected ')'");
      lex_.next();
      t.kind = NodeTestKind::kText;
      return t;
    }
    if (raw == "node" && lex_.cur().kind == Tok::kLParen) {
      lex_.next();
      if (lex_.cur().kind != Tok::kRParen) throw XPathError("expected ')'");
      lex_.next();
      t.kind = NodeTestKind::kAnyNode;
      return t;
    }
    t.kind = NodeTestKind::kName;
    auto colon = raw.find(':');
    if (colon == std::string::npos) {
      t.name = QName(raw);
    } else {
      std::string prefix = raw.substr(0, colon);
      auto it = ns_.find(prefix);
      if (it == ns_.end())
        throw XPathError("unbound prefix '" + prefix + "' in XPath expression");
      t.name = QName(it->second, raw.substr(colon + 1));
    }
    (void)attribute;
    return t;
  }

  std::unique_ptr<Expr> parse_primary() {
    if (lex_.cur().kind == Tok::kLParen) {
      lex_.next();
      auto e = parse_or();
      if (lex_.cur().kind != Tok::kRParen) throw XPathError("expected ')'");
      lex_.next();
      return e;
    }
    if (lex_.cur().kind == Tok::kLiteral) {
      auto e = std::make_unique<Expr>();
      e->op = Op::kLiteral;
      e->str = lex_.cur().text;
      lex_.next();
      return e;
    }
    if (lex_.cur().kind == Tok::kNumber) {
      auto e = std::make_unique<Expr>();
      e->op = Op::kNumber;
      e->num = lex_.cur().number;
      lex_.next();
      return e;
    }
    // Function call. Unknown names are rejected at compile time.
    static const std::set<std::string> kKnownFunctions = {
        "true", "false", "not", "position", "last", "count", "string",
        "number", "boolean", "name", "local-name", "contains", "starts-with",
        "concat", "string-length", "normalize-space", "floor", "ceiling",
        "round"};
    auto e = std::make_unique<Expr>();
    e->op = Op::kFunction;
    e->str = lex_.cur().text;
    if (!kKnownFunctions.contains(e->str)) {
      throw XPathError("unknown XPath function " + e->str + "()");
    }
    lex_.next();
    if (lex_.cur().kind != Tok::kLParen) throw XPathError("expected '('");
    lex_.next();
    if (lex_.cur().kind != Tok::kRParen) {
      e->args.push_back(parse_or());
      while (lex_.cur().kind == Tok::kComma) {
        lex_.next();
        e->args.push_back(parse_or());
      }
    }
    if (lex_.cur().kind != Tok::kRParen) throw XPathError("expected ')'");
    lex_.next();
    return e;
  }

  Lexer lex_;
  const std::map<std::string, std::string>& ns_;
};

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

struct EvalContext {
  XPathNode node;
  size_t position = 1;  // 1-based
  size_t size = 1;
  const Element* root = nullptr;
};

class Evaluator {
 public:
  XPathValue eval(const Expr& e, const EvalContext& ctx) {
    switch (e.op) {
      case Op::kLiteral: return XPathValue(e.str);
      case Op::kNumber: return XPathValue(e.num);
      case Op::kOr:
        return XPathValue(eval(*e.args[0], ctx).to_boolean() ||
                          eval(*e.args[1], ctx).to_boolean());
      case Op::kAnd:
        return XPathValue(eval(*e.args[0], ctx).to_boolean() &&
                          eval(*e.args[1], ctx).to_boolean());
      case Op::kEq: return compare(e, ctx, true);
      case Op::kNe: return compare(e, ctx, false);
      case Op::kLt: return relational(e, ctx, [](double a, double b) { return a < b; });
      case Op::kLe: return relational(e, ctx, [](double a, double b) { return a <= b; });
      case Op::kGt: return relational(e, ctx, [](double a, double b) { return a > b; });
      case Op::kGe: return relational(e, ctx, [](double a, double b) { return a >= b; });
      case Op::kPlus: return arith(e, ctx, [](double a, double b) { return a + b; });
      case Op::kMinus: return arith(e, ctx, [](double a, double b) { return a - b; });
      case Op::kMul: return arith(e, ctx, [](double a, double b) { return a * b; });
      case Op::kDiv: return arith(e, ctx, [](double a, double b) { return a / b; });
      case Op::kMod:
        return arith(e, ctx, [](double a, double b) { return std::fmod(a, b); });
      case Op::kNegate:
        return XPathValue(-eval(*e.args[0], ctx).to_number());
      case Op::kUnion: {
        NodeSet l = eval(*e.args[0], ctx).node_set();
        NodeSet r = eval(*e.args[1], ctx).node_set();
        for (auto& n : r) {
          if (std::find(l.begin(), l.end(), n) == l.end()) l.push_back(n);
        }
        return XPathValue(std::move(l));
      }
      case Op::kPath: return eval_path(e, ctx);
      case Op::kFunction: return eval_function(e, ctx);
    }
    throw XPathError("unhandled expression");
  }

 private:
  XPathValue compare(const Expr& e, const EvalContext& ctx, bool want_equal) {
    XPathValue l = eval(*e.args[0], ctx);
    XPathValue r = eval(*e.args[1], ctx);
    // Node-set comparisons are existential per XPath 1.0.
    if (l.is_node_set() || r.is_node_set()) {
      const XPathValue& ns = l.is_node_set() ? l : r;
      const XPathValue& other = l.is_node_set() ? r : l;
      if (other.is_node_set()) {
        for (const auto& a : ns.node_set()) {
          for (const auto& b : other.node_set()) {
            if ((a.string_value() == b.string_value()) == want_equal)
              return XPathValue(true);
          }
        }
        return XPathValue(false);
      }
      for (const auto& n : ns.node_set()) {
        bool eq;
        if (other.is_number()) {
          eq = string_to_number(n.string_value()) == other.to_number();
        } else if (other.is_boolean()) {
          eq = XPathValue(NodeSet{n}).to_boolean() == other.to_boolean();
        } else {
          eq = n.string_value() == other.to_string();
        }
        if (eq == want_equal) return XPathValue(true);
      }
      return XPathValue(false);
    }
    bool eq;
    if (l.is_boolean() || r.is_boolean()) {
      eq = l.to_boolean() == r.to_boolean();
    } else if (l.is_number() || r.is_number()) {
      eq = l.to_number() == r.to_number();
    } else {
      eq = l.to_string() == r.to_string();
    }
    return XPathValue(eq == want_equal);
  }

  template <typename Cmp>
  XPathValue relational(const Expr& e, const EvalContext& ctx, Cmp cmp) {
    XPathValue l = eval(*e.args[0], ctx);
    XPathValue r = eval(*e.args[1], ctx);
    if (l.is_node_set() || r.is_node_set()) {
      auto nums = [](const XPathValue& v) {
        std::vector<double> out;
        if (v.is_node_set()) {
          for (const auto& n : v.node_set()) out.push_back(string_to_number(n.string_value()));
        } else {
          out.push_back(v.to_number());
        }
        return out;
      };
      for (double a : nums(l)) {
        for (double b : nums(r)) {
          if (cmp(a, b)) return XPathValue(true);
        }
      }
      return XPathValue(false);
    }
    return XPathValue(static_cast<bool>(cmp(l.to_number(), r.to_number())));
  }

  template <typename OpFn>
  XPathValue arith(const Expr& e, const EvalContext& ctx, OpFn fn) {
    return XPathValue(
        fn(eval(*e.args[0], ctx).to_number(), eval(*e.args[1], ctx).to_number()));
  }

  XPathValue eval_path(const Expr& e, const EvalContext& ctx) {
    NodeSet current;
    if (e.base) {
      XPathValue base = eval(*e.base, ctx);
      current = base.node_set();
      if (e.steps.empty()) return XPathValue(std::move(current));
    } else if (e.absolute) {
      current.push_back(XPathNode::of(*ctx.root));
      if (e.steps.empty()) return XPathValue(std::move(current));
    } else {
      current.push_back(ctx.node);
    }
    bool first_step_of_absolute = e.absolute && !e.base;
    for (const auto& step : e.steps) {
      // An absolute path conceptually starts at the document node, whose
      // only element child is the root. We seed `current` with the root
      // element itself, so the first child-axis step must test the root
      // rather than its children.
      const Step* effective = &step;
      Step self_step;
      if (first_step_of_absolute && step.axis == Axis::kChild) {
        self_step.axis = Axis::kSelf;
        self_step.test = step.test;
        effective = &self_step;
      }
      first_step_of_absolute = false;
      NodeSet next;
      for (const auto& n : current) {
        NodeSet candidates = apply_axis(*effective, n);
        apply_predicates(step, candidates, ctx.root);
        for (auto& c : candidates) {
          if (std::find(next.begin(), next.end(), c) == next.end())
            next.push_back(std::move(c));
        }
      }
      current = std::move(next);
    }
    return XPathValue(std::move(current));
  }

  NodeSet apply_axis(const Step& step, const XPathNode& n) {
    NodeSet out;
    switch (step.axis) {
      case Axis::kSelf:
        if (test_matches(step.test, n)) out.push_back(n);
        break;
      case Axis::kParent:
        if (n.is_element() && n.element->parent()) {
          XPathNode p = XPathNode::of(*n.element->parent());
          if (test_matches(step.test, p)) out.push_back(p);
        } else if ((n.is_attribute() || n.is_text()) && n.element) {
          XPathNode p = XPathNode::of(*n.element);
          if (test_matches(step.test, p)) out.push_back(p);
        }
        break;
      case Axis::kChild:
        if (n.is_element()) collect_children(step.test, *n.element, out);
        break;
      case Axis::kAttribute:
        if (n.is_element()) {
          const auto& attrs = n.element->attributes();
          for (size_t i = 0; i < attrs.size(); ++i) {
            if (step.test.kind == NodeTestKind::kAnyName ||
                step.test.kind == NodeTestKind::kAnyNode ||
                (step.test.kind == NodeTestKind::kName &&
                 attrs[i].name == step.test.name)) {
              out.push_back({n.element, nullptr, static_cast<int>(i)});
            }
          }
        }
        break;
      case Axis::kDescendantOrSelf:
        if (test_matches(step.test, n)) out.push_back(n);
        if (n.is_element()) collect_descendants(step.test, *n.element, out);
        break;
      case Axis::kDescendant:
        if (n.is_element()) collect_descendants(step.test, *n.element, out);
        break;
    }
    return out;
  }

  void collect_children(const NodeTest& test, const Element& el, NodeSet& out) {
    for (const auto& c : el.children()) {
      if (c->kind() == NodeKind::kElement) {
        const auto& child = static_cast<const Element&>(*c);
        XPathNode n = XPathNode::of(child);
        if (test_matches(test, n)) out.push_back(n);
      } else if (c->kind() == NodeKind::kText || c->kind() == NodeKind::kCData) {
        if (test.kind == NodeTestKind::kText || test.kind == NodeTestKind::kAnyNode) {
          out.push_back({&el, static_cast<const CharData*>(c.get()), -1});
        }
      }
    }
  }

  void collect_descendants(const NodeTest& test, const Element& el, NodeSet& out) {
    for (const auto& c : el.children()) {
      if (c->kind() == NodeKind::kElement) {
        const auto& child = static_cast<const Element&>(*c);
        XPathNode n = XPathNode::of(child);
        if (test_matches(test, n)) out.push_back(n);
        collect_descendants(test, child, out);
      } else if (c->kind() == NodeKind::kText || c->kind() == NodeKind::kCData) {
        if (test.kind == NodeTestKind::kText || test.kind == NodeTestKind::kAnyNode) {
          out.push_back({&el, static_cast<const CharData*>(c.get()), -1});
        }
      }
    }
  }

  bool test_matches(const NodeTest& test, const XPathNode& n) {
    switch (test.kind) {
      case NodeTestKind::kAnyNode: return true;
      case NodeTestKind::kText: return n.is_text();
      case NodeTestKind::kAnyName: return n.is_element();
      case NodeTestKind::kName:
        if (!n.is_element()) return false;
        if (test.name.ns().empty()) {
          // Unprefixed name tests match on local name regardless of
          // namespace; this matches common WS-* toolkit behaviour and keeps
          // filter expressions readable for service authors.
          return n.element->name().local() == test.name.local();
        }
        return n.element->name() == test.name;
    }
    return false;
  }

  void apply_predicates(const Step& step, NodeSet& nodes, const Element* root) {
    for (const auto& pred : step.predicates) {
      NodeSet kept;
      for (size_t i = 0; i < nodes.size(); ++i) {
        EvalContext sub{nodes[i], i + 1, nodes.size(), root};
        XPathValue v = eval(*pred, sub);
        bool keep = v.is_number() ? (v.to_number() == static_cast<double>(i + 1))
                                  : v.to_boolean();
        if (keep) kept.push_back(nodes[i]);
      }
      nodes = std::move(kept);
    }
  }

  XPathValue eval_function(const Expr& e, const EvalContext& ctx) {
    const std::string& f = e.str;
    auto arity = [&](size_t n) {
      if (e.args.size() != n)
        throw XPathError("function " + f + "() expects " + std::to_string(n) +
                         " argument(s)");
    };
    if (f == "true") { arity(0); return XPathValue(true); }
    if (f == "false") { arity(0); return XPathValue(false); }
    if (f == "not") { arity(1); return XPathValue(!eval(*e.args[0], ctx).to_boolean()); }
    if (f == "position") { arity(0); return XPathValue(static_cast<double>(ctx.position)); }
    if (f == "last") { arity(0); return XPathValue(static_cast<double>(ctx.size)); }
    if (f == "count") {
      arity(1);
      return XPathValue(static_cast<double>(eval(*e.args[0], ctx).node_set().size()));
    }
    if (f == "string") {
      if (e.args.empty()) return XPathValue(ctx.node.string_value());
      arity(1);
      return XPathValue(eval(*e.args[0], ctx).to_string());
    }
    if (f == "number") {
      if (e.args.empty()) return XPathValue(string_to_number(ctx.node.string_value()));
      arity(1);
      return XPathValue(eval(*e.args[0], ctx).to_number());
    }
    if (f == "boolean") { arity(1); return XPathValue(eval(*e.args[0], ctx).to_boolean()); }
    if (f == "name" || f == "local-name") {
      std::string out;
      if (e.args.empty()) {
        if (ctx.node.is_element()) out = ctx.node.element->name().local();
        else if (ctx.node.is_attribute())
          out = ctx.node.element->attributes()[static_cast<size_t>(ctx.node.attr_index)]
                    .name.local();
      } else {
        arity(1);
        XPathValue v = eval(*e.args[0], ctx);
        const NodeSet& ns = v.node_set();
        if (!ns.empty() && ns.front().is_element())
          out = ns.front().element->name().local();
      }
      return XPathValue(std::move(out));
    }
    if (f == "contains") {
      arity(2);
      return XPathValue(eval(*e.args[0], ctx).to_string().find(
                            eval(*e.args[1], ctx).to_string()) != std::string::npos);
    }
    if (f == "starts-with") {
      arity(2);
      return XPathValue(eval(*e.args[0], ctx).to_string().starts_with(
          eval(*e.args[1], ctx).to_string()));
    }
    if (f == "concat") {
      if (e.args.size() < 2) throw XPathError("concat() expects >= 2 arguments");
      std::string out;
      for (const auto& a : e.args) out += eval(*a, ctx).to_string();
      return XPathValue(std::move(out));
    }
    if (f == "string-length") {
      std::string s = e.args.empty() ? ctx.node.string_value()
                                     : eval(*e.args[0], ctx).to_string();
      return XPathValue(static_cast<double>(s.size()));
    }
    if (f == "normalize-space") {
      std::string s = e.args.empty() ? ctx.node.string_value()
                                     : eval(*e.args[0], ctx).to_string();
      std::string out;
      bool in_ws = true;
      for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
          if (!in_ws) out += ' ';
          in_ws = true;
        } else {
          out += c;
          in_ws = false;
        }
      }
      while (!out.empty() && out.back() == ' ') out.pop_back();
      return XPathValue(std::move(out));
    }
    if (f == "floor") { arity(1); return XPathValue(std::floor(eval(*e.args[0], ctx).to_number())); }
    if (f == "ceiling") { arity(1); return XPathValue(std::ceil(eval(*e.args[0], ctx).to_number())); }
    if (f == "round") { arity(1); return XPathValue(std::round(eval(*e.args[0], ctx).to_number())); }
    throw XPathError("unknown XPath function " + f + "()");
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// XPathExpr
// ---------------------------------------------------------------------------

struct XPathExpr::Impl {
  std::unique_ptr<Expr> ast;
};

XPathExpr::XPathExpr(std::unique_ptr<Impl> impl, std::string text)
    : impl_(std::move(impl)), text_(std::move(text)) {}
XPathExpr::XPathExpr(XPathExpr&&) noexcept = default;
XPathExpr& XPathExpr::operator=(XPathExpr&&) noexcept = default;
XPathExpr::~XPathExpr() = default;

XPathExpr XPathExpr::compile(std::string_view text,
                             std::map<std::string, std::string> namespaces) {
  ExprParser parser(text, namespaces);
  auto impl = std::make_unique<Impl>();
  impl->ast = parser.parse();
  return XPathExpr(std::move(impl), std::string(text));
}

XPathValue XPathExpr::eval(const Element& context) const {
  // Document root = outermost ancestor of the context node.
  const Element* root = &context;
  while (root->parent()) root = root->parent();
  EvalContext ctx{XPathNode::of(context), 1, 1, root};
  Evaluator ev;
  return ev.eval(*impl_->ast, ctx);
}

std::vector<const Element*> XPathExpr::select_elements(const Element& context) const {
  std::vector<const Element*> out;
  XPathValue v = eval(context);
  if (!v.is_node_set()) return out;
  for (const auto& n : v.node_set()) {
    if (n.is_element()) out.push_back(n.element);
  }
  return out;
}

std::vector<const Element*> xpath_select(
    const Element& context, std::string_view expr,
    std::map<std::string, std::string> namespaces) {
  return XPathExpr::compile(expr, std::move(namespaces)).select_elements(context);
}

}  // namespace gs::xml
