#include "xml/pull.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "xml/writer.hpp"

namespace gs::xml {
namespace {

// Name/character predicates and entity decoding are kept in lockstep with
// parser.cpp: the equivalence suite requires both parsers to accept and
// reject the same byte streams with the same diagnostics.
bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

void append_utf8(std::string& out, unsigned long cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

constexpr std::string_view kXmlNsUri = "http://www.w3.org/XML/1998/namespace";

// In-scope prefix bindings over views (buffer- or arena-backed).
class ViewNsScope {
 public:
  ViewNsScope() { bind("xml", kXmlNsUri); }

  void push() { marks_.push_back(bindings_.size()); }
  void pop() {
    bindings_.resize(marks_.back());
    marks_.pop_back();
  }
  void bind(std::string_view prefix, std::string_view uri) {
    bindings_.emplace_back(prefix, uri);
  }
  const std::string_view* resolve(std::string_view prefix) const {
    for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
      if (it->first == prefix) return &it->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::pair<std::string_view, std::string_view>> bindings_;
  std::vector<size_t> marks_;
};

class PullParser {
 public:
  PullParser(std::string_view input, Arena& arena, std::size_t& nodes)
      : in_(input), arena_(arena), nodes_(nodes) {}

  ArenaNode* parse_document() {
    skip_prolog();
    ArenaNode* root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line_, static_cast<int>(pos_ - line_start_) + 1);
  }

  bool at_end() const noexcept { return pos_ >= in_.size(); }
  char peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  bool starts_with(std::string_view s) const {
    return in_.compare(pos_, s.size(), s) == 0;
  }

  char advance() {
    if (at_end()) fail("unexpected end of input");
    char c = in_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    advance();
  }

  void expect_str(std::string_view s) {
    if (!starts_with(s)) fail("expected '" + std::string(s) + "'");
    for (size_t i = 0; i < s.size(); ++i) advance();
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  void skip_prolog() {
    skip_ws();
    if (starts_with("<?xml")) {
      while (!at_end() && !starts_with("?>")) advance();
      expect_str("?>");
    }
    skip_misc();
    if (starts_with("<!DOCTYPE")) fail("DTDs are not supported");
  }

  void skip_misc() {
    for (;;) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<?")) {
        skip_pi();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    expect_str("<!--");
    while (!at_end() && !starts_with("-->")) advance();
    expect_str("-->");
  }

  void skip_pi() {
    expect_str("<?");
    while (!at_end() && !starts_with("?>")) advance();
    expect_str("?>");
  }

  std::string_view read_name() {
    if (!is_name_start(peek())) fail("expected a name");
    size_t start = pos_;
    while (!at_end() && is_name_char(peek())) advance();
    return in_.substr(start, pos_ - start);
  }

  static std::pair<std::string_view, std::string_view> split_name(
      std::string_view raw) {
    auto colon = raw.find(':');
    if (colon == std::string_view::npos) return {std::string_view{}, raw};
    return {raw.substr(0, colon), raw.substr(colon + 1)};
  }

  // Reads a quoted attribute value; a view into the buffer when no entity
  // needed decoding, an arena copy of the decoded text otherwise.
  std::string_view read_attr_value() {
    char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    size_t start = pos_;
    std::string decoded;
    bool decoding = false;
    while (peek() != quote) {
      if (at_end()) fail("unexpected end of input");
      char c = peek();
      if (c == '&') {
        if (!decoding) {
          decoded.assign(in_.substr(start, pos_ - start));
          decoding = true;
        }
        advance();
        decoded += read_entity();
      } else if (c == '<') {
        advance();
        fail("'<' in attribute value");
      } else {
        advance();
        if (decoding) decoded += c;
      }
    }
    std::string_view out = decoding ? arena_.copy(decoded)
                                    : in_.substr(start, pos_ - start);
    advance();  // closing quote
    return out;
  }

  // Called just after the '&'; returns the replacement text.
  std::string read_entity() {
    std::string name;
    while (peek() != ';') {
      name += advance();
      if (name.size() > 10) fail("malformed entity reference");
    }
    advance();  // ';'
    if (name == "lt") return "<";
    if (name == "gt") return ">";
    if (name == "amp") return "&";
    if (name == "quot") return "\"";
    if (name == "apos") return "'";
    if (!name.empty() && name[0] == '#') {
      unsigned long cp = 0;
      try {
        cp = (name.size() > 1 && (name[1] == 'x' || name[1] == 'X'))
                 ? std::stoul(name.substr(2), nullptr, 16)
                 : std::stoul(name.substr(1), nullptr, 10);
      } catch (const std::exception&) {
        fail("malformed character reference &" + name + ";");
      }
      if (cp == 0 || cp > 0x10FFFF) fail("character reference out of range");
      std::string out;
      append_utf8(out, cp);
      return out;
    }
    fail("unknown entity &" + name + ";");
  }

  ArenaNode* make_node(NodeKind kind) {
    ++nodes_;
    ArenaNode* n = arena_.make<ArenaNode>();
    n->kind = kind;
    return n;
  }

  ArenaNode* parse_element() {
    if (++depth_ > kMaxDepth) fail("document nesting exceeds the depth limit");
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } depth_guard{depth_};

    expect('<');
    std::string_view raw_name = read_name();

    struct RawAttr {
      std::string_view name;
      std::string_view value;
    };
    std::vector<RawAttr> raw_attrs;
    for (;;) {
      skip_ws();
      char c = peek();
      if (c == '>' || c == '/') break;
      std::string_view aname = read_name();
      skip_ws();
      expect('=');
      skip_ws();
      raw_attrs.push_back({aname, read_attr_value()});
    }

    ns_.push();
    struct ScopeGuard {
      ViewNsScope& ns;
      ~ScopeGuard() { ns.pop(); }
    } guard{ns_};

    // Register namespace declarations before resolving any names.
    std::vector<ArenaNsDecl> decls;
    for (const auto& a : raw_attrs) {
      if (a.name == "xmlns") {
        ns_.bind({}, a.value);
        decls.push_back({std::string_view{}, a.value});
      } else if (a.name.starts_with("xmlns:")) {
        std::string_view prefix = a.name.substr(6);
        if (prefix.empty()) fail("empty namespace prefix");
        ns_.bind(prefix, a.value);
        decls.push_back({prefix, a.value});
      }
    }

    auto [prefix, local] = split_name(raw_name);
    ArenaNode* el = make_node(NodeKind::kElement);
    el->ns = resolve_element_ns(prefix);
    el->local = local;
    if (!decls.empty()) {
      el->decls = arena_.make_array<ArenaNsDecl>(decls.size());
      std::copy(decls.begin(), decls.end(), el->decls);
      el->ndecls = static_cast<std::uint32_t>(decls.size());
    }

    // Attributes in document order, xmlns pseudo-attributes excluded and
    // duplicate QNames collapsing onto the first occurrence (set_attr-style).
    std::vector<ArenaAttr> attrs;
    for (const auto& a : raw_attrs) {
      if (a.name == "xmlns" || a.name.starts_with("xmlns:")) continue;
      auto [ap, al] = split_name(a.name);
      std::string_view ans = resolve_attr_ns(ap);
      auto dup = std::find_if(attrs.begin(), attrs.end(), [&](const ArenaAttr& x) {
        return x.ns == ans && x.local == al;
      });
      if (dup != attrs.end()) {
        dup->value = a.value;
      } else {
        attrs.push_back({ans, al, a.value});
      }
    }
    if (!attrs.empty()) {
      el->attrs = arena_.make_array<ArenaAttr>(attrs.size());
      std::copy(attrs.begin(), attrs.end(), el->attrs);
      el->nattrs = static_cast<std::uint32_t>(attrs.size());
    }

    if (peek() == '/') {
      advance();
      expect('>');
      return el;
    }
    expect('>');

    parse_content(*el);

    expect_str("</");
    std::string_view close = read_name();
    if (close != raw_name)
      fail("mismatched closing tag </" + std::string(close) + "> for <" +
           std::string(raw_name) + ">");
    skip_ws();
    expect('>');
    return el;
  }

  std::string_view resolve_element_ns(std::string_view prefix) {
    const std::string_view* uri = ns_.resolve(prefix);
    if (!uri) {
      if (prefix.empty()) return {};
      fail("unbound namespace prefix '" + std::string(prefix) + "'");
    }
    return *uri;  // empty = undeclared default ns = no namespace
  }

  std::string_view resolve_attr_ns(std::string_view prefix) {
    if (prefix.empty()) return {};  // unprefixed attrs: no namespace
    const std::string_view* uri = ns_.resolve(prefix);
    if (!uri || uri->empty())
      fail("unbound namespace prefix '" + std::string(prefix) + "'");
    return *uri;
  }

  void parse_content(ArenaNode& parent) {
    ArenaNode* tail = nullptr;
    auto append = [&](ArenaNode* n) {
      if (tail) {
        tail->next = n;
      } else {
        parent.first_child = n;
      }
      tail = n;
    };

    // Text runs accumulate until the next markup; runs that needed entity
    // decoding are copied into the arena, plain runs stay buffer views.
    size_t text_start = pos_;
    std::string decoded;
    bool decoding = false;
    bool have_text = false;
    auto flush_text = [&] {
      std::string_view run = decoding ? arena_.copy(decoded)
                                      : in_.substr(text_start, pos_ - text_start);
      if (have_text && !run.empty()) {
        ArenaNode* t = make_node(NodeKind::kText);
        t->text_data = run;
        append(t);
      }
      decoded.clear();
      decoding = false;
      have_text = false;
    };

    for (;;) {
      if (at_end()) fail("unexpected end of input inside element");
      if (starts_with("</")) {
        flush_text();
        return;
      }
      if (starts_with("<!--")) {
        flush_text();
        size_t start = pos_ + 4;
        skip_comment();
        ArenaNode* c = make_node(NodeKind::kComment);
        c->text_data = in_.substr(start, pos_ - 3 - start);
        append(c);
        text_start = pos_;
        continue;
      }
      if (starts_with("<![CDATA[")) {
        flush_text();
        expect_str("<![CDATA[");
        size_t start = pos_;
        while (!starts_with("]]>")) {
          if (at_end()) fail("unterminated CDATA section");
          advance();
        }
        ArenaNode* c = make_node(NodeKind::kCData);
        c->text_data = in_.substr(start, pos_ - start);
        expect_str("]]>");
        append(c);
        text_start = pos_;
        continue;
      }
      if (starts_with("<?")) {
        flush_text();
        skip_pi();
        text_start = pos_;
        continue;
      }
      if (peek() == '<') {
        flush_text();
        append(parse_element());
        text_start = pos_;
        continue;
      }
      char c = peek();
      if (c == '&') {
        if (!decoding) {
          decoded.assign(in_.substr(text_start, pos_ - text_start));
          decoding = true;
        }
        advance();
        decoded += read_entity();
        have_text = true;
      } else {
        advance();
        if (decoding) decoded += c;
        have_text = true;
      }
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view in_;
  Arena& arena_;
  std::size_t& nodes_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t line_start_ = 0;
  int depth_ = 0;
  ViewNsScope ns_;
};

}  // namespace

const ArenaNode* ArenaNode::child(std::string_view ns_uri,
                                  std::string_view local_name) const {
  for (const ArenaNode* c = first_child; c; c = c->next) {
    if (c->kind == NodeKind::kElement && c->ns == ns_uri && c->local == local_name)
      return c;
  }
  return nullptr;
}

const ArenaNode* ArenaNode::child_local(std::string_view local_name) const {
  for (const ArenaNode* c = first_child; c; c = c->next) {
    if (c->kind == NodeKind::kElement && c->local == local_name) return c;
  }
  return nullptr;
}

const ArenaNode* ArenaNode::first_element() const {
  for (const ArenaNode* c = first_child; c; c = c->next) {
    if (c->kind == NodeKind::kElement) return c;
  }
  return nullptr;
}

std::optional<std::string_view> ArenaNode::attr(std::string_view ns_uri,
                                                std::string_view local_name) const {
  for (std::uint32_t i = 0; i < nattrs; ++i) {
    if (attrs[i].ns == ns_uri && attrs[i].local == local_name)
      return attrs[i].value;
  }
  return std::nullopt;
}

std::optional<std::string_view> ArenaNode::attr_local(
    std::string_view local_name) const {
  for (std::uint32_t i = 0; i < nattrs; ++i) {
    if (attrs[i].local == local_name) return attrs[i].value;
  }
  return std::nullopt;
}

std::string ArenaNode::text() const {
  std::string out;
  for (const ArenaNode* c = first_child; c; c = c->next) {
    if (c->kind == NodeKind::kText || c->kind == NodeKind::kCData)
      out += c->text_data;
  }
  return out;
}

std::string ArenaNode::clark() const {
  if (ns.empty()) return std::string(local);
  return "{" + std::string(ns) + "}" + std::string(local);
}

ArenaDocument ArenaDocument::parse(std::string input) {
  ArenaDocument doc;
  doc.buffer_ = std::make_unique<const std::string>(std::move(input));
  doc.root_ = PullParser(*doc.buffer_, doc.arena_, doc.nodes_).parse_document();
  return doc;
}

std::unique_ptr<Element> ArenaDocument::to_dom(const ArenaNode& el) {
  auto out = std::make_unique<Element>(
      el.ns.empty() ? QName(std::string(el.local))
                    : QName(std::string(el.ns), std::string(el.local)));
  for (std::uint32_t i = 0; i < el.ndecls; ++i) {
    out->declare_prefix(std::string(el.decls[i].prefix),
                        std::string(el.decls[i].uri));
  }
  for (std::uint32_t i = 0; i < el.nattrs; ++i) {
    const ArenaAttr& a = el.attrs[i];
    out->set_attr(a.ns.empty() ? QName(std::string(a.local))
                               : QName(std::string(a.ns), std::string(a.local)),
                  std::string(a.value));
  }
  for (const ArenaNode* c = el.first_child; c; c = c->next) {
    switch (c->kind) {
      case NodeKind::kElement:
        out->append(to_dom(*c));
        break;
      case NodeKind::kText:
        out->append_text(std::string(c->text_data));
        break;
      case NodeKind::kComment:
      case NodeKind::kCData:
        out->append(std::make_unique<CharData>(c->kind, std::string(c->text_data)));
        break;
    }
  }
  return out;
}

namespace {

// View-tree canonicalizer in lockstep with canonical.cpp's Canonicalizer:
// same deterministic ns{n} prefixes in first-use order, same attribute sort,
// comments stripped, CDATA folded. Equal logical documents must produce
// identical octets from either entry point.
class ViewCanonicalizer {
 public:
  std::string run(const ArenaNode& root) {
    walk(root);
    return std::move(out_);
  }

 private:
  std::string prefix_for(std::string_view uri,
                         std::vector<std::pair<std::string, std::string_view>>&
                             new_bindings) {
    auto it = prefixes_.find(uri);
    bool inserted = false;
    if (it == prefixes_.end()) {
      it = prefixes_.emplace(std::string(uri), prefixes_.size()).first;
      inserted = true;
    }
    std::string prefix = "ns" + std::to_string(it->second);
    if (inserted) new_bindings.emplace_back(prefix, uri);
    return prefix;
  }

  std::string qualified(std::string_view ns, std::string_view local,
                        std::vector<std::pair<std::string, std::string_view>>&
                            new_bindings) {
    if (ns.empty()) return std::string(local);
    return prefix_for(ns, new_bindings) + ":" + std::string(local);
  }

  void walk(const ArenaNode& el) {
    std::vector<std::pair<std::string, std::string_view>> new_bindings;
    std::string tag = qualified(el.ns, el.local, new_bindings);

    std::vector<const ArenaAttr*> attrs;
    attrs.reserve(el.nattrs);
    for (std::uint32_t i = 0; i < el.nattrs; ++i) attrs.push_back(&el.attrs[i]);
    std::sort(attrs.begin(), attrs.end(), [](const ArenaAttr* a, const ArenaAttr* b) {
      return std::tie(a->ns, a->local) < std::tie(b->ns, b->local);
    });
    std::string attr_text;
    for (const ArenaAttr* a : attrs) {
      attr_text += ' ';
      attr_text += qualified(a->ns, a->local, new_bindings);
      attr_text += "=\"";
      attr_text += escape_text(a->value, /*in_attribute=*/true);
      attr_text += '"';
    }

    out_ += '<';
    out_ += tag;
    for (const auto& [prefix, uri] : new_bindings) {
      out_ += " xmlns:";
      out_ += prefix;
      out_ += "=\"";
      out_ += escape_text(uri, /*in_attribute=*/true);
      out_ += '"';
    }
    out_ += attr_text;
    out_ += '>';

    for (const ArenaNode* c = el.first_child; c; c = c->next) {
      switch (c->kind) {
        case NodeKind::kElement:
          walk(*c);
          break;
        case NodeKind::kText:
        case NodeKind::kCData:
          out_ += escape_text(c->text_data);
          break;
        case NodeKind::kComment:
          break;
      }
    }
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }

  std::string out_;
  std::map<std::string, size_t, std::less<>> prefixes_;
};

}  // namespace

std::string canonicalize_view(const ArenaNode& el) {
  return ViewCanonicalizer().run(el);
}

}  // namespace gs::xml
