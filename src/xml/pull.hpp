// Arena-backed pull parser producing a read-only document view.
//
// The DOM parser in parser.cpp allocates one heap node plus several strings
// per element; on the wire hot path that is most of container.parse_us. The
// pull parser here takes ownership of the input buffer, scans it once, and
// builds a tree of trivially-destructible ArenaNodes whose names, attribute
// values and text are string_views into that buffer (entity-decoded runs are
// the only copies, placed in the arena). The result is immutable; handlers
// that need to mutate convert the relevant subtree to the classic DOM with
// to_dom(), which reproduces exactly what parser.cpp would have built —
// including namespace-prefix hints — so the two paths serialize identically.
//
// Acceptance and rejection behavior (error messages, line/column positions,
// the 256-level depth limit, DTD rejection) intentionally matches parser.cpp
// byte for byte; tests/xml_test.cpp holds the two parsers to that contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "xml/arena.hpp"
#include "xml/node.hpp"
#include "xml/parser.hpp"

namespace gs::xml {

struct ArenaAttr {
  std::string_view ns;
  std::string_view local;
  std::string_view value;
};

struct ArenaNsDecl {
  std::string_view prefix;
  std::string_view uri;
};

/// One node of the read-only view tree. Element fields are meaningful only
/// when kind == kElement; `text` only for character-data kinds.
struct ArenaNode {
  NodeKind kind = NodeKind::kElement;

  std::string_view ns;
  std::string_view local;
  ArenaAttr* attrs = nullptr;
  std::uint32_t nattrs = 0;
  ArenaNsDecl* decls = nullptr;
  std::uint32_t ndecls = 0;
  ArenaNode* first_child = nullptr;
  ArenaNode* next = nullptr;  // next sibling

  std::string_view text_data;  // for kText / kComment / kCData

  // --- element-only read helpers, mirroring Element's accessors -------------

  /// First child element with the given (ns, local), or nullptr.
  const ArenaNode* child(std::string_view ns_uri, std::string_view local_name) const;
  /// First child element with the given local name (any namespace).
  const ArenaNode* child_local(std::string_view local_name) const;
  /// First child element of any name, or nullptr.
  const ArenaNode* first_element() const;
  /// Attribute value by (ns, local) / by local name in no-or-any namespace,
  /// mirroring Element::attr's matching rules.
  std::optional<std::string_view> attr(std::string_view ns_uri,
                                       std::string_view local_name) const;
  std::optional<std::string_view> attr_local(std::string_view local_name) const;
  /// Concatenated direct text/CDATA content (like Element::text()).
  std::string text() const;
  /// Clark notation for diagnostics: "{uri}local" or "local".
  std::string clark() const;
};

/// An immutable parsed document: owns the input buffer and the arena the
/// node tree lives in. Movable, not copyable; share via shared_ptr when a
/// view must outlive its producer (soap::Envelope does this).
class ArenaDocument {
 public:
  /// Parses `input`, taking ownership of the buffer. Throws ParseError with
  /// the same messages/positions parser.cpp would produce.
  static ArenaDocument parse(std::string input);

  ArenaDocument(ArenaDocument&&) noexcept = default;
  ArenaDocument& operator=(ArenaDocument&&) noexcept = default;

  const ArenaNode& root() const noexcept { return *root_; }
  const std::string& buffer() const noexcept { return *buffer_; }

  /// Elements + character-data nodes in the tree.
  std::size_t node_count() const noexcept { return nodes_; }
  std::size_t arena_bytes() const noexcept { return arena_.bytes_used(); }

  /// Materializes a subtree as the mutable DOM, byte-identical on re-parse
  /// to what parser.cpp builds (names, attributes in order, prefix hints).
  static std::unique_ptr<Element> to_dom(const ArenaNode& el);
  std::unique_ptr<Element> to_dom() const { return to_dom(*root_); }

 private:
  ArenaDocument() = default;

  // Heap indirection keeps the octets at a stable address across moves; a
  // short buffer held by value would relocate with the small-string
  // optimization and dangle every view in the tree.
  std::unique_ptr<const std::string> buffer_;
  Arena arena_;
  ArenaNode* root_ = nullptr;
  std::size_t nodes_ = 0;
};

/// Canonical octet stream for an arena subtree; byte-identical to
/// canonicalize(*ArenaDocument::to_dom(el)) without materializing the DOM.
std::string canonicalize_view(const ArenaNode& el);

}  // namespace gs::xml
