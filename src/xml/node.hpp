// In-memory XML document model (DOM-lite).
//
// Both software stacks in the paper move XML documents end to end: SOAP
// envelopes on the wire, resource-property documents in services, and raw
// documents in the Xindice-substitute database. This module is the shared
// representation. It is deliberately small: elements, text, comments and
// CDATA, with namespace-aware names and attributes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/probe.hpp"
#include "xml/qname.hpp"

namespace gs::xml {

class Element;

/// A namespaced attribute with a string value.
struct Attribute {
  QName name;
  std::string value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// Kind discriminator for child nodes.
enum class NodeKind { kElement, kText, kComment, kCData };

/// Base of all tree nodes. Children are owned by their parent element.
class Node {
 public:
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const noexcept { return kind_; }
  /// Parent element, or nullptr for a detached/root node.
  Element* parent() const noexcept { return parent_; }

  virtual std::unique_ptr<Node> clone() const = 0;

 protected:
  explicit Node(NodeKind kind) : kind_(kind) { probe::add_dom_node(); }

 private:
  friend class Element;
  NodeKind kind_;
  Element* parent_ = nullptr;
};

/// Character data node (text, comment, or CDATA depending on kind).
class CharData final : public Node {
 public:
  CharData(NodeKind kind, std::string text)
      : Node(kind), text_(std::move(text)) {}

  const std::string& text() const noexcept { return text_; }
  void set_text(std::string t) { text_ = std::move(t); }

  std::unique_ptr<Node> clone() const override {
    return std::make_unique<CharData>(kind(), text_);
  }

 private:
  std::string text_;
};

/// An XML element: a QName, attributes, namespace declarations made on this
/// element, and an ordered list of owned child nodes.
class Element final : public Node {
 public:
  explicit Element(QName name) : Node(NodeKind::kElement), name_(std::move(name)) {}
  Element(std::string ns, std::string local)
      : Element(QName(std::move(ns), std::move(local))) {}

  const QName& name() const noexcept { return name_; }
  void set_name(QName n) { name_ = std::move(n); }

  // --- attributes -----------------------------------------------------------

  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }
  /// Sets (or replaces) an attribute value.
  void set_attr(QName name, std::string value);
  void set_attr(std::string local, std::string value) {
    set_attr(QName(std::move(local)), std::move(value));
  }
  /// Attribute value, or nullopt if absent.
  std::optional<std::string> attr(const QName& name) const;
  std::optional<std::string> attr(std::string_view local) const;
  bool remove_attr(const QName& name);

  // --- children -------------------------------------------------------------

  const std::vector<std::unique_ptr<Node>>& children() const noexcept {
    return children_;
  }
  bool has_children() const noexcept { return !children_.empty(); }

  /// Appends a child node, taking ownership; returns a reference to it.
  Node& append(std::unique_ptr<Node> child);
  /// Convenience: appends and returns a new child element.
  Element& append_element(QName name);
  Element& append_element(std::string ns, std::string local) {
    return append_element(QName(std::move(ns), std::move(local)));
  }
  /// Appends a text node.
  void append_text(std::string text);
  /// Removes (and destroys) the given child; returns false if not a child.
  bool remove_child(const Node& child);
  /// Detaches the given child, transferring ownership to the caller.
  std::unique_ptr<Node> detach_child(const Node& child);
  /// Removes all children.
  void clear_children() { children_.clear(); }

  /// First child element with the given name, or nullptr.
  Element* child(const QName& name);
  const Element* child(const QName& name) const;
  /// First child element with the given local name (any namespace), or nullptr.
  Element* child_local(std::string_view local);
  const Element* child_local(std::string_view local) const;
  /// All child elements (in document order).
  std::vector<Element*> child_elements();
  std::vector<const Element*> child_elements() const;
  /// All child elements with the given name.
  std::vector<const Element*> children_named(const QName& name) const;

  /// Concatenated text content of this element's direct text/CDATA children.
  std::string text() const;
  /// Replaces all children with a single text node.
  void set_text(std::string text);

  // --- namespace prefix hints -----------------------------------------------

  /// Declares a preferred prefix for a namespace URI when serializing the
  /// subtree rooted here ("" = default namespace).
  void declare_prefix(std::string prefix, std::string uri) {
    ns_decls_.push_back({std::move(prefix), std::move(uri)});
  }
  const std::vector<std::pair<std::string, std::string>>& ns_decls() const {
    return ns_decls_;
  }

  /// Deep-copies the subtree.
  std::unique_ptr<Node> clone() const override;
  std::unique_ptr<Element> clone_element() const;

  /// Structural equality (names, attributes as sets, children in order,
  /// text content). Prefix hints are ignored.
  static bool deep_equal(const Element& a, const Element& b);

 private:
  QName name_;
  std::vector<Attribute> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
  std::vector<std::pair<std::string, std::string>> ns_decls_;
};

/// Owning handle for a parsed document: the root element plus any prolog
/// information we retain.
struct Document {
  std::unique_ptr<Element> root;
};

}  // namespace gs::xml
