// XML serialization.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "xml/node.hpp"

namespace gs::xml {

/// Serialization options.
struct WriteOptions {
  /// Indent nested elements with two spaces and newlines. Mixed content
  /// (elements with direct text) is never re-indented.
  bool pretty = false;
  /// Emit an `<?xml version="1.0" encoding="UTF-8"?>` declaration.
  bool declaration = false;
};

/// Serializes the subtree rooted at `root` to UTF-8 XML text.
///
/// Namespace prefixes come from each element's prefix hints where present;
/// otherwise prefixes `n1`, `n2`, ... are generated at the point of first
/// use. Output is well-formed and round-trips through `parse`.
std::string write(const Element& root, const WriteOptions& options = {});

/// Serializes into `out`, reusing its capacity (hot-path variant of write).
void write_into(std::string& out, const Element& root,
                const WriteOptions& options = {});

/// Escapes `&<>` (and `"` when `in_attribute`) for inclusion in XML text.
std::string escape_text(std::string_view raw, bool in_attribute = false);

// --- response-template support ----------------------------------------------
//
// Pre-compiled response templates (soap/template.cpp) serialize a prototype
// envelope once and later splice values into the cached skeleton. Fragment
// slots — positions where a variable subtree goes — must serialize exactly as
// they would inside a full DOM write, which depends on the writer's prefix
// state at that position. write_with_probes captures that state at compile
// time; write_fragment replays it at render time.

/// Prefix->URI bindings in scope, outermost first ("" = default namespace).
using PrefixBindings = std::vector<std::pair<std::string, std::string>>;

/// Writer state captured at a fragment placeholder during compilation.
struct ProbePoint {
  std::size_t offset;       // byte offset into the returned text
  PrefixBindings bindings;  // bindings in scope at the placeholder
  int gen_counter;          // generated-prefix counter (n1, n2, ...) so far
};

/// Serializes like write(), except elements in no namespace whose local name
/// equals `probe_local` emit nothing; their byte offset and the writer's
/// prefix state are recorded in `probes`. A placeholder must not be followed
/// by siblings that generate new prefixes, or render-time numbering would
/// diverge from the captured counter.
std::string write_with_probes(const Element& root, std::string_view probe_local,
                              std::vector<ProbePoint>& probes);

/// Serializes `nodes` as a sibling sequence positioned inside an enclosing
/// document: `bindings` seeds the in-scope prefixes and `gen_counter`
/// continues the enclosing writer's generated-prefix numbering (advanced past
/// any prefixes this call generates). Byte-identical to what write() would
/// have produced for the same nodes at a ProbePoint with this state.
std::string write_fragment(const std::vector<const Element*>& nodes,
                           const PrefixBindings& bindings, int& gen_counter);

}  // namespace gs::xml
