// XML serialization.
#pragma once

#include <string>

#include "xml/node.hpp"

namespace gs::xml {

/// Serialization options.
struct WriteOptions {
  /// Indent nested elements with two spaces and newlines. Mixed content
  /// (elements with direct text) is never re-indented.
  bool pretty = false;
  /// Emit an `<?xml version="1.0" encoding="UTF-8"?>` declaration.
  bool declaration = false;
};

/// Serializes the subtree rooted at `root` to UTF-8 XML text.
///
/// Namespace prefixes come from each element's prefix hints where present;
/// otherwise prefixes `n1`, `n2`, ... are generated at the point of first
/// use. Output is well-formed and round-trips through `parse`.
std::string write(const Element& root, const WriteOptions& options = {});

/// Escapes `&<>` (and `"` when `in_attribute`) for inclusion in XML text.
std::string escape_text(std::string_view raw, bool in_attribute = false);

}  // namespace gs::xml
