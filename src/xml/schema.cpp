#include "xml/schema.hpp"

#include <cctype>

namespace gs::xml {
namespace {

bool is_integer(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool is_double(const std::string& s) {
  try {
    size_t used = 0;
    (void)std::stod(s, &used);
    while (used < s.size() && std::isspace(static_cast<unsigned char>(s[used]))) ++used;
    return used == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool is_boolean(const std::string& s) {
  return s == "true" || s == "false" || s == "0" || s == "1";
}

std::string trimmed(std::string s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

void validate_element(const ElementDecl& decl, const Element& el,
                      const std::string& path,
                      std::vector<SchemaViolation>& out) {
  if (el.name() != decl.name()) {
    out.push_back({path, "expected element " + decl.name().clark() + ", found " +
                             el.name().clark()});
    return;
  }

  for (const auto& attr : decl.required_attrs()) {
    if (!el.attr(attr)) {
      out.push_back({path, "missing required attribute " + attr.clark()});
    }
  }

  std::string text = trimmed(el.text());
  switch (decl.content()) {
    case ContentType::kNone:
      if (!text.empty())
        out.push_back({path, "unexpected text content '" + text + "'"});
      break;
    case ContentType::kInteger:
      if (!is_integer(text))
        out.push_back({path, "expected integer content, found '" + text + "'"});
      break;
    case ContentType::kDouble:
      if (!is_double(text))
        out.push_back({path, "expected numeric content, found '" + text + "'"});
      break;
    case ContentType::kBoolean:
      if (!is_boolean(text))
        out.push_back({path, "expected boolean content, found '" + text + "'"});
      break;
    case ContentType::kString:
    case ContentType::kAny:
      break;
  }

  // Count and recurse into declared children; flag undeclared ones.
  for (const auto& spec : decl.children()) {
    size_t count = 0;
    for (const auto* child : el.child_elements()) {
      if (child->name() == spec.decl->name()) {
        ++count;
        validate_element(*spec.decl, *child,
                         path + "/" + spec.decl->name().local(), out);
      }
    }
    if (count < spec.min_occurs) {
      out.push_back({path, "element " + spec.decl->name().clark() + " occurs " +
                               std::to_string(count) + " time(s), minimum is " +
                               std::to_string(spec.min_occurs)});
    }
    if (count > spec.max_occurs) {
      out.push_back({path, "element " + spec.decl->name().clark() + " occurs " +
                               std::to_string(count) + " time(s), maximum is " +
                               std::to_string(spec.max_occurs)});
    }
  }
  if (!decl.is_open()) {
    for (const auto* child : el.child_elements()) {
      bool declared = false;
      for (const auto& spec : decl.children()) {
        if (child->name() == spec.decl->name()) {
          declared = true;
          break;
        }
      }
      if (!declared) {
        out.push_back({path, "undeclared child element " + child->name().clark()});
      }
    }
  }
}

}  // namespace

ElementDecl& ElementDecl::child(ElementDecl decl, size_t min_occurs,
                                size_t max_occurs) {
  children_.push_back({std::make_unique<ElementDecl>(std::move(decl)), min_occurs,
                       max_occurs});
  return *this;
}

std::string ValidationResult::summary() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += "; ";
    out += v.path + ": " + v.message;
  }
  return out;
}

ValidationResult Schema::validate(const Element& doc) const {
  ValidationResult result;
  validate_element(root_, doc, "/" + root_.name().local(), result.violations);
  return result;
}

}  // namespace gs::xml
