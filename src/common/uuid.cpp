#include "common/uuid.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>

namespace gs::common {
namespace {

// One generator behind a mutex: UUID creation is far from any hot path
// (every use is adjacent to XML serialization and I/O).
std::mt19937_64& generator() {
  static std::mt19937_64 gen = [] {
    std::random_device rd;
    std::seed_seq seq{rd(), rd(), rd(), rd()};
    return std::mt19937_64(seq);
  }();
  return gen;
}

std::mutex& generator_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

std::string new_uuid() {
  std::uint64_t hi, lo;
  {
    std::lock_guard lock(generator_mutex());
    hi = generator()();
    lo = generator()();
  }
  // Stamp version (4) and variant (10xx) bits.
  hi = (hi & 0xFFFFFFFFFFFF0FFFULL) | 0x0000000000004000ULL;
  lo = (lo & 0x3FFFFFFFFFFFFFFFULL) | 0x8000000000000000ULL;

  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(36);
  auto emit = [&](std::uint64_t v, int nibbles) {
    for (int i = nibbles - 1; i >= 0; --i) out += kHex[(v >> (i * 4)) & 0xF];
  };
  emit(hi >> 32, 8);
  out += '-';
  emit(hi >> 16, 4);
  out += '-';
  emit(hi, 4);
  out += '-';
  emit(lo >> 48, 4);
  out += '-';
  emit(lo, 12);
  return out;
}

std::string new_urn_uuid() { return "urn:uuid:" + new_uuid(); }

}  // namespace gs::common
