// Scatter/gather buffer chain for the zero-copy wire path.
//
// A serialized response is mostly bytes that already exist somewhere — a
// compiled template skeleton, an arena parser's input buffer — plus a few
// short variable runs. A BufferChain represents the message as an ordered
// list of segments so those bytes reach the transport without being
// concatenated into one intermediate string (writev-style).
//
// Ownership rules:
//  - append(std::string)            — the chain owns the bytes (moved in).
//  - append_shared(keepalive, view) — the chain co-owns `keepalive` and the
//    view must point into memory it keeps alive (template skeletons, arena
//    document buffers). Sharing, not copying, is the whole point.
//  - append_static(view)            — caller guarantees 'static-like'
//    lifetime (string literals, interned constants).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace gs::common {

class BufferChain {
 public:
  BufferChain() = default;
  BufferChain(BufferChain&&) noexcept = default;
  BufferChain& operator=(BufferChain&&) noexcept = default;
  // Copying flattens: the copy owns one contiguous segment with the same
  // bytes. (A member-wise copy would leave the new segs_ viewing the old
  // owned_ strings.) Copies are cold paths; the wire path moves.
  BufferChain(const BufferChain& other) { append(other.join()); }
  BufferChain& operator=(const BufferChain& other) {
    if (this != &other) {
      clear();
      append(other.join());
    }
    return *this;
  }

  /// Appends bytes the chain takes ownership of.
  void append(std::string s) {
    if (s.empty()) return;
    owned_.push_back(std::move(s));
    segs_.push_back({{}, owned_.back()});
    total_ += segs_.back().data.size();
  }

  /// Appends a view into memory kept alive by `keepalive`.
  void append_shared(std::shared_ptr<const void> keepalive, std::string_view view) {
    if (view.empty()) return;
    segs_.push_back({std::move(keepalive), view});
    total_ += view.size();
  }

  /// Convenience: share a whole refcounted string.
  void append_shared(const std::shared_ptr<const std::string>& s) {
    if (s) append_shared(s, std::string_view(*s));
  }

  /// Appends a view with caller-guaranteed lifetime (literals, constants).
  void append_static(std::string_view view) { append_shared(nullptr, view); }

  /// Appends another chain's segments. Refcounted segments are shared;
  /// segments without a keepalive (owned/static) are copied by value, so
  /// the result never borrows from `other`.
  void append_chain(const BufferChain& other) {
    for (const Segment& s : other.segs_) {
      if (s.keepalive) {
        append_shared(s.keepalive, s.data);
      } else {
        append(std::string(s.data));
      }
    }
  }

  std::size_t size() const noexcept { return total_; }
  bool empty() const noexcept { return total_ == 0; }
  std::size_t segments() const noexcept { return segs_.size(); }

  /// Visits each segment in order as a string_view.
  template <typename F>
  void for_each(F&& f) const {
    for (const Segment& s : segs_) f(s.data);
  }

  /// Flattens into one string (tests, callers that need contiguous bytes).
  std::string join() const {
    std::string out;
    out.reserve(total_);
    for (const Segment& s : segs_) out.append(s.data);
    return out;
  }

  /// Flattens into `out` (appended), reusing its capacity.
  void join_into(std::string& out) const {
    out.reserve(out.size() + total_);
    for (const Segment& s : segs_) out.append(s.data);
  }

  void clear() {
    segs_.clear();
    owned_.clear();
    total_ = 0;
  }

 private:
  struct Segment {
    std::shared_ptr<const void> keepalive;  // null for owned/static segments
    std::string_view data;
  };

  std::vector<Segment> segs_;
  // deque: stable addresses, so segs_ views into owned_ never dangle.
  std::deque<std::string> owned_;
  std::size_t total_ = 0;
};

}  // namespace gs::common
