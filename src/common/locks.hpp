// Striped lock map: a fixed pool of mutexes indexed by key hash.
//
// Read-modify-write sequences over the XML database (load, mutate, store)
// are individually thread-safe but not atomic; callers serialize them per
// logical resource by holding the key's stripe for the duration. A fixed
// stripe pool bounds memory for unbounded key spaces (resource GUIDs, DNs)
// at the cost of occasional false sharing between keys — harmless, since
// the stripes only order writers.
#pragma once

#include <array>
#include <functional>
#include <mutex>
#include <string_view>

namespace gs::common {

class StripedLocks {
 public:
  static constexpr size_t kStripes = 64;

  /// Locks the stripe owning `key` for the caller's scope.
  std::unique_lock<std::mutex> lock(std::string_view key) {
    return std::unique_lock<std::mutex>(stripe(key));
  }

  std::mutex& stripe(std::string_view key) {
    return stripes_[std::hash<std::string_view>{}(key) % kStripes];
  }

 private:
  std::array<std::mutex, kStripes> stripes_;
};

}  // namespace gs::common
