#include "common/encoding.hpp"

#include <array>
#include <cctype>

namespace gs::common {

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

namespace {
constexpr char kB64[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace

std::string base64_encode(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    std::uint32_t v = (bytes[i] << 16) | (bytes[i + 1] << 8) | bytes[i + 2];
    out += kB64[(v >> 18) & 0x3F];
    out += kB64[(v >> 12) & 0x3F];
    out += kB64[(v >> 6) & 0x3F];
    out += kB64[v & 0x3F];
  }
  size_t rem = bytes.size() - i;
  if (rem == 1) {
    std::uint32_t v = bytes[i] << 16;
    out += kB64[(v >> 18) & 0x3F];
    out += kB64[(v >> 12) & 0x3F];
    out += "==";
  } else if (rem == 2) {
    std::uint32_t v = (bytes[i] << 16) | (bytes[i + 1] << 8);
    out += kB64[(v >> 18) & 0x3F];
    out += kB64[(v >> 12) & 0x3F];
    out += kB64[(v >> 6) & 0x3F];
    out += '=';
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text) {
  std::array<int, 256> table;
  table.fill(-1);
  for (int i = 0; i < 64; ++i) table[static_cast<unsigned char>(kB64[i])] = i;

  std::vector<std::uint8_t> out;
  std::uint32_t acc = 0;
  int bits = 0;
  int padding = 0;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) return std::nullopt;  // data after padding
    int v = table[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  if (padding > 2) return std::nullopt;
  return out;
}

}  // namespace gs::common
