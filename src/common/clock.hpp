// Clock abstraction.
//
// Lifetime management (WS-ResourceLifetime scheduled termination,
// WS-Eventing subscription expiration) and the simulated wire both need a
// time source that tests can control. Services take a Clock&; production
// wiring passes the RealClock singleton, tests pass a ManualClock they
// advance explicitly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gs::common {

/// Milliseconds since an arbitrary epoch.
using TimeMs = std::int64_t;

/// Abstract monotonic-enough time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMs now() const = 0;
};

/// Wall-clock-backed clock (steady_clock, so never goes backwards).
class RealClock final : public Clock {
 public:
  TimeMs now() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance for default wiring.
  static RealClock& instance() {
    static RealClock clock;
    return clock;
  }
};

/// Manually-advanced clock for tests and deterministic simulation.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeMs start = 0) : now_(start) {}

  TimeMs now() const override { return now_.load(std::memory_order_relaxed); }

  void advance(TimeMs delta) { now_.fetch_add(delta, std::memory_order_relaxed); }
  void set(TimeMs t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<TimeMs> now_;
};

}  // namespace gs::common
