#include "common/threadpool.hpp"

namespace gs::common {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back({std::move(task), std::chrono::steady_clock::now()});
    ++submitted_;
    if (g_queue_depth_) g_queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_task_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

unsigned ThreadPool::active_workers() const {
  std::lock_guard lock(mu_);
  return active_;
}

std::uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard lock(mu_);
  return submitted_;
}

std::uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

std::uint64_t ThreadPool::tasks_failed() const {
  std::lock_guard lock(mu_);
  return failed_;
}

void ThreadPool::attach_metrics(telemetry::MetricsRegistry& registry,
                                const std::string& prefix) {
  std::lock_guard lock(mu_);
  g_queue_depth_ = &registry.gauge(prefix + ".queue_depth");
  g_active_ = &registry.gauge(prefix + ".active_workers");
  c_tasks_ = &registry.counter(prefix + ".tasks");
  c_task_exceptions_ = &registry.counter(prefix + ".task_exceptions");
  h_queue_wait_ = &registry.histogram(prefix + ".queue_wait_us");
  h_task_run_ = &registry.histogram(prefix + ".task_run_us");
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      if (g_queue_depth_)
        g_queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
      if (g_active_) g_active_->set(active_);
      if (h_queue_wait_) h_queue_wait_->record(elapsed_us(task.enqueued));
    }
    auto started = std::chrono::steady_clock::now();
    bool threw = false;
    try {
      task.fn();
    } catch (...) {
      threw = true;
    }
    {
      std::lock_guard lock(mu_);
      --active_;
      ++completed_;
      if (threw) {
        ++failed_;
        if (c_task_exceptions_) c_task_exceptions_->add();
      }
      if (g_active_) g_active_->set(active_);
      if (c_tasks_) c_tasks_->add();
      if (h_task_run_) h_task_run_->record(elapsed_us(started));
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gs::common
