#include "common/threadpool.hpp"

namespace gs::common {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gs::common
