// Hex and Base64 codecs (signature values, digests, binary tokens in XML).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gs::common {

/// Lowercase hex encoding.
std::string hex_encode(std::span<const std::uint8_t> bytes);
/// Decodes hex (either case); nullopt on malformed input.
std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view hex);

/// Standard Base64 with padding.
std::string base64_encode(std::span<const std::uint8_t> bytes);
/// Decodes Base64 (ignoring whitespace); nullopt on malformed input.
std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text);

/// Bytes of a string, viewed as uint8_t.
inline std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace gs::common
