// Fixed-size thread pool (container request handling, notification fan-out).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gs::common {

/// A fixed pool of worker threads draining a FIFO task queue.
///
/// `submit` never blocks (the queue is unbounded); `drain` waits for the
/// queue to empty and all in-flight tasks to finish — the shutdown barrier
/// used by the container and the notification producers.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void drain();

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool stopping_ = false;
};

}  // namespace gs::common
