// Fixed-size thread pool (container request handling, notification fan-out).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gs::common {

/// A fixed pool of worker threads draining a FIFO task queue.
///
/// `submit` never blocks (the queue is unbounded); `drain` waits for the
/// queue to empty and all in-flight tasks to finish — the shutdown barrier
/// used by the container and the notification producers.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. A task that throws does not take the process down:
  /// the exception is swallowed and counted (`tasks_failed`, and the
  /// `<prefix>.task_exceptions` counter when metrics are attached) — one
  /// bad delivery must not kill a container serving everyone else.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void drain();

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  // --- introspection (telemetry and tests) ------------------------------------

  /// Tasks queued but not yet started.
  std::size_t queue_depth() const;
  /// Workers currently running a task.
  unsigned active_workers() const;
  std::uint64_t tasks_submitted() const;
  std::uint64_t tasks_completed() const;
  /// Tasks whose callable threw (still counted in tasks_completed).
  std::uint64_t tasks_failed() const;

  /// Mirrors pool state into `registry` under `prefix`: gauges
  /// `<prefix>.queue_depth` and `<prefix>.active_workers`, counter
  /// `<prefix>.tasks`, and histograms `<prefix>.queue_wait_us` (submit →
  /// start) and `<prefix>.task_run_us`. Call once, before load arrives.
  void attach_metrics(telemetry::MetricsRegistry& registry,
                      const std::string& prefix);

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  unsigned active_ = 0;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;

  // Metric handles (null until attach_metrics).
  telemetry::Gauge* g_queue_depth_ = nullptr;
  telemetry::Gauge* g_active_ = nullptr;
  telemetry::Counter* c_tasks_ = nullptr;
  telemetry::Counter* c_task_exceptions_ = nullptr;
  telemetry::Histogram* h_queue_wait_ = nullptr;
  telemetry::Histogram* h_task_run_ = nullptr;
};

}  // namespace gs::common
