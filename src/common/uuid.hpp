// GUID generation.
//
// Both stacks name resources with server-assigned GUIDs (the paper's
// WS-Transfer Create "names the resource by assigning a new resource id
// (by default, GUID)"); WS-Addressing MessageIDs are also GUID URNs.
#pragma once

#include <string>

namespace gs::common {

/// A random version-4 style UUID string, e.g.
/// "3f2a1b4c-9d8e-4f00-a1b2-c3d4e5f60718". Thread-safe.
std::string new_uuid();

/// "urn:uuid:<uuid>" — the WS-Addressing MessageID convention.
std::string new_urn_uuid();

}  // namespace gs::common
