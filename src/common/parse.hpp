// Strict numeric parsing for network- and disk-derived text.
//
// std::stoi/std::stoll are the wrong tool on untrusted input twice over:
// they throw (std::invalid_argument/std::out_of_range escape through code
// that never expected exceptions from a "read a number" call, killing the
// process on peer garbage) and they silently accept trailing junk ("42abc"
// parses as 42). parse_number is the from_chars-based replacement used
// everywhere a number crosses a trust boundary: the whole string must be
// one decimal integer, and anything else — empty text, junk, trailing
// characters, overflow — is a nullopt the caller turns into a fault, a
// rejected certificate, or a warn-and-default, never a crash.
#pragma once

#include <charconv>
#include <optional>
#include <string_view>

namespace gs::common {

template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [p, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || p != end || text.empty()) return std::nullopt;
  return value;
}

}  // namespace gs::common
