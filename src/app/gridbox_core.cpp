#include "app/gridbox_core.hpp"

#include "common/encoding.hpp"
#include "soap/envelope.hpp"
#include "soap/namespaces.hpp"

namespace gs::app {

xml::QName gb(const char* local) { return {soap::ns::kGridBox, local}; }

std::unique_ptr<xml::Element> SiteInfo::to_xml() const {
  auto el = std::make_unique<xml::Element>(gb("Site"));
  el->append_element(gb("Host")).set_text(host);
  el->append_element(gb("ExecAddress")).set_text(exec_address);
  el->append_element(gb("DataAddress")).set_text(data_address);
  for (const auto& app : applications) {
    el->append_element(gb("Application")).set_text(app);
  }
  return el;
}

SiteInfo SiteInfo::from_xml(const xml::Element& el) {
  SiteInfo out;
  if (const xml::Element* h = el.child(gb("Host"))) out.host = h->text();
  if (const xml::Element* e = el.child(gb("ExecAddress"))) {
    out.exec_address = e->text();
  }
  if (const xml::Element* d = el.child(gb("DataAddress"))) {
    out.data_address = d->text();
  }
  for (const xml::Element* a : el.children_named(gb("Application"))) {
    out.applications.push_back(a->text());
  }
  return out;
}

// ---------------------------------------------------------------------------
// AccountBook
// ---------------------------------------------------------------------------

AccountBook::AccountBook(xmldb::XmlDatabase& db, std::string collection)
    : db_(db), collection_(std::move(collection)) {}

std::unique_ptr<xml::Element> AccountBook::make_document(
    const std::string& dn, const std::vector<std::string>& privileges) {
  auto doc = std::make_unique<xml::Element>(gb("Account"));
  doc->append_element(gb("DN")).set_text(dn);
  for (const auto& priv : privileges) {
    doc->append_element(gb("Privilege")).set_text(priv);
  }
  return doc;
}

void AccountBook::put(const std::string& dn, const xml::Element& document) {
  db_.store(collection_, dn, document);
}

bool AccountBook::exists(const std::string& dn) const {
  return db_.contains(collection_, dn);
}

bool AccountBook::remove(const std::string& dn) {
  return db_.remove(collection_, dn);
}

bool AccountBook::has_privilege(const std::string& dn,
                                const std::string& privilege) const {
  auto doc = db_.load(collection_, dn);
  if (!doc) return false;
  for (const xml::Element* priv : doc->children_named(gb("Privilege"))) {
    if (priv->text() == privilege) return true;
  }
  return false;
}

std::vector<std::string> AccountBook::privileges(const std::string& dn) const {
  std::vector<std::string> out;
  auto doc = db_.load(collection_, dn);
  if (!doc) return out;
  for (const xml::Element* priv : doc->children_named(gb("Privilege"))) {
    out.push_back(priv->text());
  }
  return out;
}

// ---------------------------------------------------------------------------
// SiteDirectory
// ---------------------------------------------------------------------------

namespace {

void set_child(xml::Element& doc, const xml::QName& name,
               const std::string& value) {
  if (xml::Element* el = doc.child(name)) {
    el->set_text(value);
  } else {
    doc.append_element(name).set_text(value);
  }
}

}  // namespace

SiteDirectory::SiteDirectory(xmldb::XmlDatabase& db, std::string collection)
    : db_(db), collection_(std::move(collection)) {}

void SiteDirectory::put(const std::string& host, const xml::Element& site_doc) {
  db_.store(collection_, host, site_doc);
}

std::unique_ptr<xml::Element> SiteDirectory::load(
    const std::string& host) const {
  return db_.load(collection_, host);
}

bool SiteDirectory::remove(const std::string& host) {
  return db_.remove(collection_, host);
}

std::vector<std::string> SiteDirectory::hosts() const {
  return db_.ids(collection_);
}

std::vector<std::unique_ptr<xml::Element>> SiteDirectory::available(
    const std::string& application,
    const std::function<bool(const std::string&, const xml::Element&)>&
        reserved) const {
  std::vector<std::unique_ptr<xml::Element>> out;
  for (const std::string& host : db_.ids(collection_)) {
    auto site = db_.load(collection_, host);
    if (!site) continue;
    if (reserved && reserved(host, *site)) continue;
    bool has_app = false;
    for (const xml::Element* a : site->children_named(gb("Application"))) {
      if (a->text() == application) has_app = true;
    }
    if (!has_app) continue;
    out.push_back(std::move(site));
  }
  return out;
}

std::string SiteDirectory::inline_holder(const xml::Element& site_doc) {
  const xml::Element* reserved = site_doc.child(gb("ReservedBy"));
  return reserved ? reserved->text() : "";
}

std::unique_ptr<xml::Element> SiteDirectory::load_or_fault(
    const std::string& host) const {
  auto site = db_.load(collection_, host);
  if (!site) {
    throw soap::SoapFault("Sender", "unknown site '" + host + "'");
  }
  return site;
}

void SiteDirectory::reserve(const std::string& host, const std::string& owner,
                            const std::string& until_text) {
  auto lock = locks_.lock(host);
  auto site = load_or_fault(host);
  if (!inline_holder(*site).empty()) {
    throw soap::SoapFault("Sender", "site '" + host + "' is already reserved");
  }
  set_child(*site, gb("ReservedBy"), owner);
  set_child(*site, gb("ReservedUntil"), until_text);
  db_.store(collection_, host, *site);
}

void SiteDirectory::unreserve(const std::string& host,
                              const std::string& owner) {
  auto lock = locks_.lock(host);
  auto site = load_or_fault(host);
  std::string holder = inline_holder(*site);
  if (holder.empty()) {
    throw soap::SoapFault("Sender", "site '" + host + "' is not reserved");
  }
  if (holder != owner) {
    throw soap::SoapFault("Sender",
                          "reservation on '" + host + "' belongs to " + holder);
  }
  set_child(*site, gb("ReservedBy"), "");
  set_child(*site, gb("ReservedUntil"), "");
  db_.store(collection_, host, *site);
}

void SiteDirectory::retime(const std::string& host, const std::string& owner,
                           const std::optional<std::string>& until_text) {
  auto lock = locks_.lock(host);
  auto site = load_or_fault(host);
  if (inline_holder(*site) != owner) {
    throw soap::SoapFault("Sender", "no reservation to retime");
  }
  if (!until_text) throw soap::SoapFault("Sender", "retime needs Until");
  set_child(*site, gb("ReservedUntil"), *until_text);
  db_.store(collection_, host, *site);
}

// ---------------------------------------------------------------------------
// DataVault
// ---------------------------------------------------------------------------

void DataVault::put_base64(const std::string& directory,
                           const std::string& filename,
                           const std::string& content_base64) {
  auto bytes = common::base64_decode(content_base64);
  if (!bytes) {
    throw soap::SoapFault("Sender", "Content is not valid base64");
  }
  files_.put(directory, filename,
             std::string(bytes->begin(), bytes->end()));
}

std::optional<std::string> DataVault::get_base64(
    const std::string& directory, const std::string& filename) const {
  auto content = files_.get(directory, filename);
  if (!content) return std::nullopt;
  return common::base64_encode(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(content->data()),
      content->size()));
}

// ---------------------------------------------------------------------------
// JobBoard
// ---------------------------------------------------------------------------

std::unique_ptr<xml::Element> JobBoard::make_document(
    const std::string& owner, const std::string& command) {
  auto doc = std::make_unique<xml::Element>(gb("Job"));
  doc->append_element(gb("Owner")).set_text(owner);
  doc->append_element(gb("Command")).set_text(command);
  return doc;
}

void JobBoard::set_pid(xml::Element& job_doc, const std::string& pid) {
  set_child(job_doc, gb("Pid"), pid);
}

std::optional<std::string> JobBoard::pid_of(const xml::Element& job_doc) {
  const xml::Element* pid = job_doc.child(gb("Pid"));
  if (!pid || pid->text().empty()) return std::nullopt;
  return pid->text();
}

std::optional<JobRunner::Status> JobBoard::status_of(
    const xml::Element& job_doc) {
  auto pid = pid_of(job_doc);
  if (!pid) return std::nullopt;
  return runner_.status(*pid);
}

const char* JobBoard::state_name(JobRunner::State state) {
  switch (state) {
    case JobRunner::State::kRunning:
      return "running";
    case JobRunner::State::kExited:
      return "exited";
    case JobRunner::State::kKilled:
      return "killed";
  }
  return "unknown";
}

void JobBoard::annotate_status(xml::Element& job_doc) {
  auto status = status_of(job_doc);
  job_doc.append_element(gb("Status"))
      .set_text(status ? state_name(status->state) : "unknown");
  if (status && status->state != JobRunner::State::kRunning) {
    job_doc.append_element(gb("ExitCode"))
        .set_text(std::to_string(status->exit_code));
  }
}

void JobBoard::terminate(const xml::Element& job_doc) {
  auto pid = pid_of(job_doc);
  if (!pid) return;
  runner_.kill(*pid);
  runner_.reap(*pid);
}

std::unique_ptr<xml::Element> JobBoard::completion_event(
    const soap::EndpointReference& job_epr, int exit_code) {
  auto event = std::make_unique<xml::Element>(gb(kJobCompletedTopic));
  event->append(job_epr.to_xml(gb("JobEPR")));
  event->append_element(gb("ExitCode")).set_text(std::to_string(exit_code));
  return event;
}

}  // namespace gs::app
