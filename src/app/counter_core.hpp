// Stack-agnostic counter core: the "hello world" application state shared
// by the WSRF and WS-Transfer front-ends.
//
// The paper's central claim is that the *same application* runs over both
// stacks; this class is that application. It owns the counter document
// schema (<Counter><cv>N</cv></Counter> plus the computed DoubleValue),
// the read-modify-write update with per-resource locking, and the
// CounterValueChanged signal. The bindings in src/counter only translate
// protocol operations (WS-ResourceProperties sets, WS-Transfer Puts) onto
// this core and wrap the signal in their stack's eventing.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/locks.hpp"
#include "soap/addressing.hpp"
#include "xml/node.hpp"
#include "xmldb/database.hpp"

namespace gs::app {

class CounterCore {
 public:
  /// QNames of the shared document schema.
  static xml::QName qn(const char* local);
  static xml::QName value_qname();         // the stored counter value, cv
  static xml::QName double_value_qname();  // computed: cv * 2

  /// Topic published whenever cv changes (both stacks).
  static constexpr const char* kValueChangedTopic = "CounterValueChanged";

  explicit CounterCore(xmldb::XmlDatabase& db,
                       std::string collection = "counters");

  xmldb::XmlDatabase& db() noexcept { return db_; }
  const std::string& collection() const noexcept { return collection_; }

  /// <Counter><cv>value</cv></Counter>
  static std::unique_ptr<xml::Element> make_document(int value);
  /// Reads cv out of a counter document; 0 when the element is absent.
  static int value_of(const xml::Element& doc);
  /// The paper's [ResourceProperty] fragment: DoubleValue => cv * 2.
  static int double_value_of(const xml::Element& doc) {
    return value_of(doc) * 2;
  }

  /// Read-modify-write update (the WS-Transfer Put the paper measures):
  /// loads the stored document, replaces cv with the replacement's value,
  /// stores it back — all under the resource's lock stripe so concurrent
  /// writers cannot interleave the load/store — then fires the
  /// value-changed signal. Faults: "unknown resource '<id>'" and
  /// "replacement document has no cv element".
  void apply_put(const std::string& id, const xml::Element& replacement);

  /// Fires the value-changed signal with `id`'s current stored value (the
  /// WSRF binding calls this after SetResourceProperties persisted the
  /// new state through the resource home).
  void note_changed(const std::string& id);

  /// The CounterValueChanged payload: Value + the counter's EPR so a
  /// client with many counters can tell which fired.
  static std::unique_ptr<xml::Element> changed_event(
      const std::string& value, const soap::EndpointReference& counter_epr);

  using ValueChanged =
      std::function<void(const std::string& id, const std::string& value)>;
  /// Registers a listener; setup-time only (not synchronized).
  void on_value_changed(ValueChanged listener);

 private:
  void fire(const std::string& id, const std::string& value);

  xmldb::XmlDatabase& db_;
  std::string collection_;
  common::StripedLocks locks_;
  std::vector<ValueChanged> listeners_;
};

}  // namespace gs::app
