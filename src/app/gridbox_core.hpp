// Stack-agnostic Grid-in-a-Box application core.
//
// The account book, site directory (with the inline reservation ledger of
// the unified WS-Transfer allocation service), data vault, and job board
// hold the business logic once; src/gridbox keeps only the WSRF and
// WS-Transfer protocol bindings that map wire operations onto these
// classes. State lives in the deployment's XML database and file store;
// read-modify-write sequences serialize per resource on lock stripes.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/file_store.hpp"
#include "app/job_runner.hpp"
#include "common/locks.hpp"
#include "soap/addressing.hpp"
#include "xml/node.hpp"
#include "xmldb/database.hpp"

namespace gs::app {

/// QName in the Grid-in-a-Box namespace.
xml::QName gb(const char* local);

/// VO privileges.
inline constexpr const char* kPrivilegeSubmit = "submit";
inline constexpr const char* kPrivilegeAdmin = "admin";

/// Topic published when a job finishes (both stacks).
inline constexpr const char* kJobCompletedTopic = "JobCompleted";

/// A registered computing site.
struct SiteInfo {
  std::string host;
  std::string exec_address;
  std::string data_address;
  std::vector<std::string> applications;

  std::unique_ptr<xml::Element> to_xml() const;
  static SiteInfo from_xml(const xml::Element& el);
};

// ---------------------------------------------------------------------------
// Account book: the VO's user registry
// ---------------------------------------------------------------------------

/// Accounts keyed by DN; each document carries the DN and its privileges.
class AccountBook {
 public:
  explicit AccountBook(xmldb::XmlDatabase& db,
                       std::string collection = "accounts");

  /// <Account><DN>..</DN><Privilege>..</Privilege>*</Account>
  static std::unique_ptr<xml::Element> make_document(
      const std::string& dn, const std::vector<std::string>& privileges);

  void put(const std::string& dn, const xml::Element& document);
  bool exists(const std::string& dn) const;
  bool remove(const std::string& dn);
  bool has_privilege(const std::string& dn,
                     const std::string& privilege) const;
  std::vector<std::string> privileges(const std::string& dn) const;

 private:
  xmldb::XmlDatabase& db_;
  std::string collection_;
};

// ---------------------------------------------------------------------------
// Site directory: registered sites + the inline reservation ledger
// ---------------------------------------------------------------------------

/// Sites keyed by host. The WS-Transfer allocation service folds
/// reservations into the site document (ReservedBy/ReservedUntil); the
/// WSRF variant keeps reservations as separate WS-Resources and answers
/// the `reserved` predicate of `available` from that service instead.
class SiteDirectory {
 public:
  explicit SiteDirectory(xmldb::XmlDatabase& db,
                         std::string collection = "sites");

  void put(const std::string& host, const xml::Element& site_doc);
  std::unique_ptr<xml::Element> load(const std::string& host) const;
  bool remove(const std::string& host);
  std::vector<std::string> hosts() const;

  /// Site documents offering `application` whose host is not reserved
  /// according to `reserved` — the availability filter both bindings
  /// used to duplicate.
  std::vector<std::unique_ptr<xml::Element>> available(
      const std::string& application,
      const std::function<bool(const std::string& host,
                               const xml::Element& doc)>& reserved) const;

  /// The inline ledger's view of a site document.
  static std::string inline_holder(const xml::Element& site_doc);
  static bool inline_reserved(const xml::Element& site_doc) {
    return !inline_holder(site_doc).empty();
  }

  /// Inline reservation transitions (read-modify-write under the host's
  /// lock stripe). Fault texts match the WS-Transfer allocation wire
  /// contract: "unknown site", "already reserved", "is not reserved",
  /// "belongs to", "no reservation to retime".
  void reserve(const std::string& host, const std::string& owner,
               const std::string& until_text);
  void unreserve(const std::string& host, const std::string& owner);
  /// `until_text` is optional so the holder check faults before the
  /// missing-Until check, matching the wire contract's ordering.
  void retime(const std::string& host, const std::string& owner,
              const std::optional<std::string>& until_text);

 private:
  std::unique_ptr<xml::Element> load_or_fault(const std::string& host) const;

  xmldb::XmlDatabase& db_;
  std::string collection_;
  common::StripedLocks locks_;
};

// ---------------------------------------------------------------------------
// Data vault: base64 file staging over the FileStore
// ---------------------------------------------------------------------------

/// The Upload/Download content handling both Data bindings share: wire
/// content is base64, storage is raw bytes.
class DataVault {
 public:
  explicit DataVault(FileStore& files) : files_(files) {}

  FileStore& files() noexcept { return files_; }

  /// Decodes and stores; faults "Content is not valid base64".
  void put_base64(const std::string& directory, const std::string& filename,
                  const std::string& content_base64);
  /// Base64 of the stored bytes; nullopt when the file is absent.
  std::optional<std::string> get_base64(const std::string& directory,
                                        const std::string& filename) const;
  bool remove(const std::string& directory, const std::string& filename) {
    return files_.remove(directory, filename);
  }
  std::vector<std::string> list(const std::string& directory) const {
    return files_.list(directory);
  }

 private:
  FileStore& files_;
};

// ---------------------------------------------------------------------------
// Job board: the exec state machine over the JobRunner
// ---------------------------------------------------------------------------

/// Job documents (<Job><Owner/><Command/><Pid/></Job>), live status
/// projection, termination, and the JobCompleted event payload — shared
/// by both Exec bindings.
class JobBoard {
 public:
  explicit JobBoard(JobRunner& runner) : runner_(runner) {}

  JobRunner& runner() noexcept { return runner_; }
  void poll() { runner_.poll(); }

  /// <Job> document with owner and command (the Pid is appended by the
  /// binding once spawned, via `set_pid`).
  static std::unique_ptr<xml::Element> make_document(
      const std::string& owner, const std::string& command);
  static void set_pid(xml::Element& job_doc, const std::string& pid);
  static std::optional<std::string> pid_of(const xml::Element& job_doc);

  std::string start(const std::string& command, const std::string& working_dir,
                    JobRunner::ExitCallback on_exit) {
    return runner_.spawn(command, working_dir, std::move(on_exit));
  }

  /// Live status of the pid recorded on a job document.
  std::optional<JobRunner::Status> status_of(const xml::Element& job_doc);

  static const char* state_name(JobRunner::State state);

  /// Appends <Status> (always) and <ExitCode> (when finished) to a job
  /// document — the WS-Transfer Get augmentation; the WSRF computed
  /// properties project the same fields.
  void annotate_status(xml::Element& job_doc);

  /// Kills and reaps the pid recorded on a job document (if any).
  void terminate(const xml::Element& job_doc);

  /// The JobCompleted payload: JobEPR + ExitCode.
  static std::unique_ptr<xml::Element> completion_event(
      const soap::EndpointReference& job_epr, int exit_code);

 private:
  JobRunner& runner_;
};

}  // namespace gs::app
