#include "app/file_store.hpp"

#include <algorithm>
#include <fstream>

#include "common/encoding.hpp"
#include "security/sha256.hpp"
#include "soap/envelope.hpp"

namespace gs::app {

FileStore::FileStore(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path FileStore::safe_path(const std::string& directory,
                                           const std::string& filename) const {
  auto reject = [](const std::string& segment) {
    if (segment.empty() || segment == "." || segment == ".." ||
        segment.find('/') != std::string::npos ||
        segment.find('\\') != std::string::npos) {
      throw soap::SoapFault("Sender", "illegal path segment '" + segment + "'");
    }
  };
  reject(directory);
  if (filename.empty()) return root_ / directory;
  reject(filename);
  return root_ / directory / filename;
}

void FileStore::ensure_directory(const std::string& directory) {
  std::filesystem::create_directories(safe_path(directory));
}

bool FileStore::directory_exists(const std::string& directory) const {
  std::error_code ec;
  return std::filesystem::is_directory(safe_path(directory), ec);
}

bool FileStore::remove_directory(const std::string& directory) {
  std::error_code ec;
  return std::filesystem::remove_all(safe_path(directory), ec) > 0 && !ec;
}

void FileStore::put(const std::string& directory, const std::string& filename,
                    const std::string& content) {
  ensure_directory(directory);
  std::ofstream out(safe_path(directory, filename),
                    std::ios::binary | std::ios::trunc);
  if (!out) throw soap::SoapFault("Receiver", "cannot write " + filename);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

std::optional<std::string> FileStore::get(const std::string& directory,
                                          const std::string& filename) const {
  std::ifstream in(safe_path(directory, filename), std::ios::binary);
  if (!in) return std::nullopt;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>{});
}

bool FileStore::remove(const std::string& directory, const std::string& filename) {
  std::error_code ec;
  return std::filesystem::remove(safe_path(directory, filename), ec) && !ec;
}

std::vector<std::string> FileStore::list(const std::string& directory) const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(safe_path(directory), ec)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::filesystem::path FileStore::path_of(const std::string& directory) const {
  return safe_path(directory);
}

std::string FileStore::hash_dn(const std::string& dn) {
  security::Digest256 d = security::Sha256::digest(dn);
  // 16 hex chars is plenty for a directory name.
  return common::hex_encode(std::span<const std::uint8_t>(d.data(), 8));
}

}  // namespace gs::app
