// Job runner: the process-spawning substrate behind both ExecService
// bindings (moved here from src/gridbox — the application core is
// stack-agnostic; the WSRF and WS-Transfer front-ends are thin bindings).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.hpp"

namespace gs::app {

/// Process table with two execution modes. The paper's ExecService spawned
/// Windows processes; here:
///   * "sim:duration=<ms>,exit=<code>" jobs are deterministic simulations
///     driven by the deployment clock (what tests and benches use);
///   * "exec:<shell command>" jobs fork/exec a real `/bin/sh -c` child in
///     the job's working directory (what a production deployment uses).
/// `poll()` retires finished jobs (clock expiry or waitpid) and fires
/// their completion callbacks — services call it on every request.
class JobRunner {
 public:
  enum class State { kRunning, kExited, kKilled };

  struct Status {
    State state = State::kRunning;
    int exit_code = 0;
    common::TimeMs started = 0;
    common::TimeMs ended = 0;  // meaningful when not running
  };

  using ExitCallback = std::function<void(const std::string& pid, const Status&)>;

  explicit JobRunner(const common::Clock& clock) : clock_(clock) {}
  ~JobRunner();

  /// Spawns a job (see the class comment for command forms; anything else
  /// is a simulation that runs 0 ms and exits 0). Returns the process id.
  /// Throws SoapFault("Receiver") when a real process cannot be forked.
  std::string spawn(const std::string& command, const std::string& working_dir,
                    ExitCallback on_exit = nullptr);

  std::optional<Status> status(const std::string& pid);
  /// Kills a running job (state -> kKilled) and fires its ExitCallback —
  /// killed jobs notify completion subscribers like exited ones do.
  /// False when unknown/finished.
  bool kill(const std::string& pid);
  /// Drops a finished job's record; false when still running or unknown.
  bool reap(const std::string& pid);

  /// Retires jobs whose simulated duration has elapsed; fires callbacks.
  /// Returns the number retired.
  size_t poll();

  size_t running_count() const;

 private:
  struct Job {
    std::string command;
    std::string working_dir;
    common::TimeMs deadline;  // simulation deadline; unused for real jobs
    int exit_code;
    Status status;
    ExitCallback on_exit;
    int os_pid = -1;  // >= 0 for a real process
  };

  const common::Clock& clock_;
  mutable std::mutex mu_;
  std::map<std::string, Job> jobs_;
  std::uint64_t next_pid_ = 1000;
};

}  // namespace gs::app
