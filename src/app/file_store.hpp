// File store: the DataService's filesystem (moved here from src/gridbox —
// shared by both protocol bindings).
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace gs::app {

/// Per-directory file storage on the real filesystem. The WSRF DataService
/// names directories with GUIDs; the WS-Transfer DataService hashes the
/// user DN into a directory name — both go through this store.
class FileStore {
 public:
  explicit FileStore(std::filesystem::path root);

  /// Creates (or ensures) a directory; returns its name.
  void ensure_directory(const std::string& directory);
  bool directory_exists(const std::string& directory) const;
  /// Removes a directory and all its contents.
  bool remove_directory(const std::string& directory);

  void put(const std::string& directory, const std::string& filename,
           const std::string& content);
  std::optional<std::string> get(const std::string& directory,
                                 const std::string& filename) const;
  bool remove(const std::string& directory, const std::string& filename);
  std::vector<std::string> list(const std::string& directory) const;

  /// Absolute path of a directory (jobs use it as their working dir).
  std::filesystem::path path_of(const std::string& directory) const;

  /// The deterministic DN -> directory hash of the WS-Transfer variant.
  static std::string hash_dn(const std::string& dn);

 private:
  std::filesystem::path safe_path(const std::string& directory,
                                  const std::string& filename = "") const;
  std::filesystem::path root_;
};

}  // namespace gs::app
