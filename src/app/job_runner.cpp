#include "app/job_runner.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "common/parse.hpp"
#include "soap/envelope.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gs::app {

namespace {

// Parses "sim:duration=<ms>,exit=<code>".
std::pair<common::TimeMs, int> parse_command(const std::string& command) {
  common::TimeMs duration = 0;
  int exit_code = 0;
  if (command.starts_with("sim:")) {
    std::string rest = command.substr(4);
    size_t pos = 0;
    while (pos < rest.size()) {
      size_t comma = rest.find(',', pos);
      if (comma == std::string::npos) comma = rest.size();
      std::string kv = rest.substr(pos, comma - pos);
      size_t eq = kv.find('=');
      if (eq != std::string::npos) {
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        // Strict parse: "duration=5x" used to truncate to 5 under stoll;
        // now a malformed piece keeps its default and is reported, so a
        // mangled submission doesn't silently run with the wrong shape.
        bool malformed = false;
        if (key == "duration") {
          if (auto d = common::parse_number<common::TimeMs>(value)) {
            duration = *d;
          } else {
            malformed = true;
          }
        }
        if (key == "exit") {
          if (auto e = common::parse_number<int>(value)) {
            exit_code = *e;
          } else {
            malformed = true;
          }
        }
        if (malformed) {
          telemetry::MetricsRegistry::global()
              .counter("jobrunner.malformed_command_params")
              .add();
          telemetry::EventLog::global().emit(
              telemetry::Level::kWarn, "app.jobrunner",
              "malformed sim: parameter keeps default",
              {{"command", command}, {"param", kv}});
        }
      }
      pos = comma + 1;
    }
  }
  return {duration, exit_code};
}

}  // namespace

JobRunner::~JobRunner() {
  // Reap any real children still running so they do not outlive the grid.
  std::lock_guard lock(mu_);
  for (auto& [pid, job] : jobs_) {
    if (job.os_pid >= 0 && job.status.state == State::kRunning) {
      ::kill(job.os_pid, SIGKILL);
      ::waitpid(job.os_pid, nullptr, 0);
    }
  }
}

std::string JobRunner::spawn(const std::string& command,
                             const std::string& working_dir,
                             ExitCallback on_exit) {
  Job job;
  job.command = command;
  job.working_dir = working_dir;
  job.status.state = State::kRunning;
  job.status.started = clock_.now();
  job.on_exit = std::move(on_exit);

  if (command.starts_with("exec:")) {
    std::string shell_command = command.substr(5);
    pid_t child = ::fork();
    if (child < 0) {
      throw soap::SoapFault("Receiver", "cannot fork job process");
    }
    if (child == 0) {
      if (!working_dir.empty() && ::chdir(working_dir.c_str()) != 0) {
        ::_exit(127);
      }
      ::execl("/bin/sh", "sh", "-c", shell_command.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    job.os_pid = child;
    job.deadline = 0;
    job.exit_code = 0;
  } else {
    if (!command.starts_with("sim:")) {
      // Anything that is neither exec: nor sim: still "runs" as a 0 ms
      // simulation — a silent success that hides misconfigured
      // submissions. Make it visible.
      telemetry::MetricsRegistry::global()
          .counter("jobrunner.unrecognized_command")
          .add();
      telemetry::EventLog::global().emit(
          telemetry::Level::kWarn, "app.jobrunner",
          "unrecognized command treated as 0 ms simulation",
          {{"command", command}});
    }
    auto [duration, exit_code] = parse_command(command);
    job.deadline = clock_.now() + duration;
    job.exit_code = exit_code;
  }

  std::lock_guard lock(mu_);
  std::string pid = "pid-" + std::to_string(next_pid_++);
  jobs_[pid] = std::move(job);
  return pid;
}

std::optional<JobRunner::Status> JobRunner::status(const std::string& pid) {
  poll();
  std::lock_guard lock(mu_);
  auto it = jobs_.find(pid);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.status;
}

bool JobRunner::kill(const std::string& pid) {
  poll();
  ExitCallback cb;
  Status ended;
  {
    std::lock_guard lock(mu_);
    auto it = jobs_.find(pid);
    if (it == jobs_.end() || it->second.status.state != State::kRunning) {
      return false;
    }
    if (it->second.os_pid >= 0) {
      ::kill(it->second.os_pid, SIGKILL);
      ::waitpid(it->second.os_pid, nullptr, 0);
      it->second.os_pid = -1;
    }
    it->second.status.state = State::kKilled;
    it->second.status.ended = clock_.now();
    it->second.status.exit_code = -9;
    // A killed job completes like any other: subscribers (notification
    // producers, the scheduler's preemption path) hear about it. Fired
    // outside mu_, like poll()'s callbacks, so the callback may call back
    // into the runner.
    cb = it->second.on_exit;
    ended = it->second.status;
  }
  if (cb) cb(pid, ended);
  return true;
}

bool JobRunner::reap(const std::string& pid) {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(pid);
  if (it == jobs_.end() || it->second.status.state == State::kRunning) {
    return false;
  }
  jobs_.erase(it);
  return true;
}

size_t JobRunner::poll() {
  common::TimeMs now = clock_.now();
  std::vector<std::pair<std::string, Status>> callbacks;
  {
    std::lock_guard lock(mu_);
    for (auto& [pid, job] : jobs_) {
      if (job.status.state != State::kRunning) continue;
      if (job.os_pid >= 0) {
        // Real process: non-blocking reap.
        int wstatus = 0;
        pid_t reaped = ::waitpid(job.os_pid, &wstatus, WNOHANG);
        if (reaped == job.os_pid) {
          job.status.state = State::kExited;
          job.status.exit_code =
              WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
          job.status.ended = now;
          job.os_pid = -1;
          if (job.on_exit) callbacks.emplace_back(pid, job.status);
        }
      } else if (now >= job.deadline) {
        job.status.state = State::kExited;
        job.status.exit_code = job.exit_code;
        job.status.ended = now;
        if (job.on_exit) callbacks.emplace_back(pid, job.status);
      }
    }
  }
  for (auto& [pid, status] : callbacks) {
    ExitCallback cb;
    {
      std::lock_guard lock(mu_);
      auto it = jobs_.find(pid);
      if (it != jobs_.end()) cb = it->second.on_exit;
    }
    if (cb) cb(pid, status);
  }
  return callbacks.size();
}

size_t JobRunner::running_count() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [pid, job] : jobs_) {
    if (job.status.state == State::kRunning) ++n;
  }
  return n;
}

}  // namespace gs::app
