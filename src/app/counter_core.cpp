#include "app/counter_core.hpp"

#include "common/parse.hpp"
#include "soap/envelope.hpp"
#include "soap/namespaces.hpp"

namespace gs::app {

xml::QName CounterCore::qn(const char* local) {
  return {soap::ns::kCounter, local};
}

xml::QName CounterCore::value_qname() { return qn("cv"); }
xml::QName CounterCore::double_value_qname() { return qn("DoubleValue"); }

CounterCore::CounterCore(xmldb::XmlDatabase& db, std::string collection)
    : db_(db), collection_(std::move(collection)) {}

std::unique_ptr<xml::Element> CounterCore::make_document(int value) {
  auto doc = std::make_unique<xml::Element>(qn("Counter"));
  doc->append_element(value_qname()).set_text(std::to_string(value));
  return doc;
}

int CounterCore::value_of(const xml::Element& doc) {
  const xml::Element* cv = doc.child(value_qname());
  if (!cv) return 0;
  // The cv text came off the wire (WS-Transfer Put stores the client's
  // document verbatim); garbage must come back as a Sender fault, not
  // escape as std::invalid_argument and kill the container.
  auto value = common::parse_number<int>(cv->text());
  if (!value) {
    throw soap::SoapFault("Sender",
                          "malformed counter value '" + cv->text() + "'");
  }
  return *value;
}

void CounterCore::apply_put(const std::string& id,
                            const xml::Element& replacement) {
  std::string value;
  {
    auto lock = locks_.lock(id);
    auto current = db_.load(collection_, id);
    if (!current) {
      throw soap::SoapFault("Sender", "unknown resource '" + id + "'");
    }
    const xml::Element* new_cv = replacement.child(value_qname());
    if (!new_cv) {
      // The out-of-band schema contract was violated; WS-Transfer itself
      // cannot catch this earlier (no input schema).
      throw soap::SoapFault("Sender",
                            "replacement document has no cv element");
    }
    value = new_cv->text();
    if (xml::Element* cv = current->child(value_qname())) {
      cv->set_text(value);
    } else {
      current->append_element(value_qname()).set_text(value);
    }
    db_.store(collection_, id, *current);
  }
  fire(id, value);
}

void CounterCore::note_changed(const std::string& id) {
  auto doc = db_.load(collection_, id);
  if (!doc) return;
  const xml::Element* cv = doc->child(value_qname());
  fire(id, cv ? cv->text() : "");
}

std::unique_ptr<xml::Element> CounterCore::changed_event(
    const std::string& value, const soap::EndpointReference& counter_epr) {
  auto event = std::make_unique<xml::Element>(qn(kValueChangedTopic));
  event->append_element(qn("Value")).set_text(value);
  event->append(counter_epr.to_xml(qn("CounterEPR")));
  return event;
}

void CounterCore::on_value_changed(ValueChanged listener) {
  listeners_.push_back(std::move(listener));
}

void CounterCore::fire(const std::string& id, const std::string& value) {
  for (const auto& listener : listeners_) listener(id, value);
}

}  // namespace gs::app
