#include "container/handler.hpp"

#include <chrono>
#include <stdexcept>

#include "container/container.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/propagation.hpp"
#include "telemetry/trace.hpp"
#include "xml/probe.hpp"

namespace gs::container {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

net::HttpResponse serialize_response(const soap::Envelope& response) {
  // SOAP 1.2 over HTTP: faults ride a 500, still with an envelope body;
  // both paths carry the SOAP content type. The body leaves as a segment
  // chain: template responses splice skeleton literals, wire-backed
  // envelopes share the received buffer, and DOM envelopes serialize into
  // a per-worker scratch buffer whose capacity survives across requests
  // (wire_chain reallocates it when a previous response still holds it).
  thread_local std::shared_ptr<std::string> scratch;
  net::HttpResponse http;
  if (response.is_fault()) {
    http.status = 500;
    http.reason = "Internal Server Error";
  }
  http.headers["Content-Type"] = "application/soap+xml";
  response.wire_chain(http.body_chain, &scratch);
  return http;
}

}  // namespace

void Handler::Next::operator()(PipelineContext& ctx) const {
  chain_->run_from(ctx, index_);
}

HandlerChain& HandlerChain::append(std::shared_ptr<Handler> handler) {
  handlers_.push_back(std::move(handler));
  return *this;
}

size_t HandlerChain::index_of(std::string_view name) const {
  for (size_t i = 0; i < handlers_.size(); ++i) {
    if (name == handlers_[i]->name()) return i;
  }
  return handlers_.size();
}

HandlerChain& HandlerChain::insert_before(std::string_view name,
                                          std::shared_ptr<Handler> handler) {
  size_t at = index_of(name);
  if (at == handlers_.size()) {
    throw std::invalid_argument("no chain stage named '" + std::string(name) +
                                "'");
  }
  handlers_.insert(handlers_.begin() + static_cast<long>(at),
                   std::move(handler));
  return *this;
}

HandlerChain& HandlerChain::insert_after(std::string_view name,
                                         std::shared_ptr<Handler> handler) {
  size_t at = index_of(name);
  if (at == handlers_.size()) {
    throw std::invalid_argument("no chain stage named '" + std::string(name) +
                                "'");
  }
  handlers_.insert(handlers_.begin() + static_cast<long>(at) + 1,
                   std::move(handler));
  return *this;
}

bool HandlerChain::remove(std::string_view name) {
  size_t at = index_of(name);
  if (at == handlers_.size()) return false;
  handlers_.erase(handlers_.begin() + static_cast<long>(at));
  return true;
}

std::vector<std::string> HandlerChain::names() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& h : handlers_) out.emplace_back(h->name());
  return out;
}

void HandlerChain::run(PipelineContext& ctx) const { run_from(ctx, 0); }

void HandlerChain::run_from(PipelineContext& ctx, size_t index) const {
  if (index >= handlers_.size()) return;
  handlers_[index]->handle(ctx, Handler::Next(*this, index + 1));
}

// --- parse ------------------------------------------------------------------

void ParseHandler::handle(PipelineContext& ctx, Next next) {
  if (!ctx.http_request) {
    // In-process entry: the caller supplied the envelope already.
    next(ctx);
    return;
  }
  const ContainerMetrics& m = ctx.container.metrics();
  // Allocation probe: everything from parse through response serialization
  // runs on this thread, so thread-local deltas are this request's DOM
  // node and arena byte counts.
  xml::probe::AllocStats probe_before = xml::probe::snapshot();
  ctx.cost.request_bytes = ctx.http_request->body.size();
  auto parse_started = std::chrono::steady_clock::now();
  try {
    ctx.parsed = soap::Envelope::from_xml(ctx.http_request->body);
  } catch (const std::exception& e) {
    ctx.cost.parse_us = elapsed_us(parse_started);
    ctx.cost.fault = true;
    m.parse_us->record(ctx.cost.parse_us);
    m.faults->add();
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "container", "fault: malformed request body",
        {{"path", ctx.path}, {"error", e.what()}});
    ctx.http_response = net::HttpResponse::error(400, "Bad Request", e.what());
    ctx.http_done = true;
    return;
  }
  ctx.cost.parse_us = elapsed_us(parse_started);
  m.parse_us->record(ctx.cost.parse_us);
  ctx.request = &ctx.parsed;

  next(ctx);

  auto serialize_started = std::chrono::steady_clock::now();
  ctx.http_response = serialize_response(ctx.response);
  ctx.cost.serialize_us = elapsed_us(serialize_started);
  m.serialize_us->record(ctx.cost.serialize_us);
  ctx.http_done = true;
  ctx.cost.response_bytes = ctx.http_response.body_size();

  xml::probe::AllocStats probe_after = xml::probe::snapshot();
  ctx.cost.xml_nodes = probe_after.dom_nodes - probe_before.dom_nodes;
  ctx.cost.arena_bytes = probe_after.arena_bytes - probe_before.arena_bytes;
  m.nodes_per_request->record(ctx.cost.xml_nodes);
  m.arena_bytes->add(ctx.cost.arena_bytes);
}

// --- telemetry --------------------------------------------------------------

void TelemetryHandler::handle(PipelineContext& ctx, Next next) {
  // The dispatch span covers the inner stages: sweep, security, handler,
  // response signing. When the request carries a TraceContext header the
  // provisional spans on this thread (this one, and the enclosing
  // http.receive if the request came through a server) are re-rooted onto
  // the caller's trace.
  telemetry::SpanScope span("container.dispatch", "container");
  if (auto remote = telemetry::read_trace_header(*ctx.request)) {
    telemetry::adopt_remote(*remote);
  }
  const ContainerMetrics& m = ctx.container.metrics();
  m.requests->add();
  auto dispatch_started = std::chrono::steady_clock::now();

  next(ctx);

  // Echo the server-side trace context (the signature does not cover it).
  telemetry::write_trace_header(ctx.response, span.context());
  m.dispatch_us->record(elapsed_us(dispatch_started));
}

// --- lifetime sweep ---------------------------------------------------------

void LifetimeSweepHandler::handle(PipelineContext& ctx, Next next) {
  // Scheduled terminations fire before the request sees any state.
  ctx.container.lifetime().sweep();
  next(ctx);
}

// --- resolve ----------------------------------------------------------------

void ResolveHandler::handle(PipelineContext& ctx, Next next) {
  ctx.service = ctx.container.registry().pin(ctx.path);
  if (!ctx.service) {
    const ContainerMetrics& m = ctx.container.metrics();
    m.faults->add();
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "container", "fault: no service deployed",
        {{"path", ctx.path}});
    ctx.response = soap::Envelope::make_fault(
        {"Sender", "no service deployed at " + ctx.path, "", ""});
    return;
  }
  ctx.rpc.request = ctx.request;
  ctx.rpc.info = ctx.request->read_addressing();
  // Template responses apply only when the reply leaves as octets (HTTP
  // entry) and nothing downstream mutates it (no message-level signature).
  ctx.rpc.allow_template_response =
      ctx.http_request != nullptr &&
      ctx.container.config().security == SecurityMode::kNone;
  next(ctx);
}

// --- security ---------------------------------------------------------------

void SecurityHandler::handle(PipelineContext& ctx, Next next) {
  const ContainerConfig& cfg = ctx.container.config();
  if (cfg.security != SecurityMode::kX509) {
    next(ctx);
    return;
  }
  const ContainerMetrics& m = ctx.container.metrics();
  {
    telemetry::SpanScope security_span("container.security", "container");
    auto security_started = std::chrono::steady_clock::now();
    try {
      ctx.rpc.identity =
          security::verify_envelope(*ctx.request, *cfg.anchor, cfg.clock->now());
      m.security_us->record(elapsed_us(security_started));
    } catch (const security::SecurityError& e) {
      m.security_us->record(elapsed_us(security_started));
      m.faults->add();
      telemetry::EventLog::global().emit(
          telemetry::Level::kWarn, "container",
          "fault: security policy rejected request",
          {{"path", ctx.path}, {"error", e.what()}});
      ctx.response = soap::Envelope::make_fault(
          {"Sender",
           std::string("security policy rejected request: ") + e.what(), "",
           ""});
      security::sign_envelope(ctx.response, *cfg.credential);
      return;
    }
  }

  next(ctx);

  // Response passes back through the security handler (digital signature).
  auto sign_started = std::chrono::steady_clock::now();
  security::sign_envelope(ctx.response, *cfg.credential);
  m.security_us->record(elapsed_us(sign_started));
}

// --- dispatch ---------------------------------------------------------------

void DispatchHandler::handle(PipelineContext& ctx, Next next) {
  const ContainerMetrics& m = ctx.container.metrics();
  {
    telemetry::SpanScope handler_span("container.handler", "container");
    auto handler_started = std::chrono::steady_clock::now();
    ctx.response = ctx.service->dispatch(ctx.rpc);
    m.handler_us->record(elapsed_us(handler_started));
  }
  if (ctx.response.is_fault()) {
    m.faults->add();
    const soap::Fault& fault = ctx.response.fault();
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "container", "fault returned by handler",
        {{"path", ctx.path}, {"code", fault.code}, {"reason", fault.reason}});
  }
  next(ctx);
}

}  // namespace gs::container
