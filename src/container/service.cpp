#include "container/service.hpp"

#include "common/uuid.hpp"

namespace gs::container {

const xml::Element& RequestContext::payload() const {
  const xml::Element* p = request ? request->payload() : nullptr;
  if (!p) throw soap::SoapFault("Sender", "request has no body payload");
  return *p;
}

const std::string& RequestContext::caller_dn() const {
  if (!identity) {
    throw soap::SoapFault("Sender",
                          "operation requires an authenticated caller identity");
  }
  return identity->subject_dn;
}

void Service::register_operation(std::string action, Operation op) {
  operations_[std::move(action)] = std::move(op);
}

bool Service::supports(const std::string& action) const {
  return operations_.contains(action);
}

std::vector<std::string> Service::actions() const {
  std::vector<std::string> out;
  out.reserve(operations_.size());
  for (const auto& [action, op] : operations_) out.push_back(action);
  return out;
}

soap::Envelope Service::dispatch(RequestContext& ctx) {
  auto it = operations_.find(ctx.info.action);
  if (it == operations_.end()) {
    return soap::Envelope::make_fault(
        {"Sender", "service " + name_ + " does not support action " +
                       (ctx.info.action.empty() ? "<missing>" : ctx.info.action),
         "", ""});
  }
  try {
    return it->second(ctx);
  } catch (const soap::SoapFault& f) {
    return soap::Envelope::make_fault(f.fault());
  } catch (const std::exception& e) {
    return soap::Envelope::make_fault({"Receiver", e.what(), "", ""});
  }
}

soap::Envelope make_response(const RequestContext& ctx, const std::string& action) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.action = action;
  info.message_id = common::new_urn_uuid();
  info.relates_to = ctx.info.message_id;
  env.write_addressing(info);
  return env;
}

}  // namespace gs::container
