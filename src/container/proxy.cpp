#include "container/proxy.hpp"

#include "common/uuid.hpp"
#include "telemetry/propagation.hpp"
#include "telemetry/trace.hpp"

namespace gs::container {

soap::Envelope ProxyBase::invoke(const std::string& action,
                                 std::unique_ptr<xml::Element> payload) const {
  return do_invoke(action, std::move(payload), nullptr);
}

soap::Envelope ProxyBase::invoke_with_reply_to(
    const std::string& action, std::unique_ptr<xml::Element> payload,
    const soap::EndpointReference& reply_to) const {
  return do_invoke(action, std::move(payload), &reply_to);
}

soap::Envelope ProxyBase::do_invoke(const std::string& action,
                                    std::unique_ptr<xml::Element> payload,
                                    const soap::EndpointReference* reply_to) const {
  // Client-side span: the server adopts its trace id from the carried
  // header, so per-hop timings line up under one trace.
  telemetry::SpanScope span("client.invoke", "client");

  soap::Envelope request;
  soap::MessageInfo info;
  info.target(target_);
  info.action = action;
  info.message_id = common::new_urn_uuid();
  if (reply_to) info.reply_to = *reply_to;
  request.write_addressing(info);
  telemetry::write_trace_header(request, span.context());
  if (payload) request.add_payload(std::move(payload));

  if (security_.credential) {
    security::sign_envelope(request, *security_.credential);
  }

  soap::Envelope response = caller_.call(target_.address(), request);

  if (security_.anchor) {
    // Verify the response signature even for faults — an unsigned fault
    // from an X.509-mode service is itself a security failure.
    security::verify_envelope(response, *security_.anchor, security_.clock->now());
  }
  response.throw_if_fault();
  return response;
}

}  // namespace gs::container
