// Service model for the resource-aware container.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "security/xmlsig.hpp"
#include "soap/envelope.hpp"

namespace gs::container {

/// Everything a service operation sees about the current request.
struct RequestContext {
  const soap::Envelope* request = nullptr;
  soap::MessageInfo info;  // parsed WS-Addressing headers
  /// Authenticated sender, present when the container verified an X.509
  /// signature on the request.
  std::optional<security::VerifiedIdentity> identity;
  /// Set by the resolve stage when a pre-compiled template response (see
  /// container/templated.hpp) may answer this request: HTTP entry (the
  /// response leaves as octets, nobody walks its tree in-process) and no
  /// message-level security (signing mutates the response).
  bool allow_template_response = false;

  /// The request payload (first Body child); throws SoapFault("Sender")
  /// when the body is empty.
  const xml::Element& payload() const;
  /// The sender's DN; throws SoapFault when the message was not
  /// authenticated (services that require identity call this).
  const std::string& caller_dn() const;
};

/// A deployed web service: a set of operations keyed by wsa:Action.
///
/// Concrete services (the WSRF port types, WS-Transfer resources, the
/// Grid-in-a-Box services) register their operations in their constructor;
/// "importing a port type" in the WSRF.NET programming-model sense is
/// calling another component's `register_into(*this)`.
class Service {
 public:
  using Operation = std::function<soap::Envelope(RequestContext&)>;

  explicit Service(std::string name) : name_(std::move(name)) {}
  virtual ~Service() = default;

  const std::string& name() const noexcept { return name_; }

  /// Registers (or replaces) the handler for an action URI.
  void register_operation(std::string action, Operation op);
  bool supports(const std::string& action) const;
  std::vector<std::string> actions() const;

  /// Dispatches on ctx.info.action; returns a Sender fault for unknown
  /// actions. SoapFault thrown by handlers becomes a fault envelope.
  soap::Envelope dispatch(RequestContext& ctx);

 private:
  std::string name_;
  std::map<std::string, Operation> operations_;
};

/// Builds a response envelope for a request: RelatesTo = request MessageID.
soap::Envelope make_response(const RequestContext& ctx, const std::string& action);

}  // namespace gs::container
