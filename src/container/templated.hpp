// Template-backed fast responses for service operations.
//
// A TemplatedResponder owns one compiled soap::ResponseTemplate (lazily
// compiled on first use — compilation serializes a prototype through the
// DOM writer, so it happens once per process, not per deployment) and hands
// out PendingResponse objects primed with this request's addressing. A
// service operation's hot path becomes:
//
//   if (auto pr = responder_.start(ctx)) {
//     pr->fragment_shared = db_.load_octets(...);   // or values/fragment
//     return soap::Envelope::make_pending(std::move(pr));
//   }
//   // ... DOM path, byte-identical by construction ...
//
// start() returns null when the fast path does not apply (in-process entry,
// message security, the runtime toggle off, or a request without a
// MessageID — the DOM path skips RelatesTo then, which a compiled skeleton
// cannot), and the operation falls through to the classic DOM build.
//
// The trace-context header QName is injected here (the container layer
// already depends on telemetry; soap must not).
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "container/service.hpp"
#include "soap/template.hpp"

namespace gs::container {

class TemplatedResponder {
 public:
  /// `make_spec` builds the template spec; trace_qname is filled in here.
  using SpecFn = std::function<soap::ResponseTemplate::Spec()>;
  explicit TemplatedResponder(SpecFn make_spec)
      : make_spec_(std::move(make_spec)) {}

  /// True when `ctx` may be answered from a template at all.
  static bool eligible(const RequestContext& ctx);

  /// A PendingResponse primed with MessageID/RelatesTo for this request,
  /// or null when the fast path does not apply.
  std::shared_ptr<soap::PendingResponse> start(const RequestContext& ctx);

 private:
  SpecFn make_spec_;
  std::once_flag once_;
  std::shared_ptr<const soap::ResponseTemplate> tpl_;
};

}  // namespace gs::container
