#include "container/registry.hpp"

#include <condition_variable>
#include <map>
#include <mutex>
#include <shared_mutex>

namespace gs::container {

// The in-flight count is a plain integer under the entry's mutex: pins are
// taken once per request, far from any inner loop, and the mutex pairs the
// final decrement with the condition variable undeploy waits on.
struct ServiceHandle::Entry {
  Service* service = nullptr;
  std::mutex mu;
  std::condition_variable drained;
  long inflight = 0;  // guarded by mu
};

ServiceHandle::ServiceHandle(std::shared_ptr<Entry> entry)
    : entry_(std::move(entry)) {}

ServiceHandle::~ServiceHandle() { release(); }

ServiceHandle::ServiceHandle(ServiceHandle&& other) noexcept
    : entry_(std::move(other.entry_)) {
  other.entry_ = nullptr;
}

ServiceHandle& ServiceHandle::operator=(ServiceHandle&& other) noexcept {
  if (this != &other) {
    release();
    entry_ = std::move(other.entry_);
    other.entry_ = nullptr;
  }
  return *this;
}

Service* ServiceHandle::get() const noexcept {
  return entry_ ? entry_->service : nullptr;
}

void ServiceHandle::release() {
  if (!entry_) return;
  bool last = false;
  {
    std::lock_guard lock(entry_->mu);
    last = --entry_->inflight == 0;
  }
  if (last) entry_->drained.notify_all();
  entry_ = nullptr;
}

struct ServiceRegistry::Shard {
  mutable std::shared_mutex mu;
  std::map<std::string, std::shared_ptr<ServiceHandle::Entry>> entries;
};

ServiceRegistry::ServiceRegistry(size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      shards_(new Shard[shard_count_]) {}

ServiceRegistry::~ServiceRegistry() = default;

ServiceRegistry::Shard& ServiceRegistry::shard_for(
    const std::string& path) const {
  return shards_[std::hash<std::string_view>{}(path) % shard_count_];
}

void ServiceRegistry::deploy(const std::string& path, Service& service) {
  auto entry = std::make_shared<ServiceHandle::Entry>();
  entry->service = &service;
  Shard& shard = shard_for(path);
  std::unique_lock lock(shard.mu);
  shard.entries[path] = std::move(entry);
}

bool ServiceRegistry::undeploy(const std::string& path) {
  std::shared_ptr<ServiceHandle::Entry> entry;
  {
    Shard& shard = shard_for(path);
    std::unique_lock lock(shard.mu);
    auto it = shard.entries.find(path);
    if (it == shard.entries.end()) return false;
    entry = std::move(it->second);
    shard.entries.erase(it);
  }
  // The path is gone from the table: no new pins. Wait out existing ones
  // so the caller can destroy the service after we return.
  std::unique_lock lock(entry->mu);
  entry->drained.wait(lock, [&] { return entry->inflight == 0; });
  return true;
}

ServiceHandle ServiceRegistry::pin(const std::string& path) const {
  Shard& shard = shard_for(path);
  std::shared_lock lock(shard.mu);
  auto it = shard.entries.find(path);
  if (it == shard.entries.end()) return ServiceHandle();
  // Increment while still holding the shard lock: once we return, undeploy
  // either saw this pin or has not yet erased the entry.
  {
    std::lock_guard entry_lock(it->second->mu);
    ++it->second->inflight;
  }
  return ServiceHandle(it->second);
}

std::vector<std::string> ServiceRegistry::paths() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::shared_lock lock(shards_[i].mu);
    for (const auto& [path, entry] : shards_[i].entries) out.push_back(path);
  }
  return out;
}

}  // namespace gs::container
