// Lifetime management (the "Lifetime Management" box of paper Figure 1).
//
// WSRF's WS-ResourceLifetime gives resources scheduled termination times
// that services manipulate (the Grid-in-a-Box ReservationService "claim"
// extends them). WS-Transfer has no such concept, so its Grid-in-a-Box
// manages reservation lifetime manually — and leaks when clients forget
// (a finding this repository's tests assert).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.hpp"

namespace gs::container {

/// Registry of scheduled destructions. Services register a termination
/// time and an on-destroy callback per resource; the container sweeps on
/// each request (and tests sweep manually with a ManualClock).
class LifetimeManager {
 public:
  using Handle = std::uint64_t;
  static constexpr common::TimeMs kNever =
      std::numeric_limits<common::TimeMs>::max();

  explicit LifetimeManager(const common::Clock& clock) : clock_(clock) {}

  /// Schedules destruction at `termination_time` (kNever = only explicit).
  Handle schedule(common::TimeMs termination_time, std::function<void()> on_destroy);

  /// Moves the termination time (the ReservationService "claim" path).
  /// Returns false for an unknown/destroyed handle.
  bool set_termination_time(Handle handle, common::TimeMs termination_time);
  std::optional<common::TimeMs> termination_time(Handle handle) const;

  /// Destroys now: runs the callback and unregisters. False when unknown.
  bool destroy(Handle handle);
  /// Unregisters without running the callback.
  bool cancel(Handle handle);

  /// Destroys every entry whose termination time has passed.
  /// Returns the number destroyed.
  size_t sweep();

  size_t active() const;
  const common::Clock& clock() const noexcept { return clock_; }

 private:
  struct Entry {
    common::TimeMs termination_time;
    std::function<void()> on_destroy;
  };

  const common::Clock& clock_;
  mutable std::mutex mu_;
  std::map<Handle, Entry> entries_;
  Handle next_ = 1;
};

/// Strictly parses a client-supplied lifetime field (milliseconds, an
/// optionally-signed decimal integer, nothing else). Throws
/// soap::SoapFault("Sender", ...) on malformed text — client garbage must
/// come back as a fault envelope, never escape as std::invalid_argument
/// from std::stoll (which also silently accepted trailing junk).
/// Callers interpret the value (relative offset vs absolute) and handle
/// their own "infinity"/"infinite" keyword before calling.
common::TimeMs parse_lifetime_ms(const std::string& text);

}  // namespace gs::container
