#include "container/templated.hpp"

#include "common/uuid.hpp"
#include "soap/envelope.hpp"
#include "telemetry/propagation.hpp"

namespace gs::container {

bool TemplatedResponder::eligible(const RequestContext& ctx) {
  // The MessageID check mirrors write_addressing: an empty RelatesTo is
  // skipped on the DOM path, and the compiled skeleton always carries one.
  return ctx.allow_template_response && soap::Envelope::wire_fast_path() &&
         !ctx.info.message_id.empty();
}

std::shared_ptr<soap::PendingResponse> TemplatedResponder::start(
    const RequestContext& ctx) {
  if (!eligible(ctx)) return nullptr;
  std::call_once(once_, [this] {
    soap::ResponseTemplate::Spec spec = make_spec_();
    spec.trace_qname = telemetry::trace_header_qname();
    tpl_ = soap::ResponseTemplate::compile(std::move(spec));
  });
  auto pr = std::make_shared<soap::PendingResponse>();
  pr->tpl = tpl_;
  pr->message_id = common::new_urn_uuid();
  pr->relates_to = ctx.info.message_id;
  return pr;
}

}  // namespace gs::container
