#include "container/admission.hpp"

#include <algorithm>
#include <cmath>

#include "soap/envelope.hpp"
#include "telemetry/event_log.hpp"

namespace gs::container {

const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kMonitoring: return "monitoring";
    case Priority::kNormal: return "normal";
    case Priority::kBulk: return "bulk";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)) {
  telemetry::MetricsRegistry& reg =
      config_.metrics ? *config_.metrics : telemetry::MetricsRegistry::global();
  admitted_ = &reg.counter("container.admitted");
  shed_total_ = &reg.counter("container.shed_total");
  shed_by_class_[0] = &reg.counter("container.shed_monitoring");
  shed_by_class_[1] = &reg.counter("container.shed_normal");
  shed_by_class_[2] = &reg.counter("container.shed_bulk");
  shed_queue_ = &reg.counter("container.shed_queue_depth");
  shed_bucket_ = &reg.counter("container.shed_token_bucket");
  inflight_ = &reg.gauge("container.inflight");
}

std::size_t AdmissionController::shed_depth(Priority p) const noexcept {
  switch (p) {
    case Priority::kMonitoring: return config_.shed_depth_monitoring;
    case Priority::kNormal: return config_.shed_depth_normal;
    case Priority::kBulk: return config_.shed_depth_bulk;
  }
  return config_.shed_depth_bulk;
}

std::size_t AdmissionController::depth() const {
  std::size_t transport = config_.queue_depth ? config_.queue_depth() : 0;
  return transport + static_cast<std::size_t>(
                         std::max<std::int64_t>(0, inflight_->value()));
}

void AdmissionController::on_start() { inflight_->add(1); }
void AdmissionController::on_finish() { inflight_->add(-1); }

AdmissionController::Decision AdmissionController::admit(
    Priority priority, const std::string& tenant, const std::string& service) {
  // Depth shed: judged on the live backlog, outside the bucket lock (the
  // queue_depth callback is deployment code and must not run under mu_).
  std::size_t backlog = depth();
  if (backlog >= shed_depth(priority)) {
    shed_total_->add();
    shed_queue_->add();
    shed_by_class_[static_cast<int>(priority)]->add();
    bool engaged = false;
    {
      std::lock_guard lock(mu_);
      engaged = !shedding_;
      shedding_ = true;
    }
    if (engaged) {
      telemetry::EventLog::global().emit(
          telemetry::Level::kWarn, "container.admission", "shedding engaged",
          {{"class", priority_name(priority)},
           {"depth", std::to_string(backlog)},
           {"service", service}});
    }
    return {false, config_.retry_after_ms, "queue-depth"};
  }

  // Token bucket: monitoring is exempt; a zero rate disables the bucket.
  if (priority != Priority::kMonitoring) {
    TokenBucketConfig shape = config_.per_tenant;
    if (auto it = config_.tenant_overrides.find(tenant);
        it != config_.tenant_overrides.end()) {
      shape = it->second;
    }
    if (shape.rate_per_sec > 0.0) {
      double burst = shape.burst > 0.0 ? shape.burst : shape.rate_per_sec;
      common::TimeMs now = config_.clock->now();
      common::TimeMs wait_ms = 0;
      bool rejected = false;
      {
        std::lock_guard lock(mu_);
        Bucket& bucket = buckets_[tenant + '|' + service];
        if (!bucket.primed) {
          bucket.tokens = burst;
          bucket.last_refill = now;
          bucket.primed = true;
        }
        if (now > bucket.last_refill) {
          bucket.tokens = std::min(
              burst, bucket.tokens + shape.rate_per_sec *
                                         static_cast<double>(now - bucket.last_refill) /
                                         1000.0);
          bucket.last_refill = now;
        }
        if (bucket.tokens >= 1.0) {
          bucket.tokens -= 1.0;
        } else {
          rejected = true;
          wait_ms = static_cast<common::TimeMs>(
              std::ceil((1.0 - bucket.tokens) * 1000.0 / shape.rate_per_sec));
        }
      }
      if (rejected) {
        shed_total_->add();
        shed_bucket_->add();
        shed_by_class_[static_cast<int>(priority)]->add();
        return {false, std::max(config_.retry_after_ms, wait_ms),
                "token-bucket"};
      }
    }
  }

  admitted_->add();
  bool released = false;
  {
    std::lock_guard lock(mu_);
    // One admit with the backlog back under half the bulk threshold ends
    // the shedding episode (hysteresis so the event pair does not flap).
    if (shedding_ && backlog < config_.shed_depth_bulk / 2) {
      shedding_ = false;
      released = true;
    }
  }
  if (released) {
    telemetry::EventLog::global().emit(
        telemetry::Level::kInfo, "container.admission", "shedding released",
        {{"depth", std::to_string(backlog)}});
  }
  return {true, 0, nullptr};
}

// --- the chain stage --------------------------------------------------------

AdmissionHandler::AdmissionHandler(
    std::shared_ptr<AdmissionController> controller, Classifier classifier,
    TenantFn tenant)
    : controller_(std::move(controller)),
      classifier_(std::move(classifier)),
      tenant_(std::move(tenant)) {}

Priority AdmissionHandler::classify_request(const std::string& path,
                                            const net::HttpRequest* http) {
  if (http) {
    if (auto it = http->headers.find("X-GS-Priority");
        it != http->headers.end()) {
      if (it->second == "monitoring") return Priority::kMonitoring;
      if (it->second == "bulk") return Priority::kBulk;
      return Priority::kNormal;
    }
  }
  // The PR-1 telemetry resource and the PR-4 monitor's event sources are
  // how operators see into an overloaded container; they shed last.
  if (path.ends_with("/Telemetry")) return Priority::kMonitoring;
  return Priority::kNormal;
}

Priority AdmissionHandler::default_priority(const PipelineContext& ctx) {
  return classify_request(ctx.path, ctx.http_request);
}

std::string AdmissionHandler::default_tenant(const PipelineContext& ctx) {
  if (ctx.http_request) {
    if (auto it = ctx.http_request->headers.find("X-GS-Tenant");
        it != ctx.http_request->headers.end()) {
      return it->second;
    }
  }
  return "anon";
}

void AdmissionHandler::handle(PipelineContext& ctx, Next next) {
  Priority priority =
      classifier_ ? classifier_(ctx) : default_priority(ctx);
  std::string tenant = tenant_ ? tenant_(ctx) : default_tenant(ctx);
  // Cost attribution reuses the admission classification: shed requests
  // are charged to their tenant too (rejection work is still work).
  ctx.tenant = tenant;

  AdmissionController::Decision decision =
      controller_->admit(priority, tenant, ctx.path);
  if (!decision.admitted) {
    if (ctx.http_request) {
      // Backpressure at the transport: 503 + Retry-After (whole seconds,
      // RFC 7231), body-free so the reject path serializes nothing.
      ctx.http_response = net::HttpResponse::error(503, "Service Unavailable");
      common::TimeMs seconds = (decision.retry_after_ms + 999) / 1000;
      ctx.http_response.headers["Retry-After"] =
          std::to_string(std::max<common::TimeMs>(1, seconds));
      ctx.http_response.headers["X-GS-Shed-Reason"] = decision.reason;
      ctx.http_done = true;
    } else {
      // In-process entry: a Receiver fault (the server, not the request,
      // is the problem). RetryingCaller never retries faults, so the
      // in-process path cannot amplify either.
      ctx.response = soap::Envelope::make_fault(
          {"Receiver",
           std::string("server busy, retry after ") +
               std::to_string(decision.retry_after_ms) + "ms",
           "", ""});
    }
    return;
  }

  controller_->on_start();
  try {
    next(ctx);
  } catch (...) {
    controller_->on_finish();
    throw;
  }
  controller_->on_finish();
}

}  // namespace gs::container
