// Overload control for the request path: admission, priority shedding,
// backpressure (ROADMAP item 4).
//
// The paper's stacks were benchmarked closed-loop and lightly loaded; a
// container serving real traffic sees offered load decoupled from its
// completion rate, and once the backlog passes the point where every
// queued request will miss its caller's deadline, finishing the queue is
// pure waste — goodput collapses while throughput looks fine. The era's
// evaluations (Demichev et al.'s OGSA/Globus measurements, the Global
// Grids survey) hit exactly this: container saturation, not protocol
// cost, dominated under load.
//
// The fix is an AdmissionHandler inserted at the FRONT of the PR-5
// HandlerChain — rejection must be cheap, so it runs before the request
// is even XML-parsed. Three mechanisms, in the order they fire:
//
//  1. Priority-class shedding on queue depth. Every request is classified
//     (monitoring / normal / bulk); each class has a depth threshold, and
//     a request whose class threshold is exceeded by the live backlog
//     (transport queue + in-flight requests) is rejected. Bulk sheds
//     first, monitoring (the gs:Telemetry traffic the PR-4 monitor rides
//     on) survives until the hard cap — you can still see into a
//     saturated container.
//  2. Per-tenant/per-service token buckets. A tenant that exceeds its
//     contracted rate is rejected even when the container has headroom,
//     so one aggressive client cannot starve the rest.
//  3. Backpressure instead of queueing: rejections leave as HTTP 503 with
//     a Retry-After header (or a Receiver fault for in-process entry) —
//     the client is told to back off rather than silently joining a queue
//     it will time out in. net::RetryingCaller honours the hint and its
//     circuit breaker stops retry amplification (see net/breaker.hpp).
//
// Shedding is observable: container.shed_* / container.admitted counters,
// a container.inflight gauge, and an edge-triggered "shedding engaged" /
// "shedding released" EventLog pair (one event per episode, not per
// rejection — a shedding container must not drown its own event ring).
// Point a telemetry::AlertRule at container.shed_total to surface
// engagement through the PR-4 monitor.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "container/handler.hpp"
#include "telemetry/metrics.hpp"

namespace gs::container {

/// Request priority classes, in shed order (bulk first, monitoring last).
enum class Priority { kMonitoring = 0, kNormal = 1, kBulk = 2 };

const char* priority_name(Priority p) noexcept;

/// Token-bucket shape: sustained `rate_per_sec` with bursts up to `burst`
/// (defaults to one second's worth when 0). rate_per_sec == 0 disables
/// the bucket entirely.
struct TokenBucketConfig {
  double rate_per_sec = 0.0;
  double burst = 0.0;
};

struct AdmissionConfig {
  const common::Clock* clock = &common::RealClock::instance();

  /// Live transport backlog (accept queue, threadpool queue) in front of
  /// the container; the controller adds its own in-flight count. Null =
  /// only in-flight requests are counted.
  std::function<std::size_t()> queue_depth;

  /// Depth thresholds per class: a request is shed when the backlog at
  /// admission time has reached its class's threshold. Monitoring's is
  /// the hard cap on total accepted work.
  std::size_t shed_depth_bulk = 64;
  std::size_t shed_depth_normal = 128;
  std::size_t shed_depth_monitoring = 512;

  /// Default per-(tenant, service) bucket; `tenant_overrides` replaces it
  /// for specific tenants. Monitoring-class traffic is exempt (it is
  /// bounded by the hard depth cap alone).
  TokenBucketConfig per_tenant;
  std::map<std::string, TokenBucketConfig> tenant_overrides;

  /// Retry-After on depth sheds; bucket rejections answer with the actual
  /// time until a token accrues when that is longer.
  common::TimeMs retry_after_ms = 1000;

  /// Metrics destination; nullptr = the process-wide registry.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// The admission decision state machine, separable from the chain stage so
/// tests (and the bench's accept loop) can drive it directly.
class AdmissionController {
 public:
  struct Decision {
    bool admitted = true;
    common::TimeMs retry_after_ms = 0;
    const char* reason = nullptr;  // "queue-depth" or "token-bucket"
  };

  explicit AdmissionController(AdmissionConfig config);

  /// One admission decision. Thread-safe; cheap enough for the reject path
  /// to run at wire speed (one mutex, no allocation on the admit path once
  /// the tenant's bucket exists).
  Decision admit(Priority priority, const std::string& tenant,
                 const std::string& service);

  /// In-flight accounting (the handler brackets the inner chain with
  /// these; the bench's workers do the same around direct dispatch).
  void on_start();
  void on_finish();

  /// Transport backlog plus in-flight — the depth sheds are judged on.
  std::size_t depth() const;

  const AdmissionConfig& config() const noexcept { return config_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    common::TimeMs last_refill = 0;
    bool primed = false;
  };

  std::size_t shed_depth(Priority p) const noexcept;

  AdmissionConfig config_;
  telemetry::Counter* admitted_ = nullptr;
  telemetry::Counter* shed_total_ = nullptr;
  telemetry::Counter* shed_by_class_[3] = {nullptr, nullptr, nullptr};
  telemetry::Counter* shed_queue_ = nullptr;
  telemetry::Counter* shed_bucket_ = nullptr;
  telemetry::Gauge* inflight_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;  // key: tenant + '|' + service
  bool shedding_ = false;                  // edge-trigger latch for events
};

/// The chain stage. Classification runs on transport-level facts only
/// (path and HTTP headers) so a shed request is never parsed: the
/// X-GS-Priority header ("monitoring"/"bulk"), a path suffix of
/// "/Telemetry" (the PR-1 telemetry resource), and the X-GS-Tenant header
/// (default "anon") drive the default classifier; deployments can swap in
/// their own.
class AdmissionHandler final : public Handler {
 public:
  using Classifier = std::function<Priority(const PipelineContext&)>;
  using TenantFn = std::function<std::string(const PipelineContext&)>;

  explicit AdmissionHandler(std::shared_ptr<AdmissionController> controller,
                            Classifier classifier = {}, TenantFn tenant = {});

  const char* name() const noexcept override { return "admission"; }
  void handle(PipelineContext& ctx, Next next) override;

  AdmissionController& controller() noexcept { return *controller_; }

  static Priority default_priority(const PipelineContext& ctx);
  static std::string default_tenant(const PipelineContext& ctx);
  /// Transport-level classification shared with accept loops that sort
  /// requests into priority lanes before they reach the chain.
  static Priority classify_request(const std::string& path,
                                   const net::HttpRequest* http);

 private:
  std::shared_ptr<AdmissionController> controller_;
  Classifier classifier_;
  TenantFn tenant_;
};

}  // namespace gs::container
