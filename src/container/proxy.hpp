// Client-side proxy base.
//
// "From a client perspective, engaging either counter service is similar to
// invoking web methods on any other Web service -- via a Web service proxy
// object" (paper §4.1.3). Concrete proxies (counter clients, Grid-in-a-Box
// clients, WSRF/WST/WSN/WSE operation proxies) derive from this: it owns
// the addressing, optional request signing, response verification, and
// fault-to-exception translation.
#pragma once

#include <memory>
#include <string>

#include "common/clock.hpp"
#include "container/service.hpp"
#include "net/virtual_network.hpp"
#include "security/xmlsig.hpp"
#include "soap/addressing.hpp"

namespace gs::container {

/// Per-proxy security configuration.
struct ProxySecurity {
  /// Signs every request when set.
  const security::Credential* credential = nullptr;
  /// Verifies every response signature when set.
  const security::Certificate* anchor = nullptr;
  const common::Clock* clock = &common::RealClock::instance();
};

class ProxyBase {
 public:
  ProxyBase(net::SoapCaller& caller, soap::EndpointReference target,
            ProxySecurity security = {})
      : caller_(caller), target_(std::move(target)), security_(security) {}

  const soap::EndpointReference& target() const noexcept { return target_; }
  void retarget(soap::EndpointReference epr) { target_ = std::move(epr); }

 protected:
  /// Sends `payload` with the given action to the target EPR. Applies
  /// signing/verification per the security config, throws SoapFault on a
  /// fault response, and returns the response envelope.
  soap::Envelope invoke(const std::string& action,
                        std::unique_ptr<xml::Element> payload) const;
  /// As `invoke`, but with an empty body (operations with no input).
  soap::Envelope invoke(const std::string& action) const {
    return invoke(action, nullptr);
  }
  /// As `invoke`, with an extra ReplyTo header (subscriptions carry the
  /// notification sink this way in some dialects).
  soap::Envelope invoke_with_reply_to(const std::string& action,
                                      std::unique_ptr<xml::Element> payload,
                                      const soap::EndpointReference& reply_to) const;

  net::SoapCaller& caller() const noexcept { return caller_; }

 private:
  soap::Envelope do_invoke(const std::string& action,
                           std::unique_ptr<xml::Element> payload,
                           const soap::EndpointReference* reply_to) const;

  net::SoapCaller& caller_;
  soap::EndpointReference target_;
  ProxySecurity security_;
};

}  // namespace gs::container
