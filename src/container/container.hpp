// The resource-aware container (paper Figure 1).
//
// Request path: Dispatch (path -> service, wsa:Action -> operation) behind
// a Security/Policy handler (X.509 verification when configured), with
// Lifetime Management swept on every request and the storage binding
// shared by the deployed services. One Container per simulated host; it is
// a net::Endpoint, so it mounts on the virtual network and on the real
// TCP HttpServer alike.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "container/lifetime.hpp"
#include "container/service.hpp"
#include "net/virtual_network.hpp"
#include "security/cert.hpp"
#include "telemetry/metrics.hpp"

namespace gs::container {

/// Message-level security policy enforced by the container.
enum class SecurityMode {
  kNone,  // accept anything (paper scenarios 1 and 4; HTTPS scenarios too,
          // where protection is at the transport)
  kX509,  // require a valid X.509 signature; sign every response
};

struct ContainerConfig {
  SecurityMode security = SecurityMode::kNone;
  /// Trust anchor for verifying client signatures (kX509).
  const security::Certificate* anchor = nullptr;
  /// This host's credential: signs responses (kX509) and serves TLS.
  const security::Credential* credential = nullptr;
  /// Time source for lifetime management.
  const common::Clock* clock = &common::RealClock::instance();
  /// Metrics destination; nullptr = the process-wide registry.
  telemetry::MetricsRegistry* metrics = nullptr;
};

class Container final : public net::Endpoint {
 public:
  explicit Container(ContainerConfig config);

  /// Deploys a service at a path, e.g. "/CounterService". The container
  /// does not own the service.
  void deploy(const std::string& path, Service& service);
  void undeploy(const std::string& path);
  Service* service_at(const std::string& path) const;

  LifetimeManager& lifetime() noexcept { return lifetime_; }
  const ContainerConfig& config() const noexcept { return config_; }

  /// net::Endpoint: full request pipeline — parse, security, sweep,
  /// dispatch, security (response), serialize.
  net::HttpResponse handle(const net::HttpRequest& request) override;
  const security::Credential* tls_credential() const override {
    return config_.credential;
  }

  /// Processes an envelope directly (used by in-process tests).
  soap::Envelope process(const soap::Envelope& request, const std::string& path);

 private:
  ContainerConfig config_;
  LifetimeManager lifetime_;
  mutable std::mutex mu_;
  std::map<std::string, Service*> services_;

  // Metric handles, resolved once at construction (registry references are
  // stable; the hot path writes lock-free).
  telemetry::Counter* c_requests_;
  telemetry::Counter* c_faults_;
  telemetry::Histogram* h_dispatch_us_;
  telemetry::Histogram* h_handler_us_;
  telemetry::Histogram* h_security_us_;
  telemetry::Histogram* h_parse_us_;
};

}  // namespace gs::container
