// The resource-aware container (paper Figure 1).
//
// Request path: an explicit HandlerChain — parse, telemetry, lifetime
// sweep, resolve (path -> pinned service), security/policy (X.509
// verification when configured), dispatch (wsa:Action -> operation) — over
// the storage binding shared by the deployed services. One Container per
// simulated host; it is a net::Endpoint, so it mounts on the virtual
// network and on the real TCP HttpServer alike. Deployments may compose
// their own chain (Container::chain / set_chain) before taking traffic.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "container/handler.hpp"
#include "container/lifetime.hpp"
#include "container/registry.hpp"
#include "container/service.hpp"
#include "net/virtual_network.hpp"
#include "security/cert.hpp"
#include "telemetry/metrics.hpp"

namespace gs::container {

/// Message-level security policy enforced by the container.
enum class SecurityMode {
  kNone,  // accept anything (paper scenarios 1 and 4; HTTPS scenarios too,
          // where protection is at the transport)
  kX509,  // require a valid X.509 signature; sign every response
};

struct ContainerConfig {
  SecurityMode security = SecurityMode::kNone;
  /// Trust anchor for verifying client signatures (kX509).
  const security::Certificate* anchor = nullptr;
  /// This host's credential: signs responses (kX509) and serves TLS.
  const security::Credential* credential = nullptr;
  /// Time source for lifetime management.
  const common::Clock* clock = &common::RealClock::instance();
  /// Metrics destination; nullptr = the process-wide registry.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Metric handles resolved once at construction (registry references are
/// stable; the hot path writes lock-free). Chain handlers record through
/// these so a composed chain keeps the same metric names.
struct ContainerMetrics {
  telemetry::Counter* requests = nullptr;
  telemetry::Counter* faults = nullptr;
  telemetry::Histogram* dispatch_us = nullptr;
  telemetry::Histogram* handler_us = nullptr;
  telemetry::Histogram* security_us = nullptr;
  telemetry::Histogram* parse_us = nullptr;
  telemetry::Histogram* serialize_us = nullptr;
  /// Allocation probe (see xml/probe.hpp): DOM nodes built while serving
  /// one HTTP request, and total arena bytes the pull parser bump-allocated.
  telemetry::Histogram* nodes_per_request = nullptr;
  telemetry::Counter* arena_bytes = nullptr;
};

class Container final : public net::Endpoint {
 public:
  explicit Container(ContainerConfig config);

  /// Deploys a service at a path, e.g. "/CounterService". The container
  /// does not own the service.
  void deploy(const std::string& path, Service& service);
  /// Undeploys and blocks until requests already dispatched to the
  /// service drain (see ServiceRegistry::undeploy).
  void undeploy(const std::string& path);
  /// Pins the service at a path for the handle's lifetime; empty handle
  /// when none is deployed.
  ServiceHandle service_at(const std::string& path) const;

  LifetimeManager& lifetime() noexcept { return lifetime_; }
  const ContainerConfig& config() const noexcept { return config_; }
  ServiceRegistry& registry() noexcept { return registry_; }
  const ServiceRegistry& registry() const noexcept { return registry_; }
  const ContainerMetrics& metrics() const noexcept { return metrics_; }

  /// The request pipeline. Edit or replace at deployment time only —
  /// running requests read the chain unsynchronized.
  HandlerChain& chain() noexcept { return chain_; }
  void set_chain(HandlerChain chain) { chain_ = std::move(chain); }
  /// The standard pipeline: parse, telemetry, lifetime-sweep, resolve,
  /// security, dispatch.
  static HandlerChain default_chain();

  /// Registers a named recovery hook. Deployments register one per
  /// stateful layer (wsrf home, subscription stores, sched state) while
  /// wiring up; recover() runs them in registration order, which is
  /// therefore the cross-layer recovery order — register foundations
  /// (resource properties) before the layers that reference them
  /// (subscriptions pointing at resources, jobs pointing at partitions).
  void add_recovery(std::string name, std::function<void()> hook);

  /// The explicit recovery phase: replays every registered hook against
  /// the (durable) storage binding, rebuilding in-memory state before the
  /// container takes traffic. A hook that throws is logged and counted
  /// (`container.recovery_failures`) and recovery continues — one corrupt
  /// layer must not hold the rest of the container down. Returns the
  /// number of hooks that succeeded.
  std::size_t recover();

  /// Attaches per-tenant cost attribution: every finished request's
  /// CostRecord is recorded under its (tenant, path). Deployment-time
  /// wiring (before traffic); nullptr detaches.
  void set_cost_aggregator(telemetry::CostAggregator* costs) noexcept {
    costs_ = costs;
  }
  telemetry::CostAggregator* cost_aggregator() const noexcept { return costs_; }

  /// net::Endpoint: runs the chain from the transport boundary.
  net::HttpResponse handle(const net::HttpRequest& request) override;
  const security::Credential* tls_credential() const override {
    return config_.credential;
  }

  /// Processes an envelope directly (in-process callers and tests); the
  /// parse stage passes through.
  soap::Envelope process(const soap::Envelope& request, const std::string& path);

 private:
  void attribute_cost(PipelineContext& ctx,
                      std::chrono::steady_clock::time_point started) const;

  ContainerConfig config_;
  LifetimeManager lifetime_;
  ServiceRegistry registry_;
  ContainerMetrics metrics_;
  HandlerChain chain_;
  telemetry::CostAggregator* costs_ = nullptr;
  std::vector<std::pair<std::string, std::function<void()>>> recovery_hooks_;
};

}  // namespace gs::container
