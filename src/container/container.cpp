#include "container/container.hpp"

#include <chrono>

#include "telemetry/event_log.hpp"
#include "telemetry/propagation.hpp"
#include "telemetry/trace.hpp"

namespace gs::container {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Container::Container(ContainerConfig config)
    : config_(config), lifetime_(*config.clock) {
  if (config_.security == SecurityMode::kX509) {
    if (!config_.anchor || !config_.credential) {
      throw std::invalid_argument(
          "X.509 container security requires an anchor and a credential");
    }
  }
  telemetry::MetricsRegistry& reg =
      config_.metrics ? *config_.metrics : telemetry::MetricsRegistry::global();
  c_requests_ = &reg.counter("container.requests");
  c_faults_ = &reg.counter("container.faults");
  h_dispatch_us_ = &reg.histogram("container.dispatch_us");
  h_handler_us_ = &reg.histogram("container.handler_us");
  h_security_us_ = &reg.histogram("container.security_us");
  h_parse_us_ = &reg.histogram("container.parse_us");
}

void Container::deploy(const std::string& path, Service& service) {
  std::lock_guard lock(mu_);
  services_[path] = &service;
}

void Container::undeploy(const std::string& path) {
  std::lock_guard lock(mu_);
  services_.erase(path);
}

Service* Container::service_at(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = services_.find(path);
  return it == services_.end() ? nullptr : it->second;
}

soap::Envelope Container::process(const soap::Envelope& request,
                                  const std::string& path) {
  // The dispatch span covers the whole pipeline: sweep, security, handler,
  // response signing. When the request carries a TraceContext header the
  // provisional spans on this thread (this one, and the enclosing
  // http.receive if the request came through a server) are re-rooted onto
  // the caller's trace.
  telemetry::SpanScope span("container.dispatch", "container");
  if (auto remote = telemetry::read_trace_header(request)) {
    telemetry::adopt_remote(*remote);
  }
  c_requests_->add();
  auto dispatch_started = std::chrono::steady_clock::now();

  // Scheduled terminations fire before the request sees any state.
  lifetime_.sweep();

  Service* service = service_at(path);
  if (!service) {
    c_faults_->add();
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "container", "fault: no service deployed",
        {{"path", path}});
    h_dispatch_us_->record(elapsed_us(dispatch_started));
    return soap::Envelope::make_fault(
        {"Sender", "no service deployed at " + path, "", ""});
  }

  RequestContext ctx;
  ctx.request = &request;
  ctx.info = request.read_addressing();

  // Security/Policy handler: verify the signature and establish identity.
  if (config_.security == SecurityMode::kX509) {
    telemetry::SpanScope security_span("container.security", "container");
    auto security_started = std::chrono::steady_clock::now();
    try {
      ctx.identity =
          security::verify_envelope(request, *config_.anchor, config_.clock->now());
      h_security_us_->record(elapsed_us(security_started));
    } catch (const security::SecurityError& e) {
      h_security_us_->record(elapsed_us(security_started));
      c_faults_->add();
      telemetry::EventLog::global().emit(
          telemetry::Level::kWarn, "container",
          "fault: security policy rejected request",
          {{"path", path}, {"error", e.what()}});
      h_dispatch_us_->record(elapsed_us(dispatch_started));
      soap::Envelope fault = soap::Envelope::make_fault(
          {"Sender", std::string("security policy rejected request: ") + e.what(),
           "", ""});
      security::sign_envelope(fault, *config_.credential);
      return fault;
    }
  }

  soap::Envelope response;
  {
    telemetry::SpanScope handler_span("container.handler", "container");
    auto handler_started = std::chrono::steady_clock::now();
    response = service->dispatch(ctx);
    h_handler_us_->record(elapsed_us(handler_started));
  }
  if (response.is_fault()) {
    c_faults_->add();
    const soap::Fault& fault = response.fault();
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "container", "fault returned by handler",
        {{"path", path}, {"code", fault.code}, {"reason", fault.reason}});
  }

  // Response passes back through the security handler (digital signature).
  if (config_.security == SecurityMode::kX509) {
    auto sign_started = std::chrono::steady_clock::now();
    security::sign_envelope(response, *config_.credential);
    h_security_us_->record(elapsed_us(sign_started));
  }
  // Echo the server-side trace context (the signature does not cover it).
  telemetry::write_trace_header(response, span.context());
  h_dispatch_us_->record(elapsed_us(dispatch_started));
  return response;
}

net::HttpResponse Container::handle(const net::HttpRequest& request) {
  soap::Envelope request_env;
  auto parse_started = std::chrono::steady_clock::now();
  try {
    request_env = soap::Envelope::from_xml(request.body);
  } catch (const std::exception& e) {
    return net::HttpResponse::error(400, "Bad Request", e.what());
  }
  h_parse_us_->record(elapsed_us(parse_started));
  soap::Envelope response = process(request_env, request.path);
  // SOAP 1.2 over HTTP: faults ride a 500, still with an envelope body.
  if (response.is_fault()) {
    net::HttpResponse http =
        net::HttpResponse::error(500, "Internal Server Error", response.to_xml());
    http.headers["Content-Type"] = "application/soap+xml";
    return http;
  }
  return net::HttpResponse::ok(response.to_xml());
}

}  // namespace gs::container
