#include "container/container.hpp"

namespace gs::container {

Container::Container(ContainerConfig config)
    : config_(config), lifetime_(*config.clock) {
  if (config_.security == SecurityMode::kX509) {
    if (!config_.anchor || !config_.credential) {
      throw std::invalid_argument(
          "X.509 container security requires an anchor and a credential");
    }
  }
}

void Container::deploy(const std::string& path, Service& service) {
  std::lock_guard lock(mu_);
  services_[path] = &service;
}

void Container::undeploy(const std::string& path) {
  std::lock_guard lock(mu_);
  services_.erase(path);
}

Service* Container::service_at(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = services_.find(path);
  return it == services_.end() ? nullptr : it->second;
}

soap::Envelope Container::process(const soap::Envelope& request,
                                  const std::string& path) {
  // Scheduled terminations fire before the request sees any state.
  lifetime_.sweep();

  Service* service = service_at(path);
  if (!service) {
    return soap::Envelope::make_fault(
        {"Sender", "no service deployed at " + path, "", ""});
  }

  RequestContext ctx;
  ctx.request = &request;
  ctx.info = request.read_addressing();

  // Security/Policy handler: verify the signature and establish identity.
  if (config_.security == SecurityMode::kX509) {
    try {
      ctx.identity =
          security::verify_envelope(request, *config_.anchor, config_.clock->now());
    } catch (const security::SecurityError& e) {
      soap::Envelope fault = soap::Envelope::make_fault(
          {"Sender", std::string("security policy rejected request: ") + e.what(),
           "", ""});
      security::sign_envelope(fault, *config_.credential);
      return fault;
    }
  }

  soap::Envelope response = service->dispatch(ctx);

  // Response passes back through the security handler (digital signature).
  if (config_.security == SecurityMode::kX509) {
    security::sign_envelope(response, *config_.credential);
  }
  return response;
}

net::HttpResponse Container::handle(const net::HttpRequest& request) {
  soap::Envelope request_env;
  try {
    request_env = soap::Envelope::from_xml(request.body);
  } catch (const std::exception& e) {
    return net::HttpResponse::error(400, "Bad Request", e.what());
  }
  soap::Envelope response = process(request_env, request.path);
  // SOAP 1.2 over HTTP: faults ride a 500, still with an envelope body.
  if (response.is_fault()) {
    net::HttpResponse http =
        net::HttpResponse::error(500, "Internal Server Error", response.to_xml());
    http.headers["Content-Type"] = "application/soap+xml";
    return http;
  }
  return net::HttpResponse::ok(response.to_xml());
}

}  // namespace gs::container
