#include "container/container.hpp"

#include "telemetry/event_log.hpp"

namespace gs::container {

Container::Container(ContainerConfig config)
    : config_(config), lifetime_(*config.clock), chain_(default_chain()) {
  if (config_.security == SecurityMode::kX509) {
    if (!config_.anchor || !config_.credential) {
      throw std::invalid_argument(
          "X.509 container security requires an anchor and a credential");
    }
  }
  telemetry::MetricsRegistry& reg =
      config_.metrics ? *config_.metrics : telemetry::MetricsRegistry::global();
  metrics_.requests = &reg.counter("container.requests");
  metrics_.faults = &reg.counter("container.faults");
  metrics_.dispatch_us = &reg.histogram("container.dispatch_us");
  metrics_.handler_us = &reg.histogram("container.handler_us");
  metrics_.security_us = &reg.histogram("container.security_us");
  metrics_.parse_us = &reg.histogram("container.parse_us");
  metrics_.serialize_us = &reg.histogram("container.serialize_us");
  metrics_.nodes_per_request = &reg.histogram("xml.nodes_per_request");
  metrics_.arena_bytes = &reg.counter("xml.arena_bytes");
}

HandlerChain Container::default_chain() {
  HandlerChain chain;
  chain.append(std::make_shared<ParseHandler>())
      .append(std::make_shared<TelemetryHandler>())
      .append(std::make_shared<LifetimeSweepHandler>())
      .append(std::make_shared<ResolveHandler>())
      .append(std::make_shared<SecurityHandler>())
      .append(std::make_shared<DispatchHandler>());
  return chain;
}

void Container::deploy(const std::string& path, Service& service) {
  registry_.deploy(path, service);
}

void Container::undeploy(const std::string& path) { registry_.undeploy(path); }

ServiceHandle Container::service_at(const std::string& path) const {
  return registry_.pin(path);
}

void Container::add_recovery(std::string name, std::function<void()> hook) {
  recovery_hooks_.emplace_back(std::move(name), std::move(hook));
}

std::size_t Container::recover() {
  telemetry::MetricsRegistry& reg =
      config_.metrics ? *config_.metrics : telemetry::MetricsRegistry::global();
  telemetry::Counter& failures = reg.counter("container.recovery_failures");
  telemetry::Histogram& recovery_us = reg.histogram("container.recovery_us");
  std::size_t ok = 0;
  for (const auto& [name, hook] : recovery_hooks_) {
    auto t0 = std::chrono::steady_clock::now();
    try {
      hook();
      ++ok;
      telemetry::EventLog::global().emit(telemetry::Level::kInfo, "container",
                                         "recovered layer " + name, {});
    } catch (const std::exception& e) {
      failures.add(1);
      telemetry::EventLog::global().emit(
          telemetry::Level::kError, "container",
          "recovery of layer " + name + " failed: " + e.what(), {});
    }
    recovery_us.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return ok;
}

void Container::attribute_cost(
    PipelineContext& ctx, std::chrono::steady_clock::time_point started) const {
  if (!costs_) return;
  ctx.cost.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  ctx.cost.fault = ctx.cost.fault || ctx.response.is_fault() ||
                   (ctx.http_done && ctx.http_response.status >= 400);
  std::string tenant = std::move(ctx.tenant);
  if (tenant.empty()) {
    // No admission stage ran; classify here from the same transport fact.
    if (ctx.http_request) {
      if (auto it = ctx.http_request->headers.find("X-GS-Tenant");
          it != ctx.http_request->headers.end()) {
        tenant = it->second;
      }
    }
    if (tenant.empty()) tenant = "anon";
  }
  costs_->record(tenant, ctx.path, ctx.cost);
}

soap::Envelope Container::process(const soap::Envelope& request,
                                  const std::string& path) {
  PipelineContext ctx(*this, path);
  ctx.request = &request;
  auto started = std::chrono::steady_clock::now();
  chain_.run(ctx);
  attribute_cost(ctx, started);
  return std::move(ctx.response);
}

net::HttpResponse Container::handle(const net::HttpRequest& request) {
  PipelineContext ctx(*this, request.path);
  ctx.http_request = &request;
  auto started = std::chrono::steady_clock::now();
  chain_.run(ctx);
  attribute_cost(ctx, started);
  if (!ctx.http_done) {
    // A chain without a transport stage still answers HTTP: map the
    // envelope the inner stages produced.
    if (ctx.response.is_fault()) {
      net::HttpResponse http = net::HttpResponse::error(
          500, "Internal Server Error", ctx.response.to_xml());
      http.headers["Content-Type"] = "application/soap+xml";
      return http;
    }
    return net::HttpResponse::ok(ctx.response.to_xml(), "application/soap+xml");
  }
  return std::move(ctx.http_response);
}

}  // namespace gs::container
