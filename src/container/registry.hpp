// Concurrent service registry with request-scoped pinning.
//
// The container used to keep a `map<path, Service*>` behind one mutex and
// return the raw pointer after unlocking — so a concurrent undeploy could
// free the service mid-request. Here lookups return a ServiceHandle that
// pins the deployment entry for the request's duration; `undeploy` removes
// the path (no new pins) and then blocks until every in-flight request on
// that entry drains, after which the caller may safely destroy the
// Service. The path table is sharded under `shared_mutex` so concurrent
// dispatch never serializes on one lock.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace gs::container {

class Service;

/// RAII pin on a deployed service. While any handle is live, `undeploy`
/// of that path blocks; destroying (or releasing) the handle lets the
/// drain complete. Empty handles (no service at the path) are falsy.
class ServiceHandle {
 public:
  ServiceHandle() = default;
  ~ServiceHandle();
  ServiceHandle(ServiceHandle&& other) noexcept;
  ServiceHandle& operator=(ServiceHandle&& other) noexcept;
  ServiceHandle(const ServiceHandle&) = delete;
  ServiceHandle& operator=(const ServiceHandle&) = delete;

  explicit operator bool() const noexcept { return entry_ != nullptr; }
  Service* get() const noexcept;
  Service* operator->() const noexcept { return get(); }
  Service& operator*() const noexcept { return *get(); }

  /// Drops the pin early (before the handle goes out of scope).
  void release();

 private:
  friend class ServiceRegistry;
  struct Entry;
  explicit ServiceHandle(std::shared_ptr<Entry> entry);
  std::shared_ptr<Entry> entry_;
};

/// Sharded path -> service table. Deploy/undeploy take one shard's write
/// lock; pins take its read lock, so requests to different paths — and
/// concurrent requests to the same path — proceed in parallel.
class ServiceRegistry {
 public:
  explicit ServiceRegistry(size_t shard_count = 8);
  ~ServiceRegistry();
  ServiceRegistry(const ServiceRegistry&) = delete;
  ServiceRegistry& operator=(const ServiceRegistry&) = delete;

  /// Mounts `service` at `path`, replacing any previous deployment (pins
  /// on the replaced entry keep the old service alive from the registry's
  /// point of view; its owner must still outlive them).
  void deploy(const std::string& path, Service& service);

  /// Unmounts `path` and blocks until in-flight requests pinning it have
  /// drained. Returns false when nothing was deployed there. Must not be
  /// called from a request holding a pin on the same path (deadlock).
  bool undeploy(const std::string& path);

  /// Pins the service at `path`; empty handle when none is deployed.
  ServiceHandle pin(const std::string& path) const;

  std::vector<std::string> paths() const;

 private:
  struct Shard;
  Shard& shard_for(const std::string& path) const;

  size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace gs::container
