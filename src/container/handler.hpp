// The container's request pipeline as an explicit, composable chain.
//
// Paper Figure 1 draws the container as a pipeline — Dispatch, a
// Security/Policy handler, Lifetime Management, then the service code over
// shared storage. The chain makes that pipeline first-class: each stage is
// a Handler that runs work on the way in, invokes the rest of the chain,
// and sees the response on the way out (how signing and trace echo
// naturally wrap the inner stages). Deployments can reorder, remove, or
// insert stages per container without touching the core.
//
// Default order (Container::default_chain):
//   parse -> telemetry -> lifetime-sweep -> resolve -> security -> dispatch
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "container/registry.hpp"
#include "container/service.hpp"
#include "net/http.hpp"
#include "telemetry/cost.hpp"

namespace gs::container {

class Container;
class HandlerChain;

/// Everything one request carries through the chain.
struct PipelineContext {
  PipelineContext(Container& container, std::string path)
      : container(container), path(std::move(path)) {}

  Container& container;
  std::string path;

  /// Transport boundary. `http_request` is null when the request entered
  /// in-process via Container::process; a transport handler that fills
  /// `http_response` sets `http_done`.
  const net::HttpRequest* http_request = nullptr;
  net::HttpResponse http_response;
  bool http_done = false;

  /// The request envelope: in-process entry points it at the caller's
  /// envelope; the parse handler points it at `parsed`.
  const soap::Envelope* request = nullptr;
  soap::Envelope parsed;

  soap::Envelope response;

  /// What the service sees; identity is established by the security
  /// handler, request/info by the resolve handler.
  RequestContext rpc;

  /// The resolved service, pinned until this context dies so a concurrent
  /// undeploy cannot free it mid-request.
  ServiceHandle service;

  /// Tenant classification (PR 8): the admission stage fills it from
  /// X-GS-Tenant; empty means no classifier ran and the container derives
  /// it at accounting time.
  std::string tenant;

  /// Cost accrued so far: stages add what they measure (parse/serialize
  /// time, probe deltas, octets); the container stamps wall_us/fault and
  /// hands the record to its CostAggregator, when one is attached.
  telemetry::CostRecord cost;
};

/// One pipeline stage. `next` runs the remainder of the chain; work done
/// after the call observes the response on the way out. Not calling
/// `next` short-circuits the chain — the handler must leave a response.
class Handler {
 public:
  virtual ~Handler() = default;

  /// Stable stage name used for chain edits ("parse", "security", ...).
  virtual const char* name() const noexcept = 0;

  class Next {
   public:
    void operator()(PipelineContext& ctx) const;

   private:
    friend class HandlerChain;
    Next(const HandlerChain& chain, size_t index)
        : chain_(&chain), index_(index) {}
    const HandlerChain* chain_;
    size_t index_;
  };

  virtual void handle(PipelineContext& ctx, Next next) = 0;
};

/// Ordered stage list. Compose at deployment time; running requests read
/// it without synchronization, so edits must happen before traffic.
class HandlerChain {
 public:
  HandlerChain& append(std::shared_ptr<Handler> handler);
  /// Inserts relative to the named stage; throws std::invalid_argument
  /// when no stage has that name.
  HandlerChain& insert_before(std::string_view name,
                              std::shared_ptr<Handler> handler);
  HandlerChain& insert_after(std::string_view name,
                             std::shared_ptr<Handler> handler);
  /// Removes the named stage; false when absent.
  bool remove(std::string_view name);

  std::vector<std::string> names() const;
  size_t size() const noexcept { return handlers_.size(); }

  void run(PipelineContext& ctx) const;

 private:
  friend class Handler::Next;
  void run_from(PipelineContext& ctx, size_t index) const;
  size_t index_of(std::string_view name) const;

  std::vector<std::shared_ptr<Handler>> handlers_;
};

// --- built-in stages --------------------------------------------------------

/// Transport boundary: parses the HTTP body into an envelope on the way in
/// (rejects ride a 400, counted and logged like every other fault) and
/// serializes the response envelope — faults on a 500, both content-typed
/// application/soap+xml — on the way out. Pass-through for in-process
/// entry.
class ParseHandler final : public Handler {
 public:
  const char* name() const noexcept override { return "parse"; }
  void handle(PipelineContext& ctx, Next next) override;
};

/// Owns the per-request dispatch span and metrics: adopts a remote trace
/// context, counts the request, echoes the trace header onto the response
/// and records container.dispatch_us.
class TelemetryHandler final : public Handler {
 public:
  const char* name() const noexcept override { return "telemetry"; }
  void handle(PipelineContext& ctx, Next next) override;
};

/// Fires scheduled terminations before the request sees any state.
class LifetimeSweepHandler final : public Handler {
 public:
  const char* name() const noexcept override { return "lifetime-sweep"; }
  void handle(PipelineContext& ctx, Next next) override;
};

/// Dispatch, phase one: path -> pinned service. Faults (unsigned — the
/// request has not passed security yet) when nothing is deployed.
class ResolveHandler final : public Handler {
 public:
  const char* name() const noexcept override { return "resolve"; }
  void handle(PipelineContext& ctx, Next next) override;
};

/// Security/Policy: verifies the signature and establishes identity on
/// the way in, signs the response on the way out (kX509 mode; pass-through
/// otherwise). Rejections are signed faults.
class SecurityHandler final : public Handler {
 public:
  const char* name() const noexcept override { return "security"; }
  void handle(PipelineContext& ctx, Next next) override;
};

/// Dispatch, phase two: wsa:Action -> operation on the pinned service.
class DispatchHandler final : public Handler {
 public:
  const char* name() const noexcept override { return "dispatch"; }
  void handle(PipelineContext& ctx, Next next) override;
};

}  // namespace gs::container
