#include "container/lifetime.hpp"

#include <charconv>

#include "soap/envelope.hpp"

namespace gs::container {

common::TimeMs parse_lifetime_ms(const std::string& text) {
  common::TimeMs value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [p, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || p != end || text.empty()) {
    throw soap::SoapFault("Sender", "malformed lifetime '" + text + "'");
  }
  return value;
}

LifetimeManager::Handle LifetimeManager::schedule(
    common::TimeMs termination_time, std::function<void()> on_destroy) {
  std::lock_guard lock(mu_);
  Handle handle = next_++;
  entries_[handle] = {termination_time, std::move(on_destroy)};
  return handle;
}

bool LifetimeManager::set_termination_time(Handle handle,
                                           common::TimeMs termination_time) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) return false;
  it->second.termination_time = termination_time;
  return true;
}

std::optional<common::TimeMs> LifetimeManager::termination_time(
    Handle handle) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(handle);
  if (it == entries_.end()) return std::nullopt;
  return it->second.termination_time;
}

bool LifetimeManager::destroy(Handle handle) {
  std::function<void()> callback;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(handle);
    if (it == entries_.end()) return false;
    callback = std::move(it->second.on_destroy);
    entries_.erase(it);
  }
  if (callback) callback();
  return true;
}

bool LifetimeManager::cancel(Handle handle) {
  std::lock_guard lock(mu_);
  return entries_.erase(handle) > 0;
}

size_t LifetimeManager::sweep() {
  common::TimeMs now = clock_.now();
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.termination_time <= now) {
        callbacks.push_back(std::move(it->second.on_destroy));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
  return callbacks.size();
}

size_t LifetimeManager::active() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace gs::container
