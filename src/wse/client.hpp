// WS-Eventing client proxies.
#pragma once

#include "container/proxy.hpp"
#include "wse/service.hpp"

namespace gs::wse {

class EventSourceProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  struct SubscriptionHandle {
    soap::EndpointReference manager;  // target for Renew/GetStatus/Unsubscribe
    common::TimeMs expires = WseSubscription::kNever;
  };

  /// Subscribes `notify_to` for push delivery. `duration_ms` < 0 requests
  /// an unbounded subscription. Filters are optional.
  SubscriptionHandle subscribe(const soap::EndpointReference& notify_to,
                               FilterDialect dialect = FilterDialect::kNone,
                               const std::string& filter = "",
                               std::int64_t duration_ms = -1,
                               const soap::EndpointReference& end_to = {});
};

class WseSubscriptionProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  /// Extends the subscription by `duration_ms` from now; returns the new
  /// absolute expiry (kNever for "infinite").
  common::TimeMs renew(std::int64_t duration_ms);
  /// Current absolute expiry.
  common::TimeMs get_status();
  void unsubscribe();
};

}  // namespace gs::wse
