#include "wse/client.hpp"

#include "container/lifetime.hpp"

namespace gs::wse {

namespace {
xml::QName wse(const char* local) { return {soap::ns::kEventing, local}; }

common::TimeMs parse_expires(const xml::Element* expires) {
  if (!expires) throw soap::SoapFault("Receiver", "response missing Expires");
  return expires->text() == "infinite"
             ? WseSubscription::kNever
             : container::parse_lifetime_ms(expires->text());
}
}  // namespace

EventSourceProxy::SubscriptionHandle EventSourceProxy::subscribe(
    const soap::EndpointReference& notify_to, FilterDialect dialect,
    const std::string& filter, std::int64_t duration_ms,
    const soap::EndpointReference& end_to) {
  auto request = std::make_unique<xml::Element>(wse("Subscribe"));
  if (!end_to.empty()) request->append(end_to.to_xml(wse("EndTo")));
  xml::Element& delivery = request->append_element(wse("Delivery"));
  delivery.set_attr("Mode", kPushMode);
  delivery.append(notify_to.to_xml(wse("NotifyTo")));
  if (duration_ms >= 0) {
    request->append_element(wse("Expires")).set_text(std::to_string(duration_ms));
  }
  if (dialect != FilterDialect::kNone) {
    xml::Element& f = request->append_element(wse("Filter"));
    f.set_attr("Dialect", dialect_uri(dialect));
    f.set_text(filter);
  }

  soap::Envelope response = invoke(actions::kSubscribe, std::move(request));
  const xml::Element* payload = response.payload();
  const xml::Element* manager =
      payload ? payload->child(wse("SubscriptionManager")) : nullptr;
  if (!manager) throw soap::SoapFault("Receiver", "malformed Subscribe response");

  SubscriptionHandle handle;
  handle.manager = soap::EndpointReference::from_xml(*manager);
  handle.expires = parse_expires(payload->child(wse("Expires")));
  return handle;
}

common::TimeMs WseSubscriptionProxy::renew(std::int64_t duration_ms) {
  auto request = std::make_unique<xml::Element>(wse("Renew"));
  request->append_element(wse("Expires"))
      .set_text(duration_ms < 0 ? "infinite" : std::to_string(duration_ms));
  soap::Envelope response = invoke(actions::kRenew, std::move(request));
  const xml::Element* payload = response.payload();
  return parse_expires(payload ? payload->child(wse("Expires")) : nullptr);
}

common::TimeMs WseSubscriptionProxy::get_status() {
  soap::Envelope response = invoke(
      actions::kGetStatus, std::make_unique<xml::Element>(wse("GetStatus")));
  const xml::Element* payload = response.payload();
  return parse_expires(payload ? payload->child(wse("Expires")) : nullptr);
}

void WseSubscriptionProxy::unsubscribe() {
  invoke(actions::kUnsubscribe, std::make_unique<xml::Element>(wse("Unsubscribe")));
}

}  // namespace gs::wse
