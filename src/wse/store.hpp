// WS-Eventing subscription store.
//
// The Plumbwork Orange implementation the paper used "maintains the
// subscription lists in a flat XML file" — reproduced here: every mutation
// rewrites one XML document to disk (or keeps it in memory when no path is
// given). Unlike WS-Notification, a subscription is "not associated with a
// resource, but only with a service"; per-resource subscriptions are
// expressed through filters.
#pragma once

#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "soap/addressing.hpp"
#include "xml/xpath.hpp"
#include "xmldb/database.hpp"

namespace gs::wse {

/// Filter dialects supported by this implementation.
enum class FilterDialect {
  kNone,
  kXPath,  // evaluated against the event document
  kTopic,  // exact match on the event's topic string (topic-based pub/sub
           // via filters, as the paper describes)
};

const char* dialect_uri(FilterDialect dialect);
FilterDialect dialect_from_uri(const std::string& uri);

struct WseSubscription {
  std::string id;
  soap::EndpointReference notify_to;          // push delivery sink
  soap::EndpointReference end_to;             // SubscriptionEnd sink (optional)
  FilterDialect dialect = FilterDialect::kNone;
  std::string filter;                         // expression text
  common::TimeMs expires = 0;                 // absolute; kNever = no expiry
  std::string delivery_mode;                  // recorded mode URI

  static constexpr common::TimeMs kNever =
      std::numeric_limits<common::TimeMs>::max();

  /// True when the filter admits an event with the given topic/document.
  bool accepts(const std::string& topic, const xml::Element& event) const;
};

class SubscriptionStore {
 public:
  /// In-memory store.
  SubscriptionStore() = default;
  /// File-backed store: loads `path` if present, rewrites it on mutation
  /// (the Plumbwork flat-file behavior the paper describes).
  explicit SubscriptionStore(std::filesystem::path path);
  /// Database-backed store: one document per subscription in `collection`,
  /// so mutations are per-entry writes the durable (WAL) backend can
  /// group-commit instead of whole-file rewrites. Loads existing entries
  /// on construction; call recover() to reload after the backend is
  /// rehydrated.
  SubscriptionStore(xmldb::XmlDatabase& db, std::string collection);

  std::string add(WseSubscription sub);  // assigns and returns the id
  bool remove(const std::string& id);
  std::optional<WseSubscription> get(const std::string& id) const;
  bool renew(const std::string& id, common::TimeMs new_expires);

  /// Subscriptions live at `now` (expired ones are skipped, not purged).
  std::vector<WseSubscription> active(common::TimeMs now) const;
  /// Removes expired subscriptions, returning them (the event source sends
  /// SubscriptionEnd to their EndTo sinks).
  std::vector<WseSubscription> purge_expired(common::TimeMs now);

  size_t size() const;

  /// Reloads the in-memory list from the backing medium (db or file),
  /// dropping corrupt entries with a warn as load does. Returns the number
  /// of subscriptions live after the reload.
  std::size_t recover();

 private:
  void persist_locked() const;
  /// Persists one mutated/added subscription (db mode: targeted store;
  /// file mode: whole-file rewrite).
  void persist_one_locked(const WseSubscription& sub) const;
  /// Persists one removal.
  void erase_one_locked(const std::string& id) const;
  void load();
  void load_locked();
  void note_id_locked(const std::string& id);

  mutable std::mutex mu_;
  std::vector<WseSubscription> subs_;
  std::filesystem::path path_;            // file mode; empty otherwise
  xmldb::XmlDatabase* db_ = nullptr;      // db mode; null otherwise
  std::string collection_;
  std::uint64_t next_id_ = 1;
};

}  // namespace gs::wse
