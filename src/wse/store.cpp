#include "wse/store.hpp"

#include <fstream>

#include "common/parse.hpp"
#include "soap/namespaces.hpp"
#include "telemetry/event_log.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace gs::wse {

namespace {
xml::QName wse(const char* local) { return {soap::ns::kEventing, local}; }

constexpr const char* kXPathUri = "http://www.w3.org/TR/1999/REC-xpath-19991116";
constexpr const char* kTopicUri = "http://gridstacks.dev/wse/topic";
}  // namespace

const char* dialect_uri(FilterDialect dialect) {
  switch (dialect) {
    case FilterDialect::kNone: return "";
    case FilterDialect::kXPath: return kXPathUri;
    case FilterDialect::kTopic: return kTopicUri;
  }
  return "";
}

FilterDialect dialect_from_uri(const std::string& uri) {
  if (uri.empty()) return FilterDialect::kNone;
  if (uri == kXPathUri) return FilterDialect::kXPath;
  if (uri == kTopicUri) return FilterDialect::kTopic;
  throw std::invalid_argument("unsupported WS-Eventing filter dialect: " + uri);
}

bool WseSubscription::accepts(const std::string& topic,
                              const xml::Element& event) const {
  switch (dialect) {
    case FilterDialect::kNone:
      return true;
    case FilterDialect::kTopic:
      return filter == topic;
    case FilterDialect::kXPath:
      try {
        return xml::XPathExpr::compile(filter).matches(event);
      } catch (const xml::XPathError&) {
        return false;  // unparsable filter never matches
      }
  }
  return false;
}

SubscriptionStore::SubscriptionStore(std::filesystem::path path)
    : path_(std::move(path)) {
  load();
}

SubscriptionStore::SubscriptionStore(xmldb::XmlDatabase& db,
                                     std::string collection)
    : db_(&db), collection_(std::move(collection)) {
  load();
}

std::string SubscriptionStore::add(WseSubscription sub) {
  std::lock_guard lock(mu_);
  sub.id = "wse-sub-" + std::to_string(next_id_++);
  std::string id = sub.id;
  subs_.push_back(std::move(sub));
  persist_one_locked(subs_.back());
  return id;
}

bool SubscriptionStore::remove(const std::string& id) {
  std::lock_guard lock(mu_);
  for (auto it = subs_.begin(); it != subs_.end(); ++it) {
    if (it->id == id) {
      subs_.erase(it);
      erase_one_locked(id);
      return true;
    }
  }
  return false;
}

std::optional<WseSubscription> SubscriptionStore::get(const std::string& id) const {
  std::lock_guard lock(mu_);
  for (const auto& sub : subs_) {
    if (sub.id == id) return sub;
  }
  return std::nullopt;
}

bool SubscriptionStore::renew(const std::string& id, common::TimeMs new_expires) {
  std::lock_guard lock(mu_);
  for (auto& sub : subs_) {
    if (sub.id == id) {
      sub.expires = new_expires;
      persist_one_locked(sub);
      return true;
    }
  }
  return false;
}

std::vector<WseSubscription> SubscriptionStore::active(common::TimeMs now) const {
  std::lock_guard lock(mu_);
  std::vector<WseSubscription> out;
  for (const auto& sub : subs_) {
    if (sub.expires == WseSubscription::kNever || sub.expires > now) {
      out.push_back(sub);
    }
  }
  return out;
}

std::vector<WseSubscription> SubscriptionStore::purge_expired(common::TimeMs now) {
  std::lock_guard lock(mu_);
  std::vector<WseSubscription> expired;
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->expires != WseSubscription::kNever && it->expires <= now) {
      expired.push_back(std::move(*it));
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
  if (!expired.empty()) {
    if (db_) {
      for (const auto& sub : expired) db_->remove(collection_, sub.id);
    } else {
      persist_locked();
    }
  }
  return expired;
}

size_t SubscriptionStore::size() const {
  std::lock_guard lock(mu_);
  return subs_.size();
}

namespace {

std::unique_ptr<xml::Element> subscription_element(const WseSubscription& sub) {
  auto el = std::make_unique<xml::Element>(wse("Subscription"));
  el->set_attr("id", sub.id);
  el->append(sub.notify_to.to_xml(wse("NotifyTo")));
  if (!sub.end_to.empty()) el->append(sub.end_to.to_xml(wse("EndTo")));
  if (sub.dialect != FilterDialect::kNone) {
    xml::Element& f = el->append_element(wse("Filter"));
    f.set_attr("Dialect", dialect_uri(sub.dialect));
    f.set_text(sub.filter);
  }
  el->append_element(wse("Expires"))
      .set_text(sub.expires == WseSubscription::kNever
                    ? "infinite"
                    : std::to_string(sub.expires));
  if (!sub.delivery_mode.empty()) {
    el->append_element(wse("Mode")).set_text(sub.delivery_mode);
  }
  return el;
}

/// Parses one persisted subscription; nullopt (with a warn) on a corrupt
/// Expires — the PR-8 tolerance rule: drop the entry, keep the rest.
std::optional<WseSubscription> subscription_from_element(
    const xml::Element& el) {
  WseSubscription sub;
  sub.id = el.attr("id").value_or("");
  if (const xml::Element* n = el.child(wse("NotifyTo"))) {
    sub.notify_to = soap::EndpointReference::from_xml(*n);
  }
  if (const xml::Element* e = el.child(wse("EndTo"))) {
    sub.end_to = soap::EndpointReference::from_xml(*e);
  }
  if (const xml::Element* f = el.child(wse("Filter"))) {
    sub.dialect = dialect_from_uri(f->attr("Dialect").value_or(""));
    sub.filter = f->text();
  }
  if (const xml::Element* x = el.child(wse("Expires"))) {
    if (x->text() == "infinite") {
      sub.expires = WseSubscription::kNever;
    } else if (auto expires = common::parse_number<common::TimeMs>(x->text())) {
      sub.expires = *expires;
    } else {
      // A corrupt persisted Expires must not abort the whole load (the
      // old std::stoll threw out of the constructor): drop this entry,
      // keep every other subscription.
      telemetry::EventLog::global().emit(
          telemetry::Level::kWarn, "wse.store",
          "dropping subscription with malformed Expires",
          {{"id", sub.id}, {"expires", x->text()}});
      return std::nullopt;
    }
  }
  if (const xml::Element* m = el.child(wse("Mode"))) {
    sub.delivery_mode = m->text();
  }
  return sub;
}

}  // namespace

void SubscriptionStore::persist_locked() const {
  if (path_.empty()) return;
  xml::Element doc(wse("Subscriptions"));
  for (const auto& sub : subs_) doc.append(subscription_element(sub)->clone());
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << xml::write(doc, {.pretty = true, .declaration = true});
}

void SubscriptionStore::persist_one_locked(const WseSubscription& sub) const {
  if (db_) {
    db_->store(collection_, sub.id, *subscription_element(sub));
  } else {
    persist_locked();
  }
}

void SubscriptionStore::erase_one_locked(const std::string& id) const {
  if (db_) {
    db_->remove(collection_, id);
  } else {
    persist_locked();
  }
}

void SubscriptionStore::note_id_locked(const std::string& id) {
  // Keep next_id_ ahead of loaded ids (malformed suffixes don't bump it).
  if (id.starts_with("wse-sub-")) {
    if (auto n = common::parse_number<std::uint64_t>(id.substr(8))) {
      if (*n >= next_id_) next_id_ = *n + 1;
    }
  }
}

void SubscriptionStore::load() {
  std::lock_guard lock(mu_);
  load_locked();
}

void SubscriptionStore::load_locked() {
  subs_.clear();
  if (db_) {
    for (const std::string& id : db_->ids(collection_)) {
      std::unique_ptr<xml::Element> el = db_->load(collection_, id);
      if (!el) continue;
      if (auto sub = subscription_from_element(*el)) {
        note_id_locked(sub->id);
        subs_.push_back(std::move(*sub));
      }
    }
    return;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;
  std::string octets(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>{});
  if (octets.empty()) return;
  auto doc = xml::parse_element(octets);
  for (const xml::Element* el : doc->children_named(wse("Subscription"))) {
    if (auto sub = subscription_from_element(*el)) {
      note_id_locked(sub->id);
      subs_.push_back(std::move(*sub));
    }
  }
}

std::size_t SubscriptionStore::recover() {
  std::lock_guard lock(mu_);
  load_locked();
  return subs_.size();
}

}  // namespace gs::wse
