// WS-Eventing services: event source and subscription manager.
//
// Mirrors the Plumbwork Orange structure the paper used: an Event Source
// Service exposing Subscribe, a Subscription Manager Service (possibly the
// same web service) with Unsubscribe/GetStatus/Renew, a filtering facility,
// and a Notification Manager helper "not defined in the spec" that event
// sources use to trigger delivery.
#pragma once

#include "container/service.hpp"
#include "net/delivery_queue.hpp"
#include "net/virtual_network.hpp"
#include "soap/namespaces.hpp"
#include "wse/store.hpp"

namespace gs::wse {

namespace actions {
const std::string kSubscribe = std::string(soap::ns::kEventing) + "/Subscribe";
const std::string kRenew = std::string(soap::ns::kEventing) + "/Renew";
const std::string kGetStatus = std::string(soap::ns::kEventing) + "/GetStatus";
const std::string kUnsubscribe = std::string(soap::ns::kEventing) + "/Unsubscribe";
const std::string kSubscriptionEnd =
    std::string(soap::ns::kEventing) + "/SubscriptionEnd";
}  // namespace actions

/// The only spec-defined delivery mode.
inline constexpr const char* kPushMode =
    "http://schemas.xmlsoap.org/ws/2004/08/eventing/DeliveryModes/Push";

/// The EPR reference property identifying a subscription at its manager
/// (wse:Identifier in the spec).
xml::QName identifier_qname();

/// Subscription manager: Renew / GetStatus / Unsubscribe over a shared
/// SubscriptionStore.
class WseSubscriptionManagerService : public container::Service {
 public:
  WseSubscriptionManagerService(SubscriptionStore& store, std::string address,
                                const common::Clock& clock);

  const std::string& address() const noexcept { return address_; }
  soap::EndpointReference epr_for(const std::string& id) const;

 private:
  SubscriptionStore& store_;
  std::string address_;
  const common::Clock& clock_;
};

/// Event source: Subscribe. Delegates storage to the manager's store (the
/// manager "may be the same web service as the event source, or a separate
/// service" — both wirings work since the store is shared).
class EventSourceService : public container::Service {
 public:
  EventSourceService(std::string name, SubscriptionStore& store,
                     WseSubscriptionManagerService& manager,
                     const common::Clock& clock);

 private:
  SubscriptionStore& store_;
  WseSubscriptionManagerService& manager_;
  const common::Clock& clock_;
};

/// The Plumbwork-style Notification Manager: "a convenient tool for an
/// event source to trigger notifications".
class NotificationManager {
 public:
  /// Delivery-reliability knobs. Defaults preserve the historical shape:
  /// inline synchronous delivery, no eviction. With a pool, delivery fans
  /// out asynchronously per sink; with a threshold, a sink that fails that
  /// many consecutive call sequences is evicted (wse.sinks_evicted, dead
  /// messages tallied in wse.dead_letters). Wrap `sink_caller` in a
  /// net::RetryingCaller to retry transport failures within each sequence.
  struct Options {
    common::ThreadPool* pool = nullptr;
    std::size_t max_queued_per_sink = 64;
    int evict_after_failures = 0;  // consecutive; 0 = never evict
  };

  NotificationManager(SubscriptionStore& store, net::SoapCaller& sink_caller,
                      const common::Clock& clock);
  NotificationManager(SubscriptionStore& store, net::SoapCaller& sink_caller,
                      const common::Clock& clock, Options options);

  /// Delivers `event` to every live subscription whose filter accepts
  /// (topic, event), through the per-sink delivery queue. `action` is the
  /// wsa:Action stamped on the event messages. Returns the number
  /// delivered (inline) or accepted for delivery (pooled). Expired
  /// subscriptions are purged and their EndTo sinks receive
  /// SubscriptionEnd.
  size_t notify(const std::string& topic, const xml::Element& event,
                const std::string& action);

  /// Barrier for pooled delivery; immediate when inline.
  void flush() { queue_.flush(); }

  /// The reliability queue (eviction state, dead-letter tally,
  /// reinstating a sink after re-subscribe).
  net::DeliveryQueue& delivery_queue() noexcept { return queue_; }

 private:
  SubscriptionStore& store_;
  const common::Clock& clock_;
  net::DeliveryQueue queue_;
};

}  // namespace gs::wse
