// WS-Eventing services: event source and subscription manager.
//
// Mirrors the Plumbwork Orange structure the paper used: an Event Source
// Service exposing Subscribe, a Subscription Manager Service (possibly the
// same web service) with Unsubscribe/GetStatus/Renew, a filtering facility,
// and a Notification Manager helper "not defined in the spec" that event
// sources use to trigger delivery.
#pragma once

#include "container/service.hpp"
#include "net/virtual_network.hpp"
#include "soap/namespaces.hpp"
#include "wse/store.hpp"

namespace gs::wse {

namespace actions {
const std::string kSubscribe = std::string(soap::ns::kEventing) + "/Subscribe";
const std::string kRenew = std::string(soap::ns::kEventing) + "/Renew";
const std::string kGetStatus = std::string(soap::ns::kEventing) + "/GetStatus";
const std::string kUnsubscribe = std::string(soap::ns::kEventing) + "/Unsubscribe";
const std::string kSubscriptionEnd =
    std::string(soap::ns::kEventing) + "/SubscriptionEnd";
}  // namespace actions

/// The only spec-defined delivery mode.
inline constexpr const char* kPushMode =
    "http://schemas.xmlsoap.org/ws/2004/08/eventing/DeliveryModes/Push";

/// The EPR reference property identifying a subscription at its manager
/// (wse:Identifier in the spec).
xml::QName identifier_qname();

/// Subscription manager: Renew / GetStatus / Unsubscribe over a shared
/// SubscriptionStore.
class WseSubscriptionManagerService : public container::Service {
 public:
  WseSubscriptionManagerService(SubscriptionStore& store, std::string address,
                                const common::Clock& clock);

  const std::string& address() const noexcept { return address_; }
  soap::EndpointReference epr_for(const std::string& id) const;

 private:
  SubscriptionStore& store_;
  std::string address_;
  const common::Clock& clock_;
};

/// Event source: Subscribe. Delegates storage to the manager's store (the
/// manager "may be the same web service as the event source, or a separate
/// service" — both wirings work since the store is shared).
class EventSourceService : public container::Service {
 public:
  EventSourceService(std::string name, SubscriptionStore& store,
                     WseSubscriptionManagerService& manager,
                     const common::Clock& clock);

 private:
  SubscriptionStore& store_;
  WseSubscriptionManagerService& manager_;
  const common::Clock& clock_;
};

/// The Plumbwork-style Notification Manager: "a convenient tool for an
/// event source to trigger notifications".
class NotificationManager {
 public:
  NotificationManager(SubscriptionStore& store, net::SoapCaller& sink_caller,
                      const common::Clock& clock)
      : store_(store), sink_caller_(sink_caller), clock_(clock) {}

  /// Delivers `event` to every live subscription whose filter accepts
  /// (topic, event). `action` is the wsa:Action stamped on the event
  /// messages. Returns the number delivered. Expired subscriptions are
  /// purged and their EndTo sinks receive SubscriptionEnd.
  size_t notify(const std::string& topic, const xml::Element& event,
                const std::string& action);

 private:
  SubscriptionStore& store_;
  net::SoapCaller& sink_caller_;
  const common::Clock& clock_;
};

}  // namespace gs::wse
