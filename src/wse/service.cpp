#include "wse/service.hpp"

#include "common/uuid.hpp"
#include "container/lifetime.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/propagation.hpp"
#include "telemetry/trace.hpp"

namespace gs::wse {

namespace {
xml::QName wse(const char* local) { return {soap::ns::kEventing, local}; }
constexpr const char* kWseImplNs = "http://gridstacks.dev/wse";

std::string subscription_id(const container::RequestContext& ctx) {
  std::optional<std::string> id = ctx.info.reference_header(identifier_qname());
  if (!id) {
    throw soap::SoapFault("Sender", "request carries no wse:Identifier header");
  }
  return *id;
}
}  // namespace

xml::QName identifier_qname() { return {kWseImplNs, "Identifier"}; }

WseSubscriptionManagerService::WseSubscriptionManagerService(
    SubscriptionStore& store, std::string address, const common::Clock& clock)
    : container::Service("WseSubscriptionManager"),
      store_(store),
      address_(std::move(address)),
      clock_(clock) {
  register_operation(actions::kRenew, [this](container::RequestContext& ctx) {
    std::string id = subscription_id(ctx);
    const xml::Element* expires_el = ctx.payload().child(wse("Expires"));
    if (!expires_el) throw soap::SoapFault("Sender", "Renew needs Expires");
    common::TimeMs expires =
        expires_el->text() == "infinite"
            ? WseSubscription::kNever
            : clock_.now() + container::parse_lifetime_ms(expires_el->text());
    if (!store_.renew(id, expires)) {
      throw soap::SoapFault("Sender", "unknown subscription '" + id + "'");
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kRenew + "Response");
    response.add_payload(wse("RenewResponse"))
        .append_element(wse("Expires"))
        .set_text(expires == WseSubscription::kNever ? "infinite"
                                                     : std::to_string(expires));
    return response;
  });

  register_operation(actions::kGetStatus, [this](container::RequestContext& ctx) {
    std::string id = subscription_id(ctx);
    std::optional<WseSubscription> sub = store_.get(id);
    if (!sub) throw soap::SoapFault("Sender", "unknown subscription '" + id + "'");
    soap::Envelope response =
        container::make_response(ctx, actions::kGetStatus + "Response");
    response.add_payload(wse("GetStatusResponse"))
        .append_element(wse("Expires"))
        .set_text(sub->expires == WseSubscription::kNever
                      ? "infinite"
                      : std::to_string(sub->expires));
    return response;
  });

  register_operation(actions::kUnsubscribe, [this](container::RequestContext& ctx) {
    std::string id = subscription_id(ctx);
    if (!store_.remove(id)) {
      throw soap::SoapFault("Sender", "unknown subscription '" + id + "'");
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kUnsubscribe + "Response");
    response.add_payload(wse("UnsubscribeResponse"));
    return response;
  });
}

soap::EndpointReference WseSubscriptionManagerService::epr_for(
    const std::string& id) const {
  soap::EndpointReference epr(address_);
  epr.add_reference_property(identifier_qname(), id);
  return epr;
}

EventSourceService::EventSourceService(std::string name, SubscriptionStore& store,
                                       WseSubscriptionManagerService& manager,
                                       const common::Clock& clock)
    : container::Service(std::move(name)),
      store_(store),
      manager_(manager),
      clock_(clock) {
  register_operation(actions::kSubscribe, [this](container::RequestContext& ctx) {
    const xml::Element& payload = ctx.payload();

    WseSubscription sub;
    const xml::Element* delivery = payload.child(wse("Delivery"));
    if (!delivery) throw soap::SoapFault("Sender", "Subscribe needs Delivery");
    // Delivery modes are an extension point; only push is defined, and an
    // unsupported mode is a spec-defined fault.
    sub.delivery_mode = delivery->attr("Mode").value_or(kPushMode);
    if (sub.delivery_mode != kPushMode) {
      soap::Fault fault;
      fault.code = "Sender";
      fault.subcode = "wse:DeliveryModeRequestedUnavailable";
      fault.reason = "only the Push delivery mode is supported";
      throw soap::SoapFault(std::move(fault));
    }
    const xml::Element* notify_to = delivery->child(wse("NotifyTo"));
    if (!notify_to) throw soap::SoapFault("Sender", "Delivery needs NotifyTo");
    sub.notify_to = soap::EndpointReference::from_xml(*notify_to);

    if (const xml::Element* end_to = payload.child(wse("EndTo"))) {
      sub.end_to = soap::EndpointReference::from_xml(*end_to);
    }
    if (const xml::Element* filter = payload.child(wse("Filter"))) {
      try {
        sub.dialect = dialect_from_uri(filter->attr("Dialect").value_or(""));
      } catch (const std::invalid_argument& e) {
        soap::Fault fault;
        fault.code = "Sender";
        fault.subcode = "wse:FilteringRequestedUnavailable";
        fault.reason = e.what();
        throw soap::SoapFault(std::move(fault));
      }
      sub.filter = filter->text();
      if (sub.dialect == FilterDialect::kXPath) {
        try {
          (void)xml::XPathExpr::compile(sub.filter);
        } catch (const xml::XPathError& e) {
          throw soap::SoapFault("Sender", std::string("bad filter: ") + e.what());
        }
      }
    }
    sub.expires = WseSubscription::kNever;
    if (const xml::Element* expires = payload.child(wse("Expires"))) {
      if (expires->text() != "infinite") {
        sub.expires = clock_.now() + container::parse_lifetime_ms(expires->text());
      }
    }
    common::TimeMs granted = sub.expires;
    std::string id = store_.add(std::move(sub));

    soap::Envelope response =
        container::make_response(ctx, actions::kSubscribe + "Response");
    xml::Element& body = response.add_payload(wse("SubscribeResponse"));
    body.append(manager_.epr_for(id).to_xml(wse("SubscriptionManager")));
    body.append_element(wse("Expires"))
        .set_text(granted == WseSubscription::kNever ? "infinite"
                                                     : std::to_string(granted));
    return response;
  });
}

NotificationManager::NotificationManager(SubscriptionStore& store,
                                         net::SoapCaller& sink_caller,
                                         const common::Clock& clock)
    : NotificationManager(store, sink_caller, clock, Options{}) {}

NotificationManager::NotificationManager(SubscriptionStore& store,
                                         net::SoapCaller& sink_caller,
                                         const common::Clock& clock,
                                         Options options)
    : store_(store),
      clock_(clock),
      queue_(net::DeliveryQueue::Config{
          .caller = &sink_caller,
          .pool = options.pool,
          .max_queued_per_destination = options.max_queued_per_sink,
          .evict_after_consecutive_failures = options.evict_after_failures,
          .delivered = &telemetry::MetricsRegistry::global().counter("wse.events"),
          .failures = &telemetry::MetricsRegistry::global().counter(
              "wse.delivery_failures"),
          .deliver_us =
              &telemetry::MetricsRegistry::global().histogram("wse.deliver_us"),
          .evictions = &telemetry::MetricsRegistry::global().counter(
              "wse.sinks_evicted"),
          .dead_letters =
              &telemetry::MetricsRegistry::global().counter("wse.dead_letters"),
          .on_evict = {},
          .events = &telemetry::EventLog::global(),
          .component = "wse.delivery",
      }) {}

size_t NotificationManager::notify(const std::string& topic,
                                   const xml::Element& event,
                                   const std::string& action) {
  // Expired subscriptions get SubscriptionEnd before delivery fans out.
  // These ride the same queue as events, so a dark EndTo sink is subject
  // to the same failure accounting.
  for (const WseSubscription& ended : store_.purge_expired(clock_.now())) {
    if (ended.end_to.empty()) continue;
    soap::Envelope env;
    soap::MessageInfo info;
    info.target(ended.end_to);
    info.action = actions::kSubscriptionEnd;
    info.message_id = common::new_urn_uuid();
    env.write_addressing(info);
    xml::Element& end = env.add_payload(wse("SubscriptionEnd"));
    end.append_element(wse("Status")).set_text("SourceCancelling");
    queue_.submit(ended.end_to.address(), std::move(env));
  }

  size_t delivered = 0;
  for (const WseSubscription& sub : store_.active(clock_.now())) {
    if (!sub.accepts(topic, event)) continue;
    soap::Envelope env;
    soap::MessageInfo info;
    info.target(sub.notify_to);
    info.action = action;
    info.message_id = common::new_urn_uuid();
    env.write_addressing(info);
    // WS-Eventing events are plain messages — the event document is the
    // body, no Notify wrapper.
    env.body().append(event.clone());
    telemetry::SpanScope span("wse.deliver", "delivery");
    telemetry::write_trace_header(env, span.context());
    net::DeliveryQueue::Submit result =
        queue_.submit(sub.notify_to.address(), std::move(env));
    if (result != net::DeliveryQueue::Submit::kRejected) ++delivered;
  }
  return delivered;
}

}  // namespace gs::wse
