#include "soap/template.hpp"

#include <algorithm>
#include <stdexcept>

#include "soap/envelope.hpp"

namespace gs::soap {

namespace {

// Marker strings are alphanumeric so escape_text passes them through
// unchanged, and distinctive enough never to collide with prototype
// literals (action URIs, namespace URIs, element names).
constexpr std::string_view kMidMarker = "GSTPLMSGIDMARK";
constexpr std::string_view kRelMarker = "GSTPLRELTOMARK";
constexpr std::string_view kTidMarker = "GSTPLTRACEMARK";
constexpr std::string_view kSidMarker = "GSTPLSPANMARK";
constexpr std::string_view kPlaceholderName = "gs-tpl-fragment";

bool needs_escape(std::string_view v, bool in_attribute) {
  for (char c : v) {
    if (c == '&' || c == '<' || c == '>') return true;
    if (in_attribute && (c == '"' || c == '\t' || c == '\n' || c == '\r'))
      return true;
    if (static_cast<unsigned char>(c) < 0x20) return true;
  }
  return false;
}

}  // namespace

std::string ResponseTemplate::slot_marker(int i) {
  return "GSTPLSLOT" + std::to_string(i) + "MARK";
}

std::unique_ptr<xml::Element> ResponseTemplate::placeholder() {
  return std::make_unique<xml::Element>(xml::QName(std::string(kPlaceholderName)));
}

ResponseTemplate::Variant ResponseTemplate::compile_variant(
    const xml::Element& root, const Spec& spec, bool traced) {
  Variant v;
  std::vector<xml::ProbePoint> probes;
  auto skeleton = std::make_shared<std::string>(
      xml::write_with_probes(root, kPlaceholderName, probes));

  size_t expected_probes = spec.fragment ? 1u : 0u;
  if (probes.size() != expected_probes) {
    throw std::logic_error("response template '" + spec.action + "': " +
                           std::to_string(probes.size()) +
                           " fragment placeholders, expected " +
                           std::to_string(expected_probes));
  }

  struct Mark {
    std::size_t pos;
    std::size_t len;
    Piece piece;
  };
  std::vector<Mark> marks;
  auto add_marker = [&](std::string_view marker, Piece::Kind kind, int slot) {
    std::size_t pos = skeleton->find(marker);
    if (pos == std::string::npos) {
      throw std::logic_error("response template '" + spec.action +
                             "': marker not found: " + std::string(marker));
    }
    if (skeleton->find(marker, pos + 1) != std::string::npos) {
      throw std::logic_error("response template '" + spec.action +
                             "': marker not unique: " + std::string(marker));
    }
    marks.push_back({pos, marker.size(), {kind, 0, 0, slot}});
  };

  for (int i = 0; i < spec.slots; ++i) {
    add_marker(slot_marker(i), Piece::kTextSlot, i);
  }
  add_marker(kMidMarker, Piece::kTextSlot, kSlotMessageId);
  add_marker(kRelMarker, Piece::kTextSlot, kSlotRelatesTo);
  if (traced) {
    add_marker(kTidMarker, Piece::kAttrSlot, kSlotTraceId);
    add_marker(kSidMarker, Piece::kAttrSlot, kSlotSpanId);
  }
  if (spec.fragment) {
    v.frag_bindings = probes[0].bindings;
    v.frag_gen = probes[0].gen_counter;
    marks.push_back({probes[0].offset, 0, {Piece::kFragment, 0, 0, 0}});
  }

  std::sort(marks.begin(), marks.end(),
            [](const Mark& a, const Mark& b) { return a.pos < b.pos; });

  std::size_t cursor = 0;
  for (const Mark& m : marks) {
    if (m.pos > cursor) v.pieces.push_back({Piece::kLiteral, cursor, m.pos, 0});
    v.pieces.push_back(m.piece);
    cursor = m.pos + m.len;
  }
  if (cursor < skeleton->size()) {
    v.pieces.push_back({Piece::kLiteral, cursor, skeleton->size(), 0});
  }
  v.skeleton = std::move(skeleton);
  return v;
}

std::shared_ptr<const ResponseTemplate> ResponseTemplate::compile(Spec spec) {
  // The prototype is built through the exact DOM-path code: make_response's
  // header order (Action, MessageID, RelatesTo — To/ReplyTo empty and
  // skipped), then the payload, then the trace header the container appends
  // last. Serializing it therefore yields the DOM writer's bytes with
  // markers where the variable parts go.
  Envelope proto;
  MessageInfo info;
  info.action = spec.action;
  info.message_id = std::string(kMidMarker);
  info.relates_to = std::string(kRelMarker);
  proto.write_addressing(info);
  spec.build_payload(proto.body());

  auto tpl = std::shared_ptr<ResponseTemplate>(new ResponseTemplate());
  tpl->plain_ = compile_variant(proto.root(), spec, /*traced=*/false);

  xml::Element& trace = proto.header().append_element(spec.trace_qname);
  trace.set_attr("TraceId", std::string(kTidMarker));
  trace.set_attr("SpanId", std::string(kSidMarker));
  tpl->traced_ = compile_variant(proto.root(), spec, /*traced=*/true);

  tpl->spec_ = std::move(spec);
  return tpl;
}

const std::string& ResponseTemplate::slot_value(const PendingResponse& pr,
                                                int slot) const {
  switch (slot) {
    case kSlotMessageId:
      return pr.message_id;
    case kSlotRelatesTo:
      return pr.relates_to;
    case kSlotTraceId:
      return pr.trace_id;
    case kSlotSpanId:
      return pr.span_id;
    default:
      return pr.values.at(static_cast<std::size_t>(slot));
  }
}

void ResponseTemplate::render(const PendingResponse& pr,
                              std::shared_ptr<const void> keepalive,
                              common::BufferChain& out) const {
  if (static_cast<int>(pr.values.size()) != spec_.slots) {
    throw std::logic_error("response template '" + spec_.action + "': " +
                           std::to_string(pr.values.size()) + " values for " +
                           std::to_string(spec_.slots) + " slots");
  }
  const Variant& v = pr.trace_id.empty() ? plain_ : traced_;
  for (const Piece& p : v.pieces) {
    switch (p.kind) {
      case Piece::kLiteral:
        out.append_shared(v.skeleton, std::string_view(*v.skeleton)
                                          .substr(p.begin, p.end - p.begin));
        break;
      case Piece::kTextSlot:
      case Piece::kAttrSlot: {
        const std::string& raw = slot_value(pr, p.slot);
        bool attr = p.kind == Piece::kAttrSlot;
        if (needs_escape(raw, attr)) {
          out.append(xml::escape_text(raw, attr));
        } else if (keepalive) {
          out.append_shared(keepalive, raw);  // view into pr's storage
        } else {
          out.append(raw);
        }
        break;
      }
      case Piece::kFragment: {
        if (pr.fragment_shared) {
          out.append_shared(pr.fragment_shared, *pr.fragment_shared);
        } else if (!pr.fragment_raw.empty()) {
          if (keepalive) {
            out.append_shared(keepalive, pr.fragment_raw);
          } else {
            out.append(pr.fragment_raw);
          }
        } else {
          if (pr.fragment.empty()) {
            throw std::logic_error("response template '" + spec_.action +
                                   "': fragment slot with no content");
          }
          std::vector<const xml::Element*> nodes;
          nodes.reserve(pr.fragment.size());
          for (const auto& el : pr.fragment) nodes.push_back(el.get());
          int gen = v.frag_gen;
          out.append(xml::write_fragment(nodes, v.frag_bindings, gen));
        }
        break;
      }
    }
  }
}

}  // namespace gs::soap
