// Namespace URIs for the specifications implemented in this repository.
// The URIs match the 2004/2005-era documents the paper cites.
#pragma once

namespace gs::soap::ns {

inline constexpr const char* kEnvelope = "http://www.w3.org/2003/05/soap-envelope";
inline constexpr const char* kAddressing =
    "http://schemas.xmlsoap.org/ws/2004/08/addressing";

// WSRF family (OASIS).
inline constexpr const char* kWsrfRp = "http://docs.oasis-open.org/wsrf/rp-2";
inline constexpr const char* kWsrfRl = "http://docs.oasis-open.org/wsrf/rl-2";
inline constexpr const char* kWsrfSg = "http://docs.oasis-open.org/wsrf/sg-2";
inline constexpr const char* kWsrfBf = "http://docs.oasis-open.org/wsrf/bf-2";

// WS-Notification family (OASIS).
inline constexpr const char* kWsnBase = "http://docs.oasis-open.org/wsn/b-2";
inline constexpr const char* kWsnBroker = "http://docs.oasis-open.org/wsn/br-2";
inline constexpr const char* kWsnTopics = "http://docs.oasis-open.org/wsn/t-1";

// WS-Transfer / WS-Eventing (Microsoft et al. member submissions).
inline constexpr const char* kTransfer =
    "http://schemas.xmlsoap.org/ws/2004/09/transfer";
inline constexpr const char* kEventing =
    "http://schemas.xmlsoap.org/ws/2004/08/eventing";

// WS-Security (message-level X.509 signing).
inline constexpr const char* kSecurity =
    "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd";
inline constexpr const char* kDsig = "http://www.w3.org/2000/09/xmldsig#";

// This repository's own service namespaces.
inline constexpr const char* kCounter = "http://gridstacks.dev/counter";
inline constexpr const char* kGridBox = "http://gridstacks.dev/gridbox";
inline constexpr const char* kSched = "http://gridstacks.dev/sched";

}  // namespace gs::soap::ns
