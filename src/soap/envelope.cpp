#include "soap/envelope.hpp"

#include "soap/namespaces.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace gs::soap {

namespace {
xml::QName env_name(const char* local) { return {ns::kEnvelope, local}; }
xml::QName wsa_name(const char* local) { return {ns::kAddressing, local}; }
}  // namespace

Envelope::Envelope() : root_(std::make_unique<xml::Element>(env_name("Envelope"))) {
  root_->declare_prefix("soap", ns::kEnvelope);
  root_->declare_prefix("wsa", ns::kAddressing);
  root_->append_element(env_name("Header"));
  root_->append_element(env_name("Body"));
}

Envelope& Envelope::operator=(const Envelope& other) {
  if (this != &other) root_ = other.root_->clone_element();
  return *this;
}

xml::Element& Envelope::header() {
  xml::Element* h = root_->child(env_name("Header"));
  if (!h) h = &root_->append_element(env_name("Header"));
  return *h;
}

const xml::Element& Envelope::header() const {
  return const_cast<Envelope*>(this)->header();
}

xml::Element& Envelope::body() {
  xml::Element* b = root_->child(env_name("Body"));
  if (!b) b = &root_->append_element(env_name("Body"));
  return *b;
}

const xml::Element& Envelope::body() const {
  return const_cast<Envelope*>(this)->body();
}

const xml::Element* Envelope::payload() const {
  auto kids = body().child_elements();
  return kids.empty() ? nullptr : kids.front();
}

xml::Element* Envelope::payload() {
  auto kids = body().child_elements();
  return kids.empty() ? nullptr : kids.front();
}

xml::Element& Envelope::add_payload(xml::QName name) {
  return body().append_element(std::move(name));
}

void Envelope::add_payload(std::unique_ptr<xml::Element> el) {
  body().append(std::move(el));
}

void Envelope::write_addressing(const MessageInfo& info) {
  xml::Element& h = header();
  if (!info.to.empty()) h.append_element(wsa_name("To")).set_text(info.to);
  if (!info.action.empty()) h.append_element(wsa_name("Action")).set_text(info.action);
  if (!info.message_id.empty())
    h.append_element(wsa_name("MessageID")).set_text(info.message_id);
  if (!info.relates_to.empty())
    h.append_element(wsa_name("RelatesTo")).set_text(info.relates_to);
  if (!info.reply_to.empty()) h.append(info.reply_to.to_xml(wsa_name("ReplyTo")));
  for (const auto& rh : info.reference_headers) h.append(rh->clone());
}

MessageInfo Envelope::read_addressing() const {
  MessageInfo info;
  const xml::Element& h = header();
  if (const auto* e = h.child(wsa_name("To"))) info.to = e->text();
  if (const auto* e = h.child(wsa_name("Action"))) info.action = e->text();
  if (const auto* e = h.child(wsa_name("MessageID"))) info.message_id = e->text();
  if (const auto* e = h.child(wsa_name("RelatesTo"))) info.relates_to = e->text();
  if (const auto* e = h.child(wsa_name("ReplyTo")))
    info.reply_to = EndpointReference::from_xml(*e);
  for (const auto* e : h.child_elements()) {
    if (e->name().ns() == ns::kAddressing || e->name().ns() == ns::kSecurity ||
        e->name().ns() == ns::kDsig) {
      continue;  // addressing and security headers are not reference headers
    }
    info.reference_headers.push_back(e->clone_element());
  }
  return info;
}

bool Envelope::is_fault() const {
  const xml::Element* p = payload();
  return p && p->name() == env_name("Fault");
}

Fault Envelope::fault() const {
  if (!is_fault()) throw std::runtime_error("envelope is not a fault");
  const xml::Element& f = *payload();
  Fault out;
  if (const auto* code = f.child(env_name("Code"))) {
    if (const auto* value = code->child(env_name("Value"))) {
      std::string v = value->text();
      // Strip any prefix; we only keep the local code name.
      if (auto colon = v.find(':'); colon != std::string::npos) v = v.substr(colon + 1);
      out.code = v;
    }
    if (const auto* sub = code->child(env_name("Subcode"))) {
      if (const auto* value = sub->child(env_name("Value"))) out.subcode = value->text();
    }
  }
  if (const auto* reason = f.child(env_name("Reason"))) {
    if (const auto* text = reason->child(env_name("Text"))) out.reason = text->text();
  }
  if (const auto* detail = f.child(env_name("Detail"))) out.detail = detail->text();
  return out;
}

Envelope Envelope::make_fault(const Fault& f) {
  Envelope env;
  xml::Element& fault = env.add_payload(env_name("Fault"));
  xml::Element& code = fault.append_element(env_name("Code"));
  code.append_element(env_name("Value")).set_text("soap:" + f.code);
  if (!f.subcode.empty()) {
    code.append_element(env_name("Subcode"))
        .append_element(env_name("Value"))
        .set_text(f.subcode);
  }
  fault.append_element(env_name("Reason"))
      .append_element(env_name("Text"))
      .set_text(f.reason);
  if (!f.detail.empty()) fault.append_element(env_name("Detail")).set_text(f.detail);
  return env;
}

void Envelope::throw_if_fault() const {
  if (is_fault()) throw SoapFault(fault());
}

std::string Envelope::to_xml() const { return xml::write(*root_); }

Envelope Envelope::from_xml(std::string_view wire) {
  auto root = xml::parse_element(wire);
  if (root->name() != env_name("Envelope")) {
    throw std::runtime_error("not a SOAP envelope: " + root->name().clark());
  }
  return Envelope(std::move(root));
}

}  // namespace gs::soap
