#include "soap/envelope.hpp"

#include <atomic>

#include "soap/namespaces.hpp"
#include "soap/template.hpp"
#include "xml/canonical.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace gs::soap {

namespace {

std::atomic<bool> g_wire_fast_path{true};

xml::QName env_name(const char* local) { return {ns::kEnvelope, local}; }
xml::QName wsa_name(const char* local) { return {ns::kAddressing, local}; }

}  // namespace

void Envelope::set_wire_fast_path(bool on) noexcept {
  g_wire_fast_path.store(on, std::memory_order_relaxed);
}

bool Envelope::wire_fast_path() noexcept {
  return g_wire_fast_path.load(std::memory_order_relaxed);
}

Envelope::Envelope() : root_(std::make_unique<xml::Element>(env_name("Envelope"))) {
  root_->declare_prefix("soap", ns::kEnvelope);
  root_->declare_prefix("wsa", ns::kAddressing);
  root_->append_element(env_name("Header"));
  root_->append_element(env_name("Body"));
}

Envelope& Envelope::operator=(const Envelope& other) {
  if (this == &other) return *this;
  root_.reset();
  view_.reset();
  pending_.reset();
  payload_dom_.reset();
  header_cache_.clear();
  signed_cache_.reset();
  retired_.clear();
  if (other.view_) {
    // Share the immutable wire view; this copy materializes its own DOM
    // lazily if and when it needs one.
    view_ = other.view_;
  } else if (other.root_) {
    root_ = other.root_->clone_element();
  } else if (other.pending_) {
    // Snapshot the pending response as a DOM (copies are cold paths; the
    // original stays a template and can still take a trace stamp).
    root_ = xml::parse_element(other.pending_->render_string());
  }
  return *this;
}

Envelope Envelope::make_pending(std::shared_ptr<PendingResponse> pending) {
  Envelope env(std::unique_ptr<xml::Element>(nullptr));
  env.pending_ = std::move(pending);
  return env;
}

bool Envelope::set_pending_trace(std::string trace_id, std::string span_id) {
  if (!pending_ || root_) return false;
  pending_->trace_id = std::move(trace_id);
  pending_->span_id = std::move(span_id);
  return true;
}

xml::Element& Envelope::mut() {
  if (!root_) {
    if (view_) {
      root_ = view_->to_dom();
    } else if (pending_) {
      root_ = xml::parse_element(pending_->render_string());
    } else {
      root_ = std::make_unique<xml::Element>(env_name("Envelope"));
    }
  }
  view_.reset();
  pending_.reset();
  // Previously handed-out subtree pointers must survive the transition.
  if (payload_dom_) retired_.push_back(std::move(payload_dom_));
  for (auto& h : header_cache_) retired_.push_back(std::move(h));
  header_cache_.clear();
  signed_cache_.reset();
  return *root_;
}

const xml::Element& Envelope::dom() const {
  if (!root_) {
    if (view_) {
      root_ = view_->to_dom();  // view_ stays: it is still the wire form
    } else if (pending_) {
      // A structural read freezes the template response into a DOM; later
      // trace stamping falls back to the DOM path (set_pending_trace
      // returns false once root_ exists).
      root_ = xml::parse_element(pending_->render_string());
    } else {
      // Unreachable in practice; mirror the default-constructed shape.
      root_ = std::make_unique<xml::Element>(env_name("Envelope"));
    }
  }
  return *root_;
}

const xml::ArenaNode* Envelope::view_header() const {
  if (!view_ || root_) return nullptr;
  return view_->root().child(ns::kEnvelope, "Header");
}

const xml::ArenaNode* Envelope::view_body() const {
  if (!view_ || root_) return nullptr;
  return view_->root().child(ns::kEnvelope, "Body");
}

xml::Element& Envelope::header() {
  xml::Element& r = mut();
  xml::Element* h = r.child(env_name("Header"));
  if (!h) h = &r.append_element(env_name("Header"));
  return *h;
}

const xml::Element& Envelope::header() const {
  // Materializes a DOM for the read but keeps the wire/pending backing —
  // only mutating accessors invalidate it. A missing Header is created on
  // the materialized tree (legacy behavior for header-less documents).
  xml::Element& r = const_cast<xml::Element&>(dom());
  xml::Element* h = r.child(env_name("Header"));
  if (!h) h = &r.append_element(env_name("Header"));
  return *h;
}

xml::Element& Envelope::body() {
  xml::Element& r = mut();
  xml::Element* b = r.child(env_name("Body"));
  if (!b) b = &r.append_element(env_name("Body"));
  return *b;
}

const xml::Element& Envelope::body() const {
  xml::Element& r = const_cast<xml::Element&>(dom());
  xml::Element* b = r.child(env_name("Body"));
  if (!b) b = &r.append_element(env_name("Body"));
  return *b;
}

const xml::Element* Envelope::payload() const {
  if (const xml::ArenaNode* b = view_body()) {
    const xml::ArenaNode* p = b->first_element();
    if (!p) return nullptr;
    if (!payload_dom_) payload_dom_ = xml::ArenaDocument::to_dom(*p);
    return payload_dom_.get();
  }
  if (pending_ && !root_) dom();
  auto kids = body().child_elements();
  return kids.empty() ? nullptr : kids.front();
}

xml::Element* Envelope::payload() {
  auto kids = body().child_elements();
  return kids.empty() ? nullptr : kids.front();
}

xml::Element& Envelope::add_payload(xml::QName name) {
  return body().append_element(std::move(name));
}

void Envelope::add_payload(std::unique_ptr<xml::Element> el) {
  body().append(std::move(el));
}

void Envelope::write_addressing(const MessageInfo& info) {
  xml::Element& h = header();
  if (!info.to.empty()) h.append_element(wsa_name("To")).set_text(info.to);
  if (!info.action.empty()) h.append_element(wsa_name("Action")).set_text(info.action);
  if (!info.message_id.empty())
    h.append_element(wsa_name("MessageID")).set_text(info.message_id);
  if (!info.relates_to.empty())
    h.append_element(wsa_name("RelatesTo")).set_text(info.relates_to);
  if (!info.reply_to.empty()) h.append(info.reply_to.to_xml(wsa_name("ReplyTo")));
  for (const auto& rh : info.reference_headers) h.append(rh->clone());
}

MessageInfo Envelope::read_addressing() const {
  MessageInfo info;
  if (const xml::ArenaNode* h = view_header()) {
    // One pass over the header view: the four text headers bind to their
    // first occurrence (Element::child semantics); ReplyTo and reference
    // headers materialize only their own subtrees.
    bool have_to = false, have_action = false, have_mid = false,
         have_rel = false, have_reply = false;
    for (const xml::ArenaNode* e = h->first_child; e; e = e->next) {
      if (e->kind != xml::NodeKind::kElement) continue;
      if (e->ns == ns::kAddressing) {
        if (!have_to && e->local == "To") {
          info.to = e->text();
          have_to = true;
        } else if (!have_action && e->local == "Action") {
          info.action = e->text();
          have_action = true;
        } else if (!have_mid && e->local == "MessageID") {
          info.message_id = e->text();
          have_mid = true;
        } else if (!have_rel && e->local == "RelatesTo") {
          info.relates_to = e->text();
          have_rel = true;
        } else if (!have_reply && e->local == "ReplyTo") {
          info.reply_to =
              EndpointReference::from_xml(*xml::ArenaDocument::to_dom(*e));
          have_reply = true;
        }
        continue;
      }
      if (e->ns == ns::kSecurity || e->ns == ns::kDsig) {
        continue;  // addressing and security headers are not reference headers
      }
      info.reference_headers.push_back(xml::ArenaDocument::to_dom(*e));
    }
    return info;
  }
  const xml::Element& h = header();
  if (const auto* e = h.child(wsa_name("To"))) info.to = e->text();
  if (const auto* e = h.child(wsa_name("Action"))) info.action = e->text();
  if (const auto* e = h.child(wsa_name("MessageID"))) info.message_id = e->text();
  if (const auto* e = h.child(wsa_name("RelatesTo"))) info.relates_to = e->text();
  if (const auto* e = h.child(wsa_name("ReplyTo")))
    info.reply_to = EndpointReference::from_xml(*e);
  for (const auto* e : h.child_elements()) {
    if (e->name().ns() == ns::kAddressing || e->name().ns() == ns::kSecurity ||
        e->name().ns() == ns::kDsig) {
      continue;  // addressing and security headers are not reference headers
    }
    info.reference_headers.push_back(e->clone_element());
  }
  return info;
}

const xml::Element* Envelope::header_child(const xml::QName& name) const {
  if (const xml::ArenaNode* h = view_header()) {
    const xml::ArenaNode* e = h->child(name.ns(), name.local());
    if (!e) return nullptr;
    for (const auto& cached : header_cache_) {
      if (cached->name() == name) return cached.get();
    }
    header_cache_.push_back(xml::ArenaDocument::to_dom(*e));
    return header_cache_.back().get();
  }
  if (pending_ && !root_) dom();
  return header().child(name);
}

std::optional<std::string> Envelope::header_child_attr(
    const xml::QName& name, std::string_view attr) const {
  if (const xml::ArenaNode* h = view_header()) {
    const xml::ArenaNode* e = h->child(name.ns(), name.local());
    if (!e) return std::nullopt;
    if (auto v = e->attr_local(attr)) return std::string(*v);
    return std::nullopt;
  }
  if (pending_ && !root_) dom();
  const xml::Element* e = header().child(name);
  if (!e) return std::nullopt;
  return e->attr(attr);
}

bool Envelope::is_fault() const {
  if (pending_ && !root_) return false;  // templates never render faults
  if (const xml::ArenaNode* b = view_body()) {
    const xml::ArenaNode* p = b->first_element();
    return p && p->ns == ns::kEnvelope && p->local == "Fault";
  }
  const xml::Element* p = payload();
  return p && p->name() == env_name("Fault");
}

Fault Envelope::fault() const {
  if (!is_fault()) throw std::runtime_error("envelope is not a fault");
  const xml::Element& f = *payload();
  Fault out;
  if (const auto* code = f.child(env_name("Code"))) {
    if (const auto* value = code->child(env_name("Value"))) {
      std::string v = value->text();
      // Strip any prefix; we only keep the local code name.
      if (auto colon = v.find(':'); colon != std::string::npos) v = v.substr(colon + 1);
      out.code = v;
    }
    if (const auto* sub = code->child(env_name("Subcode"))) {
      if (const auto* value = sub->child(env_name("Value"))) out.subcode = value->text();
    }
  }
  if (const auto* reason = f.child(env_name("Reason"))) {
    if (const auto* text = reason->child(env_name("Text"))) out.reason = text->text();
  }
  if (const auto* detail = f.child(env_name("Detail"))) out.detail = detail->text();
  return out;
}

Envelope Envelope::make_fault(const Fault& f) {
  Envelope env;
  xml::Element& fault = env.add_payload(env_name("Fault"));
  xml::Element& code = fault.append_element(env_name("Code"));
  code.append_element(env_name("Value")).set_text("soap:" + f.code);
  if (!f.subcode.empty()) {
    code.append_element(env_name("Subcode"))
        .append_element(env_name("Value"))
        .set_text(f.subcode);
  }
  fault.append_element(env_name("Reason"))
      .append_element(env_name("Text"))
      .set_text(f.reason);
  if (!f.detail.empty()) fault.append_element(env_name("Detail")).set_text(f.detail);
  return env;
}

void Envelope::throw_if_fault() const {
  if (is_fault()) throw SoapFault(fault());
}

std::string Envelope::to_xml() const {
  if (view_ && !root_) return view_->buffer();
  if (pending_ && !root_) return pending_->render_string();
  return xml::write(dom());
}

void Envelope::wire_chain(common::BufferChain& chain,
                          std::shared_ptr<std::string>* scratch) const {
  if (pending_ && !root_) {
    pending_->render(pending_, chain);
    return;
  }
  if (view_ && !root_) {
    // Alias the document so the buffer outlives this envelope.
    chain.append_shared(
        std::shared_ptr<const void>(view_, view_->buffer().data()),
        view_->buffer());
    return;
  }
  if (scratch) {
    std::shared_ptr<std::string>& buf = *scratch;
    // Reuse the buffer's capacity unless a previously returned chain still
    // references it.
    if (!buf || buf.use_count() > 1) buf = std::make_shared<std::string>();
    xml::write_into(*buf, dom());
    chain.append_shared(buf, *buf);
    return;
  }
  chain.append(xml::write(dom()));
}

const std::string& Envelope::canonical_signed_content() const {
  if (signed_cache_) return *signed_cache_;
  static constexpr const char* kSignedHeaders[] = {"To", "Action", "MessageID",
                                                   "RelatesTo"};
  auto out = std::make_unique<std::string>();
  if (view_ && !root_) {
    // Canonicalize straight off the arena view — no DOM nodes.
    if (const xml::ArenaNode* b = view_body()) *out += xml::canonicalize_view(*b);
    if (const xml::ArenaNode* h = view_header()) {
      for (const char* name : kSignedHeaders) {
        if (const xml::ArenaNode* e = h->child(ns::kAddressing, name)) {
          *out += xml::canonicalize_view(*e);
        }
      }
    }
  } else {
    *out = xml::canonicalize(body());
    for (const char* name : kSignedHeaders) {
      if (const xml::Element* h = header().child(wsa_name(name))) {
        *out += xml::canonicalize(*h);
      }
    }
  }
  signed_cache_ = std::move(out);
  return *signed_cache_;
}

Envelope Envelope::from_xml(std::string_view wire) {
  if (wire_fast_path()) {
    auto doc = std::make_shared<const xml::ArenaDocument>(
        xml::ArenaDocument::parse(std::string(wire)));
    const xml::ArenaNode& root = doc->root();
    if (root.ns != ns::kEnvelope || root.local != "Envelope") {
      throw std::runtime_error("not a SOAP envelope: " + root.clark());
    }
    return Envelope(std::move(doc));
  }
  auto root = xml::parse_element(wire);
  if (root->name() != env_name("Envelope")) {
    throw std::runtime_error("not a SOAP envelope: " + root->name().clark());
  }
  return Envelope(std::move(root));
}

}  // namespace gs::soap
