// WS-Addressing: endpoint references and message-addressing headers.
//
// Both stacks lean on WS-Addressing. WSRF's WS-Resource Access Pattern puts
// the resource identity in EPR ReferenceProperties; the paper's WS-Transfer
// implementation does the same with its GUID resource ids (and, in
// Grid-in-a-Box, deliberately *non-opaque* ids like "DN/filename").
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xml/node.hpp"
#include "xml/qname.hpp"

namespace gs::soap {

/// A WS-Addressing EndpointReference: an address URI plus reference
/// properties (arbitrary XML elements echoed as SOAP headers on every
/// message to the endpoint).
class EndpointReference {
 public:
  EndpointReference() = default;
  explicit EndpointReference(std::string address) : address_(std::move(address)) {}

  EndpointReference(const EndpointReference& other) { *this = other; }
  EndpointReference& operator=(const EndpointReference& other);
  EndpointReference(EndpointReference&&) noexcept = default;
  EndpointReference& operator=(EndpointReference&&) noexcept = default;

  const std::string& address() const noexcept { return address_; }
  void set_address(std::string a) { address_ = std::move(a); }
  bool empty() const noexcept { return address_.empty(); }

  /// Adds a reference property element (ownership transferred).
  void add_reference_property(std::unique_ptr<xml::Element> prop);
  /// Convenience: adds `<name>value</name>`.
  void add_reference_property(xml::QName name, std::string value);

  const std::vector<std::unique_ptr<xml::Element>>& reference_properties() const {
    return props_;
  }
  /// Text of the first reference property with this name, or nullopt.
  std::optional<std::string> reference_property(const xml::QName& name) const;

  /// Serializes as `<wrapper>` in WS-Addressing form
  /// (Address + ReferenceProperties).
  std::unique_ptr<xml::Element> to_xml(const xml::QName& wrapper) const;
  /// Parses an EPR from WS-Addressing form. Throws std::runtime_error when
  /// the Address element is missing.
  static EndpointReference from_xml(const xml::Element& el);

  friend bool operator==(const EndpointReference& a, const EndpointReference& b);

 private:
  std::string address_;
  std::vector<std::unique_ptr<xml::Element>> props_;
};

/// The per-message addressing headers.
struct MessageInfo {
  std::string to;          // wsa:To — destination address
  std::string action;      // wsa:Action — operation URI
  std::string message_id;  // wsa:MessageID
  std::string relates_to;  // wsa:RelatesTo — request MessageID on replies
  EndpointReference reply_to;  // wsa:ReplyTo — async reply sink
  /// Reference properties of the target EPR, echoed as raw headers
  /// (this is how a WS-Resource / WS-Transfer resource is identified).
  std::vector<std::unique_ptr<xml::Element>> reference_headers;

  MessageInfo() = default;
  MessageInfo(const MessageInfo& other) { *this = other; }
  MessageInfo& operator=(const MessageInfo& other);
  MessageInfo(MessageInfo&&) noexcept = default;
  MessageInfo& operator=(MessageInfo&&) noexcept = default;

  /// Copies `epr`'s address into `to` and clones its reference properties
  /// into `reference_headers` — addressing a message *to a resource*.
  void target(const EndpointReference& epr);

  /// Text of the first reference header with this name, or nullopt.
  std::optional<std::string> reference_header(const xml::QName& name) const;
};

}  // namespace gs::soap
