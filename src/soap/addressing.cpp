#include "soap/addressing.hpp"

#include <stdexcept>

#include "soap/namespaces.hpp"

namespace gs::soap {

EndpointReference& EndpointReference::operator=(const EndpointReference& other) {
  if (this == &other) return *this;
  address_ = other.address_;
  props_.clear();
  props_.reserve(other.props_.size());
  for (const auto& p : other.props_) props_.push_back(p->clone_element());
  return *this;
}

void EndpointReference::add_reference_property(std::unique_ptr<xml::Element> prop) {
  props_.push_back(std::move(prop));
}

void EndpointReference::add_reference_property(xml::QName name, std::string value) {
  auto el = std::make_unique<xml::Element>(std::move(name));
  el->set_text(std::move(value));
  props_.push_back(std::move(el));
}

std::optional<std::string> EndpointReference::reference_property(
    const xml::QName& name) const {
  for (const auto& p : props_) {
    if (p->name() == name) return p->text();
  }
  return std::nullopt;
}

std::unique_ptr<xml::Element> EndpointReference::to_xml(
    const xml::QName& wrapper) const {
  auto el = std::make_unique<xml::Element>(wrapper);
  el->append_element(ns::kAddressing, "Address").set_text(address_);
  if (!props_.empty()) {
    auto& rp = el->append_element(ns::kAddressing, "ReferenceProperties");
    for (const auto& p : props_) rp.append(p->clone());
  }
  return el;
}

EndpointReference EndpointReference::from_xml(const xml::Element& el) {
  const xml::Element* addr = el.child(xml::QName(ns::kAddressing, "Address"));
  if (!addr) throw std::runtime_error("EndpointReference is missing wsa:Address");
  EndpointReference epr(addr->text());
  if (const xml::Element* rp =
          el.child(xml::QName(ns::kAddressing, "ReferenceProperties"))) {
    for (const auto* prop : rp->child_elements()) {
      epr.add_reference_property(prop->clone_element());
    }
  }
  return epr;
}

bool operator==(const EndpointReference& a, const EndpointReference& b) {
  if (a.address_ != b.address_) return false;
  if (a.props_.size() != b.props_.size()) return false;
  for (size_t i = 0; i < a.props_.size(); ++i) {
    if (!xml::Element::deep_equal(*a.props_[i], *b.props_[i])) return false;
  }
  return true;
}

MessageInfo& MessageInfo::operator=(const MessageInfo& other) {
  if (this == &other) return *this;
  to = other.to;
  action = other.action;
  message_id = other.message_id;
  relates_to = other.relates_to;
  reply_to = other.reply_to;
  reference_headers.clear();
  reference_headers.reserve(other.reference_headers.size());
  for (const auto& h : other.reference_headers) {
    reference_headers.push_back(h->clone_element());
  }
  return *this;
}

void MessageInfo::target(const EndpointReference& epr) {
  to = epr.address();
  reference_headers.clear();
  for (const auto& p : epr.reference_properties()) {
    reference_headers.push_back(p->clone_element());
  }
}

std::optional<std::string> MessageInfo::reference_header(
    const xml::QName& name) const {
  for (const auto& h : reference_headers) {
    if (h->name() == name) return h->text();
  }
  return std::nullopt;
}

}  // namespace gs::soap
