// SOAP 1.2 envelopes.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "soap/addressing.hpp"
#include "xml/node.hpp"

namespace gs::soap {

/// A SOAP fault (SOAP 1.2 shape: Code/Value, Reason/Text, Detail).
struct Fault {
  std::string code = "Receiver";  // SOAP fault code local name
  std::string reason;
  std::string detail;       // serialized detail payload (may be empty)
  std::string subcode;      // spec-defined subcode (e.g. WS-BaseFaults type)
};

/// Thrown by client proxies when a call returns a fault, and by service code
/// to produce one.
class SoapFault : public std::runtime_error {
 public:
  explicit SoapFault(Fault fault)
      : std::runtime_error(fault.reason), fault_(std::move(fault)) {}
  SoapFault(std::string code, std::string reason)
      : SoapFault(Fault{std::move(code), std::move(reason), "", ""}) {}

  const Fault& fault() const noexcept { return fault_; }

 private:
  Fault fault_;
};

/// A SOAP envelope: Header + Body, with WS-Addressing accessors.
///
/// The envelope owns an XML tree and is what actually crosses the simulated
/// wire (serialized with `to_xml`, re-parsed with `from_xml`), so every
/// request/response in both stacks pays real serialization costs.
class Envelope {
 public:
  /// An empty envelope with Header and Body.
  Envelope();
  Envelope(Envelope&&) noexcept = default;
  Envelope& operator=(Envelope&&) noexcept = default;
  Envelope(const Envelope& other) : root_(other.root_->clone_element()) {}
  Envelope& operator=(const Envelope& other);

  xml::Element& root() noexcept { return *root_; }
  const xml::Element& root() const noexcept { return *root_; }
  xml::Element& header();
  const xml::Element& header() const;
  xml::Element& body();
  const xml::Element& body() const;

  /// First child element of the Body (the operation payload), or nullptr.
  const xml::Element* payload() const;
  xml::Element* payload();
  /// Appends a payload element to the Body and returns it.
  xml::Element& add_payload(xml::QName name);
  void add_payload(std::unique_ptr<xml::Element> el);

  // --- WS-Addressing ---------------------------------------------------------

  /// Writes To/Action/MessageID/RelatesTo/ReplyTo headers plus the raw
  /// reference headers from `info`.
  void write_addressing(const MessageInfo& info);
  /// Reads the addressing headers back out (inverse of write_addressing).
  MessageInfo read_addressing() const;

  // --- Faults -----------------------------------------------------------------

  bool is_fault() const;
  /// Parses the Body fault; throws std::runtime_error when not a fault.
  Fault fault() const;
  /// An envelope whose Body is the given fault.
  static Envelope make_fault(const Fault& f);
  /// Throws SoapFault when this envelope is a fault (client-side check).
  void throw_if_fault() const;

  // --- Wire form ---------------------------------------------------------------

  std::string to_xml() const;
  static Envelope from_xml(std::string_view wire);

 private:
  explicit Envelope(std::unique_ptr<xml::Element> root) : root_(std::move(root)) {}
  std::unique_ptr<xml::Element> root_;
};

}  // namespace gs::soap
