// SOAP 1.2 envelopes.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/buffer_chain.hpp"
#include "soap/addressing.hpp"
#include "xml/node.hpp"
#include "xml/pull.hpp"

namespace gs::soap {

struct PendingResponse;

/// A SOAP fault (SOAP 1.2 shape: Code/Value, Reason/Text, Detail).
struct Fault {
  std::string code = "Receiver";  // SOAP fault code local name
  std::string reason;
  std::string detail;       // serialized detail payload (may be empty)
  std::string subcode;      // spec-defined subcode (e.g. WS-BaseFaults type)
};

/// Thrown by client proxies when a call returns a fault, and by service code
/// to produce one.
class SoapFault : public std::runtime_error {
 public:
  explicit SoapFault(Fault fault)
      : std::runtime_error(fault.reason), fault_(std::move(fault)) {}
  SoapFault(std::string code, std::string reason)
      : SoapFault(Fault{std::move(code), std::move(reason), "", ""}) {}

  const Fault& fault() const noexcept { return fault_; }

 private:
  Fault fault_;
};

/// A SOAP envelope: Header + Body, with WS-Addressing accessors.
///
/// The envelope is what actually crosses the simulated wire (serialized
/// with `to_xml`, re-parsed with `from_xml`), so every request/response in
/// both stacks pays real serialization costs.
///
/// Internally an envelope is in one of three states:
///  - DOM-backed: owns a mutable xml::Element tree (the classic form; any
///    envelope built in-process starts here).
///  - wire-backed: owns an immutable xml::ArenaDocument view of the exact
///    received octets (the fast parse path). Read accessors answer from the
///    view, materializing at most the subtree they return; the first
///    *mutating* access converts the whole view to a DOM.
///  - pending: a pre-compiled response template plus this reply's values
///    (see soap/template.hpp), rendered straight into a BufferChain at
///    serialization time. Structural reads materialize a DOM snapshot.
/// All three serialize byte-identically for the same logical document.
///
/// Pointers returned by read accessors stay valid for the envelope's
/// lifetime (retired subtrees are kept alive across state transitions), but
/// reflect the state at the time of the call — don't hold them across a
/// mutation. Lazy materialization is not synchronized: like the rest of the
/// tree API, one envelope must not be accessed from two threads at once.
class Envelope {
 public:
  /// An empty envelope with Header and Body (DOM-backed).
  Envelope();
  Envelope(Envelope&&) noexcept = default;
  Envelope& operator=(Envelope&&) noexcept = default;
  Envelope(const Envelope& other) { *this = other; }
  Envelope& operator=(const Envelope& other);

  xml::Element& root() { return mut(); }
  const xml::Element& root() const { return dom(); }
  xml::Element& header();
  const xml::Element& header() const;
  xml::Element& body();
  const xml::Element& body() const;

  /// First child element of the Body (the operation payload), or nullptr.
  /// The const overload answers from the wire view when possible,
  /// materializing only the payload subtree.
  const xml::Element* payload() const;
  xml::Element* payload();
  /// Appends a payload element to the Body and returns it.
  xml::Element& add_payload(xml::QName name);
  void add_payload(std::unique_ptr<xml::Element> el);

  // --- WS-Addressing ---------------------------------------------------------

  /// Writes To/Action/MessageID/RelatesTo/ReplyTo headers plus the raw
  /// reference headers from `info`.
  void write_addressing(const MessageInfo& info);
  /// Reads the addressing headers back out (inverse of write_addressing).
  MessageInfo read_addressing() const;

  /// First header child with this QName, or nullptr; from the wire view
  /// this materializes (and caches) only that header's subtree.
  const xml::Element* header_child(const xml::QName& name) const;
  /// Attribute of the first header child with this QName, matched by local
  /// name — a fully view-backed read (no DOM nodes on the fast path).
  std::optional<std::string> header_child_attr(const xml::QName& name,
                                               std::string_view attr) const;

  // --- Faults -----------------------------------------------------------------

  bool is_fault() const;
  /// Parses the Body fault; throws std::runtime_error when not a fault.
  Fault fault() const;
  /// An envelope whose Body is the given fault.
  static Envelope make_fault(const Fault& f);
  /// Throws SoapFault when this envelope is a fault (client-side check).
  void throw_if_fault() const;

  // --- Wire form ---------------------------------------------------------------

  std::string to_xml() const;
  static Envelope from_xml(std::string_view wire);

  /// Appends this envelope's wire octets to `chain` without intermediate
  /// concatenation: template responses render as skeleton/value segments,
  /// wire-backed envelopes share the received buffer, DOM envelopes
  /// serialize once (into `scratch` when provided, so a caller-managed
  /// buffer's capacity is reused; `scratch` is reallocated if still
  /// referenced by a previous chain).
  void wire_chain(common::BufferChain& chain,
                  std::shared_ptr<std::string>* scratch = nullptr) const;

  /// Canonical bytes of the signed content — the Body plus the To/Action/
  /// MessageID/RelatesTo headers, in that order (see security/xmlsig.cpp) —
  /// computed straight from the wire view when available and memoized until
  /// the envelope is mutated.
  const std::string& canonical_signed_content() const;

  // --- wire fast path ---------------------------------------------------------

  /// Process-wide toggle (default on). When off, from_xml always builds the
  /// DOM and template responses are not used — the pre-PR7 path, kept
  /// runtime-selectable so benchmarks measure both sides in one binary.
  static void set_wire_fast_path(bool on) noexcept;
  static bool wire_fast_path() noexcept;

  /// Wraps a template response (see soap/template.hpp).
  static Envelope make_pending(std::shared_ptr<PendingResponse> pending);
  bool is_pending() const noexcept { return pending_ != nullptr; }
  /// Stamps the trace context on a pending response without materializing
  /// it; false when this envelope is not (or no longer) pending — the
  /// caller falls back to the DOM header write.
  bool set_pending_trace(std::string trace_id, std::string span_id);

 private:
  explicit Envelope(std::unique_ptr<xml::Element> root) : root_(std::move(root)) {}
  explicit Envelope(std::shared_ptr<const xml::ArenaDocument> view)
      : view_(std::move(view)) {}

  /// Mutable DOM root: materializes if needed, drops the view/pending
  /// backing and every derived cache (they describe the pre-mutation doc).
  xml::Element& mut();
  /// Read-only DOM root: materializes lazily; the view (if any) is kept as
  /// the still-valid wire form.
  const xml::Element& dom() const;
  const xml::ArenaNode* view_body() const;
  const xml::ArenaNode* view_header() const;

  // Exactly one of root_/view_/pending_ is the source of truth; root_ is
  // also set lazily (const reads) next to a live view_, in which case both
  // describe the same bytes.
  mutable std::unique_ptr<xml::Element> root_;
  std::shared_ptr<const xml::ArenaDocument> view_;
  mutable std::shared_ptr<PendingResponse> pending_;

  mutable std::unique_ptr<xml::Element> payload_dom_;  // lazy payload subtree
  mutable std::vector<std::unique_ptr<xml::Element>> header_cache_;
  mutable std::unique_ptr<std::string> signed_cache_;
  // Subtrees handed out before a state transition; kept alive so earlier
  // pointers don't dangle.
  mutable std::vector<std::unique_ptr<xml::Element>> retired_;
};

}  // namespace gs::soap
