// Pre-compiled response templates for the hottest reply shapes.
//
// The DOM path builds every response the same way: make_response writes the
// addressing headers, the operation appends a payload, the container stamps
// a trace header, and the writer walks the whole tree to produce octets that
// are ~90% identical between any two responses of the same operation. A
// ResponseTemplate does that walk once, at first use, over a prototype
// envelope whose variable parts are marker strings; rendering a response
// then splices the current values (and at most one variable XML fragment)
// between cached skeleton literals straight into a BufferChain — no DOM, no
// writer, no intermediate concatenation.
//
// Byte identity with the DOM writer is a hard requirement (tests enforce
// it): the prototype is built through the exact code path the DOM response
// uses, fragment positions capture the writer's prefix scope and generated-
// prefix counter via xml::write_with_probes, and fragments are rendered by
// xml::write_fragment seeded with that state.
//
// Two skeleton variants are compiled — with and without the trace-context
// header the container appends after the service returns — because the
// header shifts offsets and prefix numbering. The trace header's QName is
// injected via Spec (this library cannot depend on the telemetry layer).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer_chain.hpp"
#include "xml/node.hpp"
#include "xml/writer.hpp"

namespace gs::soap {

struct PendingResponse;

class ResponseTemplate {
 public:
  struct Spec {
    /// Response wsa:Action URI.
    std::string action;
    /// Number of text slots the payload uses (values escaped at render).
    int slots = 0;
    /// Whether the payload has one fragment position (a variable subtree).
    bool fragment = false;
    /// Builds the prototype payload into the Body exactly as the DOM path
    /// would, using slot_marker(i) for variable text and placeholder() at
    /// the fragment position. The placeholder must be the last content that
    /// could introduce a namespace (nothing after it may generate prefixes).
    std::function<void(xml::Element& body)> build_payload;
    /// QName of the trace-context header the container appends to replies
    /// (attributes TraceId/SpanId), e.g. telemetry::trace_header_qname().
    xml::QName trace_qname;
  };

  /// Compiles both skeleton variants. Throws std::logic_error when the
  /// prototype violates template rules (marker missing/duplicated,
  /// placeholder count mismatch) — a programming error, caught in tests.
  static std::shared_ptr<const ResponseTemplate> compile(Spec spec);

  /// Marker text for slot `i`; alphanumeric, so escaping is the identity.
  static std::string slot_marker(int i);
  /// The fragment-position placeholder element (no namespace; skipped and
  /// recorded by xml::write_with_probes).
  static std::unique_ptr<xml::Element> placeholder();

  const std::string& action() const noexcept { return spec_.action; }
  int slots() const noexcept { return spec_.slots; }
  bool has_fragment() const noexcept { return spec_.fragment; }

  /// Renders `pr` into `out`. Skeleton literals are shared (zero-copy);
  /// `keepalive` co-owns pr's storage for any segments that view into it.
  void render(const PendingResponse& pr,
              std::shared_ptr<const void> keepalive,
              common::BufferChain& out) const;

 private:
  ResponseTemplate() = default;

  // Slot ids < 0 are the reserved envelope slots.
  static constexpr int kSlotMessageId = -2;
  static constexpr int kSlotRelatesTo = -3;
  static constexpr int kSlotTraceId = -4;
  static constexpr int kSlotSpanId = -5;

  struct Piece {
    enum Kind { kLiteral, kTextSlot, kAttrSlot, kFragment } kind = kLiteral;
    std::size_t begin = 0, end = 0;  // kLiteral: range in the skeleton
    int slot = 0;                    // slot index or reserved id
  };

  struct Variant {
    std::shared_ptr<const std::string> skeleton;
    std::vector<Piece> pieces;
    xml::PrefixBindings frag_bindings;  // writer state at the placeholder
    int frag_gen = 0;
  };

  static Variant compile_variant(const xml::Element& root, const Spec& spec,
                                 bool traced);
  const std::string& slot_value(const PendingResponse& pr, int slot) const;

  Spec spec_;
  Variant plain_;   // without the trace header
  Variant traced_;  // with the trace header
};

/// A response waiting to be rendered: a template plus this reply's values.
/// Owned (via shared_ptr) by soap::Envelope; BufferChain segments rendered
/// from it co-own it, so the octets stay valid after the envelope dies.
struct PendingResponse {
  std::shared_ptr<const ResponseTemplate> tpl;
  std::string message_id;
  std::string relates_to;
  std::vector<std::string> values;  // text-slot values, raw (escaped at render)
  /// Fragment content: pre-serialized octets (`fragment_shared` refcounted,
  /// zero-copy; or `fragment_raw` owned — both spliced verbatim, so the
  /// caller guarantees writer byte-identity, e.g. database octets that
  /// round-trip through parse/write) or elements rendered with the captured
  /// writer state. At most one may be set; the fragment must be non-empty
  /// when the template declares one (an empty fragment would serialize its
  /// wrapper self-closed on the DOM path).
  std::shared_ptr<const std::string> fragment_shared;
  std::string fragment_raw;
  std::vector<std::unique_ptr<xml::Element>> fragment;
  /// Trace context stamped by the container; empty = no trace header.
  std::string trace_id, span_id;

  void render(std::shared_ptr<const void> keepalive,
              common::BufferChain& out) const {
    tpl->render(*this, std::move(keepalive), out);
  }
  std::string render_string() const {
    common::BufferChain chain;
    render(nullptr, chain);
    return chain.join();
  }
};

}  // namespace gs::soap
