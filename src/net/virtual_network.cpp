#include "net/virtual_network.hpp"

#include <chrono>

#include "common/clock.hpp"
#include "common/encoding.hpp"
#include "common/parse.hpp"
#include "security/cert.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace gs::net {

namespace {

// Server-side delivery on the virtual network: same span/metric shape as
// HttpServer::serve_connection so traces look identical on both fabrics.
HttpResponse handle_at_server(Endpoint& endpoint, const HttpRequest& request) {
  static telemetry::Counter& requests =
      telemetry::MetricsRegistry::global().counter("net.http.requests");
  static telemetry::Histogram& request_us =
      telemetry::MetricsRegistry::global().histogram("net.http.request_us");
  auto started = std::chrono::steady_clock::now();
  HttpResponse response;
  {
    telemetry::SpanScope span("http.receive", "net");
    response = endpoint.handle(request);
  }
  requests.add();
  request_us.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
  return response;
}

}  // namespace

void VirtualNetwork::bind(const std::string& authority, Endpoint& endpoint) {
  std::lock_guard lock(mu_);
  endpoints_[authority] = &endpoint;
}

void VirtualNetwork::unbind(const std::string& authority) {
  std::lock_guard lock(mu_);
  endpoints_.erase(authority);
}

Endpoint* VirtualNetwork::resolve(const std::string& authority) const {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(authority);
  return it == endpoints_.end() ? nullptr : it->second;
}

void VirtualNetwork::set_fault_policy(const std::string& authority,
                                      FaultPolicy policy) {
  std::lock_guard lock(mu_);
  faults_[authority] = FaultState{policy, std::mt19937_64(policy.seed)};
}

void VirtualNetwork::clear_fault_policy(const std::string& authority) {
  std::lock_guard lock(mu_);
  faults_.erase(authority);
}

void VirtualNetwork::apply_faults(const std::string& authority,
                                  WireMeter* meter) {
  static telemetry::Counter& injected =
      telemetry::MetricsRegistry::global().counter("net.faults.injected");
  bool fail = false;
  const char* why = nullptr;
  {
    std::lock_guard lock(mu_);
    auto it = faults_.find(authority);
    if (it == faults_.end()) return;
    FaultState& state = it->second;
    if (state.policy.added_latency_ms > 0.0 && meter) {
      meter->charge_ms(state.policy.added_latency_ms);
    }
    if (state.policy.partitioned) {
      fail = true;
      why = "partitioned route to ";
    } else if (state.policy.drop_probability > 0.0) {
      // Top 53 bits of one draw -> [0, 1); written out (instead of
      // uniform_real_distribution) so sequences match on every stdlib.
      double u = static_cast<double>(state.rng() >> 11) * 0x1.0p-53;
      if (u < state.policy.drop_probability) {
        fail = true;
        why = "injected drop on route to ";
      }
    }
  }
  if (fail) {
    injected.add();
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "net.fabric", "injected fault",
        {{"authority", authority},
         {"kind", why[0] == 'p' ? "partition" : "drop"}});
    throw NetworkError(std::string(why) + authority);
  }
}

void VirtualNetwork::charge_message(WireMeter* meter, std::size_t bytes) const {
  if (!meter) return;
  meter->add_message(bytes);
  meter->charge_ms(profile_.one_way_ms +
                   profile_.per_kb_ms * (static_cast<double>(bytes) / 1024.0));
}

void VirtualNetwork::charge_connect(WireMeter* meter) const {
  if (!meter) return;
  meter->add_connect();
  meter->charge_ms(profile_.connect_ms);
}

VirtualCaller::VirtualCaller(VirtualNetwork& net, Options options)
    : net_(net), options_(options), rng_(options.rng_seed) {}

void VirtualCaller::reset_connections() {
  std::lock_guard lock(mu_);
  connected_.clear();
  tls_.clear();
  session_cache_.clear();
}

soap::Envelope VirtualCaller::call(const std::string& address,
                                   const soap::Envelope& request) {
  auto url = Url::parse(address);
  if (!url) throw NetworkError("malformed address: " + address);

  std::string response_octets;
  switch (options_.transport) {
    case TransportKind::kHttp:
    case TransportKind::kHttps: {
      HttpRequest http;
      http.host = url->authority();
      http.path = url->path;
      http.headers["Content-Type"] = "application/soap+xml";
      http.body = request.to_xml();
      std::string wire = exchange_octets(*url, http.serialize());
      auto response = HttpResponse::parse(wire);
      if (!response) throw NetworkError("malformed HTTP response from " + address);
      if (response->status == 503) {
        // Admission shed: surface the server's Retry-After so the retry
        // layer backs off on the server's schedule and breakers count it.
        common::TimeMs retry_after_ms = 0;
        if (auto it = response->headers.find("Retry-After");
            it != response->headers.end()) {
          if (auto secs = common::parse_number<common::TimeMs>(it->second)) {
            retry_after_ms = *secs * 1000;
          }
        }
        throw OverloadError("HTTP 503 Service Unavailable from " + address,
                            retry_after_ms);
      }
      if (response->status != 200 && response->body.empty()) {
        throw NetworkError("HTTP " + std::to_string(response->status) + " " +
                           response->reason + " from " + address);
      }
      response_octets = std::move(response->body);
      break;
    }
    case TransportKind::kSoapTcp: {
      // 4-byte length prefix, then the envelope octets — no HTTP headers.
      std::string body = request.to_xml();
      std::string frame;
      frame.reserve(4 + body.size());
      std::uint32_t len = static_cast<std::uint32_t>(body.size());
      for (int i = 0; i < 4; ++i)
        frame.push_back(static_cast<char>((len >> (i * 8)) & 0xFF));
      frame += body;
      std::string wire = exchange_octets(*url, frame);
      if (wire.size() < 4) throw NetworkError("short SOAP/TCP frame");
      response_octets = wire.substr(4);
      break;
    }
  }
  return soap::Envelope::from_xml(response_octets);
}

std::string VirtualCaller::exchange_octets(const Url& url,
                                           const std::string& octets) {
  const std::string authority = url.authority();

  // Scripted faults fire before anything else — a partitioned or lossy
  // route fails whether or not a server is listening. An injected failure
  // also tears down the pooled connection (and any TLS channel), so the
  // next attempt pays reconnection like a real broken socket would.
  try {
    net_.apply_faults(authority, options_.meter);
  } catch (const NetworkError&) {
    std::lock_guard lock(mu_);
    connected_.erase(authority);
    tls_.erase(authority);
    throw;
  }

  Endpoint* endpoint = net_.resolve(authority);
  if (!endpoint) throw NetworkError("no endpoint bound at " + authority);
  bool https = options_.transport == TransportKind::kHttps;

  // Connection management: charge a connect when no pooled connection
  // exists (or pooling is disabled). For HTTPS a new connection also means
  // a TLS handshake (full or resumed).
  TlsState* tls = nullptr;
  {
    std::lock_guard lock(mu_);
    bool have_connection =
        options_.keep_alive && connected_.contains(authority);
    if (!have_connection) {
      net_.charge_connect(options_.meter);
      connected_.insert(authority);
      if (https) tls_.erase(authority);  // new connection: re-handshake
    }
    if (https) {
      auto it = tls_.find(authority);
      if (it == tls_.end()) {
        const security::Credential* cred = endpoint->tls_credential();
        if (!cred) {
          throw NetworkError("endpoint " + authority + " does not support TLS");
        }
        if (!options_.anchor) {
          throw NetworkError("https transport requires a trust anchor");
        }
        security::TlsHandshake hs;
        try {
          hs = security::TlsHandshake::run(
              *options_.anchor, session_cache_, *cred, authority,
              common::RealClock::instance().now(), rng_);
        } catch (const security::SecurityError& err) {
          telemetry::EventLog::global().emit(
              telemetry::Level::kError, "net.tls", "TLS handshake failed",
              {{"authority", authority}, {"error", err.what()}});
          throw;
        }
        if (options_.meter) {
          options_.meter->add_handshake();
          // Handshake wire cost: round trips plus the octets moved.
          options_.meter->charge_ms(net_.profile().one_way_ms * 2 *
                                    hs.round_trips);
          net_.charge_message(options_.meter, hs.handshake_bytes);
        }
        auto state = std::make_unique<TlsState>();
        state->client = std::move(hs.client);
        state->server = std::move(hs.server);
        it = tls_.emplace(authority, std::move(state)).first;
      }
      tls = it->second.get();
    }
  }

  if (!https) {
    net_.charge_message(options_.meter, octets.size());
    HttpResponse response;
    if (options_.transport == TransportKind::kHttp) {
      auto request = HttpRequest::parse(octets);
      if (!request) throw NetworkError("malformed HTTP request");
      response = handle_at_server(*endpoint, *request);
      std::string wire = response.serialize();
      net_.charge_message(options_.meter, wire.size());
      return wire;
    }
    // kSoapTcp: strip framing, synthesize an HTTP request for the endpoint,
    // frame the response back.
    if (octets.size() < 4) throw NetworkError("short SOAP/TCP frame");
    HttpRequest request;
    request.host = authority;
    request.path = url.path;
    request.body = octets.substr(4);
    response = handle_at_server(*endpoint, request);
    std::string frame;
    frame.reserve(4 + response.body_size());
    std::uint32_t len = static_cast<std::uint32_t>(response.body_size());
    for (int i = 0; i < 4; ++i)
      frame.push_back(static_cast<char>((len >> (i * 8)) & 0xFF));
    if (response.body_chain.empty()) {
      frame += response.body;
    } else {
      response.body_chain.join_into(frame);
    }
    net_.charge_message(options_.meter, frame.size());
    return frame;
  }

  // HTTPS: seal on the client, open on the server, handle, seal the
  // response, open on the client. All four crypto passes actually run.
  // Only this authority's channel is locked, so the endpoint may call out
  // to other authorities through this same caller while handling.
  std::lock_guard lock(tls->mu);
  std::vector<std::uint8_t> sealed =
      tls->client.seal(common::as_bytes(octets));
  net_.charge_message(options_.meter, sealed.size());
  std::vector<std::uint8_t> plain_request = tls->server.open(sealed);

  auto request = HttpRequest::parse(
      std::string_view(reinterpret_cast<const char*>(plain_request.data()),
                       plain_request.size()));
  if (!request) throw NetworkError("malformed HTTPS request");
  HttpResponse response = handle_at_server(*endpoint, *request);
  std::string response_wire = response.serialize();
  std::vector<std::uint8_t> sealed_response =
      tls->server.seal(common::as_bytes(response_wire));
  net_.charge_message(options_.meter, sealed_response.size());
  std::vector<std::uint8_t> plain_response = tls->client.open(sealed_response);
  return std::string(plain_response.begin(), plain_response.end());
}

}  // namespace gs::net
