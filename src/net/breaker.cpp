#include "net/breaker.hpp"

#include <algorithm>

#include "telemetry/event_log.hpp"

namespace gs::net {

CircuitBreaker::CircuitBreaker(BreakerPolicy policy, const common::Clock* clock)
    : policy_(policy), clock_(clock) {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  opened_ = &reg.counter("net.breaker_opened");
  closed_ = &reg.counter("net.breaker_closed");
  fast_fails_ = &reg.counter("net.breaker_fast_fails");
  probes_ = &reg.counter("net.breaker_probes");
  open_routes_ = &reg.gauge("net.breaker_open_routes");
}

void CircuitBreaker::trip_locked(Route& route, const std::string& authority) {
  if (route.state != State::kOpen) open_routes_->add(1);
  route.state = State::kOpen;
  route.opened_at = clock_->now();
  route.probes_in_flight = 0;
  opened_->add();
  telemetry::EventLog::global().emit(
      telemetry::Level::kWarn, "net.breaker", "circuit opened",
      {{"authority", authority},
       {"consecutive_failures", std::to_string(route.consecutive_failures)}});
}

bool CircuitBreaker::allow(const std::string& authority) {
  if (!policy_.enabled()) return true;
  std::lock_guard lock(mu_);
  Route& route = routes_[authority];
  switch (route.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_->now() - route.opened_at < policy_.open_ms) {
        fast_fails_->add();
        return false;
      }
      // Cooldown over: this call becomes the first half-open probe.
      route.state = State::kHalfOpen;
      route.probes_in_flight = 1;
      probes_->add();
      return true;
    case State::kHalfOpen:
      if (route.probes_in_flight >= policy_.half_open_probes) {
        fast_fails_->add();
        return false;
      }
      ++route.probes_in_flight;
      probes_->add();
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(const std::string& authority) {
  if (!policy_.enabled()) return;
  std::lock_guard lock(mu_);
  Route& route = routes_[authority];
  if (route.state == State::kHalfOpen || route.state == State::kOpen) {
    if (route.state != State::kClosed) open_routes_->add(-1);
    closed_->add();
    telemetry::EventLog::global().emit(
        telemetry::Level::kInfo, "net.breaker", "circuit closed",
        {{"authority", authority}});
  }
  route.state = State::kClosed;
  route.consecutive_failures = 0;
  route.probes_in_flight = 0;
}

void CircuitBreaker::record_failure(const std::string& authority) {
  if (!policy_.enabled()) return;
  std::lock_guard lock(mu_);
  Route& route = routes_[authority];
  switch (route.state) {
    case State::kClosed:
      if (++route.consecutive_failures >= policy_.failure_threshold) {
        trip_locked(route, authority);
      }
      break;
    case State::kHalfOpen:
      // The probe failed: straight back to open for another cooldown.
      ++route.consecutive_failures;
      open_routes_->add(-1);  // re-tripping re-increments
      trip_locked(route, authority);
      break;
    case State::kOpen:
      // A failure from a call admitted before the trip; nothing to do.
      ++route.consecutive_failures;
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state(const std::string& authority) const {
  std::lock_guard lock(mu_);
  auto it = routes_.find(authority);
  return it == routes_.end() ? State::kClosed : it->second.state;
}

common::TimeMs CircuitBreaker::retry_in(const std::string& authority) const {
  std::lock_guard lock(mu_);
  auto it = routes_.find(authority);
  if (it == routes_.end() || it->second.state != State::kOpen) return 0;
  common::TimeMs elapsed = clock_->now() - it->second.opened_at;
  return std::max<common::TimeMs>(0, policy_.open_ms - elapsed);
}

}  // namespace gs::net
