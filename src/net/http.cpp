#include "net/http.hpp"

#include <charconv>

namespace gs::net {
namespace {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

// Headers whose framing the serializers own; caller-set copies are skipped
// so a message never carries two Content-Length values (ambiguous framing).
bool is_framing_header(std::string_view name) noexcept {
  return iequals(name, "Content-Length");
}

// Splits header block lines; returns false on malformed framing.
bool parse_headers(std::string_view block, HeaderMap& out) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    std::string name(line.substr(0, colon));
    size_t vstart = colon + 1;
    while (vstart < line.size() && line[vstart] == ' ') ++vstart;
    out[name] = std::string(line.substr(vstart));
  }
  return true;
}

}  // namespace

bool HeaderNameLess::operator()(std::string_view a, std::string_view b) const noexcept {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    char ca = ascii_lower(a[i]);
    char cb = ascii_lower(b[i]);
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + path + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  for (const auto& [name, value] : headers) {
    if (is_framing_header(name)) continue;
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

std::optional<HttpRequest> HttpRequest::parse(std::string_view wire) {
  size_t line_end = wire.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  std::string_view request_line = wire.substr(0, line_end);

  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return std::nullopt;

  HttpRequest req;
  req.method = std::string(request_line.substr(0, sp1));
  req.path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));

  size_t headers_end = wire.find("\r\n\r\n", line_end);
  if (headers_end == std::string_view::npos) return std::nullopt;
  if (!parse_headers(wire.substr(line_end + 2, headers_end - line_end - 2),
                     req.headers)) {
    return std::nullopt;
  }
  if (auto it = req.headers.find("Host"); it != req.headers.end()) {
    req.host = it->second;
    req.headers.erase(it);
  }
  std::string_view body = wire.substr(headers_end + 4);
  if (auto it = req.headers.find("Content-Length"); it != req.headers.end()) {
    size_t len = 0;
    auto [p, ec] = std::from_chars(it->second.data(),
                                   it->second.data() + it->second.size(), len);
    if (ec != std::errc() || body.size() < len) return std::nullopt;
    body = body.substr(0, len);
    req.headers.erase(it);
  }
  req.body = std::string(body);
  return req;
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  for (const auto& [name, value] : headers) {
    if (is_framing_header(name)) continue;
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body_size()) + "\r\n\r\n";
  out.reserve(out.size() + body_size());
  if (body_chain.empty()) {
    out += body;
  } else {
    body_chain.join_into(out);
  }
  return out;
}

void HttpResponse::serialize_to(common::BufferChain& out) const {
  std::string head =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  for (const auto& [name, value] : headers) {
    if (is_framing_header(name)) continue;
    head += name + ": " + value + "\r\n";
  }
  head += "Content-Length: " + std::to_string(body_size()) + "\r\n\r\n";
  out.append(std::move(head));
  if (body_chain.empty()) {
    out.append_static(body);  // views *this; see header contract
  } else {
    out.append_chain(body_chain);
  }
}

std::optional<HttpResponse> HttpResponse::parse(std::string_view wire) {
  size_t line_end = wire.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  std::string_view status_line = wire.substr(0, line_end);
  if (!status_line.starts_with("HTTP/1.1 ")) return std::nullopt;

  HttpResponse resp;
  std::string_view rest = status_line.substr(9);
  size_t sp = rest.find(' ');
  std::string_view code = sp == std::string_view::npos ? rest : rest.substr(0, sp);
  auto [p, ec] = std::from_chars(code.data(), code.data() + code.size(), resp.status);
  if (ec != std::errc()) return std::nullopt;
  if (sp != std::string_view::npos) resp.reason = std::string(rest.substr(sp + 1));

  size_t headers_end = wire.find("\r\n\r\n", line_end);
  if (headers_end == std::string_view::npos) return std::nullopt;
  if (!parse_headers(wire.substr(line_end + 2, headers_end - line_end - 2),
                     resp.headers)) {
    return std::nullopt;
  }
  std::string_view body = wire.substr(headers_end + 4);
  if (auto it = resp.headers.find("Content-Length"); it != resp.headers.end()) {
    size_t len = 0;
    auto [p2, ec2] = std::from_chars(it->second.data(),
                                     it->second.data() + it->second.size(), len);
    if (ec2 != std::errc() || body.size() < len) return std::nullopt;
    body = body.substr(0, len);
    resp.headers.erase(it);
  }
  resp.body = std::string(body);
  return resp;
}

HttpResponse HttpResponse::ok(std::string body, std::string content_type) {
  HttpResponse resp;
  resp.headers["Content-Type"] = std::move(content_type);
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::error(int status, std::string reason, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.reason = std::move(reason);
  resp.body = std::move(body);
  return resp;
}

std::string Url::authority() const {
  if (port == 0) return host;
  return host + ":" + std::to_string(port);
}

std::string Url::to_string() const {
  return scheme + "://" + authority() + path;
}

std::optional<Url> Url::parse(std::string_view url) {
  size_t scheme_end = url.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) return std::nullopt;
  Url out;
  out.scheme = std::string(url.substr(0, scheme_end));
  std::string_view rest = url.substr(scheme_end + 3);
  size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (authority.empty()) return std::nullopt;
  out.path = path_start == std::string_view::npos
                 ? "/"
                 : std::string(rest.substr(path_start));
  size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    std::string_view port_text = authority.substr(colon + 1);
    int port = 0;
    auto [p, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc() || p != port_text.data() + port_text.size() ||
        port <= 0 || port > 65535) {
      return std::nullopt;
    }
    out.port = port;
    out.host = std::string(authority.substr(0, colon));
  } else {
    out.host = std::string(authority);
  }
  if (out.host.empty()) return std::nullopt;
  return out;
}

}  // namespace gs::net
