#include "net/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gs::net {

namespace {

// Uniform double in [0, 1) from the top 53 bits of one RNG draw — written
// out instead of uniform_real_distribution so the schedule is identical on
// every standard library.
double canonical(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

}  // namespace

common::TimeMs RetryPolicy::delay_after(int failed_attempts,
                                        std::mt19937_64& rng) const {
  double delay = static_cast<double>(base_delay_ms) *
                 std::pow(multiplier, failed_attempts - 1);
  delay = std::min(delay, static_cast<double>(max_delay_ms));
  if (jitter > 0.0) delay *= 1.0 + jitter * (2.0 * canonical(rng) - 1.0);
  return std::max<common::TimeMs>(0, static_cast<common::TimeMs>(std::llround(delay)));
}

RetryingCaller::RetryingCaller(SoapCaller& inner, RetryPolicy policy,
                               const common::Clock* clock, Sleeper sleeper)
    : inner_(inner),
      policy_(policy),
      clock_(clock),
      sleeper_(std::move(sleeper)),
      rng_(policy.seed) {
  if (!sleeper_) {
    sleeper_ = [](common::TimeMs ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
}

RetryingCaller::RetryingCaller(SoapCaller& inner, RetryPolicy policy,
                               BreakerPolicy breaker, const common::Clock* clock,
                               Sleeper sleeper)
    : RetryingCaller(inner, policy, clock, std::move(sleeper)) {
  if (breaker.enabled()) {
    breaker_ = std::make_unique<CircuitBreaker>(breaker, clock);
  }
}

soap::Envelope RetryingCaller::call(const std::string& address,
                                    const soap::Envelope& request) {
  static telemetry::Counter& retries =
      telemetry::MetricsRegistry::global().counter("net.retry.attempts");
  static telemetry::Counter& recovered =
      telemetry::MetricsRegistry::global().counter("net.retry.recovered");
  static telemetry::Counter& exhausted =
      telemetry::MetricsRegistry::global().counter("net.retry.exhausted");

  // Breaker circuits are per destination authority, so one saturated host
  // does not blacklist every service this caller talks to.
  std::string authority = address;
  if (auto url = Url::parse(address)) authority = url->authority();

  const common::TimeMs started = clock_->now();
  for (int attempt = 1;; ++attempt) {
    if (breaker_ && !breaker_->allow(authority)) {
      throw CircuitOpenError("circuit open for " + authority,
                             breaker_->retry_in(authority));
    }
    try {
      soap::Envelope response = inner_.call(address, request);
      if (breaker_) breaker_->record_success(authority);
      if (attempt > 1) recovered.add();
      return response;
    } catch (const NetworkError& err) {
      if (breaker_) breaker_->record_failure(authority);
      // The server's Retry-After hint (HTTP 503) floors the backoff: an
      // overloaded server gets the quiet time it asked for.
      common::TimeMs retry_after = 0;
      if (auto* overload = dynamic_cast<const OverloadError*>(&err)) {
        retry_after = overload->retry_after_ms();
      }
      if (attempt >= policy_.max_attempts) {
        exhausted.add();
        telemetry::EventLog::global().emit(
            telemetry::Level::kWarn, "net.retry", "retry budget exhausted",
            {{"address", address},
             {"attempts", std::to_string(attempt)},
             {"last_error", err.what()}});
        throw;
      }
      common::TimeMs delay;
      {
        std::lock_guard lock(rng_mu_);
        delay = policy_.delay_after(attempt, rng_);
      }
      delay = std::max(delay, retry_after);
      if (policy_.call_timeout_ms > 0 &&
          clock_->now() - started + delay >= policy_.call_timeout_ms) {
        exhausted.add();
        telemetry::EventLog::global().emit(
            telemetry::Level::kWarn, "net.retry", "retry time budget exhausted",
            {{"address", address},
             {"attempts", std::to_string(attempt)},
             {"budget_ms", std::to_string(policy_.call_timeout_ms)},
             {"last_error", err.what()}});
        throw;
      }
      sleeper_(delay);
      retries.add();
    }
  }
}

}  // namespace gs::net
