// Per-destination reliable delivery queue.
//
// The delivery half of the reliability layer: wsn and wse route Notify
// traffic through one of these instead of calling the sink transport
// directly. Each destination (a subscriber's sink address) gets a bounded
// FIFO drained by the shared ThreadPool — one drain task per destination at
// a time, so per-subscriber ordering is preserved while distinct
// subscribers deliver in parallel. A destination that fails
// `evict_after_consecutive_failures` whole call sequences in a row (each
// sequence already retried by the caller, typically a RetryingCaller) is
// evicted: its backlog is dead-lettered, further submits are rejected
// cheaply, and the eviction counter increments. Without a pool the queue
// delivers inline on the submitting thread — the historical synchronous
// behaviour, still with failure accounting and eviction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/threadpool.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gs::net {

class DeliveryQueue {
 public:
  struct Config {
    /// Transport for deliveries; wrap in a RetryingCaller for retries.
    SoapCaller* caller = nullptr;
    /// Drain executor. Null = deliver inline during submit(). The pool must
    /// outlive the queue.
    common::ThreadPool* pool = nullptr;
    /// Backlog bound per destination; overflow dead-letters the message.
    std::size_t max_queued_per_destination = 64;
    /// Consecutive failed call sequences before a destination is evicted.
    /// 0 = never evict.
    int evict_after_consecutive_failures = 0;
    /// Telemetry hooks (all optional). `delivered`/`failures`/`deliver_us`
    /// count individual call sequences; `dead_letters` tallies every message
    /// that will never be delivered (failed, overflowed, or dropped by
    /// eviction); `evictions` counts destinations evicted.
    telemetry::Counter* delivered = nullptr;
    telemetry::Counter* failures = nullptr;
    telemetry::Histogram* deliver_us = nullptr;
    telemetry::Counter* evictions = nullptr;
    telemetry::Counter* dead_letters = nullptr;
    /// Invoked (outside queue locks) when a destination is evicted.
    std::function<void(const std::string& destination)> on_evict;
    /// Structured event sink for evictions and dead-letter drops (optional);
    /// events are tagged with `component` ("wsn.delivery", "wse.delivery").
    telemetry::EventLog* events = nullptr;
    std::string component = "delivery";
  };

  enum class Submit {
    kDelivered,  // inline mode: the call sequence succeeded
    kQueued,     // async mode: accepted onto the destination's backlog
    kRejected,   // failed inline, destination evicted, or backlog full
  };

  explicit DeliveryQueue(Config config);
  /// Drops any backlog and waits for in-flight drain tasks to finish.
  ~DeliveryQueue();

  DeliveryQueue(const DeliveryQueue&) = delete;
  DeliveryQueue& operator=(const DeliveryQueue&) = delete;

  /// Delivers (inline) or enqueues (pooled) one message to `destination`,
  /// which is also the address passed to the caller.
  Submit submit(const std::string& destination, soap::Envelope envelope);

  /// Blocks until every accepted message has been delivered or
  /// dead-lettered (async mode barrier; immediate when inline).
  void flush();

  bool evicted(const std::string& destination) const;
  /// Forgets a destination's failure history and eviction — the
  /// re-subscribe path.
  void reinstate(const std::string& destination);

  std::uint64_t dead_lettered() const;
  /// Total messages currently waiting across all destinations — the queue
  /// depth reported by the monitoring layer's health section.
  std::size_t queued() const;

 private:
  struct Route {
    std::deque<soap::Envelope> backlog;
    int consecutive_failures = 0;
    bool evicted = false;
    bool draining = false;  // a pool task currently owns this route
  };

  /// One call sequence; returns success. Never throws.
  bool deliver(const std::string& destination, const soap::Envelope& envelope);
  // Structured-event emitters; call outside mu_ (EventLog has its own lock,
  // and attrs formatting shouldn't extend the queue's critical sections).
  void dead_letter_event(const std::string& destination, const char* reason);
  void eviction_event(const std::string& destination, std::size_t dropped);
  void drain(const std::string& destination);
  /// Marks evicted, dead-letters the backlog; returns messages dropped.
  /// Caller holds mu_.
  std::size_t evict_locked(Route& route);

  Config config_;
  mutable std::mutex mu_;
  std::condition_variable cv_idle_;
  std::map<std::string, Route> routes_;
  std::uint64_t dead_lettered_ = 0;
  bool stopping_ = false;
};

}  // namespace gs::net
