// HTTP/1.1 message framing.
//
// Real request/response serialization — the byte counts the simulated wire
// charges for are the actual octets an HTTP transport would move, and the
// same framing drives the real TCP server used by the examples.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace gs::net {

struct HttpRequest {
  std::string method = "POST";
  std::string path = "/";
  std::string host;
  std::map<std::string, std::string> headers;
  std::string body;

  /// Full request octets (adds Host/Content-Length automatically).
  std::string serialize() const;
  /// Parses a complete request; nullopt on malformed input.
  static std::optional<HttpRequest> parse(std::string_view wire);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;

  std::string serialize() const;
  static std::optional<HttpResponse> parse(std::string_view wire);

  static HttpResponse ok(std::string body, std::string content_type = "application/soap+xml");
  static HttpResponse error(int status, std::string reason, std::string body = "");
};

/// URL split into scheme/host/port/path.
struct Url {
  std::string scheme;  // "http", "https", "soap.tcp"
  std::string host;
  int port = 0;  // 0 = scheme default
  std::string path = "/";

  /// "host" or "host:port" as used for connection pooling keys.
  std::string authority() const;
  std::string to_string() const;

  /// Parses e.g. "http://exec.vo.example:8080/ExecService";
  /// nullopt on malformed input.
  static std::optional<Url> parse(std::string_view url);
};

}  // namespace gs::net
