// HTTP/1.1 message framing.
//
// Real request/response serialization — the byte counts the simulated wire
// charges for are the actual octets an HTTP transport would move, and the
// same framing drives the real TCP server used by the examples.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/buffer_chain.hpp"

namespace gs::net {

/// Case-insensitive ordering for header field names (RFC 7230 §3.2:
/// "Each header field consists of a case-insensitive field name").
struct HeaderNameLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept;
};

/// Header map keyed case-insensitively: a peer sending `content-length`
/// or `HOST` is as well-formed as one sending the canonical spelling.
using HeaderMap = std::map<std::string, std::string, HeaderNameLess>;

struct HttpRequest {
  std::string method = "POST";
  std::string path = "/";
  std::string host;
  HeaderMap headers;
  std::string body;

  /// Full request octets. Host and Content-Length are framing-owned: they
  /// are emitted from `host`/`body.size()`, and any caller-set spelling of
  /// Content-Length in `headers` is ignored (never duplicated).
  std::string serialize() const;
  /// Parses a complete request; nullopt on malformed input.
  static std::optional<HttpRequest> parse(std::string_view wire);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  std::string body;
  /// Zero-copy body: when non-empty it is the response body and `body` is
  /// ignored. Producers (the container's serialize path) fill it with
  /// segments that co-own their storage; transports write the segments
  /// without flattening. parse() always fills `body`.
  common::BufferChain body_chain;

  std::size_t body_size() const noexcept {
    return body_chain.empty() ? body.size() : body_chain.size();
  }
  /// The body octets regardless of representation (joins the chain).
  std::string body_str() const {
    return body_chain.empty() ? body : body_chain.join();
  }

  std::string serialize() const;
  /// Appends the full response octets to `out` as segments (writev-style).
  /// Segments may view into this response's storage: *this must outlive
  /// any use of `out`.
  void serialize_to(common::BufferChain& out) const;
  static std::optional<HttpResponse> parse(std::string_view wire);

  static HttpResponse ok(std::string body, std::string content_type = "application/soap+xml");
  static HttpResponse error(int status, std::string reason, std::string body = "");
};

/// URL split into scheme/host/port/path.
struct Url {
  std::string scheme;  // "http", "https", "soap.tcp"
  std::string host;
  int port = 0;  // 0 = scheme default
  std::string path = "/";

  /// "host" or "host:port" as used for connection pooling keys.
  std::string authority() const;
  std::string to_string() const;

  /// Parses e.g. "http://exec.vo.example:8080/ExecService";
  /// nullopt on malformed input.
  static std::optional<Url> parse(std::string_view url);
};

}  // namespace gs::net
