// Delivery retry: a policy (attempts, exponential backoff, seeded jitter,
// per-call time budget) and a SoapCaller decorator that applies it.
//
// The paper's notification comparison assumes messages arrive; both 2005
// prototypes were fire-and-forget, and the evaluation papers (JClarens,
// the Globus measurements) call out delivery reliability as the gap
// between demo-grade and deployable middleware. RetryingCaller closes it
// at the transport seam so every client — notification sinks first — can
// opt in without touching service code.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <random>

#include "common/clock.hpp"
#include "net/breaker.hpp"
#include "net/virtual_network.hpp"

namespace gs::net {

/// Retry schedule. Attempt n (1-based) that fails waits
/// `base_delay_ms * multiplier^(n-1)` (capped at `max_delay_ms`), spread by
/// `± jitter` (a fraction, drawn from a seeded RNG so schedules are
/// reproducible), before attempt n+1 — unless `max_attempts` or the
/// `call_timeout_ms` budget is exhausted, in which case the last transport
/// error propagates.
struct RetryPolicy {
  int max_attempts = 3;             // total tries, including the first
  common::TimeMs base_delay_ms = 10;
  double multiplier = 2.0;          // exponential backoff factor
  common::TimeMs max_delay_ms = 1000;
  double jitter = 0.1;              // ± fraction of the computed delay
  common::TimeMs call_timeout_ms = 0;  // budget across all attempts; 0 = none
  std::uint64_t seed = 0x5eed;      // jitter RNG seed

  /// A policy that never retries (the historical fire-and-forget shape).
  static RetryPolicy none() { return {.max_attempts = 1}; }

  /// Backoff before the attempt after `failed_attempts` failures (>= 1).
  /// Pure function of the policy and the RNG state.
  common::TimeMs delay_after(int failed_attempts, std::mt19937_64& rng) const;
};

/// SoapCaller decorator: forwards to `inner`, retrying NetworkError per the
/// policy. Faults come back as envelopes and are never retried — only
/// transport failures are. Delays go through the injected sleeper (default:
/// real sleep); tests pass a sleeper that advances a ManualClock so retry
/// schedules are fully deterministic. Thread-safe: concurrent calls share
/// the jitter RNG under a lock but back off independently.
///
/// Overload behaviour (the anti-amplification half of overload control):
///  * An OverloadError (HTTP 503) IS retried, but the server's Retry-After
///    hint overrides any shorter computed backoff — the client waits as
///    long as the server asked, not as little as its own schedule allows.
///  * Constructed with a BreakerPolicy, the caller keeps a per-authority
///    CircuitBreaker: consecutive transport failures (503s, timeouts,
///    drops) open the route's circuit and further calls — including the
///    remaining attempts of an in-flight retry loop — fail fast with
///    CircuitOpenError instead of touching the network, until a half-open
///    probe succeeds. Retries stop amplifying collapse.
class RetryingCaller final : public SoapCaller {
 public:
  using Sleeper = std::function<void(common::TimeMs)>;

  RetryingCaller(SoapCaller& inner, RetryPolicy policy,
                 const common::Clock* clock = &common::RealClock::instance(),
                 Sleeper sleeper = {});
  /// With a circuit breaker guarding every destination authority.
  RetryingCaller(SoapCaller& inner, RetryPolicy policy, BreakerPolicy breaker,
                 const common::Clock* clock = &common::RealClock::instance(),
                 Sleeper sleeper = {});

  soap::Envelope call(const std::string& address,
                      const soap::Envelope& request) override;

  const RetryPolicy& policy() const noexcept { return policy_; }
  /// Null when constructed without a BreakerPolicy.
  CircuitBreaker* breaker() noexcept { return breaker_.get(); }

 private:
  SoapCaller& inner_;
  RetryPolicy policy_;
  const common::Clock* clock_;
  Sleeper sleeper_;
  std::unique_ptr<CircuitBreaker> breaker_;
  std::mutex rng_mu_;
  std::mt19937_64 rng_;
};

}  // namespace gs::net
