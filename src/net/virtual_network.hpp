// In-process virtual network: named endpoints, metered wire, and SOAP
// callers over three transports (HTTP, HTTPS/TLS-lite, raw SOAP-over-TCP).
//
// Endpoints are bound by authority ("exec.vo.example" or "hostB:8443").
// Every exchange serializes the request to real octets, charges the wire
// model, and re-parses on the far side, so both stacks pay genuine
// marshaling costs on every hop — including service-to-service outcalls in
// Grid-in-a-Box, which is what Figure 6 turns on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>

#include "common/clock.hpp"
#include "net/http.hpp"
#include "net/wire.hpp"
#include "security/tls.hpp"
#include "soap/envelope.hpp"

namespace gs::net {

/// A server bound into the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual HttpResponse handle(const HttpRequest& request) = 0;
  /// Credential presented for TLS; nullptr disables the https transport.
  virtual const security::Credential* tls_credential() const { return nullptr; }
};

/// Adapts a lambda to an Endpoint (notification sinks, test doubles).
class LambdaEndpoint final : public Endpoint {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  explicit LambdaEndpoint(Handler handler, const security::Credential* cred = nullptr)
      : handler_(std::move(handler)), cred_(cred) {}
  HttpResponse handle(const HttpRequest& request) override { return handler_(request); }
  const security::Credential* tls_credential() const override { return cred_; }

 private:
  Handler handler_;
  const security::Credential* cred_;
};

class NetworkError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The server explicitly refused work (HTTP 503 Service Unavailable from
/// an overloaded container's admission handler). A transport failure for
/// retry purposes, but it carries the server's Retry-After hint so clients
/// back off on the server's schedule instead of their own — and circuit
/// breakers count it toward opening.
class OverloadError : public NetworkError {
 public:
  OverloadError(const std::string& what, common::TimeMs retry_after_ms)
      : NetworkError(what), retry_after_ms_(retry_after_ms) {}
  /// Server-requested backoff; 0 when the response carried no hint.
  common::TimeMs retry_after_ms() const noexcept { return retry_after_ms_; }

 private:
  common::TimeMs retry_after_ms_;
};

/// Deterministic per-route fault policy. Tests script failures against a
/// destination authority: every exchange to it may be dropped with a
/// seeded probability, delayed by a fixed simulated latency, or refused
/// outright (hard partition). Drop decisions come from a per-route RNG
/// seeded by `seed`, so a given call sequence fails identically on every
/// run — no wall clock, no global randomness.
struct FaultPolicy {
  double drop_probability = 0.0;  // [0, 1]; applied per exchange
  double added_latency_ms = 0.0;  // charged to the caller's meter
  bool partitioned = false;       // hard partition: every exchange fails
  std::uint64_t seed = 0x5eed;    // drop-decision RNG seed
};

/// The in-process network fabric.
class VirtualNetwork {
 public:
  explicit VirtualNetwork(NetworkProfile profile = NetworkProfile::colocated())
      : profile_(profile) {}

  void bind(const std::string& authority, Endpoint& endpoint);
  void unbind(const std::string& authority);
  Endpoint* resolve(const std::string& authority) const;

  const NetworkProfile& profile() const noexcept { return profile_; }
  void set_profile(NetworkProfile p) { profile_ = p; }

  /// Installs (or replaces) the fault policy for exchanges to `authority`;
  /// replacing reseeds the route's drop RNG from `policy.seed`.
  void set_fault_policy(const std::string& authority, FaultPolicy policy);
  void clear_fault_policy(const std::string& authority);
  /// Applies `authority`'s fault policy to one exchange: charges any added
  /// latency to `meter`, throws NetworkError on partition or a drop.
  /// No-op for routes without a policy.
  void apply_faults(const std::string& authority, WireMeter* meter);

  /// Charges one message of `bytes` octets on the meter (if any).
  void charge_message(WireMeter* meter, std::size_t bytes) const;
  void charge_connect(WireMeter* meter) const;

 private:
  struct FaultState {
    FaultPolicy policy;
    std::mt19937_64 rng;
  };

  mutable std::mutex mu_;
  std::map<std::string, Endpoint*> endpoints_;
  std::map<std::string, FaultState> faults_;
  NetworkProfile profile_;
};

/// Wire transports for SOAP exchange.
enum class TransportKind {
  kHttp,     // plain HTTP/1.1 POST
  kHttps,    // TLS-lite channel with session caching
  kSoapTcp,  // length-prefixed SOAP frames on a persistent TCP connection
};

/// Client-side SOAP request/response interface. Service proxies talk to
/// this; implementations exist for the virtual network and real sockets.
class SoapCaller {
 public:
  virtual ~SoapCaller() = default;
  /// Sends `request` to `address` (a URL) and returns the response
  /// envelope. Throws NetworkError on transport failure; faults come back
  /// as envelopes for the proxy to inspect.
  virtual soap::Envelope call(const std::string& address,
                              const soap::Envelope& request) = 0;
};

/// SOAP caller over the virtual network.
///
/// Connection behaviour models the toolkits in the paper:
///  * kHttp / kHttps pool one connection per authority; `keep_alive=false`
///    reconnects per message (WSRF.NET's notification sink behaviour).
///  * kHttps performs the TLS-lite handshake on first contact and resumes
///    from the session cache afterwards.
///  * kSoapTcp uses one persistent connection per authority with 4-byte
///    length framing (the Plumbwork Orange WSE SoapReceiver behaviour).
class VirtualCaller final : public SoapCaller {
 public:
  struct Options {
    TransportKind transport = TransportKind::kHttp;
    bool keep_alive = true;
    WireMeter* meter = nullptr;
    /// Trust anchor for server certificates (required for kHttps).
    const security::Certificate* anchor = nullptr;
    /// Entropy for TLS randoms; defaults to a fixed seed for determinism.
    std::uint64_t rng_seed = 0x5eed;
  };

  VirtualCaller(VirtualNetwork& net, Options options);

  soap::Envelope call(const std::string& address,
                      const soap::Envelope& request) override;

  /// Drops pooled connections and cached TLS sessions (tests/ablations).
  void reset_connections();

  const Options& options() const noexcept { return options_; }

 private:
  // Per-authority channel state with its own lock, so a service handling a
  // request may make nested calls to *other* authorities through the same
  // caller without self-deadlock.
  struct TlsState {
    security::TlsConnection client;
    security::TlsConnection server;
    std::mutex mu;
  };

  std::string exchange_octets(const Url& url, const std::string& octets);

  VirtualNetwork& net_;
  Options options_;
  std::mutex mu_;
  std::set<std::string> connected_;  // authorities with open TCP
  std::map<std::string, std::unique_ptr<TlsState>> tls_;  // TLS channels
  security::TlsSessionCache session_cache_;
  std::mt19937_64 rng_;
};

}  // namespace gs::net
