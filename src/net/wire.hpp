// Wire cost model and metering for the simulated network.
//
// The paper ran each scenario co-located (client and service on one
// machine) and distributed (two identical Opterons on a LAN). This repo
// substitutes a deterministic wire model: every message is charged
// propagation + transmission costs, every fresh TCP connection a connect
// cost. Real compute (XML, crypto, database) still runs on the CPU; the
// benches report wall time plus the metered wire time, so the co-located /
// distributed delta appears exactly as the profile dictates.
#pragma once

#include <atomic>
#include <cstdint>

namespace gs::net {

/// Wire cost parameters, all in milliseconds.
struct NetworkProfile {
  double one_way_ms = 0.0;  // propagation per message hop
  double per_kb_ms = 0.0;   // transmission per kilobyte
  double connect_ms = 0.0;  // TCP three-way handshake

  /// Same-machine loopback: effectively free.
  static NetworkProfile colocated() { return {0.02, 0.001, 0.05}; }
  /// 100 Mbit/s-era LAN between two hosts (the paper's testbed):
  /// ~2 ms one-way including the 2005 service-stack receive path,
  /// ~0.08 ms/KB transmission, ~3 ms connection establishment.
  static NetworkProfile distributed() { return {2.0, 0.08, 3.0}; }
};

/// Thread-safe accumulator of simulated wire time and traffic counters.
class WireMeter {
 public:
  void charge_ms(double ms) {
    nanos_.fetch_add(static_cast<std::int64_t>(ms * 1e6),
                     std::memory_order_relaxed);
  }
  void add_message(std::size_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
  }
  void add_connect() { connects_.fetch_add(1, std::memory_order_relaxed); }
  void add_handshake() { handshakes_.fetch_add(1, std::memory_order_relaxed); }

  double simulated_ms() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) / 1e6;
  }
  std::int64_t messages() const { return messages_.load(std::memory_order_relaxed); }
  std::int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  std::int64_t connects() const { return connects_.load(std::memory_order_relaxed); }
  std::int64_t handshakes() const {
    return handshakes_.load(std::memory_order_relaxed);
  }

  void reset() {
    nanos_ = 0;
    messages_ = 0;
    bytes_ = 0;
    connects_ = 0;
    handshakes_ = 0;
  }

 private:
  std::atomic<std::int64_t> nanos_{0};
  std::atomic<std::int64_t> messages_{0};
  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::int64_t> connects_{0};
  std::atomic<std::int64_t> handshakes_{0};
};

}  // namespace gs::net
