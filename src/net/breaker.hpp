// Client-side circuit breaker: the other half of overload control.
//
// The container's AdmissionHandler answers overload with 503 + Retry-After
// (see container/admission.hpp); without a breaker, every 503 turns into a
// retry schedule and the PR-2 RetryingCaller — built to ride out *lossy*
// routes — becomes an amplifier against a *saturated* server: N clients x
// max_attempts retries multiply the offered load exactly when the server
// asked for less. The breaker is the classic three-state machine, tracked
// per destination authority:
//
//   closed    -> normal operation; `failure_threshold` CONSECUTIVE
//                transport failures (503s, timeouts, drops) trip it open.
//   open      -> calls fail fast with CircuitOpenError, no network I/O,
//                for `open_ms`.
//   half-open -> after the cooldown, up to `half_open_probes` calls are
//                let through; one success closes the circuit, one failure
//                re-opens it for another cooldown.
//
// Metrics: net.breaker_opened (transitions to open), net.breaker_closed
// (recoveries), net.breaker_fast_fails (calls refused while open),
// net.breaker_probes (half-open trial calls), and a net.breaker_open_routes
// gauge — alert rules on net.breaker_opened surface collapse through the
// PR-4 monitor from the client side too.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/metrics.hpp"

namespace gs::net {

/// Thrown on fast-fail while a route's circuit is open. Derives from
/// NetworkError so existing transport-failure handling applies, but
/// RetryingCaller never retries it — that is the point.
class CircuitOpenError : public NetworkError {
 public:
  CircuitOpenError(const std::string& what, common::TimeMs retry_in_ms)
      : NetworkError(what), retry_in_ms_(retry_in_ms) {}
  /// Time until the breaker will allow a half-open probe.
  common::TimeMs retry_in_ms() const noexcept { return retry_in_ms_; }

 private:
  common::TimeMs retry_in_ms_;
};

struct BreakerPolicy {
  int failure_threshold = 5;      // consecutive failures that trip the circuit
  common::TimeMs open_ms = 1000;  // cooldown before half-open probing
  int half_open_probes = 1;       // concurrent trial calls while half-open

  /// A policy that never trips (the historical always-retry shape).
  static BreakerPolicy disabled() { return {.failure_threshold = 0}; }
  bool enabled() const noexcept { return failure_threshold > 0; }
};

/// Per-authority circuit state. Thread-safe; one instance is typically
/// owned by a RetryingCaller and shared across every destination that
/// caller talks to.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerPolicy policy,
                          const common::Clock* clock =
                              &common::RealClock::instance());

  /// Gate before a call. True = proceed (and, when half-open, a probe slot
  /// is held until record_success/record_failure). False = fail fast; use
  /// retry_in(authority) for the hint.
  bool allow(const std::string& authority);
  void record_success(const std::string& authority);
  void record_failure(const std::string& authority);

  State state(const std::string& authority) const;
  /// Remaining cooldown for an open route; 0 when callable now.
  common::TimeMs retry_in(const std::string& authority) const;

  const BreakerPolicy& policy() const noexcept { return policy_; }

 private:
  struct Route {
    State state = State::kClosed;
    int consecutive_failures = 0;
    int probes_in_flight = 0;
    common::TimeMs opened_at = 0;
  };

  void trip_locked(Route& route, const std::string& authority);

  BreakerPolicy policy_;
  const common::Clock* clock_;
  telemetry::Counter* opened_ = nullptr;
  telemetry::Counter* closed_ = nullptr;
  telemetry::Counter* fast_fails_ = nullptr;
  telemetry::Counter* probes_ = nullptr;
  telemetry::Gauge* open_routes_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, Route> routes_;
};

}  // namespace gs::net
