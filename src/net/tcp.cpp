#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/buffer_chain.hpp"
#include "common/parse.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace gs::net {
namespace {

// Reads one HTTP message (headers + Content-Length body) from a socket.
// Returns the raw octets, or empty on EOF/error.
std::string read_http_message(int fd) {
  std::string buffer;
  char chunk[4096];
  size_t body_needed = std::string::npos;
  size_t headers_end = std::string::npos;
  for (;;) {
    if (headers_end != std::string::npos &&
        buffer.size() >= headers_end + 4 + body_needed) {
      return buffer.substr(0, headers_end + 4 + body_needed);
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return buffer;  // EOF or error: return what we have
    buffer.append(chunk, static_cast<size_t>(n));
    if (headers_end == std::string::npos) {
      headers_end = buffer.find("\r\n\r\n");
      if (headers_end != std::string::npos) {
        body_needed = 0;
        size_t cl = buffer.find("Content-Length:");
        if (cl != std::string::npos && cl < headers_end) {
          body_needed = static_cast<size_t>(
              std::strtoul(buffer.c_str() + cl + 15, nullptr, 10));
        }
      }
    }
  }
}

bool send_all(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(Endpoint& endpoint, std::uint16_t port, unsigned workers)
    : endpoint_(endpoint), workers_(workers) {
  workers_.attach_metrics(telemetry::MetricsRegistry::global(), "net.http.pool");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw NetworkError("bind() failed on port " + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw NetworkError("listen() failed");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

std::string HttpServer::base_url() const {
  return "http://127.0.0.1:" + std::to_string(port_);
}

void HttpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  workers_.drain();
}

void HttpServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    workers_.submit([this, fd] { serve_connection(fd); });
  }
}

void HttpServer::serve_connection(int fd) {
  std::string wire = read_http_message(fd);
  if (!wire.empty()) {
    HttpResponse response;
    if (auto request = HttpRequest::parse(wire)) {
      // Scope the receive span to the handle() call only: once the endpoint
      // re-roots it onto the caller's trace (via the carried TraceContext
      // header) it must be closed — and thus recorded — before the client
      // reads the trace log.
      static telemetry::Counter& requests =
          telemetry::MetricsRegistry::global().counter("net.http.requests");
      static telemetry::Histogram& request_us =
          telemetry::MetricsRegistry::global().histogram("net.http.request_us");
      auto started = std::chrono::steady_clock::now();
      {
        telemetry::SpanScope span("http.receive", "net");
        response = endpoint_.handle(*request);
      }
      requests.add();
      request_us.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count()));
    } else {
      response = HttpResponse::error(400, "Bad Request");
    }
    // Scatter write: the status line + headers, then the body segments
    // (template skeleton pieces, shared parse buffers) straight from where
    // they live — the chain-backed fast path never flattens the response.
    common::BufferChain wire;
    response.serialize_to(wire);
    bool ok = true;
    wire.for_each([&](std::string_view seg) { ok = ok && send_all(fd, seg); });
  }
  ::close(fd);
}

soap::Envelope TcpSoapCaller::call(const std::string& address,
                                   const soap::Envelope& request) {
  auto url = Url::parse(address);
  if (!url) throw NetworkError("malformed address: " + address);
  int port = url->port == 0 ? 80 : url->port;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetworkError("socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, url->host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetworkError("unsupported host (use a dotted-quad address): " + url->host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw NetworkError("connect() to " + address + " failed");
  }

  HttpRequest http;
  http.host = url->authority();
  http.path = url->path;
  http.headers["Content-Type"] = "application/soap+xml";
  http.body = request.to_xml();
  if (!send_all(fd, http.serialize())) {
    ::close(fd);
    throw NetworkError("send to " + address + " failed");
  }
  ::shutdown(fd, SHUT_WR);
  std::string wire = read_http_message(fd);
  ::close(fd);

  auto response = HttpResponse::parse(wire);
  if (!response) throw NetworkError("malformed HTTP response from " + address);
  if (response->status == 503) {
    common::TimeMs retry_after_ms = 0;
    if (auto it = response->headers.find("Retry-After");
        it != response->headers.end()) {
      if (auto secs = common::parse_number<common::TimeMs>(it->second)) {
        retry_after_ms = *secs * 1000;
      }
    }
    throw OverloadError("HTTP 503 Service Unavailable from " + address,
                        retry_after_ms);
  }
  return soap::Envelope::from_xml(response->body);
}

}  // namespace gs::net
