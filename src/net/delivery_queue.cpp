#include "net/delivery_queue.hpp"

#include <chrono>
#include <stdexcept>

namespace gs::net {

DeliveryQueue::DeliveryQueue(Config config) : config_(std::move(config)) {
  if (!config_.caller) {
    throw std::invalid_argument("DeliveryQueue needs a caller");
  }
}

DeliveryQueue::~DeliveryQueue() {
  std::unique_lock lock(mu_);
  stopping_ = true;
  for (auto& [destination, route] : routes_) route.backlog.clear();
  cv_idle_.wait(lock, [this] {
    for (const auto& [destination, route] : routes_) {
      if (route.draining) return false;
    }
    return true;
  });
}

bool DeliveryQueue::deliver(const std::string& destination,
                            const soap::Envelope& envelope) {
  auto started = std::chrono::steady_clock::now();
  bool ok = false;
  try {
    config_.caller->call(destination, envelope);
    ok = true;
  } catch (const std::exception&) {
    // Transport exhausted its retries (or the response was garbage); the
    // route's failure accounting decides what happens next.
  }
  if (config_.deliver_us) {
    config_.deliver_us->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count()));
  }
  if (ok && config_.delivered) config_.delivered->add();
  if (!ok && config_.failures) config_.failures->add();
  return ok;
}

void DeliveryQueue::dead_letter_event(const std::string& destination,
                                      const char* reason) {
  if (!config_.events) return;
  config_.events->emit(telemetry::Level::kWarn, config_.component,
                       "message dead-lettered",
                       {{"destination", destination}, {"reason", reason}});
}

void DeliveryQueue::eviction_event(const std::string& destination,
                                   std::size_t dropped) {
  if (!config_.events) return;
  config_.events->emit(
      telemetry::Level::kError, config_.component, "destination evicted",
      {{"destination", destination},
       {"consecutive_failures",
        std::to_string(config_.evict_after_consecutive_failures)},
       {"backlog_dropped", std::to_string(dropped)}});
}

std::size_t DeliveryQueue::evict_locked(Route& route) {
  route.evicted = true;
  std::size_t dropped = route.backlog.size();
  route.backlog.clear();
  dead_lettered_ += dropped;
  if (config_.dead_letters && dropped > 0)
    config_.dead_letters->add(dropped);
  if (config_.evictions) config_.evictions->add();
  return dropped;
}

DeliveryQueue::Submit DeliveryQueue::submit(const std::string& destination,
                                            soap::Envelope envelope) {
  if (!config_.pool) {
    // Inline mode: one call sequence on the submitting thread.
    bool evict_now = false;
    bool rejected_evicted = false;
    {
      std::lock_guard lock(mu_);
      Route& route = routes_[destination];
      if (route.evicted) {
        ++dead_lettered_;
        if (config_.dead_letters) config_.dead_letters->add();
        rejected_evicted = true;
      }
    }
    if (rejected_evicted) {
      dead_letter_event(destination, "destination evicted");
      return Submit::kRejected;
    }
    bool ok = deliver(destination, envelope);
    {
      std::lock_guard lock(mu_);
      Route& route = routes_[destination];
      if (ok) {
        route.consecutive_failures = 0;
        return Submit::kDelivered;
      }
      ++dead_lettered_;
      if (config_.dead_letters) config_.dead_letters->add();
      ++route.consecutive_failures;
      if (config_.evict_after_consecutive_failures > 0 && !route.evicted &&
          route.consecutive_failures >= config_.evict_after_consecutive_failures) {
        evict_locked(route);
        evict_now = true;
      }
    }
    dead_letter_event(destination, "delivery failed");
    if (evict_now) {
      eviction_event(destination, 0);
      if (config_.on_evict) config_.on_evict(destination);
    }
    return Submit::kRejected;
  }

  bool start_drain = false;
  const char* reject_reason = nullptr;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return Submit::kRejected;
    Route& route = routes_[destination];
    if (route.evicted ||
        route.backlog.size() >= config_.max_queued_per_destination) {
      ++dead_lettered_;
      if (config_.dead_letters) config_.dead_letters->add();
      reject_reason = route.evicted ? "destination evicted" : "backlog full";
    } else {
      route.backlog.push_back(std::move(envelope));
      if (!route.draining) {
        route.draining = true;
        start_drain = true;
      }
    }
  }
  if (reject_reason) {
    dead_letter_event(destination, reject_reason);
    return Submit::kRejected;
  }
  if (start_drain) {
    config_.pool->submit([this, destination] { drain(destination); });
  }
  return Submit::kQueued;
}

void DeliveryQueue::drain(const std::string& destination) {
  for (;;) {
    soap::Envelope envelope;
    {
      std::lock_guard lock(mu_);
      Route& route = routes_[destination];
      if (route.backlog.empty() || stopping_) {
        route.draining = false;
        cv_idle_.notify_all();
        return;
      }
      envelope = std::move(route.backlog.front());
      route.backlog.pop_front();
    }
    bool ok = deliver(destination, envelope);
    bool evict_now = false;
    std::size_t dropped = 0;
    {
      std::lock_guard lock(mu_);
      Route& route = routes_[destination];
      if (ok) {
        route.consecutive_failures = 0;
      } else {
        ++dead_lettered_;
        if (config_.dead_letters) config_.dead_letters->add();
        ++route.consecutive_failures;
        if (config_.evict_after_consecutive_failures > 0 && !route.evicted &&
            route.consecutive_failures >=
                config_.evict_after_consecutive_failures) {
          dropped = evict_locked(route);
          evict_now = true;
        }
      }
    }
    if (!ok) dead_letter_event(destination, "delivery failed");
    if (evict_now) {
      eviction_event(destination, dropped);
      if (config_.on_evict) config_.on_evict(destination);
    }
  }
}

void DeliveryQueue::flush() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] {
    for (const auto& [destination, route] : routes_) {
      if (route.draining || !route.backlog.empty()) return false;
    }
    return true;
  });
}

bool DeliveryQueue::evicted(const std::string& destination) const {
  std::lock_guard lock(mu_);
  auto it = routes_.find(destination);
  return it != routes_.end() && it->second.evicted;
}

void DeliveryQueue::reinstate(const std::string& destination) {
  std::lock_guard lock(mu_);
  auto it = routes_.find(destination);
  if (it == routes_.end()) return;
  it->second.evicted = false;
  it->second.consecutive_failures = 0;
}

std::uint64_t DeliveryQueue::dead_lettered() const {
  std::lock_guard lock(mu_);
  return dead_lettered_;
}

std::size_t DeliveryQueue::queued() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const auto& [destination, route] : routes_) {
    total += route.backlog.size();
  }
  return total;
}

}  // namespace gs::net
