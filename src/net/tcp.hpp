// Real TCP HTTP/1.1 server and SOAP caller (POSIX sockets, localhost use).
//
// The virtual network drives the benchmarks; this pair exists so the
// example programs are genuinely network-facing — the quickstart stands up
// a container on 127.0.0.1 and talks to it over real sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/threadpool.hpp"
#include "net/http.hpp"
#include "net/virtual_network.hpp"

namespace gs::net {

/// Blocking HTTP server on 127.0.0.1 dispatching to an Endpoint.
class HttpServer {
 public:
  /// Binds and listens immediately; `port == 0` picks an ephemeral port.
  /// Throws NetworkError when the socket cannot be bound.
  HttpServer(Endpoint& endpoint, std::uint16_t port = 0, unsigned workers = 4);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (useful with ephemeral binding).
  std::uint16_t port() const noexcept { return port_; }
  /// Base URL, e.g. "http://127.0.0.1:45123".
  std::string base_url() const;

  /// Stops accepting and joins workers. Idempotent; also runs on destruction.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  Endpoint& endpoint_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  common::ThreadPool workers_;
};

/// SOAP caller over real sockets (one connection per call).
class TcpSoapCaller final : public SoapCaller {
 public:
  soap::Envelope call(const std::string& address,
                      const soap::Envelope& request) override;
};

}  // namespace gs::net
