// ChaCha20 stream cipher (RFC 8439 core).
//
// Used as the record cipher in the TLS-lite channel. Encryption and
// decryption are the same keystream XOR.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace gs::security {

class ChaCha20 {
 public:
  ChaCha20(std::span<const std::uint8_t, 32> key,
           std::span<const std::uint8_t, 12> nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void apply(std::span<std::uint8_t> data);

  /// One-shot convenience.
  static std::vector<std::uint8_t> crypt(std::span<const std::uint8_t, 32> key,
                                         std::span<const std::uint8_t, 12> nonce,
                                         std::span<const std::uint8_t> data,
                                         std::uint32_t counter = 0);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  size_t used_ = 64;  // force refill on first use
};

}  // namespace gs::security
