#include "security/tls.hpp"

#include <cstring>

#include "security/chacha20.hpp"
#include "security/sha256.hpp"

namespace gs::security {
namespace {

std::array<std::uint8_t, 32> derive(std::span<const std::uint8_t> secret,
                                    std::string_view label) {
  Digest256 d = hmac_sha256(
      secret, std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  std::array<std::uint8_t, 32> out;
  std::copy(d.begin(), d.end(), out.begin());
  return out;
}

std::array<std::uint8_t, 12> nonce_for(std::uint64_t seq) {
  std::array<std::uint8_t, 12> nonce{};
  for (int i = 0; i < 8; ++i) nonce[static_cast<size_t>(i)] = static_cast<std::uint8_t>(seq >> (i * 8));
  return nonce;
}

void fill_random(std::span<std::uint8_t> out, std::mt19937_64& rng) {
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
}

}  // namespace

void TlsHandshake::key_connections(TlsConnection& client, TlsConnection& server,
                                   std::span<const std::uint8_t> master) {
  auto c2s_key = derive(master, "client-write-key");
  auto s2c_key = derive(master, "server-write-key");
  auto c2s_mac = derive(master, "client-write-mac");
  auto s2c_mac = derive(master, "server-write-mac");
  client.send_key_ = c2s_key;
  client.recv_key_ = s2c_key;
  client.send_mac_ = c2s_mac;
  client.recv_mac_ = s2c_mac;
  server.send_key_ = s2c_key;
  server.recv_key_ = c2s_key;
  server.send_mac_ = s2c_mac;
  server.recv_mac_ = c2s_mac;
}

std::vector<std::uint8_t> TlsConnection::seal(std::span<const std::uint8_t> plaintext) {
  std::vector<std::uint8_t> ct(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(send_key_, nonce_for(send_seq_));
  cipher.apply(ct);

  // MAC over seq || ciphertext.
  std::vector<std::uint8_t> mac_input(8);
  for (int i = 0; i < 8; ++i)
    mac_input[static_cast<size_t>(i)] = static_cast<std::uint8_t>(send_seq_ >> (i * 8));
  mac_input.insert(mac_input.end(), ct.begin(), ct.end());
  Digest256 tag = hmac_sha256(send_mac_, mac_input);
  ++send_seq_;

  std::vector<std::uint8_t> frame;
  frame.reserve(4 + ct.size() + tag.size());
  std::uint32_t len = static_cast<std::uint32_t>(ct.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(len >> (i * 8)));
  frame.insert(frame.end(), ct.begin(), ct.end());
  frame.insert(frame.end(), tag.begin(), tag.end());
  return frame;
}

std::vector<std::uint8_t> TlsConnection::open(std::span<const std::uint8_t> record) {
  if (record.size() < 4 + 32) throw SecurityError("TLS record truncated");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(record[static_cast<size_t>(i)]) << (i * 8);
  if (record.size() != 4 + len + 32) throw SecurityError("TLS record length mismatch");

  std::span<const std::uint8_t> ct = record.subspan(4, len);
  std::span<const std::uint8_t> tag = record.subspan(4 + len, 32);

  std::vector<std::uint8_t> mac_input(8);
  for (int i = 0; i < 8; ++i)
    mac_input[static_cast<size_t>(i)] = static_cast<std::uint8_t>(recv_seq_ >> (i * 8));
  mac_input.insert(mac_input.end(), ct.begin(), ct.end());
  Digest256 expected = hmac_sha256(recv_mac_, mac_input);
  if (!std::equal(expected.begin(), expected.end(), tag.begin())) {
    throw SecurityError("TLS record authentication failed");
  }

  std::vector<std::uint8_t> pt(ct.begin(), ct.end());
  ChaCha20 cipher(recv_key_, nonce_for(recv_seq_));
  cipher.apply(pt);
  ++recv_seq_;
  return pt;
}

void TlsSessionCache::put(const std::string& address,
                          std::array<std::uint8_t, 32> master) {
  std::lock_guard lock(mu_);
  sessions_[address] = master;
}

std::optional<std::array<std::uint8_t, 32>> TlsSessionCache::get(
    const std::string& address) const {
  std::lock_guard lock(mu_);
  auto it = sessions_.find(address);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

void TlsSessionCache::clear() {
  std::lock_guard lock(mu_);
  sessions_.clear();
}

size_t TlsSessionCache::size() const {
  std::lock_guard lock(mu_);
  return sessions_.size();
}

TlsHandshake TlsHandshake::run(const Certificate& anchor, TlsSessionCache& cache,
                               const Credential& server_credential,
                               const std::string& server_address,
                               common::TimeMs now, std::mt19937_64& rng) {
  TlsHandshake hs;

  if (auto master = cache.get(server_address)) {
    // Abbreviated handshake: hello + confirm, no certificates, no RSA.
    // Fresh randoms still refresh the record keys.
    std::array<std::uint8_t, 64> randoms;
    fill_random(randoms, rng);
    std::vector<std::uint8_t> secret(master->begin(), master->end());
    secret.insert(secret.end(), randoms.begin(), randoms.end());
    auto session = derive(secret, "resumed-session");
    key_connections(hs.client, hs.server, session);
    hs.resumed = true;
    hs.round_trips = 1;
    hs.handshake_bytes = randoms.size() + 32;  // hellos + confirm
    return hs;
  }

  // Full handshake.
  std::array<std::uint8_t, 32> client_random, server_random, pre_master;
  fill_random(client_random, rng);
  fill_random(server_random, rng);
  fill_random(pre_master, rng);
  pre_master[0] = 0;  // keep the pre-master below the RSA modulus

  // Client verifies the server certificate (the expensive part besides RSA).
  verify_certificate(server_credential.cert, anchor, now);

  // Key exchange: client encrypts the pre-master to the server key; the
  // server decrypts. Both RSA operations actually run.
  std::vector<std::uint8_t> encrypted =
      rsa_encrypt(server_credential.cert.subject_key, pre_master);
  std::vector<std::uint8_t> decrypted = rsa_decrypt(server_credential.key, encrypted);
  // Normalize leading zeros (BigUint round-trips drop them).
  while (decrypted.size() < pre_master.size()) {
    decrypted.insert(decrypted.begin(), 0);
  }
  if (!std::equal(pre_master.begin(), pre_master.end(), decrypted.begin())) {
    throw SecurityError("TLS key exchange failed");
  }

  // master = HMAC(pre_master, client_random || server_random)
  std::vector<std::uint8_t> seed(client_random.begin(), client_random.end());
  seed.insert(seed.end(), server_random.begin(), server_random.end());
  Digest256 master_digest = hmac_sha256(pre_master, seed);
  std::array<std::uint8_t, 32> master;
  std::copy(master_digest.begin(), master_digest.end(), master.begin());

  key_connections(hs.client, hs.server, master);
  cache.put(server_address, master);
  hs.resumed = false;
  hs.round_trips = 2;
  hs.handshake_bytes = client_random.size() + server_random.size() +
                       server_credential.cert.to_token().size() + encrypted.size();
  return hs;
}

}  // namespace gs::security
