// Arbitrary-precision unsigned integers and modular arithmetic for RSA.
//
// Little-endian 32-bit limbs, schoolbook multiplication, bitwise long
// division for the occasional reduction, and Montgomery (CIOS)
// exponentiation for the hot path (sign/verify). Sized for the RSA-1024
// keys the paper's WSE X.509 profile used.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gs::security {

class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal init

  /// Big-endian byte import/export (minimal-length export).
  static BigUint from_bytes(std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> to_bytes() const;

  static BigUint from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t bit_length() const noexcept;
  bool bit(size_t i) const noexcept;

  int compare(const BigUint& other) const noexcept;
  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.compare(b) == 0;
  }
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return a.compare(b) >= 0;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return a.compare(b) != 0;
  }

  friend BigUint operator+(const BigUint& a, const BigUint& b);
  /// Requires a >= b; throws std::underflow_error otherwise.
  friend BigUint operator-(const BigUint& a, const BigUint& b);
  friend BigUint operator*(const BigUint& a, const BigUint& b);
  BigUint operator<<(size_t bits) const;
  BigUint operator>>(size_t bits) const;

  /// {quotient, remainder}; throws std::domain_error on division by zero.
  static std::pair<BigUint, BigUint> divmod(const BigUint& a, const BigUint& b);
  friend BigUint operator/(const BigUint& a, const BigUint& b) {
    return divmod(a, b).first;
  }
  friend BigUint operator%(const BigUint& a, const BigUint& b) {
    return divmod(a, b).second;
  }

  /// base^exp mod modulus. Uses Montgomery exponentiation when the modulus
  /// is odd (the RSA case), plain square-and-multiply otherwise.
  static BigUint mod_exp(const BigUint& base, const BigUint& exp,
                         const BigUint& modulus);

  /// Modular inverse (extended Euclid); throws std::domain_error when
  /// gcd(a, m) != 1.
  static BigUint mod_inverse(const BigUint& a, const BigUint& m);

  /// Uniform random integer with exactly `bits` bits (msb set).
  static BigUint random_bits(size_t bits, std::mt19937_64& rng);
  /// Uniform random integer in [0, bound).
  static BigUint random_below(const BigUint& bound, std::mt19937_64& rng);

  /// Miller-Rabin probable-prime test with `rounds` random bases.
  static bool is_probable_prime(const BigUint& n, int rounds,
                                std::mt19937_64& rng);
  /// Random probable prime with exactly `bits` bits.
  static BigUint random_prime(size_t bits, std::mt19937_64& rng);

  std::uint64_t to_u64() const;  // low 64 bits

  const std::vector<std::uint32_t>& limbs() const noexcept { return limbs_; }

 private:
  void trim();
  // Little-endian limbs; empty == zero.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace gs::security
