#include "security/cert.hpp"

#include <limits>

#include "common/encoding.hpp"
#include "common/parse.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace gs::security {

namespace {
constexpr const char* kCertNs = "http://gridstacks.dev/security/cert";
xml::QName cert_name(const char* local) { return {kCertNs, local}; }
}  // namespace

std::string Certificate::tbs() const {
  return subject_dn + "\n" + issuer_dn + "\n" + subject_key.n.to_hex() + "\n" +
         subject_key.e.to_hex() + "\n" + std::to_string(not_before) + "\n" +
         std::to_string(not_after);
}

std::unique_ptr<xml::Element> Certificate::to_xml() const {
  auto el = std::make_unique<xml::Element>(cert_name("Certificate"));
  el->append_element(cert_name("Subject")).set_text(subject_dn);
  el->append_element(cert_name("Issuer")).set_text(issuer_dn);
  auto& key = el->append_element(cert_name("PublicKey"));
  key.append_element(cert_name("Modulus")).set_text(subject_key.n.to_hex());
  key.append_element(cert_name("Exponent")).set_text(subject_key.e.to_hex());
  el->append_element(cert_name("NotBefore")).set_text(std::to_string(not_before));
  el->append_element(cert_name("NotAfter")).set_text(std::to_string(not_after));
  el->append_element(cert_name("Signature"))
      .set_text(common::base64_encode(signature));
  return el;
}

Certificate Certificate::from_xml(const xml::Element& el) {
  auto text_of = [&](const char* local) -> std::string {
    const xml::Element* child = el.child(cert_name(local));
    if (!child) throw SecurityError(std::string("certificate missing ") + local);
    return child->text();
  };
  Certificate out;
  out.subject_dn = text_of("Subject");
  out.issuer_dn = text_of("Issuer");
  const xml::Element* key = el.child(cert_name("PublicKey"));
  if (!key) throw SecurityError("certificate missing PublicKey");
  const xml::Element* mod = key->child(cert_name("Modulus"));
  const xml::Element* exp = key->child(cert_name("Exponent"));
  if (!mod || !exp) throw SecurityError("certificate PublicKey incomplete");
  out.subject_key.n = BigUint::from_hex(mod->text());
  out.subject_key.e = BigUint::from_hex(exp->text());
  // Validity bounds arrive inside a peer-supplied token: a malformed value
  // must reject the certificate, not abort the process out of std::stoll.
  auto not_before = common::parse_number<common::TimeMs>(text_of("NotBefore"));
  auto not_after = common::parse_number<common::TimeMs>(text_of("NotAfter"));
  if (!not_before || !not_after) {
    throw SecurityError("certificate validity bounds are malformed");
  }
  out.not_before = *not_before;
  out.not_after = *not_after;
  auto sig = common::base64_decode(text_of("Signature"));
  if (!sig) throw SecurityError("certificate signature is not valid base64");
  out.signature = std::move(*sig);
  return out;
}

std::string Certificate::to_token() const {
  std::string xml_text = xml::write(*to_xml());
  return common::base64_encode(common::as_bytes(xml_text));
}

Certificate Certificate::from_token(std::string_view token) {
  auto bytes = common::base64_decode(token);
  if (!bytes) throw SecurityError("security token is not valid base64");
  std::string xml_text(bytes->begin(), bytes->end());
  return from_xml(*xml::parse_element(xml_text));
}

CertificateAuthority::CertificateAuthority(std::string dn, RsaKeyPair key)
    : dn_(std::move(dn)), key_(std::move(key)) {
  root_.subject_dn = dn_;
  root_.issuer_dn = dn_;
  root_.subject_key = key_.pub;
  root_.not_before = 0;
  root_.not_after = std::numeric_limits<common::TimeMs>::max();
  root_.signature = rsa_sign(key_, Sha256::digest(root_.tbs()));
}

CertificateAuthority CertificateAuthority::create(std::string dn, size_t bits,
                                                  std::mt19937_64& rng) {
  return CertificateAuthority(std::move(dn), RsaKeyPair::generate(bits, rng));
}

Credential CertificateAuthority::issue(const std::string& subject_dn, size_t bits,
                                       std::mt19937_64& rng,
                                       common::TimeMs not_before,
                                       common::TimeMs not_after) const {
  RsaKeyPair key = RsaKeyPair::generate(bits, rng);
  Certificate cert = certify(subject_dn, key.pub, not_before, not_after);
  return Credential{std::move(cert), std::move(key)};
}

Certificate CertificateAuthority::certify(const std::string& subject_dn,
                                          const RsaPublicKey& key,
                                          common::TimeMs not_before,
                                          common::TimeMs not_after) const {
  Certificate cert;
  cert.subject_dn = subject_dn;
  cert.issuer_dn = dn_;
  cert.subject_key = key;
  cert.not_before = not_before;
  cert.not_after = not_after;
  cert.signature = rsa_sign(key_, Sha256::digest(cert.tbs()));
  return cert;
}

void verify_certificate(const Certificate& cert, const Certificate& anchor,
                        common::TimeMs now) {
  if (cert.issuer_dn != anchor.subject_dn) {
    throw SecurityError("certificate issuer '" + cert.issuer_dn +
                        "' does not match trust anchor '" + anchor.subject_dn + "'");
  }
  if (now < cert.not_before) throw SecurityError("certificate not yet valid");
  if (now > cert.not_after) throw SecurityError("certificate expired");
  if (!rsa_verify(anchor.subject_key, Sha256::digest(cert.tbs()), cert.signature)) {
    throw SecurityError("certificate signature verification failed");
  }
}

}  // namespace gs::security
