// SHA-256 (FIPS 180-4).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gs::security {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);
  /// Finalizes and returns the digest; the object must be reset() before reuse.
  Digest256 finish();

  /// One-shot digest.
  static Digest256 digest(std::span<const std::uint8_t> data);
  static Digest256 digest(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_ = 0;
  size_t buffered_ = 0;
};

/// HMAC-SHA-256 (RFC 2104).
Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> message);

}  // namespace gs::security
