// WS-Security message signing (XML-DSIG style) for SOAP envelopes.
//
// Scenario "X.509-based signing of request and response" from the paper:
// the sender canonicalizes the Body plus the WS-Addressing headers, hashes,
// signs with its RSA key, and attaches a <wsse:Security> header carrying a
// BinarySecurityToken (the sender certificate) and the signature. The
// receiver re-canonicalizes, verifies the certificate chain against the
// trust anchor, and verifies the signature. This is the cost the paper
// observes dominating everything else in Figure 4.
#pragma once

#include <optional>
#include <string>

#include "common/clock.hpp"
#include "security/cert.hpp"
#include "soap/envelope.hpp"

namespace gs::security {

/// Identity extracted from a verified message signature.
struct VerifiedIdentity {
  std::string subject_dn;
  RsaPublicKey key;
};

/// Signs the envelope in place: adds a wsse:Security header with the
/// sender's certificate token, the digest of the signed content, and the
/// RSA signature. Signing twice replaces the previous header.
void sign_envelope(soap::Envelope& env, const Credential& credential);

/// True if the envelope carries a wsse:Security header.
bool is_signed(const soap::Envelope& env);

/// Verifies a signed envelope: certificate against `anchor` at time `now`,
/// then the message signature. Returns the sender identity.
/// Throws SecurityError on any failure (missing header, bad token, expired
/// certificate, digest mismatch, bad signature, tampered body).
VerifiedIdentity verify_envelope(const soap::Envelope& env,
                                 const Certificate& anchor, common::TimeMs now);

/// The canonical octets that the signature covers (exposed for tests).
std::string signed_content(const soap::Envelope& env);

}  // namespace gs::security
