// TLS-lite: the transport security channel for the paper's "https" scenarios.
//
// Full handshake: the client verifies the server certificate, RSA-encrypts
// a pre-master secret to the server key, and both sides derive record keys
// via HMAC-SHA-256. Records are ChaCha20-encrypted and HMAC-tagged with a
// per-direction sequence number. A client-side session cache keyed by server
// address allows resumption — skipping certificate verification and both
// RSA operations — which is the "socket caching" effect the paper credits
// for HTTPS being much cheaper than per-message X.509 signing.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "security/cert.hpp"

namespace gs::security {

/// One direction of an established TLS-lite connection.
class TlsConnection {
 public:
  /// Encrypts and tags a record. Frame: [u32 length][ciphertext][32-byte tag].
  std::vector<std::uint8_t> seal(std::span<const std::uint8_t> plaintext);
  /// Verifies and decrypts a frame produced by the peer's `seal`.
  /// Throws SecurityError on truncation or tag mismatch.
  std::vector<std::uint8_t> open(std::span<const std::uint8_t> record);

 private:
  friend struct TlsHandshake;
  std::array<std::uint8_t, 32> send_key_{};
  std::array<std::uint8_t, 32> recv_key_{};
  std::array<std::uint8_t, 32> send_mac_{};
  std::array<std::uint8_t, 32> recv_mac_{};
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

/// Client-side session cache: server address -> master secret.
class TlsSessionCache {
 public:
  void put(const std::string& address, std::array<std::uint8_t, 32> master);
  /// Returns the cached master secret, or nullopt.
  std::optional<std::array<std::uint8_t, 32>> get(const std::string& address) const;
  void clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::array<std::uint8_t, 32>> sessions_;
};

/// Outcome of a handshake: paired connections plus the cost profile the
/// simulated wire charges for.
struct TlsHandshake {
  TlsConnection client;
  TlsConnection server;
  bool resumed = false;        // session-cache hit: no RSA, one round trip
  int round_trips = 0;         // wire round trips consumed by the handshake
  size_t handshake_bytes = 0;  // octets exchanged during the handshake

  /// Performs a handshake between a client that trusts `anchor` (using
  /// `cache` for resumption) and a server presenting `server_credential` at
  /// `server_address`. Throws SecurityError if the server certificate does
  /// not verify at time `now`.
  static TlsHandshake run(const Certificate& anchor, TlsSessionCache& cache,
                          const Credential& server_credential,
                          const std::string& server_address, common::TimeMs now,
                          std::mt19937_64& rng);

 private:
  static void key_connections(TlsConnection& client, TlsConnection& server,
                              std::span<const std::uint8_t> master);
};

}  // namespace gs::security
