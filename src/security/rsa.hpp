// RSA keypairs, PKCS#1-v1.5-style SHA-256 signatures, and raw encryption
// (used for the TLS-lite key exchange).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "security/bignum.hpp"
#include "security/sha256.hpp"

namespace gs::security {

struct RsaPublicKey {
  BigUint n;  // modulus
  BigUint e;  // public exponent

  size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigUint d;  // private exponent

  /// Generates a keypair with a `bits`-bit modulus. `rng` is the entropy
  /// source; pass a fixed-seed generator for reproducible test fixtures.
  static RsaKeyPair generate(size_t bits, std::mt19937_64& rng);
};

/// Signs a SHA-256 digest: EMSA-PKCS1-v1_5-shaped padding, then RSA-d.
std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key, const Digest256& digest);

/// Verifies a signature over a SHA-256 digest.
bool rsa_verify(const RsaPublicKey& key, const Digest256& digest,
                std::span<const std::uint8_t> signature);

/// Raw RSA encryption of a short secret (must be shorter than the modulus).
/// Used for the TLS-lite pre-master-secret exchange.
std::vector<std::uint8_t> rsa_encrypt(const RsaPublicKey& key,
                                      std::span<const std::uint8_t> plaintext);
std::vector<std::uint8_t> rsa_decrypt(const RsaKeyPair& key,
                                      std::span<const std::uint8_t> ciphertext);

}  // namespace gs::security
