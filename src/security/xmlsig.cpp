#include "security/xmlsig.hpp"

#include "common/encoding.hpp"
#include "soap/namespaces.hpp"
#include "xml/canonical.hpp"

namespace gs::security {

namespace {

xml::QName wsse(const char* local) { return {soap::ns::kSecurity, local}; }
xml::QName ds(const char* local) { return {soap::ns::kDsig, local}; }

const xml::Element* find_security_header(const soap::Envelope& env) {
  // header_child answers from the wire view when the envelope was parsed on
  // the fast path, materializing only the Security subtree.
  return env.header_child(wsse("Security"));
}

}  // namespace

std::string signed_content(const soap::Envelope& env) {
  // Canonical Body, then the addressing headers in a fixed order (the
  // envelope computes this straight from its wire view when it has one, and
  // memoizes until mutation — verification paths reuse it). Any mutation of
  // these parts after signing invalidates the signature.
  return env.canonical_signed_content();
}

void sign_envelope(soap::Envelope& env, const Credential& credential) {
  // Remove any previous Security header (re-signing after mutation).
  if (const xml::Element* old = find_security_header(env)) {
    env.header().remove_child(*old);
  }

  std::string content = signed_content(env);
  Digest256 digest = Sha256::digest(content);
  std::vector<std::uint8_t> signature = rsa_sign(credential.key, digest);

  xml::Element& sec = env.header().append_element(wsse("Security"));
  sec.declare_prefix("wsse", soap::ns::kSecurity);
  sec.declare_prefix("ds", soap::ns::kDsig);
  sec.append_element(wsse("BinarySecurityToken"))
      .set_text(credential.cert.to_token());

  xml::Element& sig = sec.append_element(ds("Signature"));
  xml::Element& signed_info = sig.append_element(ds("SignedInfo"));
  signed_info.append_element(ds("CanonicalizationMethod"))
      .set_attr("Algorithm", "urn:gridstacks:c14n-lite");
  signed_info.append_element(ds("SignatureMethod"))
      .set_attr("Algorithm", "urn:gridstacks:rsa-sha256");
  xml::Element& reference = signed_info.append_element(ds("Reference"));
  reference.set_attr("URI", "#body-and-addressing");
  reference.append_element(ds("DigestValue")).set_text(common::base64_encode(digest));
  sig.append_element(ds("SignatureValue"))
      .set_text(common::base64_encode(signature));
}

bool is_signed(const soap::Envelope& env) {
  return find_security_header(env) != nullptr;
}

VerifiedIdentity verify_envelope(const soap::Envelope& env,
                                 const Certificate& anchor, common::TimeMs now) {
  const xml::Element* sec = find_security_header(env);
  if (!sec) throw SecurityError("message is not signed (no wsse:Security header)");

  const xml::Element* token = sec->child(wsse("BinarySecurityToken"));
  if (!token) throw SecurityError("Security header has no BinarySecurityToken");
  Certificate cert = Certificate::from_token(token->text());
  verify_certificate(cert, anchor, now);

  const xml::Element* sig = sec->child(ds("Signature"));
  if (!sig) throw SecurityError("Security header has no Signature");
  const xml::Element* signed_info = sig->child(ds("SignedInfo"));
  const xml::Element* sig_value = sig->child(ds("SignatureValue"));
  if (!signed_info || !sig_value) throw SecurityError("Signature is incomplete");
  const xml::Element* reference = signed_info->child(ds("Reference"));
  const xml::Element* digest_el =
      reference ? reference->child(ds("DigestValue")) : nullptr;
  if (!digest_el) throw SecurityError("Signature has no DigestValue");

  // Recompute the digest over the received content.
  Digest256 actual = Sha256::digest(signed_content(env));
  auto claimed = common::base64_decode(digest_el->text());
  if (!claimed || claimed->size() != actual.size() ||
      !std::equal(actual.begin(), actual.end(), claimed->begin())) {
    throw SecurityError("message digest mismatch (content was modified)");
  }

  auto signature = common::base64_decode(sig_value->text());
  if (!signature) throw SecurityError("SignatureValue is not valid base64");
  if (!rsa_verify(cert.subject_key, actual, *signature)) {
    throw SecurityError("message signature verification failed");
  }
  return VerifiedIdentity{cert.subject_dn, cert.subject_key};
}

}  // namespace gs::security
