// X.509-lite certificates and a small certificate authority.
//
// The paper's scenarios 2 and 5 sign requests/responses with X.509
// credentials processed by WSE. This module provides the equivalent trust
// machinery: a CA issues certificates binding a subject DN to an RSA public
// key; verification checks the issuer signature and the validity window.
// Certificates serialize to XML (this stack's wire format everywhere).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "security/rsa.hpp"
#include "xml/node.hpp"

namespace gs::security {

class SecurityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A certificate: subject identity + public key, signed by an issuer.
struct Certificate {
  std::string subject_dn;   // e.g. "CN=alice,O=VO"
  std::string issuer_dn;    // e.g. "CN=GridCA"
  RsaPublicKey subject_key;
  common::TimeMs not_before = 0;
  common::TimeMs not_after = 0;
  std::vector<std::uint8_t> signature;  // issuer's signature over tbs()

  /// Deterministic serialization of the to-be-signed fields.
  std::string tbs() const;

  std::unique_ptr<xml::Element> to_xml() const;
  static Certificate from_xml(const xml::Element& el);

  /// Compact transport form (base64 of the XML) for BinarySecurityToken.
  std::string to_token() const;
  static Certificate from_token(std::string_view token);
};

/// A certificate plus the matching private key — what a client or service
/// authenticates with.
struct Credential {
  Certificate cert;
  RsaKeyPair key;
};

/// Issues certificates under a self-signed root.
class CertificateAuthority {
 public:
  /// Creates a CA with a fresh `bits`-bit key.
  static CertificateAuthority create(std::string dn, size_t bits,
                                     std::mt19937_64& rng);

  /// Issues a credential for `subject_dn` with a fresh subject key.
  Credential issue(const std::string& subject_dn, size_t bits,
                   std::mt19937_64& rng, common::TimeMs not_before,
                   common::TimeMs not_after) const;

  /// Signs an externally-generated public key into a certificate.
  Certificate certify(const std::string& subject_dn, const RsaPublicKey& key,
                      common::TimeMs not_before, common::TimeMs not_after) const;

  /// The CA's self-signed certificate (the trust anchor).
  const Certificate& root() const noexcept { return root_; }

 private:
  CertificateAuthority(std::string dn, RsaKeyPair key);
  std::string dn_;
  RsaKeyPair key_;
  Certificate root_;
};

/// Verifies `cert` against the trust anchor: issuer DN matches, the issuer
/// signature is valid, and `now` lies within the validity window.
/// Throws SecurityError with a specific reason on failure.
void verify_certificate(const Certificate& cert, const Certificate& anchor,
                        common::TimeMs now);

}  // namespace gs::security
