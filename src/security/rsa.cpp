#include "security/rsa.hpp"

#include <stdexcept>

namespace gs::security {

RsaKeyPair RsaKeyPair::generate(size_t bits, std::mt19937_64& rng) {
  if (bits < 128) throw std::invalid_argument("RSA modulus too small");
  const BigUint e(65537);
  for (;;) {
    BigUint p = BigUint::random_prime(bits / 2, rng);
    BigUint q = BigUint::random_prime(bits - bits / 2, rng);
    if (p == q) continue;
    BigUint n = p * q;
    if (n.bit_length() != bits) continue;
    BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    if ((phi % e).is_zero()) continue;  // e must be coprime with phi
    BigUint d = BigUint::mod_inverse(e, phi);
    return RsaKeyPair{{std::move(n), e}, std::move(d)};
  }
}

namespace {

// EMSA-PKCS1-v1_5 shape: 0x00 0x01 FF..FF 0x00 || digest, sized to the
// modulus. (We skip the DER DigestInfo prefix; the digest length pins the
// hash choice.)
BigUint pad_digest(const Digest256& digest, size_t modulus_bytes) {
  if (modulus_bytes < digest.size() + 11) {
    throw std::invalid_argument("RSA modulus too small for digest padding");
  }
  std::vector<std::uint8_t> em(modulus_bytes, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[modulus_bytes - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(), em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return BigUint::from_bytes(em);
}

std::vector<std::uint8_t> to_fixed_bytes(const BigUint& v, size_t size) {
  std::vector<std::uint8_t> bytes = v.to_bytes();
  if (bytes.size() > size) throw std::logic_error("RSA value exceeds modulus size");
  std::vector<std::uint8_t> out(size - bytes.size(), 0);
  out.insert(out.end(), bytes.begin(), bytes.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key, const Digest256& digest) {
  BigUint em = pad_digest(digest, key.pub.modulus_bytes());
  BigUint sig = BigUint::mod_exp(em, key.d, key.pub.n);
  return to_fixed_bytes(sig, key.pub.modulus_bytes());
}

bool rsa_verify(const RsaPublicKey& key, const Digest256& digest,
                std::span<const std::uint8_t> signature) {
  if (signature.size() != key.modulus_bytes()) return false;
  BigUint sig = BigUint::from_bytes(signature);
  if (sig >= key.n) return false;
  BigUint em = BigUint::mod_exp(sig, key.e, key.n);
  return em == pad_digest(digest, key.modulus_bytes());
}

std::vector<std::uint8_t> rsa_encrypt(const RsaPublicKey& key,
                                      std::span<const std::uint8_t> plaintext) {
  BigUint m = BigUint::from_bytes(plaintext);
  if (m >= key.n) throw std::invalid_argument("RSA plaintext too large");
  return to_fixed_bytes(BigUint::mod_exp(m, key.e, key.n), key.modulus_bytes());
}

std::vector<std::uint8_t> rsa_decrypt(const RsaKeyPair& key,
                                      std::span<const std::uint8_t> ciphertext) {
  BigUint c = BigUint::from_bytes(ciphertext);
  if (c >= key.pub.n) throw std::invalid_argument("RSA ciphertext too large");
  return BigUint::mod_exp(c, key.d, key.pub.n).to_bytes();
}

}  // namespace gs::security
