#include "security/bignum.hpp"

#include <algorithm>
#include <stdexcept>

namespace gs::security {

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes(std::span<const std::uint8_t> bytes) {
  BigUint out;
  for (std::uint8_t b : bytes) {
    out = (out << 8) + BigUint(b);
  }
  return out;
}

std::vector<std::uint8_t> BigUint::to_bytes() const {
  if (is_zero()) return {0};
  std::vector<std::uint8_t> out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      out.push_back(static_cast<std::uint8_t>(limbs_[i] >> shift));
    }
  }
  size_t skip = 0;
  while (skip + 1 < out.size() && out[skip] == 0) ++skip;
  out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(skip));
  return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
  BigUint out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else throw std::invalid_argument("invalid hex digit");
    out = (out << 4) + BigUint(static_cast<std::uint64_t>(v));
  }
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out += kHex[(limbs_[i] >> shift) & 0xF];
    }
  }
  size_t skip = out.find_first_not_of('0');
  return out.substr(skip == std::string::npos ? out.size() - 1 : skip);
}

size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::bit(size_t i) const noexcept {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigUint::compare(const BigUint& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint operator+(const BigUint& a, const BigUint& b) {
  BigUint out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUint operator-(const BigUint& a, const BigUint& b) {
  if (a < b) throw std::underflow_error("BigUint subtraction underflow");
  BigUint out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow -
                        (i < b.limbs_.size() ? b.limbs_[i] : 0);
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint();
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] +
                          static_cast<std::uint64_t>(a.limbs_[i]) * b.limbs_[j] +
                          carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::operator<<(size_t bits) const {
  if (is_zero()) return BigUint();
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigUint BigUint::operator>>(size_t bits) const {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& a, const BigUint& b) {
  if (b.is_zero()) throw std::domain_error("BigUint division by zero");
  if (a < b) return {BigUint(), a};

  // Bitwise long division: adequate because divisions are off the RSA hot
  // path (Montgomery handles the modexp inner loop).
  BigUint quotient;
  size_t shift = a.bit_length() - b.bit_length();
  BigUint divisor = b << shift;
  BigUint remainder = a;
  quotient.limbs_.assign((shift + 32) / 32, 0);
  for (size_t i = shift + 1; i-- > 0;) {
    if (remainder >= divisor) {
      remainder = remainder - divisor;
      quotient.limbs_[i / 32] |= (1u << (i % 32));
    }
    divisor = divisor >> 1;
  }
  quotient.trim();
  return {std::move(quotient), std::move(remainder)};
}

namespace {

// Montgomery (CIOS) context for an odd modulus.
class Montgomery {
 public:
  explicit Montgomery(const BigUint& n) : n_(n.limbs()), k_(n.limbs().size()) {
    // n0inv = -n^{-1} mod 2^32 via Newton iteration.
    std::uint32_t x = n_[0];
    std::uint32_t inv = x;  // 3 bits correct
    for (int i = 0; i < 5; ++i) inv *= 2 - x * inv;
    n0inv_ = ~inv + 1;  // negate mod 2^32

    // R^2 mod n where R = 2^(32k), computed via shifting.
    BigUint r2 = BigUint(1) << (64 * k_);
    r2_ = (r2 % n).limbs();
    r2_.resize(k_, 0);
  }

  // Montgomery product: a*b*R^{-1} mod n. Inputs/outputs are k-limb vectors.
  std::vector<std::uint32_t> mul(const std::vector<std::uint32_t>& a,
                                 const std::vector<std::uint32_t>& b) const {
    std::vector<std::uint64_t> t(k_ + 2, 0);
    for (size_t i = 0; i < k_; ++i) {
      std::uint64_t carry = 0;
      std::uint64_t ai = a[i];
      for (size_t j = 0; j < k_; ++j) {
        std::uint64_t cur = t[j] + ai * b[j] + carry;
        t[j] = cur & 0xFFFFFFFFULL;
        carry = cur >> 32;
      }
      std::uint64_t cur = t[k_] + carry;
      t[k_] = cur & 0xFFFFFFFFULL;
      t[k_ + 1] = cur >> 32;

      std::uint32_t m = static_cast<std::uint32_t>(t[0]) * n0inv_;
      carry = 0;
      std::uint64_t first = t[0] + static_cast<std::uint64_t>(m) * n_[0];
      carry = first >> 32;
      for (size_t j = 1; j < k_; ++j) {
        std::uint64_t cur2 = t[j] + static_cast<std::uint64_t>(m) * n_[j] + carry;
        t[j - 1] = cur2 & 0xFFFFFFFFULL;
        carry = cur2 >> 32;
      }
      std::uint64_t cur2 = t[k_] + carry;
      t[k_ - 1] = cur2 & 0xFFFFFFFFULL;
      t[k_] = t[k_ + 1] + (cur2 >> 32);
      t[k_ + 1] = 0;
    }
    std::vector<std::uint32_t> out(k_);
    for (size_t i = 0; i < k_; ++i) out[i] = static_cast<std::uint32_t>(t[i]);
    // Conditional final subtraction.
    bool ge = t[k_] != 0;
    if (!ge) {
      ge = true;
      for (size_t i = k_; i-- > 0;) {
        if (out[i] != n_[i]) {
          ge = out[i] > n_[i];
          break;
        }
      }
    }
    if (ge) {
      std::int64_t borrow = 0;
      for (size_t i = 0; i < k_; ++i) {
        std::int64_t diff = static_cast<std::int64_t>(out[i]) - n_[i] - borrow;
        if (diff < 0) {
          diff += (1LL << 32);
          borrow = 1;
        } else {
          borrow = 0;
        }
        out[i] = static_cast<std::uint32_t>(diff);
      }
    }
    return out;
  }

  // base^exp mod n (left-to-right square-and-multiply in the Montgomery
  // domain).
  BigUint pow(const BigUint& base, const BigUint& exp) const {
    std::vector<std::uint32_t> b = (base % to_big(n_)).limbs();
    b.resize(k_, 0);
    std::vector<std::uint32_t> bm = mul(b, r2_);  // to Montgomery domain

    // one = R mod n = mont(1, R^2).
    std::vector<std::uint32_t> one(k_, 0);
    one[0] = 1;
    std::vector<std::uint32_t> acc = mul(one, r2_);

    size_t bits = exp.bit_length();
    for (size_t i = bits; i-- > 0;) {
      acc = mul(acc, acc);
      if (exp.bit(i)) acc = mul(acc, bm);
    }
    acc = mul(acc, one);  // out of Montgomery domain (multiply by 1)
    BigUint out = to_big(acc);
    return out;
  }

 private:
  static BigUint to_big(const std::vector<std::uint32_t>& limbs) {
    BigUint out = BigUint();
    std::vector<std::uint8_t> bytes;
    for (size_t i = limbs.size(); i-- > 0;) {
      for (int shift = 24; shift >= 0; shift -= 8) {
        bytes.push_back(static_cast<std::uint8_t>(limbs[i] >> shift));
      }
    }
    return BigUint::from_bytes(bytes);
  }

  std::vector<std::uint32_t> n_;
  size_t k_;
  std::uint32_t n0inv_;
  std::vector<std::uint32_t> r2_;
};

}  // namespace

BigUint BigUint::mod_exp(const BigUint& base, const BigUint& exp,
                         const BigUint& modulus) {
  if (modulus.is_zero()) throw std::domain_error("mod_exp modulus is zero");
  if (modulus == BigUint(1)) return BigUint();
  if (exp.is_zero()) return BigUint(1);
  if (modulus.is_odd()) {
    return Montgomery(modulus).pow(base, exp);
  }
  // Fallback: plain square-and-multiply (rare path; RSA moduli are odd).
  BigUint result(1);
  BigUint b = base % modulus;
  for (size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result) % modulus;
    if (exp.bit(i)) result = (result * b) % modulus;
  }
  return result;
}

BigUint BigUint::mod_inverse(const BigUint& a, const BigUint& m) {
  // Extended Euclid with signed coefficients tracked as (magnitude, sign).
  struct Signed {
    BigUint mag;
    bool neg = false;
  };
  auto sub = [](const Signed& x, const Signed& y) -> Signed {
    if (x.neg == y.neg) {
      if (x.mag >= y.mag) return {x.mag - y.mag, x.neg};
      return {y.mag - x.mag, !x.neg};
    }
    return {x.mag + y.mag, x.neg};
  };
  auto mul_big = [](const Signed& x, const BigUint& q) -> Signed {
    return {x.mag * q, x.neg};
  };

  BigUint r0 = m, r1 = a % m;
  Signed t0{BigUint(), false}, t1{BigUint(1), false};
  while (!r1.is_zero()) {
    auto [q, r] = divmod(r0, r1);
    Signed t2 = sub(t0, mul_big(t1, q));
    r0 = std::move(r1);
    r1 = std::move(r);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0 != BigUint(1)) throw std::domain_error("mod_inverse: not coprime");
  if (t0.neg) return m - (t0.mag % m);
  return t0.mag % m;
}

BigUint BigUint::random_bits(size_t bits, std::mt19937_64& rng) {
  if (bits == 0) return BigUint();
  BigUint out;
  out.limbs_.resize((bits + 31) / 32);
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng());
  size_t top_bit = (bits - 1) % 32;
  std::uint32_t mask = top_bit == 31 ? 0xFFFFFFFFu : ((1u << (top_bit + 1)) - 1);
  out.limbs_.back() &= mask;
  out.limbs_.back() |= (1u << top_bit);  // force exact bit length
  return out;
}

BigUint BigUint::random_below(const BigUint& bound, std::mt19937_64& rng) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  size_t bits = bound.bit_length();
  for (;;) {
    BigUint candidate;
    candidate.limbs_.resize((bits + 31) / 32);
    for (auto& limb : candidate.limbs_) limb = static_cast<std::uint32_t>(rng());
    size_t extra = candidate.limbs_.size() * 32 - bits;
    if (extra > 0) candidate.limbs_.back() >>= extra;
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

bool BigUint::is_probable_prime(const BigUint& n, int rounds,
                                std::mt19937_64& rng) {
  if (n < BigUint(2)) return false;
  static const std::uint32_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                               23, 29, 31, 37, 41, 43, 47};
  for (std::uint32_t p : kSmallPrimes) {
    if (n == BigUint(p)) return true;
    if ((n % BigUint(p)).is_zero()) return false;
  }
  // n - 1 = d * 2^s with d odd.
  BigUint n_minus_1 = n - BigUint(1);
  BigUint d = n_minus_1;
  size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    BigUint a = BigUint(2) + random_below(n - BigUint(4), rng);
    BigUint x = mod_exp(a, d, n);
    if (x == BigUint(1) || x == n_minus_1) continue;
    bool witness = true;
    for (size_t i = 1; i < s; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigUint BigUint::random_prime(size_t bits, std::mt19937_64& rng) {
  for (;;) {
    BigUint candidate = random_bits(bits, rng);
    if (!candidate.is_odd()) candidate = candidate + BigUint(1);
    if (is_probable_prime(candidate, 20, rng)) return candidate;
  }
}

std::uint64_t BigUint::to_u64() const {
  std::uint64_t out = 0;
  if (!limbs_.empty()) out = limbs_[0];
  if (limbs_.size() > 1) out |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return out;
}

}  // namespace gs::security
