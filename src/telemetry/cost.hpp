// Per-request cost attribution: which tenant is spending the container's
// capacity, and on what.
//
// PR 8 classifies requests by tenant (X-GS-Tenant) for admission; this
// layer reuses that classification for ACCOUNTING. Each request accrues a
// CostRecord as it moves through the PR-5 pipeline — wall/parse/serialize
// microseconds from the chain stages, DOM nodes and arena bytes from the
// PR-7 allocation probes, request/response octets from the transport
// boundary — and the container hands the finished record to a
// CostAggregator keyed (tenant, service path).
//
// Two outputs per record, written on the request thread:
//   * `tenant.<id>.*` metrics in the registry (requests counter, wall_us
//     histogram, bytes_in/bytes_out counters) so tenant spend is visible
//     to everything downstream of the registry — series, SLOs, monitor
//     snapshots, the Prometheus endpoint;
//   * an exact per-tenant / per-service table behind `<t:Tenants>` in the
//     telemetry document, where integer totals (nodes, bytes, faults)
//     stay lossless.
//
// Metric handles are cached per tenant: the steady-state cost of
// attribution is one map lookup under a short mutex plus four lock-free
// metric writes (bench_timeseries gates it).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace gs::telemetry {

/// What one request cost, accrued along the pipeline.
struct CostRecord {
  std::uint64_t wall_us = 0;       // transport entry to response ready
  std::uint64_t parse_us = 0;      // request body -> envelope
  std::uint64_t serialize_us = 0;  // envelope -> response octets
  std::uint64_t xml_nodes = 0;     // DOM nodes built serving the request
  std::uint64_t arena_bytes = 0;   // parser arena bytes bump-allocated
  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;
  bool fault = false;
};

class CostAggregator {
 public:
  /// Lossless running totals for one (tenant, service) or tenant overall.
  struct Costs {
    std::uint64_t requests = 0;
    std::uint64_t faults = 0;
    std::uint64_t wall_us = 0;
    std::uint64_t parse_us = 0;
    std::uint64_t serialize_us = 0;
    std::uint64_t xml_nodes = 0;
    std::uint64_t arena_bytes = 0;
    std::uint64_t request_bytes = 0;
    std::uint64_t response_bytes = 0;

    void accrue(const CostRecord& cost);
  };

  struct TenantCosts {
    std::string tenant;
    Costs total;
    std::map<std::string, Costs> by_service;  // key: service path
  };

  explicit CostAggregator(
      MetricsRegistry* registry = &MetricsRegistry::global());

  /// Attributes one finished request. Thread-safe; runs on the request
  /// thread, so it must stay cheap (cached handles, one short lock).
  void record(const std::string& tenant, const std::string& service,
              const CostRecord& cost);

  /// All tenants, sorted by id.
  std::vector<TenantCosts> totals() const;
  std::optional<TenantCosts> tenant(const std::string& id) const;
  std::uint64_t requests_recorded() const;

 private:
  struct Handles {
    Counter* requests = nullptr;
    Histogram* wall_us = nullptr;
    Counter* bytes_in = nullptr;
    Counter* bytes_out = nullptr;
  };

  MetricsRegistry* registry_;
  mutable std::mutex mu_;
  std::map<std::string, TenantCosts> table_;
  std::map<std::string, Handles> handles_;
};

}  // namespace gs::telemetry
