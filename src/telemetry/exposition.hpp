// Plain-HTTP text exposition of a MetricsRegistry.
//
// The WSRF/WS-Transfer telemetry resource is the paper-faithful interface,
// but every modern scrape pipeline speaks the Prometheus text format; this
// adapter serves the same registry as `name value` lines so an off-the-
// shelf scraper can read a container without a SOAP client:
//
//   # TYPE gs_container_requests counter
//   gs_container_requests_total 123
//   # TYPE gs_container_inflight gauge
//   gs_container_inflight 2
//   # TYPE gs_container_dispatch_us summary
//   gs_container_dispatch_us{quantile="0.5"} 41.0
//   gs_container_dispatch_us{quantile="0.99"} 180.0
//   gs_container_dispatch_us_sum 5120
//   gs_container_dispatch_us_count 123
//
// Metric names are sanitized to [a-zA-Z0-9_:] with a `gs_` prefix (dots
// become underscores); histograms export as summaries (the registry's
// power-of-two buckets are not cumulative le-buckets).
//
// MetricsHttpEndpoint wraps any inner endpoint: GET <path> (default
// /metrics) answers with the text page, everything else passes through —
// so a container mounts on an HttpServer with scraping enabled by
// composition, no container changes.
#pragma once

#include <string>

#include "net/virtual_network.hpp"
#include "telemetry/metrics.hpp"

namespace gs::telemetry {

/// Content-Type the text page is served with.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4";

/// Renders the registry in the Prometheus text exposition format.
std::string prometheus_text(const MetricsRegistry& registry);

/// `name` mangled to a legal Prometheus metric name: `gs_` + name with
/// every character outside [a-zA-Z0-9_:] replaced by '_'.
std::string prometheus_name(const std::string& name);

class MetricsHttpEndpoint final : public net::Endpoint {
 public:
  explicit MetricsHttpEndpoint(
      net::Endpoint& inner,
      const MetricsRegistry* registry = &MetricsRegistry::global(),
      std::string path = "/metrics");

  net::HttpResponse handle(const net::HttpRequest& request) override;
  const security::Credential* tls_credential() const override {
    return inner_.tls_credential();
  }

 private:
  net::Endpoint& inner_;
  const MetricsRegistry* registry_;
  std::string path_;
};

}  // namespace gs::telemetry
