// Live telemetry exposed *the paper's way*: as WS-Resource state.
//
// One deployed TelemetryService serves the same snapshot document on both
// of the paper's stacks —
//   * WSRF:        GetResourceProperty / GetResourcePropertyDocument
//   * WS-Transfer: Get
// — so either stack's tooling can read the container's own metrics, the
// per-service monitoring JClarens exposed as first-class grid-service
// state. The telemetry resource is a singleton: no resource-id reference
// header is required (requests carrying one are served the same document).
#pragma once

#include <memory>
#include <string>

#include "container/service.hpp"
#include "telemetry/cost.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace gs::telemetry {

/// Builds the snapshot document:
///
///   <t:Telemetry xmlns:t="http://gridstacks.dev/telemetry">
///     <t:Counter name="net.http.requests">123</t:Counter>
///     <t:Gauge name="net.http.pool.queue_depth">0</t:Gauge>
///     <t:Histogram name="container.dispatch_us" count=".." sum_us=".."
///                  min_us=".." max_us=".." p50_us=".." p90_us=".."
///                  p99_us=".."/>
///     <t:Trace id="..">
///       <t:Span id=".." parent=".." name="http.receive" layer="net"
///               start_us=".." duration_us=".."/>
///     </t:Trace>
///     <t:Event ts_us=".." level="warn" component="net.retry" trace="..">
///       retry budget exhausted
///       <t:Attr name="address">http://node1/..</t:Attr>
///     </t:Event>
///     <t:Health uptime_us=".." events_warn=".." events_error=".."
///               events_dropped=".." shed_total=".." admitted="..">
///       <t:QueueDepth name="..">0</t:QueueDepth>
///       <t:Evictions name="wsn.subscribers_evicted">0</t:Evictions>
///       <t:Breaker open_routes=".." opened=".." fast_fails=".."
///                  closed=".." probes=".."/>
///       <t:Scheduler queue_depth=".." jobs_running=".." nodes_up=".."
///                    nodes_down=".." cpus_used=".." cpus_total=".."/>
///       <t:LastError ts_us=".." component="..">message</t:LastError>
///     </t:Health>
///     <t:Series name="container.faults" resolution="raw" interval_ms="..">
///       <t:Point t_ms=".." value=".." min=".." max=".." samples=".."/>
///     </t:Series>
///     <t:Slo name="availability" firing="false" burn_short=".."
///            burn_long=".." error_ratio_short=".." error_ratio_long=".."/>
///     <t:Tenants>
///       <t:Tenant id="alice" requests=".." faults=".." wall_us=".."
///                 parse_us=".." serialize_us=".." xml_nodes=".."
///                 arena_bytes=".." bytes_in=".." bytes_out="..">
///         <t:Service path="/Counter" requests=".." wall_us=".."/>
///       </t:Tenant>
///     </t:Tenants>
///   </t:Telemetry>
///
/// Metric/trace names, event messages, and attr values are arbitrary text
/// (fault reasons, remote addresses); escaping happens in the XML writer on
/// serialization, including control characters. `events` may be null — the
/// Event and Health sections are then omitted; likewise `series`, `slo`,
/// and `costs` gate the Series, Slo, and Tenants sections.
std::unique_ptr<xml::Element> telemetry_document(
    const MetricsRegistry& registry, const TraceLog& log,
    const EventLog* events = nullptr, const TimeSeriesStore* series = nullptr,
    const SloTracker* slo = nullptr, const CostAggregator* costs = nullptr);

/// One `<t:Series>` element for `window` (helper shared by the document
/// builder and the windowed Series/<metric> query).
std::unique_ptr<xml::Element> series_element(
    const std::string& name, const TimeSeriesStore::Window& window);

class TelemetryService final : public container::Service {
 public:
  explicit TelemetryService(std::string address,
                            MetricsRegistry* registry = &MetricsRegistry::global(),
                            TraceLog* log = &TraceLog::global(),
                            EventLog* events = &EventLog::global(),
                            const TimeSeriesStore* series = nullptr,
                            const SloTracker* slo = nullptr,
                            const CostAggregator* costs = nullptr);

  const std::string& address() const noexcept { return address_; }

 private:
  std::unique_ptr<xml::Element> document() const {
    return telemetry_document(*registry_, *log_, events_, series_, slo_,
                              costs_);
  }
  /// Resolves the cursor/window query forms ("Series/<metric>[/<start_ms>]"
  /// and "Events/<seq>"); nullptr when `requested` is not one of them.
  std::unique_ptr<xml::Element> query_element(const std::string& requested) const;

  std::string address_;
  MetricsRegistry* registry_;
  TraceLog* log_;
  EventLog* events_;
  const TimeSeriesStore* series_;
  const SloTracker* slo_;
  const CostAggregator* costs_;
};

}  // namespace gs::telemetry
