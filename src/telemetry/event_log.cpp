#include "telemetry/event_log.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "telemetry/trace.hpp"

namespace gs::telemetry {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
  }
  return "?";
}

std::string format_event(const Event& event) {
  std::ostringstream out;
  out << event.ts_us << "us " << level_name(event.level) << " ["
      << event.component << "] " << event.message;
  if (!event.attrs.empty()) {
    out << " {";
    bool first = true;
    for (const auto& [key, value] : event.attrs) {
      if (!first) out << ", ";
      first = false;
      out << key << '=' << value;
    }
    out << '}';
  }
  if (event.trace_id != 0) {
    out << " trace=" << std::hex << event.trace_id << std::dec;
  }
  return out.str();
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), start_us_(steady_now_us()) {
  ring_.reserve(capacity_);
}

void EventLog::log(Event event) {
  level_counts_[static_cast<std::size_t>(event.level)].fetch_add(
      1, std::memory_order_relaxed);
  if (event.level < min_level_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(mu_);
  event.seq = ++last_seq_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    wrapped_ = true;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  next_ = (next_ + 1) % capacity_;
}

void EventLog::emit(Level level, std::string component, std::string message,
                    std::vector<std::pair<std::string, std::string>> attrs) {
  Event event;
  event.ts_us = steady_now_us();
  event.level = level;
  event.component = std::move(component);
  event.message = std::move(message);
  event.trace_id = current_context().trace_id;
  event.attrs = std::move(attrs);
  log(std::move(event));
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  std::size_t start = wrapped_ ? next_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<Event> EventLog::recent(std::size_t n, Level min_level) const {
  std::vector<Event> all = snapshot();
  std::vector<Event> out;
  // Walk newest-to-oldest collecting matches, then restore oldest-first.
  for (auto it = all.rbegin(); it != all.rend() && out.size() < n; ++it) {
    if (it->level >= min_level) out.push_back(std::move(*it));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Event> EventLog::events_since(std::uint64_t seq) const {
  std::vector<Event> all = snapshot();
  std::vector<Event> out;
  // The ring is seq-ordered (log() assigns monotonically under mu_), so
  // everything after the first match qualifies.
  for (Event& event : all) {
    if (event.seq > seq) out.push_back(std::move(event));
  }
  return out;
}

std::uint64_t EventLog::last_seq() const {
  std::lock_guard lock(mu_);
  return last_seq_;
}

std::uint64_t EventLog::count(Level level) const {
  return level_counts_[static_cast<std::size_t>(level)].load(
      std::memory_order_relaxed);
}

std::uint64_t EventLog::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::size_t EventLog::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

void EventLog::set_min_level(Level level) {
  min_level_.store(level, std::memory_order_relaxed);
}

void EventLog::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

std::string EventLog::to_text() const {
  std::string out;
  for (const Event& event : snapshot()) {
    out += format_event(event);
    out += '\n';
  }
  return out;
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

}  // namespace gs::telemetry
