#include "telemetry/service.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "soap/namespaces.hpp"
#include "telemetry/propagation.hpp"

namespace gs::telemetry {

namespace {

xml::QName t(const char* local) { return {kTelemetryNs, local}; }
xml::QName rp(const char* local) { return {soap::ns::kWsrfRp, local}; }

// Action URIs duplicated from the wsrf/wst service headers so this library
// depends only on gs_container (the strings are spec constants either way).
const std::string kGetResourceProperty =
    std::string(soap::ns::kWsrfRp) + "/GetResourceProperty";
const std::string kGetResourcePropertyDocument =
    std::string(soap::ns::kWsrfRp) + "/GetResourcePropertyDocument";
const std::string kTransferGet = std::string(soap::ns::kTransfer) + "/Get";

std::string format_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

std::string format_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// Copies matching counter/gauge values onto `el` as attributes named by
/// the metric's suffix past `prefix` (absent metrics are skipped — the
/// rollup only reports subsystems that exist in this registry).
template <typename Map>
bool attrs_from_prefix(xml::Element& el, const Map& metrics,
                       const std::string& prefix) {
  bool any = false;
  for (const auto& [name, value] : metrics) {
    if (name.rfind(prefix, 0) != 0) continue;
    el.set_attr(name.substr(prefix.size()), std::to_string(value));
    any = true;
  }
  return any;
}

void set_cost_attrs(xml::Element& el, const CostAggregator::Costs& costs) {
  el.set_attr("requests", std::to_string(costs.requests));
  el.set_attr("faults", std::to_string(costs.faults));
  el.set_attr("wall_us", std::to_string(costs.wall_us));
  el.set_attr("parse_us", std::to_string(costs.parse_us));
  el.set_attr("serialize_us", std::to_string(costs.serialize_us));
  el.set_attr("xml_nodes", std::to_string(costs.xml_nodes));
  el.set_attr("arena_bytes", std::to_string(costs.arena_bytes));
  el.set_attr("bytes_in", std::to_string(costs.request_bytes));
  el.set_attr("bytes_out", std::to_string(costs.response_bytes));
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::unique_ptr<xml::Element> series_element(
    const std::string& name, const TimeSeriesStore::Window& window) {
  auto el = std::make_unique<xml::Element>(t("Series"));
  el->set_attr("name", name);
  el->set_attr("resolution", resolution_name(window.resolution));
  el->set_attr("interval_ms", std::to_string(window.interval_ms));
  for (const SeriesPoint& p : window.points) {
    xml::Element& point = el->append_element(t("Point"));
    point.set_attr("t_ms", std::to_string(p.t_ms));
    point.set_attr("value", format_us(p.value));
    point.set_attr("min", format_us(p.min));
    point.set_attr("max", format_us(p.max));
    point.set_attr("samples", std::to_string(p.samples));
  }
  return el;
}

std::unique_ptr<xml::Element> telemetry_document(
    const MetricsRegistry& registry, const TraceLog& log,
    const EventLog* events, const TimeSeriesStore* series,
    const SloTracker* slo, const CostAggregator* costs) {
  auto root = std::make_unique<xml::Element>(t("Telemetry"));
  root->declare_prefix("t", kTelemetryNs);

  MetricsSnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    xml::Element& el = root->append_element(t("Counter"));
    el.set_attr("name", name);
    el.set_text(std::to_string(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    xml::Element& el = root->append_element(t("Gauge"));
    el.set_attr("name", name);
    el.set_text(std::to_string(value));
  }
  for (const auto& [name, h] : snap.histograms) {
    xml::Element& el = root->append_element(t("Histogram"));
    el.set_attr("name", name);
    el.set_attr("count", std::to_string(h.count));
    el.set_attr("sum_us", std::to_string(h.sum_us));
    el.set_attr("min_us", std::to_string(h.count == 0 ? 0 : h.min_us));
    el.set_attr("max_us", std::to_string(h.max_us));
    el.set_attr("p50_us", format_us(h.percentile(50)));
    el.set_attr("p90_us", format_us(h.percentile(90)));
    el.set_attr("p99_us", format_us(h.percentile(99)));
  }

  // Spans grouped per trace, oldest trace first.
  std::map<std::uint64_t, std::vector<SpanRecord>> traces;
  for (SpanRecord& span : log.snapshot()) {
    traces[span.trace_id].push_back(std::move(span));
  }
  for (const auto& [trace_id, spans] : traces) {
    xml::Element& trace_el = root->append_element(t("Trace"));
    trace_el.set_attr("id", std::to_string(trace_id));
    for (const SpanRecord& span : spans) {
      xml::Element& span_el = trace_el.append_element(t("Span"));
      span_el.set_attr("id", std::to_string(span.span_id));
      span_el.set_attr("parent", std::to_string(span.parent_span_id));
      span_el.set_attr("name", span.name);
      span_el.set_attr("layer", span.layer);
      span_el.set_attr("start_us", std::to_string(span.start_us));
      span_el.set_attr("duration_us", std::to_string(span.duration_us));
    }
  }

  if (events) {
    for (const Event& event : events->snapshot()) {
      xml::Element& el = root->append_element(t("Event"));
      el.set_attr("ts_us", std::to_string(event.ts_us));
      el.set_attr("level", level_name(event.level));
      el.set_attr("component", event.component);
      if (event.trace_id != 0) {
        el.set_attr("trace", std::to_string(event.trace_id));
      }
      el.set_text(event.message);
      for (const auto& [key, value] : event.attrs) {
        xml::Element& attr_el = el.append_element(t("Attr"));
        attr_el.set_attr("name", key);
        attr_el.set_text(value);
      }
    }

    // Health: the at-a-glance summary a monitoring client reads first —
    // uptime, how loud the log has been, delivery queue depths and
    // evictions (pulled from the registry by naming convention), and the
    // last few error-level events verbatim.
    xml::Element& health = root->append_element(t("Health"));
    health.set_attr("uptime_us", std::to_string(steady_now_us() -
                                                events->start_us()));
    health.set_attr("events_warn", std::to_string(events->count(Level::kWarn)));
    health.set_attr("events_error",
                    std::to_string(events->count(Level::kError)));
    health.set_attr("events_dropped", std::to_string(events->dropped()));
    // Overload control (PR 8): admission totals at a glance — shed_total
    // climbing while admitted stalls is the "saturated container"
    // signature the paper-era evaluations kept hitting.
    if (auto it = snap.counters.find("container.admitted");
        it != snap.counters.end()) {
      health.set_attr("admitted", std::to_string(it->second));
    }
    if (auto it = snap.counters.find("container.shed_total");
        it != snap.counters.end()) {
      health.set_attr("shed_total", std::to_string(it->second));
    }
    for (const auto& [name, value] : snap.gauges) {
      if (name.find("queue_depth") == std::string::npos) continue;
      xml::Element& el = health.append_element(t("QueueDepth"));
      el.set_attr("name", name);
      el.set_text(std::to_string(value));
    }
    for (const auto& [name, value] : snap.counters) {
      if (name.find("evicted") == std::string::npos &&
          name.find("dead_letters") == std::string::npos) {
        continue;
      }
      xml::Element& el = health.append_element(t("Evictions"));
      el.set_attr("name", name);
      el.set_text(std::to_string(value));
    }
    // Circuit breaker (PR 8) and batch scheduler (PR 6) rollups, present
    // when those subsystems write into this registry.
    {
      auto breaker = std::make_unique<xml::Element>(t("Breaker"));
      bool any = attrs_from_prefix(*breaker, snap.gauges, "net.breaker_");
      any |= attrs_from_prefix(*breaker, snap.counters, "net.breaker_");
      if (any) health.append(std::move(breaker));
    }
    {
      auto sched = std::make_unique<xml::Element>(t("Scheduler"));
      if (attrs_from_prefix(*sched, snap.gauges, "sched.")) {
        health.append(std::move(sched));
      }
    }
    // Durable storage engine (PR 10): WAL commit/recovery counters, absent
    // when the deployment runs on a volatile backend. wal_corrupt_records
    // climbing is the signal a medium is rotting under the container.
    {
      auto wal = std::make_unique<xml::Element>(t("Wal"));
      bool any = attrs_from_prefix(*wal, snap.counters, "xmldb.wal_");
      any |= attrs_from_prefix(*wal, snap.gauges, "xmldb.wal_");
      if (any) health.append(std::move(wal));
    }
    for (const Event& event : events->recent(5, Level::kError)) {
      xml::Element& el = health.append_element(t("LastError"));
      el.set_attr("ts_us", std::to_string(event.ts_us));
      el.set_attr("component", event.component);
      el.set_text(event.message);
    }
  }

  if (series) {
    for (const std::string& name : series->series_names()) {
      root->append(series_element(name, series->query(name)));
    }
  }

  if (slo) {
    for (const SloStatus& s : slo->status()) {
      xml::Element& el = root->append_element(t("Slo"));
      el.set_attr("name", s.objective);
      el.set_attr("firing", s.firing ? "true" : "false");
      el.set_attr("burn_short", format_ratio(s.burn_short));
      el.set_attr("burn_long", format_ratio(s.burn_long));
      el.set_attr("error_ratio_short", format_ratio(s.error_ratio_short));
      el.set_attr("error_ratio_long", format_ratio(s.error_ratio_long));
    }
  }

  if (costs) {
    xml::Element& tenants = root->append_element(t("Tenants"));
    for (const CostAggregator::TenantCosts& row : costs->totals()) {
      xml::Element& tenant = tenants.append_element(t("Tenant"));
      tenant.set_attr("id", row.tenant);
      set_cost_attrs(tenant, row.total);
      for (const auto& [path, service_costs] : row.by_service) {
        xml::Element& svc = tenant.append_element(t("Service"));
        svc.set_attr("path", path);
        set_cost_attrs(svc, service_costs);
      }
    }
  }
  return root;
}

std::unique_ptr<xml::Element> TelemetryService::query_element(
    const std::string& requested) const {
  // "Series/<metric>[/<start_ms>]": the retained window of one series,
  // optionally clipped to points at or after start_ms.
  if (requested.rfind("Series/", 0) == 0 && series_) {
    std::string rest = requested.substr(7);
    common::TimeMs start_ms = 0;
    if (std::size_t slash = rest.rfind('/'); slash != std::string::npos) {
      const std::string tail = rest.substr(slash + 1);
      if (!tail.empty() &&
          tail.find_first_not_of("0123456789") == std::string::npos) {
        start_ms = std::strtoll(tail.c_str(), nullptr, 10);
        rest = rest.substr(0, slash);
      }
    }
    auto el = series_element(rest, series_->query(rest, start_ms));
    el->declare_prefix("t", kTelemetryNs);
    return el;
  }
  // "Events/<seq>": cursor pull — only events logged after seq.
  if (requested.rfind("Events/", 0) == 0 && events_) {
    const std::string tail = requested.substr(7);
    if (!tail.empty() &&
        tail.find_first_not_of("0123456789") == std::string::npos) {
      std::uint64_t seq = std::strtoull(tail.c_str(), nullptr, 10);
      auto el = std::make_unique<xml::Element>(t("Events"));
      el->declare_prefix("t", kTelemetryNs);
      el->set_attr("since", tail);
      el->set_attr("last_seq", std::to_string(events_->last_seq()));
      for (const Event& event : events_->events_since(seq)) {
        xml::Element& ev = el->append_element(t("Event"));
        ev.set_attr("seq", std::to_string(event.seq));
        ev.set_attr("ts_us", std::to_string(event.ts_us));
        ev.set_attr("level", level_name(event.level));
        ev.set_attr("component", event.component);
        if (event.trace_id != 0) {
          ev.set_attr("trace", std::to_string(event.trace_id));
        }
        ev.set_text(event.message);
        for (const auto& [key, value] : event.attrs) {
          xml::Element& attr_el = ev.append_element(t("Attr"));
          attr_el.set_attr("name", key);
          attr_el.set_text(value);
        }
      }
      return el;
    }
  }
  return nullptr;
}

TelemetryService::TelemetryService(std::string address, MetricsRegistry* registry,
                                   TraceLog* log, EventLog* events,
                                   const TimeSeriesStore* series,
                                   const SloTracker* slo,
                                   const CostAggregator* costs)
    : container::Service("Telemetry"),
      address_(std::move(address)),
      registry_(registry),
      log_(log),
      events_(events),
      series_(series),
      slo_(slo),
      costs_(costs) {
  // WSRF: GetResourceProperty selects elements of the telemetry document,
  // either by metric name (`<prop>net.http.requests</prop>`), by element
  // kind ("Counters", "Gauges", "Histograms", "Traces", ...), or by the
  // cursor/window forms ("Series/<metric>[/<start_ms>]", "Events/<seq>").
  register_operation(kGetResourceProperty, [this](container::RequestContext& ctx) {
    std::string requested = ctx.payload().text();
    // Trim surrounding whitespace from the property name.
    size_t b = requested.find_first_not_of(" \t\r\n");
    size_t e = requested.find_last_not_of(" \t\r\n");
    if (b == std::string::npos) {
      throw soap::SoapFault("Sender", "empty telemetry property name");
    }
    requested = requested.substr(b, e - b + 1);

    soap::Envelope response =
        container::make_response(ctx, kGetResourceProperty + "Response");
    xml::Element& body = response.add_payload(rp("GetResourcePropertyResponse"));

    // Cursor/window forms answer without building the whole document.
    if (auto custom = query_element(requested)) {
      body.append(std::move(custom));
      return response;
    }

    static const std::map<std::string, std::string> kKinds = {
        {"Counters", "Counter"},
        {"Gauges", "Gauge"},
        {"Histograms", "Histogram"},
        {"Traces", "Trace"},
        {"Events", "Event"},
        {"Health", "Health"},
        {"Series", "Series"},
        {"Slos", "Slo"},
        {"Tenants", "Tenants"},
    };
    auto kind = kKinds.find(requested);

    auto doc = document();
    bool matched = false;
    for (const xml::Element* el : doc->child_elements()) {
      bool wanted = kind != kKinds.end()
                        ? el->name().local() == kind->second
                        : el->attr("name") == requested;
      if (wanted) {
        body.append(el->clone());
        matched = true;
      }
    }
    if (!matched && kind == kKinds.end()) {
      throw soap::SoapFault("Sender",
                            "unknown telemetry property '" + requested + "'");
    }
    return response;
  });

  // WSRF: the whole document at once.
  register_operation(
      kGetResourcePropertyDocument, [this](container::RequestContext& ctx) {
        soap::Envelope response = container::make_response(
            ctx, kGetResourcePropertyDocument + "Response");
        response.add_payload(rp("GetResourcePropertyDocumentResponse"))
            .append(document());
        return response;
      });

  // WS-Transfer: Get returns the representation — the same document. A
  // payload naming a cursor/window form ("Series/<metric>[/<start_ms>]",
  // "Events/<seq>") narrows the representation to that fragment, so both
  // stacks expose the same windowed queries.
  register_operation(kTransferGet, [this](container::RequestContext& ctx) {
    soap::Envelope response =
        container::make_response(ctx, kTransferGet + "Response");
    if (const xml::Element* p = ctx.request->payload()) {
      std::string requested = p->text();
      size_t b = requested.find_first_not_of(" \t\r\n");
      size_t e = requested.find_last_not_of(" \t\r\n");
      if (b != std::string::npos) {
        if (auto custom = query_element(requested.substr(b, e - b + 1))) {
          response.add_payload(std::move(custom));
          return response;
        }
      }
    }
    response.add_payload(document());
    return response;
  });
}

}  // namespace gs::telemetry
