#include "telemetry/service.hpp"

#include <chrono>
#include <cstdio>
#include <map>

#include "soap/namespaces.hpp"
#include "telemetry/propagation.hpp"

namespace gs::telemetry {

namespace {

xml::QName t(const char* local) { return {kTelemetryNs, local}; }
xml::QName rp(const char* local) { return {soap::ns::kWsrfRp, local}; }

// Action URIs duplicated from the wsrf/wst service headers so this library
// depends only on gs_container (the strings are spec constants either way).
const std::string kGetResourceProperty =
    std::string(soap::ns::kWsrfRp) + "/GetResourceProperty";
const std::string kGetResourcePropertyDocument =
    std::string(soap::ns::kWsrfRp) + "/GetResourcePropertyDocument";
const std::string kTransferGet = std::string(soap::ns::kTransfer) + "/Get";

std::string format_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::unique_ptr<xml::Element> telemetry_document(const MetricsRegistry& registry,
                                                const TraceLog& log,
                                                const EventLog* events) {
  auto root = std::make_unique<xml::Element>(t("Telemetry"));
  root->declare_prefix("t", kTelemetryNs);

  MetricsSnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    xml::Element& el = root->append_element(t("Counter"));
    el.set_attr("name", name);
    el.set_text(std::to_string(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    xml::Element& el = root->append_element(t("Gauge"));
    el.set_attr("name", name);
    el.set_text(std::to_string(value));
  }
  for (const auto& [name, h] : snap.histograms) {
    xml::Element& el = root->append_element(t("Histogram"));
    el.set_attr("name", name);
    el.set_attr("count", std::to_string(h.count));
    el.set_attr("sum_us", std::to_string(h.sum_us));
    el.set_attr("min_us", std::to_string(h.count == 0 ? 0 : h.min_us));
    el.set_attr("max_us", std::to_string(h.max_us));
    el.set_attr("p50_us", format_us(h.percentile(50)));
    el.set_attr("p90_us", format_us(h.percentile(90)));
    el.set_attr("p99_us", format_us(h.percentile(99)));
  }

  // Spans grouped per trace, oldest trace first.
  std::map<std::uint64_t, std::vector<SpanRecord>> traces;
  for (SpanRecord& span : log.snapshot()) {
    traces[span.trace_id].push_back(std::move(span));
  }
  for (const auto& [trace_id, spans] : traces) {
    xml::Element& trace_el = root->append_element(t("Trace"));
    trace_el.set_attr("id", std::to_string(trace_id));
    for (const SpanRecord& span : spans) {
      xml::Element& span_el = trace_el.append_element(t("Span"));
      span_el.set_attr("id", std::to_string(span.span_id));
      span_el.set_attr("parent", std::to_string(span.parent_span_id));
      span_el.set_attr("name", span.name);
      span_el.set_attr("layer", span.layer);
      span_el.set_attr("start_us", std::to_string(span.start_us));
      span_el.set_attr("duration_us", std::to_string(span.duration_us));
    }
  }

  if (events) {
    for (const Event& event : events->snapshot()) {
      xml::Element& el = root->append_element(t("Event"));
      el.set_attr("ts_us", std::to_string(event.ts_us));
      el.set_attr("level", level_name(event.level));
      el.set_attr("component", event.component);
      if (event.trace_id != 0) {
        el.set_attr("trace", std::to_string(event.trace_id));
      }
      el.set_text(event.message);
      for (const auto& [key, value] : event.attrs) {
        xml::Element& attr_el = el.append_element(t("Attr"));
        attr_el.set_attr("name", key);
        attr_el.set_text(value);
      }
    }

    // Health: the at-a-glance summary a monitoring client reads first —
    // uptime, how loud the log has been, delivery queue depths and
    // evictions (pulled from the registry by naming convention), and the
    // last few error-level events verbatim.
    xml::Element& health = root->append_element(t("Health"));
    health.set_attr("uptime_us", std::to_string(steady_now_us() -
                                                events->start_us()));
    health.set_attr("events_warn", std::to_string(events->count(Level::kWarn)));
    health.set_attr("events_error",
                    std::to_string(events->count(Level::kError)));
    health.set_attr("events_dropped", std::to_string(events->dropped()));
    for (const auto& [name, value] : snap.gauges) {
      if (name.find("queue_depth") == std::string::npos) continue;
      xml::Element& el = health.append_element(t("QueueDepth"));
      el.set_attr("name", name);
      el.set_text(std::to_string(value));
    }
    for (const auto& [name, value] : snap.counters) {
      if (name.find("evicted") == std::string::npos &&
          name.find("dead_letters") == std::string::npos) {
        continue;
      }
      xml::Element& el = health.append_element(t("Evictions"));
      el.set_attr("name", name);
      el.set_text(std::to_string(value));
    }
    for (const Event& event : events->recent(5, Level::kError)) {
      xml::Element& el = health.append_element(t("LastError"));
      el.set_attr("ts_us", std::to_string(event.ts_us));
      el.set_attr("component", event.component);
      el.set_text(event.message);
    }
  }
  return root;
}

TelemetryService::TelemetryService(std::string address, MetricsRegistry* registry,
                                   TraceLog* log, EventLog* events)
    : container::Service("Telemetry"),
      address_(std::move(address)),
      registry_(registry),
      log_(log),
      events_(events) {
  // WSRF: GetResourceProperty selects elements of the telemetry document,
  // either by metric name (`<prop>net.http.requests</prop>`) or by element
  // kind ("Counters", "Gauges", "Histograms", "Traces").
  register_operation(kGetResourceProperty, [this](container::RequestContext& ctx) {
    std::string requested = ctx.payload().text();
    // Trim surrounding whitespace from the property name.
    size_t b = requested.find_first_not_of(" \t\r\n");
    size_t e = requested.find_last_not_of(" \t\r\n");
    if (b == std::string::npos) {
      throw soap::SoapFault("Sender", "empty telemetry property name");
    }
    requested = requested.substr(b, e - b + 1);

    static const std::map<std::string, std::string> kKinds = {
        {"Counters", "Counter"},
        {"Gauges", "Gauge"},
        {"Histograms", "Histogram"},
        {"Traces", "Trace"},
        {"Events", "Event"},
        {"Health", "Health"},
    };
    auto kind = kKinds.find(requested);

    auto doc = document();
    soap::Envelope response =
        container::make_response(ctx, kGetResourceProperty + "Response");
    xml::Element& body = response.add_payload(rp("GetResourcePropertyResponse"));
    bool matched = false;
    for (const xml::Element* el : doc->child_elements()) {
      bool wanted = kind != kKinds.end()
                        ? el->name().local() == kind->second
                        : el->attr("name") == requested;
      if (wanted) {
        body.append(el->clone());
        matched = true;
      }
    }
    if (!matched && kind == kKinds.end()) {
      throw soap::SoapFault("Sender",
                            "unknown telemetry property '" + requested + "'");
    }
    return response;
  });

  // WSRF: the whole document at once.
  register_operation(
      kGetResourcePropertyDocument, [this](container::RequestContext& ctx) {
        soap::Envelope response = container::make_response(
            ctx, kGetResourcePropertyDocument + "Response");
        response.add_payload(rp("GetResourcePropertyDocumentResponse"))
            .append(document());
        return response;
      });

  // WS-Transfer: Get returns the representation — the same document.
  register_operation(kTransferGet, [this](container::RequestContext& ctx) {
    soap::Envelope response =
        container::make_response(ctx, kTransferGet + "Response");
    response.add_payload(document());
    return response;
  });
}

}  // namespace gs::telemetry
