#include "telemetry/slo.hpp"

#include <cstdio>
#include <stdexcept>

namespace gs::telemetry {

namespace {

std::string format_burn(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Samples-weighted sum of a rate series over [now - window, now]: each
/// point contributes value x samples, so a rollup point counts the same
/// as the raw points it folded.
double weighted_sum(const TimeSeriesStore& store, const std::string& series,
                    common::TimeMs window_ms, common::TimeMs now) {
  TimeSeriesStore::Window w = store.query(series, now - window_ms, now);
  double sum = 0.0;
  for (const SeriesPoint& p : w.points) {
    sum += p.value * static_cast<double>(p.samples);
  }
  return sum;
}

}  // namespace

SloTracker::SloTracker(const TimeSeriesStore* series, const common::Clock* clock)
    : series_(series), clock_(clock) {
  if (!series_) throw std::invalid_argument("SloTracker needs a series store");
}

void SloTracker::add_objective(SloObjective objective) {
  std::lock_guard lock(mu_);
  objectives_.push_back(std::move(objective));
  firing_.push_back(false);
}

double SloTracker::error_ratio(const SloObjective& objective,
                               common::TimeMs window_ms,
                               common::TimeMs now) const {
  switch (objective.kind) {
    case SloObjective::Kind::kAvailability: {
      double good = weighted_sum(*series_, objective.good_metric, window_ms, now);
      double bad = 0.0;
      for (const std::string& metric : objective.bad_metrics) {
        bad += weighted_sum(*series_, metric, window_ms, now);
      }
      double total = good + bad;
      return total <= 0.0 ? 0.0 : bad / total;
    }
    case SloObjective::Kind::kLatency: {
      TimeSeriesStore::Window w = series_->query(
          objective.latency_metric + ".p99", now - window_ms, now);
      if (w.points.empty()) return 0.0;
      std::size_t slow = 0;
      for (const SeriesPoint& p : w.points) {
        if (p.value > objective.threshold_us) ++slow;
      }
      return static_cast<double>(slow) / static_cast<double>(w.points.size());
    }
  }
  return 0.0;
}

SloStatus SloTracker::evaluate_locked(const SloObjective& objective,
                                      common::TimeMs now) const {
  SloStatus s;
  s.objective = objective.name;
  s.error_ratio_short = error_ratio(objective, objective.short_window_ms, now);
  s.error_ratio_long = error_ratio(objective, objective.long_window_ms, now);
  double budget = 1.0 - objective.target;
  if (budget <= 0.0) budget = 1e-9;  // a 100% target burns on any error
  s.burn_short = s.error_ratio_short / budget;
  s.burn_long = s.error_ratio_long / budget;
  s.firing = s.burn_short > objective.burn_threshold &&
             s.burn_long > objective.burn_threshold;
  return s;
}

std::vector<SloAlert> SloTracker::evaluate() {
  common::TimeMs now = clock_->now();
  std::lock_guard lock(mu_);
  std::vector<SloAlert> transitions;
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    SloStatus s = evaluate_locked(objectives_[i], now);
    if (s.firing == firing_[i]) continue;
    firing_[i] = s.firing;
    SloAlert alert;
    alert.objective = s.objective;
    alert.firing = s.firing;
    alert.burn_short = s.burn_short;
    alert.burn_long = s.burn_long;
    alert.detail = "slo '" + s.objective +
                   (s.firing ? "' burning: " : "' recovered: ") + "burn short=" +
                   format_burn(s.burn_short) + " long=" +
                   format_burn(s.burn_long) + " threshold=" +
                   format_burn(objectives_[i].burn_threshold);
    transitions.push_back(std::move(alert));
  }
  return transitions;
}

std::vector<SloStatus> SloTracker::status() const {
  common::TimeMs now = clock_->now();
  std::lock_guard lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    SloStatus s = evaluate_locked(objectives_[i], now);
    s.firing = firing_[i];  // status reports the latched state
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace gs::telemetry
