#include "telemetry/timeseries.hpp"

#include <algorithm>

namespace gs::telemetry {

const char* resolution_name(Resolution r) noexcept {
  switch (r) {
    case Resolution::kRaw: return "raw";
    case Resolution::kMid: return "mid";
    case Resolution::kCoarse: return "coarse";
  }
  return "?";
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig config)
    : config_(config) {
  if (!config_.registry) {
    throw std::invalid_argument("TimeSeriesStore needs a registry");
  }
  if (config_.interval_ms <= 0) config_.interval_ms = 1;
  if (config_.raw_capacity == 0) config_.raw_capacity = 1;
  if (config_.rollup_capacity == 0) config_.rollup_capacity = 1;
}

void TimeSeriesStore::ring_push(Ring& ring, std::size_t capacity,
                                SeriesPoint p) {
  if (ring.points.size() < capacity) {
    ring.points.push_back(p);
  } else {
    ring.points[ring.next] = p;
    ring.wrapped = true;
  }
  ring.next = (ring.next + 1) % capacity;
}

std::vector<SeriesPoint> TimeSeriesStore::ring_ordered(const Ring& ring) {
  std::vector<SeriesPoint> out;
  out.reserve(ring.points.size());
  std::size_t start = ring.wrapped ? ring.next : 0;
  for (std::size_t i = 0; i < ring.points.size(); ++i) {
    out.push_back(ring.points[(start + i) % ring.points.size()]);
  }
  return out;
}

void TimeSeriesStore::push_locked(const std::string& name, SeriesPoint p) {
  Series& s = series_[name];
  ring_push(s.raw, config_.raw_capacity, p);

  // Fold the raw point into both rollup accumulators; emit a rollup point
  // whenever an accumulator reaches its factor. Rollup value is the
  // samples-weighted mean (ingested points carry samples == 1 like local
  // raw points, so the weighting is uniform in practice); min/max are the
  // true extremes across the folded raw points.
  for (Accum* accum : {&s.mid_accum, &s.coarse_accum}) {
    if (accum->raw_points == 0) {
      accum->min = p.min;
      accum->max = p.max;
    } else {
      accum->min = std::min(accum->min, p.min);
      accum->max = std::max(accum->max, p.max);
    }
    accum->weighted_sum += p.value * p.samples;
    accum->samples += p.samples;
    ++accum->raw_points;
  }
  if (s.mid_accum.raw_points >= kMidFactor) {
    SeriesPoint rolled;
    rolled.t_ms = p.t_ms;
    rolled.value = s.mid_accum.weighted_sum /
                   static_cast<double>(s.mid_accum.samples);
    rolled.min = s.mid_accum.min;
    rolled.max = s.mid_accum.max;
    rolled.samples = static_cast<std::uint32_t>(s.mid_accum.samples);
    ring_push(s.mid, config_.rollup_capacity, rolled);
    s.mid_accum = Accum{};
  }
  if (s.coarse_accum.raw_points >= kCoarseFactor) {
    SeriesPoint rolled;
    rolled.t_ms = p.t_ms;
    rolled.value = s.coarse_accum.weighted_sum /
                   static_cast<double>(s.coarse_accum.samples);
    rolled.min = s.coarse_accum.min;
    rolled.max = s.coarse_accum.max;
    rolled.samples = static_cast<std::uint32_t>(s.coarse_accum.samples);
    ring_push(s.coarse, config_.rollup_capacity, rolled);
    s.coarse_accum = Accum{};
  }
}

void TimeSeriesStore::sample() {
  sample_snapshot(config_.registry->snapshot(), config_.clock->now());
}

bool TimeSeriesStore::poll() {
  {
    std::lock_guard lock(mu_);
    if (last_cycle_ &&
        config_.clock->now() - *last_cycle_ < config_.interval_ms) {
      return false;
    }
  }
  sample();
  return true;
}

void TimeSeriesStore::sample_snapshot(const MetricsSnapshot& snap,
                                      common::TimeMs now) {
  std::lock_guard lock(mu_);
  last_cycle_ = now;
  ++samples_taken_;

  // Gauges are levels: every cycle yields a point, including the first.
  for (const auto& [name, value] : snap.gauges) {
    SeriesPoint p;
    p.t_ms = now;
    p.value = static_cast<double>(value);
    p.min = p.max = p.value;
    push_locked(name, p);
  }

  if (have_last_) {
    common::TimeMs elapsed = now - last_t_;
    // Counters need an elapsed interval to rate over; a zero/backwards
    // clock step cannot produce a meaningful rate, so those cycles only
    // advance the baseline. A LATE cycle (clock gap) divides by the real
    // elapsed time instead of the nominal interval.
    if (elapsed > 0) {
      for (const auto& [name, total] : snap.counters) {
        auto prev_it = last_.counters.find(name);
        std::uint64_t prev = prev_it == last_.counters.end() ? 0
                                                             : prev_it->second;
        // Counter reset (process restart): the new total IS the delta —
        // everything counted since the restart happened inside this
        // interval, and a negative delta must never reach the series.
        std::uint64_t delta = total >= prev ? total - prev : total;
        SeriesPoint p;
        p.t_ms = now;
        p.value = static_cast<double>(delta) * 1000.0 /
                  static_cast<double>(elapsed);
        p.min = p.max = p.value;
        push_locked(name, p);
      }
      for (const auto& [name, h] : snap.histograms) {
        HistogramSnapshot interval = h;
        auto prev_it = last_.histograms.find(name);
        if (prev_it != last_.histograms.end()) interval -= prev_it->second;
        // No recordings this interval -> a gap, not a misleading zero.
        if (interval.count == 0) continue;
        static constexpr struct {
          const char* suffix;
          double pct;
        } kQuantiles[] = {{".p50", 50.0}, {".p90", 90.0}, {".p99", 99.0}};
        for (const auto& q : kQuantiles) {
          SeriesPoint p;
          p.t_ms = now;
          p.value = interval.percentile(q.pct);
          p.min = p.max = p.value;
          push_locked(name + q.suffix, p);
        }
      }
    }
  }

  last_ = snap;
  last_t_ = now;
  have_last_ = true;
}

void TimeSeriesStore::ingest(const std::string& series, common::TimeMs t_ms,
                             double value) {
  SeriesPoint p;
  p.t_ms = t_ms;
  p.value = value;
  p.min = p.max = value;
  std::lock_guard lock(mu_);
  push_locked(series, p);
}

TimeSeriesStore::Window TimeSeriesStore::query(const std::string& series,
                                               common::TimeMs start_ms,
                                               common::TimeMs end_ms) const {
  std::lock_guard lock(mu_);
  Window out;
  out.interval_ms = config_.interval_ms;
  auto it = series_.find(series);
  if (it == series_.end()) return out;

  struct Candidate {
    Resolution resolution;
    const Ring* ring;
    common::TimeMs interval;
  };
  const Candidate candidates[] = {
      {Resolution::kRaw, &it->second.raw, config_.interval_ms},
      {Resolution::kMid, &it->second.mid,
       config_.interval_ms * static_cast<common::TimeMs>(kMidFactor)},
      {Resolution::kCoarse, &it->second.coarse,
       config_.interval_ms * static_cast<common::TimeMs>(kCoarseFactor)},
  };

  // Finest ring whose oldest retained point still precedes the window
  // start; when even the coarse ring has lost that history, the ring with
  // the longest retained history (coarsest non-empty) answers with what
  // remains.
  const Candidate* chosen = nullptr;
  for (const Candidate& c : candidates) {
    if (c.ring->points.empty()) continue;
    if (!chosen) chosen = &c;
    std::vector<SeriesPoint> ordered = ring_ordered(*c.ring);
    if (ordered.front().t_ms <= start_ms) {
      chosen = &c;
      break;
    }
    chosen = &c;  // deeper history than any finer ring that lost the start
  }
  if (!chosen) return out;

  out.resolution = chosen->resolution;
  out.interval_ms = chosen->interval;
  for (const SeriesPoint& p : ring_ordered(*chosen->ring)) {
    if (p.t_ms >= start_ms && p.t_ms <= end_ms) out.points.push_back(p);
  }
  return out;
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::uint64_t TimeSeriesStore::samples_taken() const {
  std::lock_guard lock(mu_);
  return samples_taken_;
}

}  // namespace gs::telemetry
