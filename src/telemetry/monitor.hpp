// Push-based grid monitoring: the container publishes its own telemetry
// over BOTH of the paper's stacks.
//
// PR 1 exposed telemetry pull-only (poll the Telemetry resource); the era's
// grid monitors (MDS index services, JClarens) pushed status to
// subscribers. MonitorProducer dogfoods our WS-BaseNotification and
// WS-Eventing implementations as that transport: each tick it snapshots a
// MetricsRegistry, computes the delta since the previous tick, and
// publishes it on the `gs:Telemetry` topic through wsn and/or wse — so
// monitoring traffic rides the same delivery queues, retries, and eviction
// machinery as application traffic, including under injected faults.
// Threshold rules turn deltas into `gs:Telemetry/Alert` notifications
// (edge-triggered: one alert per breach, re-armed when the rule clears).
//
// MonitorConsumer is the other end: a network endpoint that accepts
// snapshot/alert messages from either stack (wrapped wsn Notify or raw
// wse events) and maintains a last-known-state table per producer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/virtual_network.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"
#include "wse/service.hpp"
#include "wsn/producer.hpp"

namespace gs::telemetry {

/// WS-Topics names monitoring traffic is published on. A Simple-dialect
/// subscription on `gs:Telemetry` receives both (subtree match); a
/// Concrete one on `gs:Telemetry/Alert` receives alerts only.
inline constexpr const char* kTelemetryTopic = "gs:Telemetry";
inline constexpr const char* kAlertTopic = "gs:Telemetry/Alert";

/// wsa:Action values stamped on WS-Eventing monitoring events.
std::string snapshot_action();
std::string alert_action();

/// A TopicNamespace containing the monitoring topics — merge or pass to
/// the wsn::NotificationProducer that will carry telemetry.
wsn::TopicNamespace monitor_topics();

/// Threshold rule evaluated against each tick's delta.
struct AlertRule {
  enum class Kind {
    kCounterRate,    // counter increments this tick > threshold
    kHistogramP99,   // p99 of samples recorded this tick > threshold (µs)
  };

  std::string name;    // stamped into the alert ("dispatch-latency")
  std::string metric;  // registry name ("container.faults")
  Kind kind = Kind::kCounterRate;
  double threshold = 0.0;
};

class MonitorProducer {
 public:
  struct Config {
    MetricsRegistry* registry = &MetricsRegistry::global();
    /// Identity stamped into every snapshot/alert (`producer` attribute) —
    /// WS-Eventing events carry no ProducerReference, so consumers key
    /// their tables on this.
    std::string producer_address;
    /// Either or both stacks; null = don't publish there.
    wsn::NotificationProducer* wsn = nullptr;
    wse::NotificationManager* wse = nullptr;
    const common::Clock* clock = &common::RealClock::instance();
    /// poll() cadence; tick() ignores it.
    common::TimeMs interval_ms = 1000;
    /// Optional retention: each tick also samples this store, so series
    /// history advances on the same cadence as published snapshots.
    TimeSeriesStore* series = nullptr;
    /// Optional judgment: each tick evaluates these objectives (after
    /// sampling `series`) and publishes burn-rate transitions as
    /// `gs:Telemetry/Alert` notifications on both stacks, with an EventLog
    /// entry per transition.
    SloTracker* slo = nullptr;
  };

  explicit MonitorProducer(Config config);

  void add_rule(AlertRule rule);

  /// One monitoring cycle: snapshot → delta → publish snapshot on both
  /// stacks → evaluate rules → publish newly-breached alerts.
  void tick();

  /// tick() if `interval_ms` elapsed since the last cycle (per the
  /// injected clock); returns whether a cycle ran. Call from any
  /// convenient periodic context — there is no internal thread.
  bool poll();

  std::uint64_t snapshots_published() const;
  std::uint64_t alerts_fired() const;

 private:
  void publish(const std::string& topic, const xml::Element& payload,
               const std::string& action);

  Config config_;
  mutable std::mutex mu_;
  MetricsSnapshot last_;
  std::uint64_t seq_ = 0;
  std::uint64_t alerts_fired_ = 0;
  std::vector<AlertRule> rules_;
  std::vector<bool> rule_breached_;  // edge-trigger latch, parallel to rules_
  std::optional<common::TimeMs> last_cycle_;
};

class MonitorConsumer final : public net::Endpoint {
 public:
  /// Last known state of one producer, merged from every snapshot seen.
  struct ProducerState {
    std::string producer;
    std::uint64_t last_seq = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t alerts = 0;
    std::uint64_t via_wsn = 0;  // messages that arrived Notify-wrapped
    std::uint64_t via_wse = 0;  // messages that arrived as raw wse events
    std::map<std::string, std::uint64_t> counter_totals;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, double> histogram_p99_us;
    std::string last_alert;  // most recent rule name, empty if none
    common::TimeMs last_ts_ms = 0;  // producer clock of the last snapshot
  };

  net::HttpResponse handle(const net::HttpRequest& request) override;

  /// Fleet-wide history: every received snapshot's metrics are also fed
  /// into `store` as `<producer>|<metric>` series — counters as rates over
  /// the inter-snapshot gap (the `ts_ms` attribute), gauges as levels,
  /// histograms as their per-tick p99. Call before traffic.
  void attach_series(TimeSeriesStore* store);

  std::vector<ProducerState> states() const;
  std::optional<ProducerState> state_for(const std::string& producer) const;
  std::uint64_t snapshot_count() const;
  std::uint64_t alert_count() const;
  /// Blocks until >= n snapshots arrived or timeout; immediate-tick tests
  /// use it with timeout 0 as a plain check.
  bool wait_for_snapshots(std::uint64_t n, int timeout_ms) const;

  /// Subscribes this consumer (reachable at `consumer_address`) to a wsn
  /// producer's `gs:Telemetry` subtree / a wse event source. Returns the
  /// subscription EPR (wsn) or manager EPR (wse) for lifetime control.
  soap::EndpointReference subscribe_wsn(net::SoapCaller& caller,
                                        const std::string& producer_address,
                                        const std::string& consumer_address);
  soap::EndpointReference subscribe_wse(net::SoapCaller& caller,
                                        const std::string& source_address,
                                        const std::string& consumer_address);

 private:
  void apply_snapshot(const xml::Element& snapshot, bool wrapped);
  void apply_alert(const xml::Element& alert, bool wrapped);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, ProducerState> table_;
  std::uint64_t snapshots_seen_ = 0;
  std::uint64_t alerts_seen_ = 0;
  TimeSeriesStore* series_ = nullptr;
};

}  // namespace gs::telemetry
