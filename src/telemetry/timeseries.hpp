// Time-series retention over the metrics registry: history, not just "now".
//
// PR 1's Telemetry resource and PR 4's monitor both expose point-in-time
// values; the longitudinal questions grid performance studies ask ("what
// was p99 over the last minute", "when did the error rate spike") need
// retained samples. TimeSeriesStore keeps a bounded, fixed-interval ring
// of points per metric, sampled from a MetricsRegistry on an injectable
// clock:
//
//   * counters  -> per-interval deltas converted to rates/sec over the
//                  ACTUAL elapsed time (a late sample does not inflate the
//                  rate), with counter-reset detection (a restarted
//                  process's smaller total reads as `delta = new total`,
//                  not a huge negative spike);
//   * gauges    -> sampled as-is (levels);
//   * histograms -> the interval's own p50/p90/p99 (snapshot subtraction),
//                  emitted as three derived series `name.p50/.p90/.p99`;
//                  intervals with no recordings produce gaps, not zeros.
//
// Retention is multi-resolution: every raw point also folds into 10x and
// 60x rollup rings (samples-weighted mean, true min/max), so with the
// default 1 s interval and 120-point rings the store answers queries over
// the last 2 minutes at 1 s resolution, 20 minutes at 10 s, and 2 hours at
// 60 s — in ~3x the memory of the raw ring alone.
//
// Writers are the sampler (one thread, periodic) and `ingest` (the
// fleet-wide MonitorConsumer); readers are the telemetry document and the
// query API. One mutex over the whole table is fine at those rates — the
// request hot path never touches this store.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "telemetry/metrics.hpp"

namespace gs::telemetry {

/// Which ring a query was answered from.
enum class Resolution { kRaw = 0, kMid = 1, kCoarse = 2 };

const char* resolution_name(Resolution r) noexcept;

/// One retained sample. Raw points carry samples == 1 and min == max ==
/// value; rollup points carry the samples-weighted mean and the true
/// extremes of the raw points they fold.
struct SeriesPoint {
  common::TimeMs t_ms = 0;  // sample instant (interval end)
  double value = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint32_t samples = 1;
};

struct TimeSeriesConfig {
  MetricsRegistry* registry = &MetricsRegistry::global();
  const common::Clock* clock = &common::RealClock::instance();
  /// Sampling cadence for poll(); sample() ignores it.
  common::TimeMs interval_ms = 1000;
  /// Points retained per series in the raw ring.
  std::size_t raw_capacity = 120;
  /// Points retained per series in each rollup ring.
  std::size_t rollup_capacity = 120;
};

class TimeSeriesStore {
 public:
  /// Rollup factors: one mid point per 10 raw points, one coarse per 60.
  static constexpr unsigned kMidFactor = 10;
  static constexpr unsigned kCoarseFactor = 60;

  struct Window {
    Resolution resolution = Resolution::kRaw;
    /// Nominal spacing of the returned points (config interval x factor).
    common::TimeMs interval_ms = 0;
    std::vector<SeriesPoint> points;
  };

  explicit TimeSeriesStore(TimeSeriesConfig config);

  /// One sampling cycle: snapshot the registry at the clock's current
  /// time, append a point per metric.
  void sample();

  /// sample() if `interval_ms` elapsed since the last cycle; returns
  /// whether a cycle ran. No internal thread — call from any periodic
  /// context (the MonitorProducer ticks it).
  bool poll();

  /// Test seam and restart fixture: sample from a caller-supplied snapshot
  /// at a caller-supplied instant instead of the live registry/clock.
  void sample_snapshot(const MetricsSnapshot& snap, common::TimeMs now);

  /// Appends an externally-produced point (the fleet-wide MonitorConsumer
  /// feeds remote producers' series through this).
  void ingest(const std::string& series, common::TimeMs t_ms, double value);

  /// Points of `series` with t_ms in [start_ms, end_ms], oldest first,
  /// answered from the finest ring whose retained history still covers
  /// start_ms (falling back to the coarsest non-empty ring when none
  /// does). Unknown series yield an empty raw window.
  Window query(const std::string& series, common::TimeMs start_ms = 0,
               common::TimeMs end_ms =
                   std::numeric_limits<common::TimeMs>::max()) const;

  std::vector<std::string> series_names() const;
  common::TimeMs interval_ms() const noexcept { return config_.interval_ms; }
  std::uint64_t samples_taken() const;

 private:
  struct Ring {
    std::vector<SeriesPoint> points;
    std::size_t next = 0;
    bool wrapped = false;
  };

  /// Rollup in progress: raw points folded so far toward the next point.
  struct Accum {
    double weighted_sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t samples = 0;
    unsigned raw_points = 0;
  };

  struct Series {
    Ring raw, mid, coarse;
    Accum mid_accum, coarse_accum;
  };

  void push_locked(const std::string& name, SeriesPoint p);
  static void ring_push(Ring& ring, std::size_t capacity, SeriesPoint p);
  static std::vector<SeriesPoint> ring_ordered(const Ring& ring);

  TimeSeriesConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, Series> series_;
  MetricsSnapshot last_;
  bool have_last_ = false;
  common::TimeMs last_t_ = 0;
  std::optional<common::TimeMs> last_cycle_;
  std::uint64_t samples_taken_ = 0;
};

}  // namespace gs::telemetry
