// Telemetry metrics: lock-cheap counters, gauges, and fixed-bucket latency
// histograms behind a named registry.
//
// The paper's contribution is a quantitative comparison of two grid stacks;
// this registry is what lets the reproduction say *where* the time goes
// per layer (net, container, storage, delivery) instead of only measuring
// end to end from the bench harness. Writers are hot-path request threads,
// so every instrument is wait-free on write: counters are sharded across
// cache lines and picked by thread, histograms are arrays of relaxed
// atomics. Readers (snapshots, the WSRF/WS-Transfer telemetry resource,
// the bench JSON dump) pay the aggregation cost instead.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace gs::telemetry {

/// Monotonic counter, sharded so concurrent writers on different threads
/// do not contend on one cache line. `value()` sums the shards.
class Counter {
 public:
  static constexpr unsigned kShards = 16;

  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  static unsigned shard_index() noexcept;

  std::array<Shard, kShards> shards_{};
};

/// Point-in-time signed value (queue depth, active workers).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// A histogram's counts copied out at one instant. Bucket i counts samples
/// in (2^(i-1), 2^i] microseconds (bucket 0: [0, 1]). Snapshots subtract,
/// so a bench run can report percentiles for exactly its own interval.
struct HistogramSnapshot {
  static constexpr unsigned kBuckets = 40;

  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  /// Exact smallest/largest recorded samples over the histogram's LIFETIME
  /// (not the subtraction interval: like gauges, extremes are levels —
  /// `operator-=` keeps the later values). min_us is UINT64_MAX when empty.
  std::uint64_t min_us = UINT64_MAX;
  std::uint64_t max_us = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Percentile estimate in microseconds (p in [0, 100]): nearest-rank
  /// bucket, linearly interpolated inside it. Exact to within one
  /// power-of-two bucket of the true sample percentile.
  double percentile(double p) const;

  HistogramSnapshot& operator-=(const HistogramSnapshot& earlier);
};

/// Fixed-bucket latency histogram (microseconds, powers of two). Recording
/// is two relaxed atomic adds; percentile extraction walks the buckets.
class Histogram {
 public:
  static constexpr unsigned kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t us) noexcept {
    buckets_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    // Exact extremes: power-of-two buckets alone can hide a single-outlier
    // spike (p99 stays put; max jumps), and the alerting rules need max.
    std::uint64_t seen = min_us_.load(std::memory_order_relaxed);
    while (us < seen &&
           !min_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
    }
    seen = max_us_.load(std::memory_order_relaxed);
    while (us > seen &&
           !max_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum_us() const noexcept {
    return sum_us_.load(std::memory_order_relaxed);
  }
  /// Smallest recorded sample; UINT64_MAX before the first record().
  std::uint64_t min_us() const noexcept {
    return min_us_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_us() const noexcept {
    return max_us_.load(std::memory_order_relaxed);
  }
  double percentile(double p) const { return snapshot().percentile(p); }

  HistogramSnapshot snapshot() const;

  static unsigned bucket_index(std::uint64_t us) noexcept;
  /// Inclusive upper bound of bucket i in microseconds.
  static std::uint64_t bucket_upper_bound(unsigned i) noexcept {
    return std::uint64_t(1) << i;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> min_us_{UINT64_MAX};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Everything in a registry at one instant. Supports subtraction so the
/// bench harness can attribute metrics to a single benchmark's interval.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// after - before, per metric (gauges keep the `after` value — they are
/// levels, not totals). Metrics absent from `before` count from zero.
MetricsSnapshot delta(const MetricsSnapshot& before, const MetricsSnapshot& after);

/// Named metric registry. Instruments are created on first use and never
/// removed, so the returned references are stable for the registry's
/// lifetime — hot paths resolve a handle once and write lock-free
/// thereafter. The registry mutex guards only name lookup.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Plain-text dump, one metric per line (`name value`, histograms as
  /// `name count=N sum_us=S min_us=.. max_us=.. p50=.. p90=.. p99=..`) —
  /// the bench harness's and humans' view of the registry.
  std::string to_text() const;

  /// Process-wide registry the built-in instrumentation writes to.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gs::telemetry
