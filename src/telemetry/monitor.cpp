#include "telemetry/monitor.hpp"

#include <cstdio>
#include <cstdlib>

#include "soap/namespaces.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/propagation.hpp"
#include "wse/client.hpp"
#include "wsn/client.hpp"

namespace gs::telemetry {

namespace {

xml::QName t(const char* local) { return {kTelemetryNs, local}; }
xml::QName wsnt(const char* local) { return {soap::ns::kWsnBase, local}; }

std::string format_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

std::uint64_t parse_u64(const std::optional<std::string>& raw) {
  return raw ? std::strtoull(raw->c_str(), nullptr, 10) : 0;
}

}  // namespace

std::string snapshot_action() {
  return std::string(kTelemetryNs) + "/Snapshot";
}

std::string alert_action() { return std::string(kTelemetryNs) + "/Alert"; }

wsn::TopicNamespace monitor_topics() {
  wsn::TopicNamespace topics;
  topics.add(kAlertTopic);  // intermediates register kTelemetryTopic too
  return topics;
}

MonitorProducer::MonitorProducer(Config config) : config_(std::move(config)) {
  if (!config_.registry) {
    throw std::invalid_argument("MonitorProducer needs a registry");
  }
}

void MonitorProducer::add_rule(AlertRule rule) {
  std::lock_guard lock(mu_);
  rules_.push_back(std::move(rule));
  rule_breached_.push_back(false);
}

void MonitorProducer::tick() {
  // Retention first: the series the SLOs judge must include this tick's
  // interval. Both calls synchronize internally and never take mu_.
  if (config_.series) config_.series->sample();

  std::unique_ptr<xml::Element> snapshot_el;
  std::vector<std::unique_ptr<xml::Element>> alert_els;
  {
    std::lock_guard lock(mu_);
    MetricsSnapshot now_snap = config_.registry->snapshot();
    MetricsSnapshot d = delta(last_, now_snap);
    last_ = std::move(now_snap);
    ++seq_;
    last_cycle_ = config_.clock->now();

    snapshot_el = std::make_unique<xml::Element>(t("TelemetrySnapshot"));
    snapshot_el->declare_prefix("t", kTelemetryNs);
    snapshot_el->set_attr("producer", config_.producer_address);
    snapshot_el->set_attr("seq", std::to_string(seq_));
    snapshot_el->set_attr("ts_ms", std::to_string(*last_cycle_));
    for (const auto& [name, value] : d.counters) {
      xml::Element& el = snapshot_el->append_element(t("Counter"));
      el.set_attr("name", name);
      el.set_attr("total", std::to_string(last_.counters.at(name)));
      el.set_text(std::to_string(value));  // this tick's increments
    }
    for (const auto& [name, value] : d.gauges) {
      xml::Element& el = snapshot_el->append_element(t("Gauge"));
      el.set_attr("name", name);
      el.set_text(std::to_string(value));
    }
    for (const auto& [name, h] : d.histograms) {
      xml::Element& el = snapshot_el->append_element(t("Histogram"));
      el.set_attr("name", name);
      el.set_attr("count", std::to_string(h.count));
      el.set_attr("sum_us", std::to_string(h.sum_us));
      el.set_attr("min_us", std::to_string(h.count == 0 ? 0 : h.min_us));
      el.set_attr("max_us", std::to_string(h.max_us));
      el.set_attr("p50_us", format_us(h.percentile(50)));
      el.set_attr("p90_us", format_us(h.percentile(90)));
      el.set_attr("p99_us", format_us(h.percentile(99)));
    }

    // Threshold rules fire edge-triggered: one alert when a rule starts
    // breaching, re-armed only after a clean tick — a stuck-high metric
    // does not flood subscribers with one alert per interval.
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      const AlertRule& rule = rules_[i];
      double value = 0.0;
      switch (rule.kind) {
        case AlertRule::Kind::kCounterRate: {
          auto it = d.counters.find(rule.metric);
          value = it == d.counters.end() ? 0.0
                                         : static_cast<double>(it->second);
          break;
        }
        case AlertRule::Kind::kHistogramP99: {
          auto it = d.histograms.find(rule.metric);
          value = (it == d.histograms.end() || it->second.count == 0)
                      ? 0.0
                      : it->second.percentile(99);
          break;
        }
      }
      bool breached = value > rule.threshold;
      if (breached && !rule_breached_[i]) {
        auto alert = std::make_unique<xml::Element>(t("Alert"));
        alert->declare_prefix("t", kTelemetryNs);
        alert->set_attr("producer", config_.producer_address);
        alert->set_attr("rule", rule.name);
        alert->set_attr("metric", rule.metric);
        alert->set_attr("value", format_us(value));
        alert->set_attr("threshold", format_us(rule.threshold));
        alert->set_attr("seq", std::to_string(seq_));
        alert->set_text("rule '" + rule.name + "' breached: " + rule.metric +
                        " = " + format_us(value) + " > " +
                        format_us(rule.threshold));
        alert_els.push_back(std::move(alert));
        ++alerts_fired_;
      }
      rule_breached_[i] = breached;
    }
  }

  // SLO burn rates are judged on the freshly-sampled series. Transitions
  // leave as the same `<t:Alert>` shape threshold rules use, so consumers
  // need no new handling: rule = "slo:<objective>", value = the short
  // burn, threshold = 1 (burn is already normalized to budget).
  if (config_.slo) {
    for (const SloAlert& slo_alert : config_.slo->evaluate()) {
      auto alert = std::make_unique<xml::Element>(t("Alert"));
      alert->declare_prefix("t", kTelemetryNs);
      alert->set_attr("producer", config_.producer_address);
      alert->set_attr("rule", "slo:" + slo_alert.objective);
      alert->set_attr("metric", "slo." + slo_alert.objective + ".burn");
      alert->set_attr("value", format_us(slo_alert.burn_short));
      alert->set_attr("threshold", "1.0");
      alert->set_attr("firing", slo_alert.firing ? "true" : "false");
      alert->set_text(slo_alert.detail);
      {
        std::lock_guard lock(mu_);
        ++alerts_fired_;
      }
      alert_els.push_back(std::move(alert));
    }
  }

  // Publishing happens outside mu_: delivery may block on retries, and it
  // records into the very registry the next tick will snapshot.
  publish(kTelemetryTopic, *snapshot_el, snapshot_action());
  for (const auto& alert : alert_els) {
    EventLog::global().emit(
        Level::kWarn, "telemetry.monitor", "alert fired",
        {{"producer", config_.producer_address},
         {"rule", *alert->attr("rule")},
         {"metric", *alert->attr("metric")},
         {"value", *alert->attr("value")}});
    publish(kAlertTopic, *alert, alert_action());
  }
}

bool MonitorProducer::poll() {
  {
    std::lock_guard lock(mu_);
    if (last_cycle_ &&
        config_.clock->now() - *last_cycle_ < config_.interval_ms) {
      return false;
    }
  }
  tick();
  return true;
}

std::uint64_t MonitorProducer::snapshots_published() const {
  std::lock_guard lock(mu_);
  return seq_;
}

std::uint64_t MonitorProducer::alerts_fired() const {
  std::lock_guard lock(mu_);
  return alerts_fired_;
}

void MonitorProducer::publish(const std::string& topic,
                              const xml::Element& payload,
                              const std::string& action) {
  if (config_.wsn) config_.wsn->notify(topic, payload);
  if (config_.wse) config_.wse->notify(topic, payload, action);
}

net::HttpResponse MonitorConsumer::handle(const net::HttpRequest& request) {
  soap::Envelope env;
  try {
    env = soap::Envelope::from_xml(request.body);
  } catch (const std::exception& e) {
    return net::HttpResponse::error(400, "Bad Request", e.what());
  }

  const xml::Element* payload = env.payload();
  bool wrapped = false;
  if (payload && payload->name() == wsnt("Notify")) {
    // WS-Notification wrapped delivery: unwrap to the carried message.
    wrapped = true;
    payload = nullptr;
    if (const xml::Element* message =
            env.payload()->child(wsnt("NotificationMessage"))) {
      if (const xml::Element* body = message->child(wsnt("Message"))) {
        auto kids = body->child_elements();
        if (!kids.empty()) payload = kids.front();
      }
    }
  }

  if (payload && payload->name() == t("TelemetrySnapshot")) {
    apply_snapshot(*payload, wrapped);
  } else if (payload && payload->name() == t("Alert")) {
    apply_alert(*payload, wrapped);
  }
  // Everything else (SubscriptionEnd, unknown events) is acknowledged and
  // dropped — a monitor must not fault its producers.
  return net::HttpResponse::ok(soap::Envelope().to_xml());
}

void MonitorConsumer::attach_series(TimeSeriesStore* store) { series_ = store; }

void MonitorConsumer::apply_snapshot(const xml::Element& snapshot,
                                     bool wrapped) {
  std::string producer = snapshot.attr("producer").value_or("");
  common::TimeMs ts_ms = static_cast<common::TimeMs>(
      parse_u64(snapshot.attr("ts_ms")));
  struct Ingest {
    std::string series;
    double value;
  };
  std::vector<Ingest> ingests;
  {
    std::lock_guard lock(mu_);
    ProducerState& state = table_[producer];
    state.producer = producer;
    state.last_seq = std::max(state.last_seq, parse_u64(snapshot.attr("seq")));
    ++state.snapshots;
    ++(wrapped ? state.via_wsn : state.via_wse);
    // Counter rates use the producer's own clock: snapshot text is this
    // tick's increments, ts_ms the tick instant, so delta / (ts_ms -
    // previous ts_ms) is exact even when delivery was delayed or retried.
    common::TimeMs elapsed_ms =
        state.last_ts_ms > 0 && ts_ms > state.last_ts_ms
            ? ts_ms - state.last_ts_ms
            : 0;
    for (const xml::Element* el : snapshot.child_elements()) {
      auto name = el->attr("name");
      if (!name) continue;
      if (el->name() == t("Counter")) {
        state.counter_totals[*name] = parse_u64(el->attr("total"));
        if (series_ && elapsed_ms > 0) {
          double delta =
              static_cast<double>(std::strtoull(el->text().c_str(), nullptr, 10));
          ingests.push_back({producer + '|' + *name,
                             delta * 1000.0 / static_cast<double>(elapsed_ms)});
        }
      } else if (el->name() == t("Gauge")) {
        state.gauges[*name] = std::strtoll(el->text().c_str(), nullptr, 10);
        if (series_) {
          ingests.push_back({producer + '|' + *name,
                             static_cast<double>(state.gauges[*name])});
        }
      } else if (el->name() == t("Histogram")) {
        if (auto p99 = el->attr("p99_us")) {
          state.histogram_p99_us[*name] =
              std::strtod(p99->c_str(), nullptr);
          if (series_ && parse_u64(el->attr("count")) > 0) {
            ingests.push_back({producer + '|' + *name + ".p99",
                               state.histogram_p99_us[*name]});
          }
        }
      }
    }
    if (ts_ms > 0) state.last_ts_ms = ts_ms;
    ++snapshots_seen_;
  }
  // The store has its own lock; feed it outside mu_.
  for (const Ingest& ingest : ingests) {
    series_->ingest(ingest.series, ts_ms, ingest.value);
  }
  cv_.notify_all();
}

void MonitorConsumer::apply_alert(const xml::Element& alert, bool wrapped) {
  std::string producer = alert.attr("producer").value_or("");
  {
    std::lock_guard lock(mu_);
    ProducerState& state = table_[producer];
    state.producer = producer;
    ++state.alerts;
    ++(wrapped ? state.via_wsn : state.via_wse);
    state.last_alert = alert.attr("rule").value_or("");
    ++alerts_seen_;
  }
  cv_.notify_all();
}

std::vector<MonitorConsumer::ProducerState> MonitorConsumer::states() const {
  std::lock_guard lock(mu_);
  std::vector<ProducerState> out;
  out.reserve(table_.size());
  for (const auto& [producer, state] : table_) out.push_back(state);
  return out;
}

std::optional<MonitorConsumer::ProducerState> MonitorConsumer::state_for(
    const std::string& producer) const {
  std::lock_guard lock(mu_);
  auto it = table_.find(producer);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t MonitorConsumer::snapshot_count() const {
  std::lock_guard lock(mu_);
  return snapshots_seen_;
}

std::uint64_t MonitorConsumer::alert_count() const {
  std::lock_guard lock(mu_);
  return alerts_seen_;
}

bool MonitorConsumer::wait_for_snapshots(std::uint64_t n,
                                         int timeout_ms) const {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return snapshots_seen_ >= n; });
}

soap::EndpointReference MonitorConsumer::subscribe_wsn(
    net::SoapCaller& caller, const std::string& producer_address,
    const std::string& consumer_address) {
  wsn::NotificationProducerProxy proxy(
      caller, soap::EndpointReference(producer_address));
  wsn::Filter filter;
  // Simple dialect: the root topic matches its whole subtree, so one
  // subscription carries both snapshots and alerts.
  filter.set_topic(wsn::TopicExpression::parse(
      wsn::TopicExpression::Dialect::kSimple, kTelemetryTopic));
  return proxy.subscribe(soap::EndpointReference(consumer_address), filter);
}

soap::EndpointReference MonitorConsumer::subscribe_wse(
    net::SoapCaller& caller, const std::string& source_address,
    const std::string& consumer_address) {
  wse::EventSourceProxy proxy(caller,
                              soap::EndpointReference(source_address));
  // No filter: the wse topic filter is an exact string match, which would
  // miss `gs:Telemetry/Alert` — a monitor wants everything anyway.
  auto handle =
      proxy.subscribe(soap::EndpointReference(consumer_address));
  return handle.manager;
}

}  // namespace gs::telemetry
