// Trace-context carriage in SOAP headers.
//
// The TraceContext rides next to the WS-Addressing headers the same way
// MessageID/RelatesTo do: the sender stamps its trace id and span id, and
// the receiver's span becomes a child of the sender's — the cross-stack
// analogue of RelatesTo echoing the request MessageID. The header is NOT
// covered by the X.509 message signature (which signs Body plus the four
// wsa headers), so telemetry can be added or dropped by intermediaries
// without invalidating signed messages.
//
// Header-only: used by both the client proxy (gs_container) and the
// telemetry service (gs_telemetry_service) without creating a library
// cycle between them.
#pragma once

#include <optional>
#include <string>

#include "common/parse.hpp"
#include "soap/envelope.hpp"
#include "telemetry/trace.hpp"
#include "xml/qname.hpp"

namespace gs::telemetry {

inline constexpr const char* kTelemetryNs = "http://gridstacks.dev/telemetry";

inline xml::QName trace_header_qname() {
  return {kTelemetryNs, "TraceContext"};
}

/// Stamps (or restamps) the envelope with the sender's trace context:
/// `<t:TraceContext TraceId=".." SpanId=".."/>` in the SOAP header.
/// Template-backed responses take the ids without materializing a DOM (the
/// compiled skeleton has the header's slots); everything else gets the
/// header element appended/replaced in the tree.
inline void write_trace_header(soap::Envelope& env, const TraceContext& ctx) {
  if (!ctx.valid()) return;
  if (env.set_pending_trace(std::to_string(ctx.trace_id),
                            std::to_string(ctx.span_id))) {
    return;
  }
  xml::Element& header = env.header();
  if (const xml::Element* old = header.child(trace_header_qname())) {
    header.remove_child(*old);
  }
  xml::Element& el = header.append_element(trace_header_qname());
  el.set_attr("TraceId", std::to_string(ctx.trace_id));
  el.set_attr("SpanId", std::to_string(ctx.span_id));
}

/// Reads the trace context off an envelope; nullopt when absent/malformed
/// (strict parse: trailing junk is malformed, not a truncated id).
/// header_child_attr answers from the wire view on the fast path — this
/// read allocates no DOM nodes for a freshly parsed request.
inline std::optional<TraceContext> read_trace_header(const soap::Envelope& env) {
  auto trace_id = env.header_child_attr(trace_header_qname(), "TraceId");
  auto span_id = env.header_child_attr(trace_header_qname(), "SpanId");
  if (!trace_id && !span_id) return std::nullopt;
  TraceContext ctx;
  ctx.trace_id =
      common::parse_number<std::uint64_t>(trace_id.value_or("0")).value_or(0);
  ctx.span_id =
      common::parse_number<std::uint64_t>(span_id.value_or("0")).value_or(0);
  if (!ctx.valid()) return std::nullopt;
  return ctx;
}

}  // namespace gs::telemetry
