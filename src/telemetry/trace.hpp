// Cross-stack request tracing: trace/span identity, a thread-local span
// stack, and a bounded log of completed spans.
//
// A request entering either stack gets one trace; every layer it crosses
// (client proxy, HTTP receive, container dispatch, security handler,
// storage, notification delivery) opens a SpanScope that nests under the
// caller's span on the same thread. Hops between processes/threads carry
// the context in a SOAP header next to WS-Addressing MessageID/RelatesTo
// (see telemetry/propagation.hpp); the receiving container re-roots its
// provisional spans onto the carried trace with `adopt_remote`.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gs::telemetry {

class EventLog;

/// Identity of the currently-executing span within its trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
};

/// One completed span.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = trace root
  std::string name;                  // "http.receive", "container.dispatch", ...
  std::string layer;                 // "client", "net", "container", "storage", "delivery"
  std::int64_t start_us = 0;         // steady-clock microseconds
  std::int64_t duration_us = 0;
};

/// Bounded ring buffer of completed spans (oldest evicted first).
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096);

  void record(SpanRecord span);

  /// All retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;
  /// Retained spans of one trace, oldest first.
  std::vector<SpanRecord> spans_for(std::uint64_t trace_id) const;
  std::size_t size() const;
  void clear();

  /// Process-wide log the built-in instrumentation records into.
  static TraceLog& global();

  /// Slow-request capture: whenever a trace ROOT span completes with
  /// duration >= `threshold_us`, the trace's retained spans are copied
  /// into `sink` as one warn event (root name, duration, per-span dump).
  /// `sink` nullptr or threshold 0 disables. The sink must outlive the log.
  void set_slow_capture(std::int64_t threshold_us, EventLog* sink);

 private:
  std::vector<SpanRecord> spans_for_locked(std::uint64_t trace_id) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::vector<SpanRecord> ring_;
  std::int64_t slow_threshold_us_ = 0;
  EventLog* slow_sink_ = nullptr;
};

/// Fresh nonzero trace/span id.
std::uint64_t new_trace_id();

/// The innermost open span on this thread, or an invalid context.
TraceContext current_context();

/// RAII span: derives identity from the innermost open span on this thread
/// (or starts a new trace), and records itself into `log` on destruction.
class SpanScope {
 public:
  SpanScope(std::string name, std::string layer, TraceLog* log = &TraceLog::global());
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  TraceContext context() const noexcept {
    return {trace_id_, span_id_, parent_span_id_};
  }

 private:
  friend void adopt_remote(const TraceContext& remote);

  std::string name_;
  std::string layer_;
  TraceLog* log_;
  std::uint64_t trace_id_;
  std::uint64_t span_id_;
  std::uint64_t parent_span_id_;
  std::int64_t start_us_;
  SpanScope* prev_;  // thread-local stack link
};

/// Server side of a hop: re-roots the provisionally-started spans open on
/// this thread onto the remote trace carried in the request header. Walks
/// the open-span stack outward, rewriting trace ids until it reaches a
/// span already in the remote trace; the outermost rewritten span becomes
/// a child of the remote sender span. No-op when the open spans already
/// belong to the remote trace (co-located, same-thread hops) or when no
/// span is open.
void adopt_remote(const TraceContext& remote);

}  // namespace gs::telemetry
