#include "telemetry/trace.hpp"

#include <atomic>
#include <chrono>

namespace gs::telemetry {

namespace {

thread_local SpanScope* tl_top = nullptr;

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t new_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  std::uint64_t raw = next.fetch_add(1, std::memory_order_relaxed);
  // splitmix64: sequential allocation, uncorrelated-looking ids.
  raw += 0x9e3779b97f4a7c15ULL;
  raw = (raw ^ (raw >> 30)) * 0xbf58476d1ce4e5b9ULL;
  raw = (raw ^ (raw >> 27)) * 0x94d049bb133111ebULL;
  raw ^= raw >> 31;
  return raw == 0 ? 1 : raw;
}

TraceContext current_context() {
  return tl_top ? tl_top->context() : TraceContext{};
}

SpanScope::SpanScope(std::string name, std::string layer, TraceLog* log)
    : name_(std::move(name)),
      layer_(std::move(layer)),
      log_(log),
      span_id_(new_trace_id()),
      start_us_(steady_now_us()),
      prev_(tl_top) {
  if (prev_) {
    trace_id_ = prev_->trace_id_;
    parent_span_id_ = prev_->span_id_;
  } else {
    trace_id_ = new_trace_id();
    parent_span_id_ = 0;
  }
  tl_top = this;
}

SpanScope::~SpanScope() {
  tl_top = prev_;
  if (!log_) return;
  SpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = parent_span_id_;
  record.name = std::move(name_);
  record.layer = std::move(layer_);
  record.start_us = start_us_;
  record.duration_us = steady_now_us() - start_us_;
  log_->record(std::move(record));
}

void adopt_remote(const TraceContext& remote) {
  if (!remote.valid()) return;
  SpanScope* outermost_rewritten = nullptr;
  for (SpanScope* s = tl_top; s && s->trace_id_ != remote.trace_id; s = s->prev_) {
    s->trace_id_ = remote.trace_id;
    outermost_rewritten = s;
  }
  if (outermost_rewritten) {
    outermost_rewritten->parent_span_id_ = remote.span_id;
  }
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceLog::record(SpanRecord span) {
  std::lock_guard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_] = std::move(span);
    wrapped_ = true;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceLog::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  std::size_t start = wrapped_ ? next_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> TraceLog::spans_for(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (SpanRecord& span : snapshot()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

std::size_t TraceLog::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

void TraceLog::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

}  // namespace gs::telemetry
