#include "telemetry/trace.hpp"

#include <atomic>
#include <chrono>
#include <sstream>

#include "telemetry/event_log.hpp"

namespace gs::telemetry {

namespace {

thread_local SpanScope* tl_top = nullptr;

// One warn event per slow trace: the root's identity plus a compact
// per-span dump, so the EventLog alone is enough to reconstruct where the
// time went after the span ring has moved on.
void emit_slow_trace(EventLog& sink, const SpanRecord& root,
                     const std::vector<SpanRecord>& spans) {
  std::ostringstream dump;
  for (const SpanRecord& span : spans) {
    if (dump.tellp() > 0) dump << "; ";
    dump << span.name << '[' << span.layer << "] +"
         << (span.start_us - root.start_us) << "us " << span.duration_us
         << "us";
  }
  Event event;
  event.ts_us = root.start_us + root.duration_us;
  event.level = Level::kWarn;
  event.component = "telemetry.trace";
  event.message = "slow request captured";
  event.trace_id = root.trace_id;
  event.attrs = {{"root", root.name},
                 {"duration_us", std::to_string(root.duration_us)},
                 {"spans", std::to_string(spans.size())},
                 {"detail", dump.str()}};
  sink.log(std::move(event));
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t new_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  std::uint64_t raw = next.fetch_add(1, std::memory_order_relaxed);
  // splitmix64: sequential allocation, uncorrelated-looking ids.
  raw += 0x9e3779b97f4a7c15ULL;
  raw = (raw ^ (raw >> 30)) * 0xbf58476d1ce4e5b9ULL;
  raw = (raw ^ (raw >> 27)) * 0x94d049bb133111ebULL;
  raw ^= raw >> 31;
  return raw == 0 ? 1 : raw;
}

TraceContext current_context() {
  return tl_top ? tl_top->context() : TraceContext{};
}

SpanScope::SpanScope(std::string name, std::string layer, TraceLog* log)
    : name_(std::move(name)),
      layer_(std::move(layer)),
      log_(log),
      span_id_(new_trace_id()),
      start_us_(steady_now_us()),
      prev_(tl_top) {
  if (prev_) {
    trace_id_ = prev_->trace_id_;
    parent_span_id_ = prev_->span_id_;
  } else {
    trace_id_ = new_trace_id();
    parent_span_id_ = 0;
  }
  tl_top = this;
}

SpanScope::~SpanScope() {
  tl_top = prev_;
  if (!log_) return;
  SpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = parent_span_id_;
  record.name = std::move(name_);
  record.layer = std::move(layer_);
  record.start_us = start_us_;
  record.duration_us = steady_now_us() - start_us_;
  log_->record(std::move(record));
}

void adopt_remote(const TraceContext& remote) {
  if (!remote.valid()) return;
  SpanScope* outermost_rewritten = nullptr;
  for (SpanScope* s = tl_top; s && s->trace_id_ != remote.trace_id; s = s->prev_) {
    s->trace_id_ = remote.trace_id;
    outermost_rewritten = s;
  }
  if (outermost_rewritten) {
    outermost_rewritten->parent_span_id_ = remote.span_id;
  }
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceLog::record(SpanRecord span) {
  EventLog* slow_sink = nullptr;
  std::vector<SpanRecord> captured;
  SpanRecord root;
  {
    std::lock_guard lock(mu_);
    bool is_slow_root = slow_sink_ && slow_threshold_us_ > 0 &&
                        span.parent_span_id == 0 &&
                        span.duration_us >= slow_threshold_us_;
    if (is_slow_root) root = span;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(span));
    } else {
      ring_[next_] = std::move(span);
      wrapped_ = true;
    }
    next_ = (next_ + 1) % capacity_;
    if (is_slow_root) {
      slow_sink = slow_sink_;
      captured = spans_for_locked(root.trace_id);
    }
  }
  // Emit outside mu_: the sink takes its own lock, and formatting a whole
  // trace shouldn't stall concurrent span completion.
  if (slow_sink) emit_slow_trace(*slow_sink, root, captured);
}

std::vector<SpanRecord> TraceLog::spans_for_locked(
    std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  std::size_t start = wrapped_ ? next_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const SpanRecord& span = ring_[(start + i) % ring_.size()];
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

void TraceLog::set_slow_capture(std::int64_t threshold_us, EventLog* sink) {
  std::lock_guard lock(mu_);
  slow_threshold_us_ = threshold_us;
  slow_sink_ = sink;
}

std::vector<SpanRecord> TraceLog::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  std::size_t start = wrapped_ ? next_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> TraceLog::spans_for(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (SpanRecord& span : snapshot()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

std::size_t TraceLog::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

void TraceLog::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

}  // namespace gs::telemetry
