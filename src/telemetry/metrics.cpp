#include "telemetry/metrics.hpp"

#include <bit>
#include <cmath>
#include <thread>

namespace gs::telemetry {

unsigned Counter::shard_index() noexcept {
  // One shard per thread (hashed): writers on different threads land on
  // different cache lines with high probability.
  static thread_local const unsigned slot = static_cast<unsigned>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards);
  return slot;
}

unsigned Histogram::bucket_index(std::uint64_t us) noexcept {
  if (us <= 1) return 0;
  unsigned index = static_cast<unsigned>(std::bit_width(us - 1));
  return index < kBuckets ? index : kBuckets - 1;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (unsigned i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  snap.min_us = min_us_.load(std::memory_order_relaxed);
  snap.max_us = max_us_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank (1-based), then interpolate inside the bucket.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      double lower = i == 0 ? 0.0
                            : static_cast<double>(Histogram::bucket_upper_bound(i - 1));
      double upper = static_cast<double>(Histogram::bucket_upper_bound(i));
      double fraction = static_cast<double>(rank - seen) /
                        static_cast<double>(buckets[i]);
      return lower + (upper - lower) * fraction;
    }
    seen += buckets[i];
  }
  return static_cast<double>(Histogram::bucket_upper_bound(kBuckets - 1));
}

HistogramSnapshot& HistogramSnapshot::operator-=(const HistogramSnapshot& earlier) {
  count -= earlier.count;
  sum_us -= earlier.sum_us;
  // min/max stay as-is: extremes are lifetime levels (the bucket counts
  // can't reconstruct an interval's true extremes after subtraction).
  for (unsigned i = 0; i < kBuckets; ++i) buckets[i] -= earlier.buckets[i];
  return *this;
}

MetricsSnapshot delta(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    out.counters[name] = value - (it == before.counters.end() ? 0 : it->second);
  }
  out.gauges = after.gauges;  // levels, not totals
  for (const auto& [name, snap] : after.histograms) {
    HistogramSnapshot d = snap;
    if (auto it = before.histograms.find(name); it != before.histograms.end()) {
      d -= it->second;
    }
    out.histograms[name] = d;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->snapshot();
  return snap;
}

std::string MetricsRegistry::to_text() const {
  MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += name + " count=" + std::to_string(h.count) +
           " sum_us=" + std::to_string(h.sum_us) +
           " min_us=" + std::to_string(h.count == 0 ? 0 : h.min_us) +
           " max_us=" + std::to_string(h.max_us) +
           " p50=" + std::to_string(h.percentile(50)) +
           " p90=" + std::to_string(h.percentile(90)) +
           " p99=" + std::to_string(h.percentile(99)) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace gs::telemetry
