// Structured event log: the container's flight recorder.
//
// The reliability layer (PR 2) made failures survivable — retries, queues,
// evictions — but invisible: after a run, the only evidence was counter
// totals. The EventLog keeps the *stories*: every warn-worthy incident
// (retry exhaustion, subscriber eviction, dead-lettered message, injected
// fault, SOAP fault, TLS handshake failure) lands here as a structured,
// leveled event carrying the trace id that was active when it happened, so
// a post-mortem can join events back to the request trees in the TraceLog.
//
// Bounded ring, same discipline as TraceLog: oldest evicted first, per-level
// totals survive eviction. Writers are failure paths — rare by construction
// — so one mutex is fine; readers (the telemetry document, bench dumps)
// pay the copy.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gs::telemetry {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* level_name(Level level);

/// One recorded incident.
struct Event {
  /// Monotonic per-log sequence number assigned on log(), starting at 1 —
  /// the cursor consumers resume from (events_since).
  std::uint64_t seq = 0;
  std::int64_t ts_us = 0;      // steady-clock microseconds (same base as spans)
  Level level = Level::kInfo;
  std::string component;       // "net.retry", "wsn.delivery", "container", ...
  std::string message;
  std::uint64_t trace_id = 0;  // trace active on the emitting thread; 0 = none
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Renders one event as a single log line:
///   `12345us WARN [net.retry] message {k=v, ...} trace=abcd`
std::string format_event(const Event& event);

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 2048);

  /// Records `event` verbatim (caller stamps ts/trace). Events below the
  /// minimum level are counted but not retained.
  void log(Event event);

  /// Builds and records an event: stamps the current steady-clock time and
  /// the trace id open on this thread.
  void emit(Level level, std::string component, std::string message,
            std::vector<std::pair<std::string, std::string>> attrs = {});

  /// All retained events, oldest first.
  std::vector<Event> snapshot() const;
  /// The most recent `n` events at `min_level` or above, oldest first.
  std::vector<Event> recent(std::size_t n, Level min_level = Level::kDebug) const;
  /// Cursor read: retained events with seq > `seq`, oldest first. A
  /// consumer that resumes from its last seen seq pulls only new events —
  /// and can detect loss, since ring eviction makes the first returned
  /// seq jump past seq + 1.
  std::vector<Event> events_since(std::uint64_t seq) const;
  /// Sequence number of the most recently logged event (0 = none yet).
  std::uint64_t last_seq() const;

  /// Total events emitted at `level` (including ones no longer retained).
  std::uint64_t count(Level level) const;
  /// Events evicted from the ring (emitted minus retained).
  std::uint64_t dropped() const;
  std::size_t size() const;
  /// Steady-clock microseconds at construction — the uptime origin.
  std::int64_t start_us() const noexcept { return start_us_; }

  /// Events below this level are counted but not retained (default kDebug:
  /// keep everything).
  void set_min_level(Level level);

  void clear();

  /// One-line-per-event dump of everything retained.
  std::string to_text() const;

  /// Process-wide log the built-in instrumentation emits into.
  static EventLog& global();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::uint64_t last_seq_ = 0;
  std::vector<Event> ring_;
  std::int64_t start_us_;
  std::atomic<Level> min_level_{Level::kDebug};
  std::array<std::atomic<std::uint64_t>, 4> level_counts_{};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace gs::telemetry
