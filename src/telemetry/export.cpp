#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace gs::telemetry {

namespace {

// Stable layer → Chrome pid mapping so the same layer lands on the same
// track across exports; unknown layers are assigned after the known ones
// in order of first appearance.
int pid_for_layer(const std::string& layer,
                  std::map<std::string, int>& assigned) {
  static const std::map<std::string, int> kWellKnown = {
      {"client", 1},    {"net", 2},     {"container", 3},
      {"storage", 4},   {"delivery", 5}};
  auto well_known = kWellKnown.find(layer);
  if (well_known != kWellKnown.end()) return well_known->second;
  auto it = assigned.find(layer);
  if (it != assigned.end()) return it->second;
  int next = static_cast<int>(kWellKnown.size()) + 1 +
             static_cast<int>(assigned.size());
  assigned.emplace(layer, next);
  return next;
}

void append_json_string(std::string& out, const std::string& raw) {
  out += '"';
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string hex_id(std::uint64_t id) {
  std::ostringstream out;
  out << std::hex << id;
  return out.str();
}

}  // namespace

std::vector<TraceTree> assemble_traces(const std::vector<SpanRecord>& spans) {
  std::vector<TraceTree> trees;
  std::map<std::uint64_t, std::size_t> tree_index;  // trace_id -> trees slot
  for (const SpanRecord& span : spans) {
    auto [it, fresh] = tree_index.try_emplace(span.trace_id, trees.size());
    if (fresh) {
      trees.emplace_back();
      trees.back().trace_id = span.trace_id;
    }
    trees[it->second].spans.push_back(span);
  }
  for (TraceTree& tree : trees) {
    tree.children.resize(tree.spans.size());
    std::map<std::uint64_t, std::size_t> by_span_id;
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      by_span_id[tree.spans[i].span_id] = i;
    }
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      auto parent = by_span_id.find(tree.spans[i].parent_span_id);
      if (tree.spans[i].parent_span_id != 0 && parent != by_span_id.end()) {
        tree.children[parent->second].push_back(i);
      } else {
        tree.roots.push_back(i);
      }
    }
  }
  return trees;
}

std::string export_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::map<std::string, int> extra_layers;
  std::map<std::uint64_t, int> trace_tids;
  std::map<int, std::string> process_names;

  std::string events;
  for (const SpanRecord& span : spans) {
    int pid = pid_for_layer(span.layer, extra_layers);
    process_names.emplace(pid, span.layer);
    int tid =
        trace_tids.try_emplace(span.trace_id,
                               static_cast<int>(trace_tids.size()) + 1)
            .first->second;
    if (!events.empty()) events += ",\n";
    events += R"({"ph":"X","name":)";
    append_json_string(events, span.name);
    events += R"(,"cat":)";
    append_json_string(events, span.layer);
    events += ",\"ts\":" + std::to_string(span.start_us);
    events += ",\"dur\":" + std::to_string(span.duration_us);
    events += ",\"pid\":" + std::to_string(pid);
    events += ",\"tid\":" + std::to_string(tid);
    // Ids as hex strings: uint64 doesn't survive a round trip through
    // JSON doubles.
    events += R"(,"args":{"trace":")" + hex_id(span.trace_id);
    events += R"(","span":")" + hex_id(span.span_id);
    events += R"(","parent":")" + hex_id(span.parent_span_id);
    events += "\"}}";
  }
  for (const auto& [pid, layer] : process_names) {
    if (!events.empty()) events += ",\n";
    events += R"({"ph":"M","name":"process_name","pid":)" +
              std::to_string(pid) + R"(,"tid":0,"args":{"name":)";
    append_json_string(events, layer);
    events += "}}";
  }
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" + events + "\n]}\n";
}

std::string critical_path_summary(const TraceTree& tree) {
  std::ostringstream out;
  for (std::size_t root : tree.roots) {
    std::size_t node = root;
    for (;;) {
      const SpanRecord& span = tree.spans[node];
      // Self time: the span's duration minus time covered by children.
      std::int64_t child_time = 0;
      for (std::size_t child : tree.children[node]) {
        child_time += tree.spans[child].duration_us;
      }
      std::int64_t self = std::max<std::int64_t>(0, span.duration_us - child_time);
      out << "  " << span.name << " [" << span.layer << "] "
          << span.duration_us << "us (self " << self << "us)\n";
      // Descend into the child that finished last — the one the parent's
      // wall time actually waited for.
      const std::vector<std::size_t>& kids = tree.children[node];
      if (kids.empty()) break;
      node = *std::max_element(
          kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
            return tree.spans[a].start_us + tree.spans[a].duration_us <
                   tree.spans[b].start_us + tree.spans[b].duration_us;
          });
    }
  }
  return out.str();
}

std::string critical_path_report(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const TraceTree& tree : assemble_traces(spans)) {
    out += "trace " + hex_id(tree.trace_id) + ":\n";
    out += critical_path_summary(tree);
  }
  return out;
}

}  // namespace gs::telemetry
