#include "telemetry/exposition.hpp"

#include <cstdio>

namespace gs::telemetry {

namespace {

std::string format_quantile(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "gs_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry) {
  MetricsSnapshot snap = registry.snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " summary\n";
    if (h.count > 0) {
      out += prom + "{quantile=\"0.5\"} " + format_quantile(h.percentile(50)) +
             "\n";
      out += prom + "{quantile=\"0.9\"} " + format_quantile(h.percentile(90)) +
             "\n";
      out += prom + "{quantile=\"0.99\"} " +
             format_quantile(h.percentile(99)) + "\n";
    }
    out += prom + "_sum " + std::to_string(h.sum_us) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

MetricsHttpEndpoint::MetricsHttpEndpoint(net::Endpoint& inner,
                                         const MetricsRegistry* registry,
                                         std::string path)
    : inner_(inner),
      registry_(registry ? registry : &MetricsRegistry::global()),
      path_(std::move(path)) {}

net::HttpResponse MetricsHttpEndpoint::handle(const net::HttpRequest& request) {
  if (request.method == "GET" && request.path == path_) {
    return net::HttpResponse::ok(prometheus_text(*registry_),
                                 kPrometheusContentType);
  }
  return inner_.handle(request);
}

}  // namespace gs::telemetry
