// Trace assembly and export.
//
// The TraceLog retains completed spans as a flat ring; this module joins
// them back into per-trace trees and renders them two ways:
//   - Chrome trace-event JSON (load in chrome://tracing or Perfetto): one
//     "X" complete event per span, processes mapped from span layers so a
//     cross-stack request visually hops client → net → container → ...
//   - a critical-path text summary per trace: the chain of spans that
//     bounded the root's wall time, with self-time attribution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace gs::telemetry {

/// One trace reassembled from the flat span log.
struct TraceTree {
  std::uint64_t trace_id = 0;
  /// This trace's spans, in TraceLog retention order (oldest first).
  std::vector<SpanRecord> spans;
  /// Indices into `spans` whose parent span is absent (the trace root —
  /// or several, when the ring evicted ancestors).
  std::vector<std::size_t> roots;
  /// children[i] = indices of spans[i]'s child spans.
  std::vector<std::vector<std::size_t>> children;
};

/// Groups spans by trace (ordered by each trace's first retained span) and
/// links parents to children.
std::vector<TraceTree> assemble_traces(const std::vector<SpanRecord>& spans);

/// Renders spans as Chrome trace-event JSON. Span layers become process
/// ids ("client", "net", "container", ... each its own track), traces
/// become thread ids within them; span/parent identity rides in `args`.
std::string export_chrome_trace(const std::vector<SpanRecord>& spans);

/// The chain of spans bounding the root's wall time: from each node,
/// follow the child that finished last. One line per hop:
///   `container.dispatch [container] 840us (self 120us)`
std::string critical_path_summary(const TraceTree& tree);

/// Critical-path summaries for every trace in `spans`, separated by
/// `trace <id>:` headers.
std::string critical_path_report(const std::vector<SpanRecord>& spans);

}  // namespace gs::telemetry
