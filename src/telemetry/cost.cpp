#include "telemetry/cost.hpp"

#include <stdexcept>

namespace gs::telemetry {

void CostAggregator::Costs::accrue(const CostRecord& cost) {
  ++requests;
  if (cost.fault) ++faults;
  wall_us += cost.wall_us;
  parse_us += cost.parse_us;
  serialize_us += cost.serialize_us;
  xml_nodes += cost.xml_nodes;
  arena_bytes += cost.arena_bytes;
  request_bytes += cost.request_bytes;
  response_bytes += cost.response_bytes;
}

CostAggregator::CostAggregator(MetricsRegistry* registry)
    : registry_(registry) {
  if (!registry_) throw std::invalid_argument("CostAggregator needs a registry");
}

void CostAggregator::record(const std::string& tenant,
                            const std::string& service,
                            const CostRecord& cost) {
  Handles handles;
  {
    std::lock_guard lock(mu_);
    TenantCosts& row = table_[tenant];
    if (row.tenant.empty()) row.tenant = tenant;
    row.total.accrue(cost);
    row.by_service[service].accrue(cost);

    Handles& cached = handles_[tenant];
    if (!cached.requests) {
      const std::string prefix = "tenant." + tenant;
      cached.requests = &registry_->counter(prefix + ".requests");
      cached.wall_us = &registry_->histogram(prefix + ".wall_us");
      cached.bytes_in = &registry_->counter(prefix + ".bytes_in");
      cached.bytes_out = &registry_->counter(prefix + ".bytes_out");
    }
    handles = cached;
  }
  // Metric writes are lock-free; no need to hold mu_ for them.
  handles.requests->add();
  handles.wall_us->record(cost.wall_us);
  handles.bytes_in->add(cost.request_bytes);
  handles.bytes_out->add(cost.response_bytes);
}

std::vector<CostAggregator::TenantCosts> CostAggregator::totals() const {
  std::lock_guard lock(mu_);
  std::vector<TenantCosts> out;
  out.reserve(table_.size());
  for (const auto& [id, row] : table_) out.push_back(row);
  return out;
}

std::optional<CostAggregator::TenantCosts> CostAggregator::tenant(
    const std::string& id) const {
  std::lock_guard lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t CostAggregator::requests_recorded() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, row] : table_) total += row.total.requests;
  return total;
}

}  // namespace gs::telemetry
