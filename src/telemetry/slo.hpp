// Service-level objectives evaluated as multi-window burn rates over the
// TimeSeriesStore.
//
// A single threshold rule (PR 4's AlertRule) fires on one bad tick; an
// objective asks the operator's real question — "are we spending error
// budget fast enough to miss the target?". Burn rate is the standard SRE
// formulation:
//
//   burn = observed error ratio / allowed error ratio (1 - target)
//
// evaluated over TWO windows: a short one for detection speed and a long
// one to reject blips. An objective fires only when BOTH windows burn
// above the threshold, and alerts are edge-triggered transitions (one on
// fire, one on clear), mirroring the monitor's latch discipline so a
// stuck-bad objective cannot flood subscribers.
//
//   * kAvailability: error ratio = bad / (good + bad), where good and bad
//     are counter-rate series (samples-weighted sums over the window) —
//     e.g. good = container.admitted, bad = container.shed_* + faults.
//   * kLatency: error ratio = fraction of the window's intervals whose
//     `latency_metric`.p99 point exceeded threshold_us (interval-level
//     SLIs; an empty-interval gap counts as good).
//
// The tracker only reads; firing side effects (EventLog entries, wsn/wse
// Alert publication) belong to the MonitorProducer driving evaluate().
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "telemetry/timeseries.hpp"

namespace gs::telemetry {

struct SloObjective {
  enum class Kind { kAvailability, kLatency };

  std::string name;  // stamped into alerts ("availability")
  Kind kind = Kind::kAvailability;

  /// kAvailability: counter series for successes / failures.
  std::string good_metric;
  std::vector<std::string> bad_metrics;

  /// kLatency: histogram base name (the `.p99` series is consulted) and
  /// the per-interval threshold.
  std::string latency_metric;
  double threshold_us = 0.0;

  /// SLO target as a fraction of good outcomes (0.999 = "three nines");
  /// allowed error ratio is 1 - target.
  double target = 0.999;

  common::TimeMs short_window_ms = 5'000;
  common::TimeMs long_window_ms = 60'000;
  /// Fire when BOTH windows burn above this multiple of budget.
  double burn_threshold = 1.0;
};

/// Point-in-time evaluation of one objective (the telemetry document's
/// <t:Slo> rows).
struct SloStatus {
  std::string objective;
  bool firing = false;
  double burn_short = 0.0;
  double burn_long = 0.0;
  double error_ratio_short = 0.0;
  double error_ratio_long = 0.0;
};

/// One edge-triggered transition returned by evaluate().
struct SloAlert {
  std::string objective;
  bool firing = false;  // true = started breaching, false = recovered
  double burn_short = 0.0;
  double burn_long = 0.0;
  std::string detail;
};

class SloTracker {
 public:
  SloTracker(const TimeSeriesStore* series,
             const common::Clock* clock = &common::RealClock::instance());

  void add_objective(SloObjective objective);

  /// Evaluates every objective against the store's current windows and
  /// returns the TRANSITIONS since the previous call (edge-triggered).
  std::vector<SloAlert> evaluate();

  /// Current burn rates per objective, without touching the latches.
  std::vector<SloStatus> status() const;

 private:
  SloStatus evaluate_locked(const SloObjective& objective,
                            common::TimeMs now) const;
  double error_ratio(const SloObjective& objective, common::TimeMs window_ms,
                     common::TimeMs now) const;

  const TimeSeriesStore* series_;
  const common::Clock* clock_;
  mutable std::mutex mu_;
  std::vector<SloObjective> objectives_;
  std::vector<bool> firing_;  // latch, parallel to objectives_
};

}  // namespace gs::telemetry
