#include "wsn/consumer.hpp"

#include <chrono>

#include "soap/namespaces.hpp"

namespace gs::wsn {

namespace {
xml::QName wsnt(const char* local) { return {soap::ns::kWsnBase, local}; }
}  // namespace

net::HttpResponse NotificationConsumer::handle(const net::HttpRequest& request) {
  soap::Envelope env;
  try {
    env = soap::Envelope::from_xml(request.body);
  } catch (const std::exception& e) {
    return net::HttpResponse::error(400, "Bad Request", e.what());
  }

  ReceivedNotification note;
  const xml::Element* payload = env.payload();
  if (payload && payload->name() == wsnt("Notify")) {
    if (const xml::Element* message = payload->child(wsnt("NotificationMessage"))) {
      if (const xml::Element* topic = message->child(wsnt("Topic"))) {
        note.topic = topic->text();
      }
      if (const xml::Element* producer = message->child(wsnt("ProducerReference"))) {
        note.producer_address =
            soap::EndpointReference::from_xml(*producer).address();
      }
      if (const xml::Element* body = message->child(wsnt("Message"))) {
        auto kids = body->child_elements();
        if (!kids.empty()) note.payload = kids.front()->clone_element();
      }
    }
  } else if (payload) {
    // Raw delivery: an arbitrary payload with no notification context.
    note.raw = true;
    note.payload = payload->clone_element();
  }

  {
    std::lock_guard lock(mu_);
    received_.push_back(std::move(note));
  }
  cv_.notify_all();

  // Notification delivery is one-way; acknowledge with an empty envelope.
  return net::HttpResponse::ok(soap::Envelope().to_xml());
}

size_t NotificationConsumer::count() const {
  std::lock_guard lock(mu_);
  return received_.size();
}

std::vector<ReceivedNotification> NotificationConsumer::received() const {
  std::lock_guard lock(mu_);
  std::vector<ReceivedNotification> out;
  out.reserve(received_.size());
  for (const auto& n : received_) {
    ReceivedNotification copy;
    copy.topic = n.topic;
    copy.producer_address = n.producer_address;
    copy.raw = n.raw;
    if (n.payload) copy.payload = n.payload->clone_element();
    out.push_back(std::move(copy));
  }
  return out;
}

bool NotificationConsumer::wait_for(size_t n, int timeout_ms) const {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return received_.size() >= n; });
}

void NotificationConsumer::clear() {
  std::lock_guard lock(mu_);
  received_.clear();
}

}  // namespace gs::wsn
