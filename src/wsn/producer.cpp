#include "wsn/producer.hpp"

#include "common/uuid.hpp"
#include "container/lifetime.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/propagation.hpp"
#include "telemetry/trace.hpp"
#include "wsrf/base_faults.hpp"

namespace gs::wsn {

namespace {
xml::QName wsnt(const char* local) { return {soap::ns::kWsnBase, local}; }
}  // namespace

NotificationProducer::NotificationProducer(Config config, TopicNamespace topics)
    : config_(config), topics_(std::move(topics)) {
  if (!config_.sink_caller || !config_.manager) {
    throw std::invalid_argument(
        "NotificationProducer needs a sink caller and a subscription manager");
  }
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::global();
  queue_ = std::make_unique<net::DeliveryQueue>(net::DeliveryQueue::Config{
      .caller = config_.sink_caller,
      .pool = config_.delivery_pool,
      .max_queued_per_destination = config_.max_queued_per_subscriber,
      .evict_after_consecutive_failures = config_.evict_after_failures,
      .delivered = &registry.counter("wsn.notifications"),
      .failures = &registry.counter("wsn.delivery_failures"),
      .deliver_us = &registry.histogram("wsn.deliver_us"),
      .evictions = &registry.counter("wsn.subscribers_evicted"),
      .dead_letters = &registry.counter("wsn.dead_letters"),
      .on_evict = {},
      .events = &telemetry::EventLog::global(),
      .component = "wsn.delivery",
  });
}

void NotificationProducer::register_into(container::Service& service) {
  service.register_operation(actions::kSubscribe, [this](
                                 container::RequestContext& ctx) {
    const xml::Element& payload = ctx.payload();
    const xml::Element* consumer_el = payload.child(wsnt("ConsumerReference"));
    if (!consumer_el) {
      throw soap::SoapFault("Sender", "Subscribe needs a ConsumerReference");
    }

    Subscription sub;
    sub.consumer = soap::EndpointReference::from_xml(*consumer_el);
    if (const xml::Element* filter_el = payload.child(wsnt("Filter"))) {
      try {
        sub.filter = Filter::from_xml(*filter_el);
      } catch (const TopicError& e) {
        throw soap::SoapFault("Sender", e.what());
      } catch (const xml::XPathError& e) {
        throw soap::SoapFault("Sender", e.what());
      }
    }
    // Producers reject topics outside their topic space (concrete/simple
    // dialects can be validated up front; full-dialect expressions must
    // match at least one supported topic).
    if (sub.filter.topic()) {
      if (topics_.expand(*sub.filter.topic()).empty()) {
        throw soap::SoapFault("Sender", "topic expression '" +
                                            sub.filter.topic()->text() +
                                            "' matches no supported topic");
      }
    }
    if (const xml::Element* raw = payload.child(wsnt("UseRaw"))) {
      sub.use_raw = raw->text() != "false";
    }
    common::TimeMs termination = container::LifetimeManager::kNever;
    if (const xml::Element* t = payload.child(wsnt("InitialTerminationTime"))) {
      if (t->text() != "infinity") {
        // Relative lifetime in milliseconds from now; strictly validated
        // so client garbage faults instead of escaping std::stoll.
        termination = config_.clock->now() + container::parse_lifetime_ms(t->text());
      }
    }

    // A fresh Subscribe is evidence the sink is meant to be reachable:
    // forgive any earlier eviction of this consumer address.
    queue_->reinstate(sub.consumer.address());

    soap::EndpointReference sub_epr =
        config_.manager->store(std::move(sub), termination);

    soap::Envelope response =
        container::make_response(ctx, actions::kSubscribe + "Response");
    xml::Element& body = response.add_payload(wsnt("SubscribeResponse"));
    body.append(sub_epr.to_xml(wsnt("SubscriptionReference")));

    for (const auto& hook : subscribe_hooks_) hook();
    return response;
  });

  service.register_operation(
      actions::kGetCurrentMessage, [this](container::RequestContext& ctx) {
        const xml::Element* topic_el = ctx.payload().child(wsnt("Topic"));
        if (!topic_el) {
          throw soap::SoapFault("Sender", "GetCurrentMessage needs a Topic");
        }
        std::string topic = topic_el->text();
        if (!topics_.contains(topic)) {
          throw soap::SoapFault("Sender",
                                "unsupported topic '" + topic + "'");
        }
        soap::Envelope response = container::make_response(
            ctx, actions::kGetCurrentMessage + "Response");
        xml::Element& body =
            response.add_payload(wsnt("GetCurrentMessageResponse"));
        std::lock_guard lock(current_mu_);
        auto it = current_.find(topic);
        if (it == current_.end()) {
          // Spec: a fault when no message has been published on the topic.
          throw soap::SoapFault("Sender", "no current message on topic '" +
                                              topic + "'");
        }
        body.append_element(wsnt("Topic")).set_text(topic);
        body.append_element(wsnt("Message")).append(it->second->clone());
        return response;
      });
}

soap::Envelope make_notify_envelope(const std::string& topic,
                                    const xml::Element& payload,
                                    const std::string& producer_address,
                                    const soap::EndpointReference& consumer) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.target(consumer);
  info.action = actions::kNotify;
  info.message_id = common::new_urn_uuid();
  env.write_addressing(info);

  xml::Element& notify = env.add_payload(wsnt("Notify"));
  xml::Element& message = notify.append_element(wsnt("NotificationMessage"));
  message.append_element(wsnt("Topic")).set_text(topic);
  soap::EndpointReference producer(producer_address);
  message.append(producer.to_xml(wsnt("ProducerReference")));
  message.append_element(wsnt("Message")).append(payload.clone());
  return env;
}

soap::Envelope make_raw_notify_envelope(const xml::Element& payload,
                                        const soap::EndpointReference& consumer) {
  soap::Envelope env;
  soap::MessageInfo info;
  info.target(consumer);
  info.action = actions::kNotify;
  info.message_id = common::new_urn_uuid();
  env.write_addressing(info);
  env.body().append(payload.clone());
  return env;
}

size_t NotificationProducer::notify(const std::string& topic,
                                    const xml::Element& payload,
                                    const xml::Element* producer_properties) {
  {
    // Record the current message for GetCurrentMessage pulls.
    std::lock_guard lock(current_mu_);
    current_[topic] = payload.clone_element();
  }
  size_t delivered = 0;
  for (const Subscription& sub : config_.manager->subscriptions()) {
    if (sub.paused) continue;
    if (!sub.filter.accepts(topic, payload, producer_properties)) continue;
    soap::Envelope env =
        sub.use_raw
            ? make_raw_notify_envelope(payload, sub.consumer)
            : make_notify_envelope(topic, payload, config_.producer_address,
                                   sub.consumer);
    telemetry::SpanScope span("wsn.deliver", "delivery");
    telemetry::write_trace_header(env, span.context());
    // Delivery is the queue's business now: retries happen inside the
    // sink caller, failure accounting and eviction inside the queue. An
    // unreachable consumer still cannot fail the publish or starve the
    // other subscribers.
    net::DeliveryQueue::Submit result =
        queue_->submit(sub.consumer.address(), std::move(env));
    if (result != net::DeliveryQueue::Submit::kRejected) ++delivered;
  }
  return delivered;
}

bool NotificationProducer::has_active_subscriber(const std::string& topic) const {
  for (const Subscription& sub : config_.manager->subscriptions()) {
    if (sub.paused) continue;
    if (!sub.filter.topic() || sub.filter.topic()->matches(topic)) return true;
  }
  return false;
}

}  // namespace gs::wsn
