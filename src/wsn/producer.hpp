// WS-BaseNotification producer component.
//
// A NotificationProducer is "imported" into any service (the WSRF.NET
// port-type-aggregation model): it contributes the Subscribe operation and
// gives the service a server-side `notify()` for publishing. Delivery uses
// the configured SoapCaller — in the paper WSRF.NET delivered over HTTP to
// a custom client-side HTTP server, which is why WSN Notify measures slower
// than WS-Eventing's TCP delivery.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "container/service.hpp"
#include "net/delivery_queue.hpp"
#include "net/virtual_network.hpp"
#include "wsn/subscription_manager.hpp"
#include "wsn/topics.hpp"

namespace gs::wsn {

class NotificationProducer {
 public:
  struct Config {
    /// Transport used to push Notify messages to consumers. Wrap it in a
    /// net::RetryingCaller to retry transport failures.
    net::SoapCaller* sink_caller = nullptr;
    /// This producer's address (stamped into ProducerReference).
    std::string producer_address;
    /// Where subscriptions live (may be shared among producers).
    SubscriptionManagerService* manager = nullptr;
    /// Clock for InitialTerminationTime interpretation.
    const common::Clock* clock = &common::RealClock::instance();

    // --- delivery reliability -------------------------------------------------
    // All delivery routes through a per-subscriber net::DeliveryQueue. The
    // defaults preserve the historical shape: inline synchronous delivery,
    // no eviction. Wire a pool for async fan-out and a threshold to shed
    // sinks that stay dark (counted as wsn.subscribers_evicted, with every
    // undeliverable message tallied in wsn.dead_letters).
    common::ThreadPool* delivery_pool = nullptr;
    std::size_t max_queued_per_subscriber = 64;
    int evict_after_failures = 0;  // consecutive; 0 = never evict
  };

  NotificationProducer(Config config, TopicNamespace topics);

  /// Adds the Subscribe and GetCurrentMessage operations to `service`.
  /// GetCurrentMessage answers with the most recent notification published
  /// on a topic (pull-style recovery for late subscribers, per the spec).
  void register_into(container::Service& service);

  /// Publishes: evaluates every live subscription's filter against
  /// (topic, payload, producer_properties) and delivers to the accepting,
  /// non-paused ones through the delivery queue. Returns the number
  /// delivered (inline mode) or accepted for delivery (pooled mode) —
  /// evicted subscribers count as neither.
  size_t notify(const std::string& topic, const xml::Element& payload,
                const xml::Element* producer_properties = nullptr);

  /// Blocks until every accepted notification has been delivered or
  /// dead-lettered (a barrier for pooled delivery; immediate inline).
  void flush_delivery() { queue_->flush(); }

  /// The reliability queue (tests inspect eviction state through this).
  net::DeliveryQueue& delivery_queue() noexcept { return *queue_; }

  /// True when some live, non-paused subscription would accept `topic`
  /// (the broker's demand test).
  bool has_active_subscriber(const std::string& topic) const;

  /// Invoked after every Subscribe (brokers recheck demand here).
  void on_subscribed(std::function<void()> hook) {
    subscribe_hooks_.push_back(std::move(hook));
  }

  const TopicNamespace& topics() const noexcept { return topics_; }
  SubscriptionManagerService& manager() noexcept { return *config_.manager; }

 private:
  Config config_;
  TopicNamespace topics_;
  std::unique_ptr<net::DeliveryQueue> queue_;
  std::vector<std::function<void()>> subscribe_hooks_;
  mutable std::mutex current_mu_;
  std::map<std::string, std::unique_ptr<xml::Element>> current_;  // per topic
};

/// Builds a wrapped Notify envelope (one NotificationMessage).
soap::Envelope make_notify_envelope(const std::string& topic,
                                    const xml::Element& payload,
                                    const std::string& producer_address,
                                    const soap::EndpointReference& consumer);
/// Builds a raw-delivery envelope: the payload as the entire body. The
/// paper flags this mode as an interoperability hazard — the message
/// carries no topic or producer context (tests demonstrate exactly that).
soap::Envelope make_raw_notify_envelope(const xml::Element& payload,
                                        const soap::EndpointReference& consumer);

}  // namespace gs::wsn
