// WS-BaseNotification SubscriptionManager service.
//
// "Each subscription is managed by a Subscription Manager Service (which
// may be the same as the Notification Producer)." Subscriptions are
// WS-Resources: the manager is a WSRF service whose resource type is the
// subscription, so unsubscribe is WS-ResourceLifetime Destroy and clients
// can bound subscription lifetime with InitialTerminationTime /
// SetTerminationTime. Pause/Resume are the WSN-specific additions.
//
// Note the paper's observation: WSN has no standard *create* for
// subscriptions — they come into existence only through the producer's
// Subscribe, an idiosyncratic interface the spec does not pin down.
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "soap/addressing.hpp"
#include "wsn/filter.hpp"
#include "wsrf/service.hpp"

namespace gs::wsn {

namespace actions {
const std::string kSubscribe = std::string(soap::ns::kWsnBase) + "/Subscribe";
const std::string kNotify = std::string(soap::ns::kWsnBase) + "/Notify";
const std::string kPauseSubscription =
    std::string(soap::ns::kWsnBase) + "/PauseSubscription";
const std::string kResumeSubscription =
    std::string(soap::ns::kWsnBase) + "/ResumeSubscription";
const std::string kGetCurrentMessage =
    std::string(soap::ns::kWsnBase) + "/GetCurrentMessage";
}  // namespace actions

/// A subscription materialized from its resource document.
struct Subscription {
  std::string id;
  soap::EndpointReference consumer;
  Filter filter;
  bool paused = false;
  bool use_raw = false;  // "raw" delivery: payload without the Notify wrapper
};

/// Serializes a subscription to its resource document / back.
std::unique_ptr<xml::Element> subscription_to_xml(const Subscription& sub);
Subscription subscription_from_xml(const std::string& id, const xml::Element& el);

class SubscriptionManagerService : public wsrf::WsrfService {
 public:
  SubscriptionManagerService(wsrf::ResourceHome& home, std::string address);

  /// Stores a new subscription (invoked by producers' Subscribe). Returns
  /// the subscription EPR.
  soap::EndpointReference store(Subscription sub, common::TimeMs termination_time);

  /// All live subscriptions (producers iterate this to deliver).
  std::vector<Subscription> subscriptions() const;
  std::optional<Subscription> find(const std::string& id) const;

  /// Flips the paused flag server-side (the wire ops use this too).
  bool set_paused(const std::string& id, bool paused);

  /// Cheap live-subscription count (maintained, not scanned) — producers
  /// use it to skip event construction entirely when nobody listens, one
  /// of the WSRF.NET-side optimizations the paper credits.
  size_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Rehydrates after a restart: re-registers lifetime handles for every
  /// persisted subscription (ResourceHome::recover) and resets the live
  /// count from the collection. Without this, a restarted producer would
  /// see count() == 0 and silently skip delivering to subscriptions that
  /// are still on the medium. Returns the number of live subscriptions.
  std::size_t recover();

 private:
  std::atomic<size_t> count_{0};
};

}  // namespace gs::wsn
