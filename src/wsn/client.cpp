#include "wsn/client.hpp"

namespace gs::wsn {

namespace {
xml::QName wsnt(const char* local) { return {soap::ns::kWsnBase, local}; }
}  // namespace

soap::EndpointReference NotificationProducerProxy::subscribe(
    const soap::EndpointReference& consumer, const Filter& filter,
    std::int64_t initial_lifetime_ms, bool use_raw) {
  auto request = std::make_unique<xml::Element>(wsnt("Subscribe"));
  request->append(consumer.to_xml(wsnt("ConsumerReference")));
  request->append(filter.to_xml(wsnt("Filter")));
  if (initial_lifetime_ms >= 0) {
    request->append_element(wsnt("InitialTerminationTime"))
        .set_text(std::to_string(initial_lifetime_ms));
  }
  if (use_raw) request->append_element(wsnt("UseRaw")).set_text("true");

  soap::Envelope response = invoke(actions::kSubscribe, std::move(request));
  const xml::Element* payload = response.payload();
  const xml::Element* sub_ref =
      payload ? payload->child(wsnt("SubscriptionReference")) : nullptr;
  if (!sub_ref) {
    throw soap::SoapFault("Receiver", "malformed Subscribe response");
  }
  return soap::EndpointReference::from_xml(*sub_ref);
}

std::unique_ptr<xml::Element> NotificationProducerProxy::get_current_message(
    const std::string& topic) {
  auto request = std::make_unique<xml::Element>(wsnt("GetCurrentMessage"));
  request->append_element(wsnt("Topic")).set_text(topic);
  soap::Envelope response = invoke(actions::kGetCurrentMessage, std::move(request));
  const xml::Element* payload = response.payload();
  const xml::Element* message =
      payload ? payload->child(wsnt("Message")) : nullptr;
  if (!message) {
    throw soap::SoapFault("Receiver", "malformed GetCurrentMessage response");
  }
  auto kids = message->child_elements();
  return kids.empty() ? nullptr : kids.front()->clone_element();
}

void SubscriptionProxy::pause() {
  invoke(actions::kPauseSubscription,
         std::make_unique<xml::Element>(wsnt("PauseSubscription")));
}

void SubscriptionProxy::resume() {
  invoke(actions::kResumeSubscription,
         std::make_unique<xml::Element>(wsnt("ResumeSubscription")));
}

}  // namespace gs::wsn
