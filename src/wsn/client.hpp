// Client proxies for WS-Notification.
#pragma once

#include "container/proxy.hpp"
#include "wsn/filter.hpp"
#include "wsn/subscription_manager.hpp"
#include "wsrf/client.hpp"

namespace gs::wsn {

/// Talks to any service that imported the NotificationProducer port type.
class NotificationProducerProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  /// Subscribes `consumer` with `filter`; returns the subscription EPR
  /// (pointing at the producer's SubscriptionManager).
  /// `initial_lifetime_ms` < 0 means unbounded.
  soap::EndpointReference subscribe(const soap::EndpointReference& consumer,
                                    const Filter& filter,
                                    std::int64_t initial_lifetime_ms = -1,
                                    bool use_raw = false);

  /// GetCurrentMessage: the last message published on `topic` (pull-style
  /// catch-up for late subscribers). Throws SoapFault when the topic is
  /// unsupported or nothing was published yet.
  std::unique_ptr<xml::Element> get_current_message(const std::string& topic);
};

/// Manages one subscription: pause/resume are WSN operations; unsubscribe
/// and lifetime control come from the inherited WS-ResourceLifetime proxy
/// (destroy / set_termination_time).
class SubscriptionProxy : public wsrf::WsResourceProxy {
 public:
  using wsrf::WsResourceProxy::WsResourceProxy;

  void pause();
  void resume();
  /// Unsubscribing is destroying the subscription resource.
  void unsubscribe() { destroy(); }
};

}  // namespace gs::wsn
