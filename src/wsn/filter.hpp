// WS-Notification subscription filters.
//
// A subscribe request may carry up to three filter components, all of which
// must pass for a message to be delivered:
//   * TopicExpression            — against the message's topic;
//   * MessageContent (XPath)     — against the notification payload;
//   * ProducerProperties (XPath) — against the producer's current resource
//                                  properties document.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "xml/node.hpp"
#include "xml/xpath.hpp"
#include "wsn/topics.hpp"

namespace gs::wsn {

class Filter {
 public:
  Filter() = default;

  void set_topic(TopicExpression expr) { topic_ = std::move(expr); }
  void set_message_content(const std::string& xpath) {
    content_xpath_ = xpath;
    content_ = xml::XPathExpr::compile(xpath);
  }
  void set_producer_properties(const std::string& xpath) {
    producer_xpath_ = xpath;
    producer_ = xml::XPathExpr::compile(xpath);
  }

  const std::optional<TopicExpression>& topic() const noexcept { return topic_; }
  bool has_content_filter() const noexcept { return content_.has_value(); }
  bool has_producer_filter() const noexcept { return producer_.has_value(); }

  /// True when every present component accepts. `producer_properties` may
  /// be null when the producer exposes none (a producer-properties filter
  /// then rejects).
  bool accepts(const std::string& topic, const xml::Element& message,
               const xml::Element* producer_properties) const;

  /// Wire form: `<wrapper>` holding TopicExpression / MessageContent /
  /// ProducerProperties children.
  std::unique_ptr<xml::Element> to_xml(const xml::QName& wrapper) const;
  /// Parses the wire form; unknown children are ignored (lenient receive).
  static Filter from_xml(const xml::Element& el);

 private:
  std::optional<TopicExpression> topic_;
  std::optional<xml::XPathExpr> content_;
  std::optional<xml::XPathExpr> producer_;
  std::string content_xpath_;
  std::string producer_xpath_;
};

}  // namespace gs::wsn
