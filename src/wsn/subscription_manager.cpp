#include "wsn/subscription_manager.hpp"

#include "wsrf/base_faults.hpp"

namespace gs::wsn {

namespace {
xml::QName wsnt(const char* local) { return {soap::ns::kWsnBase, local}; }
}  // namespace

std::unique_ptr<xml::Element> subscription_to_xml(const Subscription& sub) {
  auto el = std::make_unique<xml::Element>(wsnt("Subscription"));
  el->append(sub.consumer.to_xml(wsnt("ConsumerReference")));
  el->append(sub.filter.to_xml(wsnt("Filter")));
  el->append_element(wsnt("Paused")).set_text(sub.paused ? "true" : "false");
  el->append_element(wsnt("UseRaw")).set_text(sub.use_raw ? "true" : "false");
  return el;
}

Subscription subscription_from_xml(const std::string& id, const xml::Element& el) {
  Subscription sub;
  sub.id = id;
  if (const xml::Element* c = el.child(wsnt("ConsumerReference"))) {
    sub.consumer = soap::EndpointReference::from_xml(*c);
  }
  if (const xml::Element* f = el.child(wsnt("Filter"))) {
    sub.filter = Filter::from_xml(*f);
  }
  if (const xml::Element* p = el.child(wsnt("Paused"))) {
    sub.paused = p->text() == "true";
  }
  if (const xml::Element* r = el.child(wsnt("UseRaw"))) {
    sub.use_raw = r->text() == "true";
  }
  return sub;
}

SubscriptionManagerService::SubscriptionManagerService(wsrf::ResourceHome& home,
                                                       std::string address)
    : wsrf::WsrfService("SubscriptionManager", home, wsrf::PropertySet{},
                        std::move(address)) {
  import_resource_properties();
  import_resource_lifetime();  // Destroy == unsubscribe; termination times work

  // Keep the live count in step with unsubscribes and expirations.
  home.on_destroyed([this](const std::string&) {
    count_.fetch_sub(1, std::memory_order_relaxed);
  });

  register_operation(actions::kPauseSubscription,
                     [this](container::RequestContext& ctx) {
                       std::string id = resolve_resource(ctx);
                       if (!set_paused(id, true)) {
                         wsrf::throw_base_fault(wsrf::FaultType::kResourceUnknown,
                                                "no subscription '" + id + "'");
                       }
                       soap::Envelope response = container::make_response(
                           ctx, actions::kPauseSubscription + "Response");
                       response.add_payload(wsnt("PauseSubscriptionResponse"));
                       return response;
                     });

  register_operation(actions::kResumeSubscription,
                     [this](container::RequestContext& ctx) {
                       std::string id = resolve_resource(ctx);
                       if (!set_paused(id, false)) {
                         wsrf::throw_base_fault(wsrf::FaultType::kResourceUnknown,
                                                "no subscription '" + id + "'");
                       }
                       soap::Envelope response = container::make_response(
                           ctx, actions::kResumeSubscription + "Response");
                       response.add_payload(wsnt("ResumeSubscriptionResponse"));
                       return response;
                     });
}

soap::EndpointReference SubscriptionManagerService::store(
    Subscription sub, common::TimeMs termination_time) {
  std::string id = home().create(subscription_to_xml(sub), termination_time);
  count_.fetch_add(1, std::memory_order_relaxed);
  return home().epr_for(id, address());
}

std::vector<Subscription> SubscriptionManagerService::subscriptions() const {
  std::vector<Subscription> out;
  // const_cast-free access: home() is non-const on the base; go through the
  // stored reference.
  auto& self = const_cast<SubscriptionManagerService&>(*this);
  for (const std::string& id : self.home().ids()) {
    auto state = self.home().try_load(id);
    if (state) out.push_back(subscription_from_xml(id, *state));
  }
  return out;
}

std::optional<Subscription> SubscriptionManagerService::find(
    const std::string& id) const {
  auto& self = const_cast<SubscriptionManagerService&>(*this);
  auto state = self.home().try_load(id);
  if (!state) return std::nullopt;
  return subscription_from_xml(id, *state);
}

std::size_t SubscriptionManagerService::recover() {
  home().recover();
  std::size_t live = home().ids().size();
  count_.store(live, std::memory_order_relaxed);
  return live;
}

bool SubscriptionManagerService::set_paused(const std::string& id, bool paused) {
  auto state = home().try_load(id);
  if (!state) return false;
  Subscription sub = subscription_from_xml(id, *state);
  sub.paused = paused;
  home().save(id, *subscription_to_xml(sub));
  return true;
}

}  // namespace gs::wsn
