#include "wsn/filter.hpp"

#include "soap/namespaces.hpp"

namespace gs::wsn {

namespace {
xml::QName wsnt(const char* local) { return {soap::ns::kWsnBase, local}; }
constexpr const char* kXPathDialect =
    "http://www.w3.org/TR/1999/REC-xpath-19991116";
}  // namespace

bool Filter::accepts(const std::string& topic, const xml::Element& message,
                     const xml::Element* producer_properties) const {
  if (topic_ && !topic_->matches(topic)) return false;
  if (content_ && !content_->matches(message)) return false;
  if (producer_) {
    if (!producer_properties) return false;
    if (!producer_->matches(*producer_properties)) return false;
  }
  return true;
}

std::unique_ptr<xml::Element> Filter::to_xml(const xml::QName& wrapper) const {
  auto el = std::make_unique<xml::Element>(wrapper);
  if (topic_) {
    xml::Element& t = el->append_element(wsnt("TopicExpression"));
    t.set_attr("Dialect", TopicExpression::dialect_uri(topic_->dialect()));
    t.set_text(topic_->text());
  }
  if (content_) {
    xml::Element& c = el->append_element(wsnt("MessageContent"));
    c.set_attr("Dialect", kXPathDialect);
    c.set_text(content_xpath_);
  }
  if (producer_) {
    xml::Element& p = el->append_element(wsnt("ProducerProperties"));
    p.set_attr("Dialect", kXPathDialect);
    p.set_text(producer_xpath_);
  }
  return el;
}

Filter Filter::from_xml(const xml::Element& el) {
  Filter out;
  if (const xml::Element* t = el.child(wsnt("TopicExpression"))) {
    TopicExpression::Dialect dialect = TopicExpression::dialect_from_uri(
        t->attr("Dialect").value_or(
            TopicExpression::dialect_uri(TopicExpression::Dialect::kConcrete)));
    out.set_topic(TopicExpression::parse(dialect, t->text()));
  }
  if (const xml::Element* c = el.child(wsnt("MessageContent"))) {
    out.set_message_content(c->text());
  }
  if (const xml::Element* p = el.child(wsnt("ProducerProperties"))) {
    out.set_producer_properties(p->text());
  }
  return out;
}

}  // namespace gs::wsn
