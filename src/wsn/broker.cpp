#include "wsn/broker.hpp"

#include "wsrf/base_faults.hpp"

namespace gs::wsn {

namespace {
xml::QName wsnt(const char* local) { return {soap::ns::kWsnBase, local}; }
xml::QName wsnbr(const char* local) { return {soap::ns::kWsnBroker, local}; }
}  // namespace

BrokerService::BrokerService(Config config, wsrf::ResourceHome& registrations,
                             TopicNamespace topics)
    : wsrf::WsrfService("NotificationBroker", registrations, wsrf::PropertySet{},
                        config.address),
      config_(config),
      producer_(NotificationProducer::Config{config.caller, config.address,
                                             config.manager, config.clock},
                std::move(topics)) {
  if (!config_.caller || !config_.manager) {
    throw std::invalid_argument("BrokerService needs a caller and a manager");
  }

  // Consumer-facing Subscribe.
  producer_.register_into(*this);
  producer_.on_subscribed([this] { recheck_demand(); });

  // Registration destruction (WS-ResourceLifetime on registration EPRs).
  import_resource_lifetime();

  // Publisher-facing Notify: re-publish to our subscribers.
  register_operation(actions::kNotify, [this](container::RequestContext& ctx) {
    handle_notify(ctx);
    soap::Envelope response =
        container::make_response(ctx, actions::kNotify + "Response");
    response.add_payload(wsnt("NotifyResponse"));
    return response;
  });

  register_operation(broker_actions::kRegisterPublisher,
                     [this](container::RequestContext& ctx) {
                       soap::Envelope response = container::make_response(
                           ctx, broker_actions::kRegisterPublisher + "Response");
                       handle_register(ctx, response);
                       return response;
                     });
}

void BrokerService::handle_notify(container::RequestContext& ctx) {
  const xml::Element& payload = ctx.payload();
  if (payload.name() != wsnt("Notify")) {
    throw soap::SoapFault("Sender", "broker expects wrapped Notify messages");
  }
  for (const xml::Element* message :
       payload.children_named(wsnt("NotificationMessage"))) {
    const xml::Element* topic = message->child(wsnt("Topic"));
    const xml::Element* body = message->child(wsnt("Message"));
    if (!topic || !body) continue;
    auto kids = body->child_elements();
    if (kids.empty()) continue;
    producer_.notify(topic->text(), *kids.front());
  }
}

void BrokerService::handle_register(container::RequestContext& ctx,
                                    soap::Envelope& response) {
  const xml::Element& payload = ctx.payload();
  const xml::Element* publisher_el = payload.child(wsnbr("PublisherReference"));
  if (!publisher_el) {
    throw soap::SoapFault("Sender", "RegisterPublisher needs a PublisherReference");
  }
  soap::EndpointReference publisher =
      soap::EndpointReference::from_xml(*publisher_el);

  std::vector<std::string> topics;
  for (const xml::Element* t : payload.children_named(wsnbr("Topic"))) {
    topics.push_back(t->text());
  }
  if (topics.empty()) {
    throw soap::SoapFault("Sender", "RegisterPublisher needs at least one Topic");
  }
  bool demand = false;
  if (const xml::Element* d = payload.child(wsnbr("Demand"))) {
    demand = d->text() == "true";
  }

  // Broker subscribes back to the publisher for the registered topics.
  // (One publisher-side subscription per topic keeps pause/resume
  // per-topic, which is what demand-based publishing requires.)
  container::ProxySecurity sec;  // broker-internal traffic is unsigned
  auto registration = std::make_unique<xml::Element>(wsnbr("Registration"));
  registration->append(publisher.to_xml(wsnbr("PublisherReference")));
  registration->append_element(wsnbr("Demand")).set_text(demand ? "true" : "false");

  for (const std::string& topic : topics) {
    NotificationProducerProxy proxy(*config_.caller, publisher, sec);
    Filter filter;
    filter.set_topic(
        TopicExpression::parse(TopicExpression::Dialect::kConcrete, topic));
    soap::EndpointReference consumer(config_.address);
    soap::EndpointReference sub_epr = proxy.subscribe(consumer, filter);

    bool active = producer_.has_active_subscriber(topic);
    if (demand && !active) {
      SubscriptionProxy sub(*config_.caller, sub_epr, sec);
      sub.pause();
    }
    xml::Element& entry = registration->append_element(wsnbr("TopicSubscription"));
    entry.append_element(wsnbr("Topic")).set_text(topic);
    entry.append(sub_epr.to_xml(wsnbr("SubscriptionEPR")));
    entry.append_element(wsnbr("PublisherPaused"))
        .set_text(demand && !active ? "true" : "false");
  }

  std::string id = home().create(std::move(registration));
  response.body().append(
      home().epr_for(id, address()).to_xml(wsnbr("RegistrationEPR")));
}

void BrokerService::recheck_demand() {
  container::ProxySecurity sec;
  for (const std::string& id : home().ids()) {
    auto state = home().try_load(id);
    if (!state) continue;
    const xml::Element* demand_el = state->child(wsnbr("Demand"));
    if (!demand_el || demand_el->text() != "true") continue;

    bool changed = false;
    for (const xml::Element* entry :
         state->children_named(wsnbr("TopicSubscription"))) {
      const xml::Element* topic_el = entry->child(wsnbr("Topic"));
      const xml::Element* sub_el = entry->child(wsnbr("SubscriptionEPR"));
      const xml::Element* paused_el = entry->child(wsnbr("PublisherPaused"));
      if (!topic_el || !sub_el || !paused_el) continue;

      bool paused = paused_el->text() == "true";
      bool want_active = producer_.has_active_subscriber(topic_el->text());
      if (want_active == paused) {
        // State flip needed: resume when demand appeared, pause when the
        // last consumer went away.
        SubscriptionProxy sub(*config_.caller,
                              soap::EndpointReference::from_xml(*sub_el), sec);
        if (want_active) {
          sub.resume();
        } else {
          sub.pause();
        }
        // Record the new state (the document is ours; mutate and save).
        const_cast<xml::Element*>(paused_el)
            ->set_text(want_active ? "false" : "true");
        changed = true;
      }
    }
    if (changed) home().save(id, *state);
  }
}

soap::EndpointReference BrokerProxy::register_publisher(
    const soap::EndpointReference& publisher_producer,
    const std::vector<std::string>& topics, bool demand_based) {
  auto request = std::make_unique<xml::Element>(wsnbr("RegisterPublisher"));
  request->append(publisher_producer.to_xml(wsnbr("PublisherReference")));
  for (const std::string& topic : topics) {
    request->append_element(wsnbr("Topic")).set_text(topic);
  }
  request->append_element(wsnbr("Demand"))
      .set_text(demand_based ? "true" : "false");

  soap::Envelope response =
      invoke(broker_actions::kRegisterPublisher, std::move(request));
  const xml::Element* epr = response.payload();
  if (!epr || epr->name() != wsnbr("RegistrationEPR")) {
    throw soap::SoapFault("Receiver", "malformed RegisterPublisher response");
  }
  return soap::EndpointReference::from_xml(*epr);
}

}  // namespace gs::wsn
