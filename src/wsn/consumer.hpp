// Notification consumer endpoint.
//
// The client-side sink that receives Notify messages — the counterpart of
// WSRF.NET's "custom HTTP server that clients include". It mounts on the
// virtual network (or the real HttpServer) and records everything received;
// tests and clients poll or block on `wait_for`.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/virtual_network.hpp"
#include "soap/addressing.hpp"
#include "xml/node.hpp"

namespace gs::wsn {

/// One received notification (wrapped form decoded; raw form keeps only
/// the payload — there is no topic to decode, which is the point the paper
/// makes about raw delivery).
struct ReceivedNotification {
  std::string topic;  // empty for raw delivery
  std::string producer_address;
  std::unique_ptr<xml::Element> payload;
  bool raw = false;
};

class NotificationConsumer final : public net::Endpoint {
 public:
  NotificationConsumer() = default;

  net::HttpResponse handle(const net::HttpRequest& request) override;

  /// Number received so far.
  size_t count() const;
  /// Snapshot of everything received (cloned).
  std::vector<ReceivedNotification> received() const;
  /// Blocks until at least `n` notifications arrived or `timeout_ms`
  /// passed; returns whether the target was reached.
  bool wait_for(size_t n, int timeout_ms) const;
  void clear();

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<ReceivedNotification> received_;
};

}  // namespace gs::wsn
