#include "wsn/topics.hpp"

#include <algorithm>

namespace gs::wsn {

std::vector<std::string> split_topic(const std::string& path) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    std::string segment = path.substr(start, slash - start);
    if (segment.empty()) throw TopicError("empty segment in topic '" + path + "'");
    out.push_back(std::move(segment));
    if (slash == path.size()) break;
    start = slash + 1;
  }
  if (out.empty()) throw TopicError("empty topic path");
  return out;
}

const char* TopicExpression::dialect_uri(Dialect dialect) {
  switch (dialect) {
    case Dialect::kSimple:
      return "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Simple";
    case Dialect::kConcrete:
      return "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Concrete";
    case Dialect::kFull:
      return "http://docs.oasis-open.org/wsn/t-1/TopicExpression/Full";
  }
  return "";
}

TopicExpression::Dialect TopicExpression::dialect_from_uri(const std::string& uri) {
  if (uri == dialect_uri(Dialect::kSimple)) return Dialect::kSimple;
  if (uri == dialect_uri(Dialect::kConcrete)) return Dialect::kConcrete;
  if (uri == dialect_uri(Dialect::kFull)) return Dialect::kFull;
  throw TopicError("unknown topic expression dialect: " + uri);
}

TopicExpression TopicExpression::parse(Dialect dialect, const std::string& text) {
  if (text.empty()) throw TopicError("empty topic expression");

  std::vector<std::string> segments;
  switch (dialect) {
    case Dialect::kSimple:
      if (text.find('/') != std::string::npos) {
        throw TopicError("simple dialect admits only root topic names: " + text);
      }
      if (text == "*") throw TopicError("wildcards need the full dialect");
      segments.push_back(text);
      break;
    case Dialect::kConcrete:
      segments = split_topic(text);
      for (const auto& s : segments) {
        if (s == "*") throw TopicError("wildcards need the full dialect");
      }
      break;
    case Dialect::kFull: {
      // Translate '//' (separator + any-depth + separator) into a "**"
      // segment, then split.
      std::string normalized;
      for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          normalized += "/**/";
          ++i;
        } else {
          normalized += text[i];
        }
      }
      if (normalized.starts_with("/")) normalized = normalized.substr(1);
      segments = split_topic(normalized);
      break;
    }
  }
  return TopicExpression(dialect, text, std::move(segments));
}

bool TopicExpression::match_segments(const std::vector<std::string>& pattern,
                                     size_t pi,
                                     const std::vector<std::string>& topic,
                                     size_t ti) {
  if (pi == pattern.size()) return ti == topic.size();
  if (pattern[pi] == "**") {
    // Any number of segments (including zero).
    for (size_t skip = ti; skip <= topic.size(); ++skip) {
      if (match_segments(pattern, pi + 1, topic, skip)) return true;
    }
    return false;
  }
  if (ti == topic.size()) return false;
  if (pattern[pi] != "*" && pattern[pi] != topic[ti]) return false;
  return match_segments(pattern, pi + 1, topic, ti + 1);
}

bool TopicExpression::matches(const std::string& concrete_topic) const {
  std::vector<std::string> topic = split_topic(concrete_topic);
  switch (dialect_) {
    case Dialect::kSimple:
      // A simple expression names a root topic; it matches that topic and
      // the whole subtree under it.
      return topic.front() == segments_.front();
    case Dialect::kConcrete:
      return segments_ == topic;
    case Dialect::kFull:
      return match_segments(segments_, 0, topic, 0);
  }
  return false;
}

void TopicNamespace::add(const std::string& topic_path) {
  std::vector<std::string> segments = split_topic(topic_path);
  std::string prefix;
  for (const auto& segment : segments) {
    prefix = prefix.empty() ? segment : prefix + "/" + segment;
    topics_.insert(prefix);
  }
}

bool TopicNamespace::contains(const std::string& topic_path) const {
  return topics_.contains(topic_path);
}

std::vector<std::string> TopicNamespace::topics() const {
  return {topics_.begin(), topics_.end()};
}

std::vector<std::string> TopicNamespace::expand(const TopicExpression& expr) const {
  std::vector<std::string> out;
  for (const auto& topic : topics_) {
    if (expr.matches(topic)) out.push_back(topic);
  }
  return out;
}

}  // namespace gs::wsn
