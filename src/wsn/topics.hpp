// WS-Topics: topic trees and the three topic-expression dialects.
//
// Topics are hierarchical paths ("job/status/completed"). The spec's three
// dialects are all supported:
//   * Simple   — a single root topic name, no path separators;
//   * Concrete — a full path naming exactly one topic;
//   * Full     — paths with wildcards: '*' matches exactly one path segment,
//                '//' (leading or interior) matches any number of segments.
#pragma once

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace gs::wsn {

class TopicError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed topic expression that can be matched against concrete topics.
class TopicExpression {
 public:
  enum class Dialect { kSimple, kConcrete, kFull };

  /// Validates `text` under `dialect` and compiles it. Throws TopicError on
  /// a malformed expression (e.g. wildcards in the concrete dialect).
  static TopicExpression parse(Dialect dialect, const std::string& text);

  /// Dialect URIs on the wire.
  static const char* dialect_uri(Dialect dialect);
  /// Parses a dialect URI; throws TopicError for unknown URIs.
  static Dialect dialect_from_uri(const std::string& uri);

  bool matches(const std::string& concrete_topic) const;

  const std::string& text() const noexcept { return text_; }
  Dialect dialect() const noexcept { return dialect_; }

 private:
  TopicExpression(Dialect dialect, std::string text,
                  std::vector<std::string> segments)
      : dialect_(dialect), text_(std::move(text)), segments_(std::move(segments)) {}

  static bool match_segments(const std::vector<std::string>& pattern, size_t pi,
                             const std::vector<std::string>& topic, size_t ti);

  Dialect dialect_;
  std::string text_;
  // Segment "**" encodes '//' (any depth); "*" one segment; else literal.
  std::vector<std::string> segments_;
};

/// The set of topics a notification producer supports (its topic space).
class TopicNamespace {
 public:
  /// Registers a concrete topic path; intermediate nodes become valid
  /// topics too ("job/status/completed" also admits "job" and
  /// "job/status").
  void add(const std::string& topic_path);

  bool contains(const std::string& topic_path) const;
  /// All registered topics (including intermediates), sorted.
  std::vector<std::string> topics() const;

  /// Concrete topics matching an expression.
  std::vector<std::string> expand(const TopicExpression& expr) const;

 private:
  std::set<std::string> topics_;
};

/// Splits a topic path on '/', rejecting empty segments.
std::vector<std::string> split_topic(const std::string& path);

}  // namespace gs::wsn
