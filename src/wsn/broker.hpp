// WS-BrokeredNotification: the notification broker.
//
// The broker stands between publishers and consumers: publishers register
// (RegisterPublisher), the broker subscribes back to them, receives their
// Notify traffic, and re-publishes to its own subscribers. With
// demand-based publishing the broker pauses its publisher-side
// subscription whenever no consumer subscription covers the registered
// topics, and resumes it when one appears — the spec behaviour the paper
// singles out as involving "as many as six separate Web services" and an
// order of magnitude more messages than anything else in the specs.
#pragma once

#include <memory>

#include "wsn/client.hpp"
#include "wsn/producer.hpp"
#include "wsn/subscription_manager.hpp"

namespace gs::wsn {

namespace broker_actions {
const std::string kRegisterPublisher =
    std::string(soap::ns::kWsnBroker) + "/RegisterPublisher";
}  // namespace broker_actions

/// The broker service. Its WSRF resource type is the publisher
/// registration (destroy a registration EPR to deregister); its consumer
/// subscriptions live in the SubscriptionManagerService it is wired to.
class BrokerService : public wsrf::WsrfService {
 public:
  struct Config {
    /// Caller for broker -> publisher control traffic (subscribe, pause,
    /// resume) and broker -> consumer delivery.
    net::SoapCaller* caller = nullptr;
    /// The broker's own address (what publishers deliver to).
    std::string address;
    /// Subscription manager for the broker's consumers.
    SubscriptionManagerService* manager = nullptr;
    const common::Clock* clock = &common::RealClock::instance();
  };

  BrokerService(Config config, wsrf::ResourceHome& registrations,
                TopicNamespace topics);

  /// The broker's outbound producer (tests inspect demand state here).
  NotificationProducer& producer() noexcept { return producer_; }

  /// Re-evaluates demand for every demand-based registration, pausing or
  /// resuming publisher-side subscriptions as needed. Called automatically
  /// after Subscribe; call manually after destroying consumer
  /// subscriptions (the spec leaves that signal to the implementation —
  /// one of the paper's complexity complaints).
  void recheck_demand();

 private:
  void handle_notify(container::RequestContext& ctx);
  void handle_register(container::RequestContext& ctx, soap::Envelope& response);

  Config config_;
  NotificationProducer producer_;
};

/// Client proxy for publisher registration.
class BrokerProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  /// Registers a publisher. `publisher_producer` is the EPR of the
  /// publisher's NotificationProducer service (the broker subscribes to it
  /// there). Returns the registration EPR (destroy it to deregister).
  soap::EndpointReference register_publisher(
      const soap::EndpointReference& publisher_producer,
      const std::vector<std::string>& topics, bool demand_based);
};

}  // namespace gs::wsn
