#include "gridbox/common.hpp"

namespace gs::gridbox {

xml::QName on_behalf_of_qname() { return gb("OnBehalfOf"); }

std::string resolve_caller(const container::RequestContext& ctx) {
  if (ctx.identity) return ctx.identity->subject_dn;
  if (auto dn = ctx.info.reference_header(on_behalf_of_qname())) return *dn;
  throw soap::SoapFault("Sender",
                        "cannot establish caller identity: message is neither "
                        "signed nor carries an OnBehalfOf header");
}

}  // namespace gs::gridbox
