#include "gridbox/common.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>

#include "common/encoding.hpp"
#include "security/sha256.hpp"

namespace gs::gridbox {

xml::QName gb(const char* local) { return {soap::ns::kGridBox, local}; }

xml::QName on_behalf_of_qname() { return gb("OnBehalfOf"); }

std::string resolve_caller(const container::RequestContext& ctx) {
  if (ctx.identity) return ctx.identity->subject_dn;
  if (auto dn = ctx.info.reference_header(on_behalf_of_qname())) return *dn;
  throw soap::SoapFault("Sender",
                        "cannot establish caller identity: message is neither "
                        "signed nor carries an OnBehalfOf header");
}

// ---------------------------------------------------------------------------
// JobRunner
// ---------------------------------------------------------------------------

namespace {

// Parses "sim:duration=<ms>,exit=<code>".
std::pair<common::TimeMs, int> parse_command(const std::string& command) {
  common::TimeMs duration = 0;
  int exit_code = 0;
  if (command.starts_with("sim:")) {
    std::string rest = command.substr(4);
    size_t pos = 0;
    while (pos < rest.size()) {
      size_t comma = rest.find(',', pos);
      if (comma == std::string::npos) comma = rest.size();
      std::string kv = rest.substr(pos, comma - pos);
      size_t eq = kv.find('=');
      if (eq != std::string::npos) {
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        try {
          if (key == "duration") duration = std::stoll(value);
          if (key == "exit") exit_code = std::stoi(value);
        } catch (const std::exception&) {
          // Malformed pieces keep defaults; the job still runs.
        }
      }
      pos = comma + 1;
    }
  }
  return {duration, exit_code};
}

}  // namespace

JobRunner::~JobRunner() {
  // Reap any real children still running so they do not outlive the grid.
  std::lock_guard lock(mu_);
  for (auto& [pid, job] : jobs_) {
    if (job.os_pid >= 0 && job.status.state == State::kRunning) {
      ::kill(job.os_pid, SIGKILL);
      ::waitpid(job.os_pid, nullptr, 0);
    }
  }
}

std::string JobRunner::spawn(const std::string& command,
                             const std::string& working_dir,
                             ExitCallback on_exit) {
  Job job;
  job.command = command;
  job.working_dir = working_dir;
  job.status.state = State::kRunning;
  job.status.started = clock_.now();
  job.on_exit = std::move(on_exit);

  if (command.starts_with("exec:")) {
    std::string shell_command = command.substr(5);
    pid_t child = ::fork();
    if (child < 0) {
      throw soap::SoapFault("Receiver", "cannot fork job process");
    }
    if (child == 0) {
      if (!working_dir.empty() && ::chdir(working_dir.c_str()) != 0) {
        ::_exit(127);
      }
      ::execl("/bin/sh", "sh", "-c", shell_command.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    job.os_pid = child;
    job.deadline = 0;
    job.exit_code = 0;
  } else {
    auto [duration, exit_code] = parse_command(command);
    job.deadline = clock_.now() + duration;
    job.exit_code = exit_code;
  }

  std::lock_guard lock(mu_);
  std::string pid = "pid-" + std::to_string(next_pid_++);
  jobs_[pid] = std::move(job);
  return pid;
}

std::optional<JobRunner::Status> JobRunner::status(const std::string& pid) {
  poll();
  std::lock_guard lock(mu_);
  auto it = jobs_.find(pid);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.status;
}

bool JobRunner::kill(const std::string& pid) {
  poll();
  std::lock_guard lock(mu_);
  auto it = jobs_.find(pid);
  if (it == jobs_.end() || it->second.status.state != State::kRunning) {
    return false;
  }
  if (it->second.os_pid >= 0) {
    ::kill(it->second.os_pid, SIGKILL);
    ::waitpid(it->second.os_pid, nullptr, 0);
    it->second.os_pid = -1;
  }
  it->second.status.state = State::kKilled;
  it->second.status.ended = clock_.now();
  it->second.status.exit_code = -9;
  return true;
}

bool JobRunner::reap(const std::string& pid) {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(pid);
  if (it == jobs_.end() || it->second.status.state == State::kRunning) {
    return false;
  }
  jobs_.erase(it);
  return true;
}

size_t JobRunner::poll() {
  common::TimeMs now = clock_.now();
  std::vector<std::pair<std::string, Status>> callbacks;
  {
    std::lock_guard lock(mu_);
    for (auto& [pid, job] : jobs_) {
      if (job.status.state != State::kRunning) continue;
      if (job.os_pid >= 0) {
        // Real process: non-blocking reap.
        int wstatus = 0;
        pid_t reaped = ::waitpid(job.os_pid, &wstatus, WNOHANG);
        if (reaped == job.os_pid) {
          job.status.state = State::kExited;
          job.status.exit_code =
              WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
          job.status.ended = now;
          job.os_pid = -1;
          if (job.on_exit) callbacks.emplace_back(pid, job.status);
        }
      } else if (now >= job.deadline) {
        job.status.state = State::kExited;
        job.status.exit_code = job.exit_code;
        job.status.ended = now;
        if (job.on_exit) callbacks.emplace_back(pid, job.status);
      }
    }
  }
  for (auto& [pid, status] : callbacks) {
    ExitCallback cb;
    {
      std::lock_guard lock(mu_);
      auto it = jobs_.find(pid);
      if (it != jobs_.end()) cb = it->second.on_exit;
    }
    if (cb) cb(pid, status);
  }
  return callbacks.size();
}

size_t JobRunner::running_count() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [pid, job] : jobs_) {
    if (job.status.state == State::kRunning) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// FileStore
// ---------------------------------------------------------------------------

FileStore::FileStore(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path FileStore::safe_path(const std::string& directory,
                                           const std::string& filename) const {
  auto reject = [](const std::string& segment) {
    if (segment.empty() || segment == "." || segment == ".." ||
        segment.find('/') != std::string::npos ||
        segment.find('\\') != std::string::npos) {
      throw soap::SoapFault("Sender", "illegal path segment '" + segment + "'");
    }
  };
  reject(directory);
  if (filename.empty()) return root_ / directory;
  reject(filename);
  return root_ / directory / filename;
}

void FileStore::ensure_directory(const std::string& directory) {
  std::filesystem::create_directories(safe_path(directory));
}

bool FileStore::directory_exists(const std::string& directory) const {
  std::error_code ec;
  return std::filesystem::is_directory(safe_path(directory), ec);
}

bool FileStore::remove_directory(const std::string& directory) {
  std::error_code ec;
  return std::filesystem::remove_all(safe_path(directory), ec) > 0 && !ec;
}

void FileStore::put(const std::string& directory, const std::string& filename,
                    const std::string& content) {
  ensure_directory(directory);
  std::ofstream out(safe_path(directory, filename),
                    std::ios::binary | std::ios::trunc);
  if (!out) throw soap::SoapFault("Receiver", "cannot write " + filename);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

std::optional<std::string> FileStore::get(const std::string& directory,
                                          const std::string& filename) const {
  std::ifstream in(safe_path(directory, filename), std::ios::binary);
  if (!in) return std::nullopt;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>{});
}

bool FileStore::remove(const std::string& directory, const std::string& filename) {
  std::error_code ec;
  return std::filesystem::remove(safe_path(directory, filename), ec) && !ec;
}

std::vector<std::string> FileStore::list(const std::string& directory) const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(safe_path(directory), ec)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::filesystem::path FileStore::path_of(const std::string& directory) const {
  return safe_path(directory);
}

std::string FileStore::hash_dn(const std::string& dn) {
  security::Digest256 d = security::Sha256::digest(dn);
  // 16 hex chars is plenty for a directory name.
  return common::hex_encode(std::span<const std::uint8_t>(d.data(), 8));
}

}  // namespace gs::gridbox
