#include "gridbox/clients.hpp"

#include "common/encoding.hpp"
#include "common/parse.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gs::gridbox {

namespace {

/// Exit codes come back from a remote job document; a garbled one means a
/// broken or hostile execution service, which the client reports as "no
/// exit code yet" rather than throwing out of a status poll.
std::optional<int> parse_exit_code(const std::string& text) {
  auto code = common::parse_number<int>(text);
  if (!code) {
    telemetry::MetricsRegistry::global()
        .counter("gridbox.malformed_exit_codes")
        .add(1);
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "gridbox.client",
        "ignoring malformed job ExitCode", {{"exit_code", text}});
    return std::nullopt;
  }
  return code;
}

}  // namespace

soap::EndpointReference with_identity(soap::EndpointReference epr,
                                      const ClientIdentity& id) {
  epr.add_reference_property(on_behalf_of_qname(), id.dn);
  return epr;
}

namespace {

/// Minimal operation proxy shared by the concrete clients.
class OpProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;
  soap::Envelope run(const std::string& action,
                     std::unique_ptr<xml::Element> payload) {
    return invoke(action, std::move(payload));
  }
  soap::Envelope run(const std::string& action) { return invoke(action); }
};

soap::Envelope call_op(net::SoapCaller& caller, const ClientIdentity& id,
                       soap::EndpointReference target, const std::string& action,
                       std::unique_ptr<xml::Element> payload) {
  OpProxy proxy(caller, with_identity(std::move(target), id), id.security);
  return payload ? proxy.run(action, std::move(payload)) : proxy.run(action);
}

}  // namespace

// ---------------------------------------------------------------------------
// WSRF admin
// ---------------------------------------------------------------------------

WsrfAdminClient::WsrfAdminClient(net::SoapCaller& caller,
                                 const WsrfGridDeployment& grid,
                                 ClientIdentity identity)
    : caller_(caller),
      account_address_(grid.account_address()),
      allocation_address_(grid.allocation_address()),
      identity_(std::move(identity)) {}

void WsrfAdminClient::add_account(const std::string& dn,
                                  const std::vector<std::string>& privileges) {
  auto req = std::make_unique<xml::Element>(gb("AddAccount"));
  req->append_element(gb("DN")).set_text(dn);
  for (const auto& p : privileges) {
    req->append_element(gb("Privilege")).set_text(p);
  }
  call_op(caller_, identity_, soap::EndpointReference(account_address_),
          wsrf_actions::kAddAccount, std::move(req));
}

void WsrfAdminClient::remove_account(const std::string& dn) {
  auto req = std::make_unique<xml::Element>(gb("RemoveAccount"));
  req->append_element(gb("DN")).set_text(dn);
  call_op(caller_, identity_, soap::EndpointReference(account_address_),
          wsrf_actions::kRemoveAccount, std::move(req));
}

void WsrfAdminClient::register_site(const SiteInfo& site) {
  auto req = site.to_xml();
  req->set_name(gb("RegisterSite"));
  call_op(caller_, identity_, soap::EndpointReference(allocation_address_),
          wsrf_actions::kRegisterSite, std::move(req));
}

void WsrfAdminClient::unregister_site(const std::string& host) {
  auto req = std::make_unique<xml::Element>(gb("UnregisterSite"));
  req->append_element(gb("Host")).set_text(host);
  call_op(caller_, identity_, soap::EndpointReference(allocation_address_),
          wsrf_actions::kUnregisterSite, std::move(req));
}

// ---------------------------------------------------------------------------
// WSRF user
// ---------------------------------------------------------------------------

WsrfUserClient::WsrfUserClient(net::SoapCaller& caller,
                               const WsrfGridDeployment& grid,
                               ClientIdentity identity)
    : caller_(caller),
      allocation_address_(grid.allocation_address()),
      identity_(std::move(identity)) {}

std::vector<SiteInfo> WsrfUserClient::get_available_resources(
    const std::string& application) {
  auto req = std::make_unique<xml::Element>(gb("GetAvailableResources"));
  req->append_element(gb("Application")).set_text(application);
  soap::Envelope r =
      call_op(caller_, identity_, soap::EndpointReference(allocation_address_),
              wsrf_actions::kGetAvailableResources, std::move(req));
  std::vector<SiteInfo> out;
  if (const xml::Element* p = r.payload()) {
    for (const xml::Element* site : p->children_named(gb("Site"))) {
      out.push_back(SiteInfo::from_xml(*site));
    }
  }
  return out;
}

soap::EndpointReference WsrfUserClient::make_reservation(const std::string& host) {
  // The reservation service lives beside the allocation service.
  std::string address = allocation_address_;
  address.replace(address.rfind("/ResourceAllocation"),
                  std::string::npos, "/Reservation");
  auto req = std::make_unique<xml::Element>(gb("CreateReservation"));
  req->append_element(gb("Host")).set_text(host);
  soap::Envelope r = call_op(caller_, identity_, soap::EndpointReference(address),
                             wsrf_actions::kCreateReservation, std::move(req));
  const xml::Element* epr = r.payload();
  if (!epr) throw soap::SoapFault("Receiver", "no reservation EPR returned");
  return soap::EndpointReference::from_xml(*epr);
}

soap::EndpointReference WsrfUserClient::create_directory(
    const std::string& data_address) {
  soap::Envelope r = call_op(caller_, identity_,
                             soap::EndpointReference(data_address),
                             wsrf_actions::kCreateDirectory, nullptr);
  const xml::Element* epr = r.payload();
  if (!epr) throw soap::SoapFault("Receiver", "no directory EPR returned");
  return soap::EndpointReference::from_xml(*epr);
}

void WsrfUserClient::upload(const soap::EndpointReference& directory,
                            const std::string& name, const std::string& content) {
  auto req = std::make_unique<xml::Element>(gb("Upload"));
  req->append_element(gb("FileName")).set_text(name);
  req->append_element(gb("Content"))
      .set_text(common::base64_encode(common::as_bytes(content)));
  call_op(caller_, identity_, directory, wsrf_actions::kUpload, std::move(req));
}

std::vector<std::string> WsrfUserClient::list_files(
    const soap::EndpointReference& directory) {
  wsrf::WsResourceProxy proxy(caller_, with_identity(directory, identity_),
                              identity_.security);
  std::vector<std::string> out;
  for (const auto& el : proxy.get_property(gb("Files"))) {
    out.push_back(el->text());
  }
  return out;
}

std::string WsrfUserClient::download(const soap::EndpointReference& directory,
                                     const std::string& name) {
  auto req = std::make_unique<xml::Element>(gb("Download"));
  req->append_element(gb("FileName")).set_text(name);
  soap::Envelope r =
      call_op(caller_, identity_, directory, wsrf_actions::kDownload,
              std::move(req));
  const xml::Element* p = r.payload();
  const xml::Element* content = p ? p->child(gb("Content")) : nullptr;
  if (!content) throw soap::SoapFault("Receiver", "no Content in download");
  auto bytes = common::base64_decode(content->text());
  if (!bytes) throw soap::SoapFault("Receiver", "Content is not valid base64");
  return std::string(bytes->begin(), bytes->end());
}

void WsrfUserClient::delete_file(const soap::EndpointReference& directory,
                                 const std::string& name) {
  auto req = std::make_unique<xml::Element>(gb("DeleteFile"));
  req->append_element(gb("FileName")).set_text(name);
  call_op(caller_, identity_, directory, wsrf_actions::kDeleteFile,
          std::move(req));
}

soap::EndpointReference WsrfUserClient::start_job(
    const std::string& exec_address, const std::string& command,
    const soap::EndpointReference& reservation,
    const soap::EndpointReference& directory) {
  auto req = std::make_unique<xml::Element>(gb("StartJob"));
  req->append_element(gb("Command")).set_text(command);
  req->append(reservation.to_xml(gb("ReservationEPR")));
  if (!directory.empty()) req->append(directory.to_xml(gb("DirectoryEPR")));
  soap::Envelope r =
      call_op(caller_, identity_, soap::EndpointReference(exec_address),
              wsrf_actions::kStartJob, std::move(req));
  const xml::Element* epr = r.payload();
  if (!epr) throw soap::SoapFault("Receiver", "no job EPR returned");
  return soap::EndpointReference::from_xml(*epr);
}

std::string WsrfUserClient::job_status(const soap::EndpointReference& job) {
  wsrf::WsResourceProxy proxy(caller_, with_identity(job, identity_),
                              identity_.security);
  return proxy.get_property_text(gb("Status"));
}

std::optional<int> WsrfUserClient::job_exit_code(
    const soap::EndpointReference& job) {
  wsrf::WsResourceProxy proxy(caller_, with_identity(job, identity_),
                              identity_.security);
  auto values = proxy.get_property(gb("ExitCode"));
  if (values.empty()) return std::nullopt;
  return parse_exit_code(values.front()->text());
}

wsn::SubscriptionProxy WsrfUserClient::subscribe_completion(
    const std::string& exec_address, const soap::EndpointReference& consumer) {
  wsn::NotificationProducerProxy producer(
      caller_,
      with_identity(soap::EndpointReference(exec_address), identity_),
      identity_.security);
  wsn::Filter filter;
  filter.set_topic(wsn::TopicExpression::parse(
      wsn::TopicExpression::Dialect::kConcrete, kJobCompletedTopic));
  soap::EndpointReference sub = producer.subscribe(consumer, filter);
  return wsn::SubscriptionProxy(caller_, with_identity(sub, identity_),
                                identity_.security);
}

void WsrfUserClient::destroy(const soap::EndpointReference& resource) {
  wsrf::WsResourceProxy proxy(caller_, with_identity(resource, identity_),
                              identity_.security);
  proxy.destroy();
}

// ---------------------------------------------------------------------------
// WST admin
// ---------------------------------------------------------------------------

WstAdminClient::WstAdminClient(net::SoapCaller& caller,
                               const WstGridDeployment& grid,
                               ClientIdentity identity)
    : caller_(caller),
      account_address_(grid.account_address()),
      allocation_address_(grid.allocation_address()),
      identity_(std::move(identity)) {}

void WstAdminClient::add_account(const std::string& dn,
                                 const std::vector<std::string>& privileges) {
  wst::TransferProxy proxy(
      caller_, with_identity(soap::EndpointReference(account_address_), identity_),
      identity_.security);
  auto doc = std::make_unique<xml::Element>(gb("Account"));
  doc->append_element(gb("DN")).set_text(dn);
  for (const auto& p : privileges) {
    doc->append_element(gb("Privilege")).set_text(p);
  }
  proxy.create(std::move(doc));
}

void WstAdminClient::remove_account(const std::string& dn) {
  soap::EndpointReference epr(account_address_);
  epr.add_reference_property(wst::transfer_id_qname(), dn);
  wst::TransferProxy proxy(caller_, with_identity(std::move(epr), identity_),
                           identity_.security);
  proxy.remove();
}

void WstAdminClient::register_site(const SiteInfo& site) {
  wst::TransferProxy proxy(
      caller_,
      with_identity(soap::EndpointReference(allocation_address_), identity_),
      identity_.security);
  proxy.create(site.to_xml());
}

void WstAdminClient::unregister_site(const std::string& host) {
  soap::EndpointReference epr(allocation_address_);
  epr.add_reference_property(wst::transfer_id_qname(), host);
  wst::TransferProxy proxy(caller_, with_identity(std::move(epr), identity_),
                           identity_.security);
  proxy.remove();
}

// ---------------------------------------------------------------------------
// WST user
// ---------------------------------------------------------------------------

WstUserClient::WstUserClient(net::SoapCaller& caller,
                             const WstGridDeployment& grid,
                             ClientIdentity identity)
    : caller_(caller),
      allocation_address_(grid.allocation_address()),
      identity_(std::move(identity)) {}

std::vector<SiteInfo> WstUserClient::get_available_resources(
    const std::string& application) {
  // Mode '1': the id is "1<application>" — client-constructed,
  // service-specific EPR content.
  soap::EndpointReference epr(allocation_address_);
  epr.add_reference_property(wst::transfer_id_qname(),
                             std::string(1, kModeAvailable) + application);
  wst::TransferProxy proxy(caller_, with_identity(std::move(epr), identity_),
                           identity_.security);
  std::unique_ptr<xml::Element> doc = proxy.get();
  std::vector<SiteInfo> out;
  for (const xml::Element* site : doc->children_named(gb("Site"))) {
    out.push_back(SiteInfo::from_xml(*site));
  }
  return out;
}

void WstUserClient::make_reservation(const std::string& host) {
  soap::EndpointReference epr(allocation_address_);
  epr.add_reference_property(wst::transfer_id_qname(),
                             std::string(1, kModeReserve) + host);
  wst::TransferProxy proxy(caller_, with_identity(std::move(epr), identity_),
                           identity_.security);
  proxy.put(std::make_unique<xml::Element>(gb("Reserve")));
}

void WstUserClient::unreserve(const std::string& host) {
  soap::EndpointReference epr(allocation_address_);
  epr.add_reference_property(wst::transfer_id_qname(),
                             std::string(1, kModeUnreserve) + host);
  wst::TransferProxy proxy(caller_, with_identity(std::move(epr), identity_),
                           identity_.security);
  proxy.put(std::make_unique<xml::Element>(gb("Unreserve")));
}

soap::EndpointReference WstUserClient::file_epr(const std::string& data_address,
                                                const std::string& id) const {
  soap::EndpointReference epr(data_address);
  epr.add_reference_property(wst::transfer_id_qname(), id);
  return epr;
}

soap::EndpointReference WstUserClient::upload(const std::string& data_address,
                                              const std::string& name,
                                              const std::string& content) {
  wst::TransferProxy proxy(
      caller_, with_identity(soap::EndpointReference(data_address), identity_),
      identity_.security);
  auto doc = std::make_unique<xml::Element>(gb("File"));
  doc->set_attr("name", name);
  doc->append_element(gb("Content"))
      .set_text(common::base64_encode(common::as_bytes(content)));
  return proxy.create(std::move(doc)).resource;
}

std::vector<std::string> WstUserClient::list_files(
    const std::string& data_address) {
  // Listing = Get on an id ending with "/".
  wst::TransferProxy proxy(
      caller_,
      with_identity(file_epr(data_address, identity_.dn + "/"), identity_),
      identity_.security);
  std::unique_ptr<xml::Element> listing = proxy.get();
  std::vector<std::string> out;
  for (const xml::Element* f : listing->children_named(gb("File"))) {
    out.push_back(f->attr("name").value_or(""));
  }
  return out;
}

std::string WstUserClient::download(const std::string& data_address,
                                    const std::string& name) {
  wst::TransferProxy proxy(
      caller_,
      with_identity(file_epr(data_address, identity_.dn + "/" + name), identity_),
      identity_.security);
  std::unique_ptr<xml::Element> doc = proxy.get();
  const xml::Element* content = doc->child(gb("Content"));
  if (!content) throw soap::SoapFault("Receiver", "no Content in file document");
  auto bytes = common::base64_decode(content->text());
  if (!bytes) throw soap::SoapFault("Receiver", "Content is not valid base64");
  return std::string(bytes->begin(), bytes->end());
}

void WstUserClient::delete_file(const std::string& data_address,
                                const std::string& name) {
  wst::TransferProxy proxy(
      caller_,
      with_identity(file_epr(data_address, identity_.dn + "/" + name), identity_),
      identity_.security);
  proxy.remove();
}

soap::EndpointReference WstUserClient::start_job(const std::string& exec_address,
                                                 const std::string& command) {
  wst::TransferProxy proxy(
      caller_, with_identity(soap::EndpointReference(exec_address), identity_),
      identity_.security);
  auto doc = std::make_unique<xml::Element>(gb("Job"));
  doc->append_element(gb("Command")).set_text(command);
  return proxy.create(std::move(doc)).resource;
}

std::string WstUserClient::job_status(const soap::EndpointReference& job) {
  wst::TransferProxy proxy(caller_, with_identity(job, identity_),
                           identity_.security);
  std::unique_ptr<xml::Element> doc = proxy.get();
  const xml::Element* status = doc->child(gb("Status"));
  return status ? status->text() : "unknown";
}

std::optional<int> WstUserClient::job_exit_code(
    const soap::EndpointReference& job) {
  wst::TransferProxy proxy(caller_, with_identity(job, identity_),
                           identity_.security);
  std::unique_ptr<xml::Element> doc = proxy.get();
  const xml::Element* code = doc->child(gb("ExitCode"));
  if (!code) return std::nullopt;
  return parse_exit_code(code->text());
}

wse::EventSourceProxy::SubscriptionHandle WstUserClient::subscribe_completion(
    const std::string& event_source_address,
    const soap::EndpointReference& notify_to) {
  wse::EventSourceProxy source(
      caller_,
      with_identity(soap::EndpointReference(event_source_address), identity_),
      identity_.security);
  return source.subscribe(notify_to, wse::FilterDialect::kTopic,
                          kJobCompletedTopic);
}

void WstUserClient::remove(const soap::EndpointReference& resource) {
  wst::TransferProxy proxy(caller_, with_identity(resource, identity_),
                           identity_.security);
  proxy.remove();
}

}  // namespace gs::gridbox
