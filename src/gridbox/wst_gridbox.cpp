#include "gridbox/wst_gridbox.hpp"

#include "common/uuid.hpp"
#include "wst/client.hpp"

namespace gs::gridbox {
namespace {

// Proxy used by services to probe the unified allocation service for a
// reservation holder ("This mode is used by the Data service and the
// Execution service to make sure that the user ... has a reservation").
std::string reservation_holder(net::SoapCaller& caller,
                               const container::ProxySecurity& security,
                               const std::string& allocation_address,
                               const std::string& host) {
  soap::EndpointReference epr(allocation_address);
  epr.add_reference_property(wst::transfer_id_qname(), host);
  wst::TransferProxy proxy(caller, epr, security);
  std::unique_ptr<xml::Element> info = proxy.get();
  const xml::Element* owner = info->child(gb("Owner"));
  return owner ? owner->text() : "none";
}

std::string account_privileges_or_fault(net::SoapCaller& caller,
                                        const container::ProxySecurity& security,
                                        const std::string& account_address,
                                        const std::string& dn) {
  soap::EndpointReference epr(account_address);
  epr.add_reference_property(wst::transfer_id_qname(), dn);
  wst::TransferProxy proxy(caller, epr, security);
  std::unique_ptr<xml::Element> doc = proxy.get();  // faults when unknown
  std::string out;
  for (const xml::Element* p : doc->children_named(gb("Privilege"))) {
    if (!out.empty()) out += ",";
    out += p->text();
  }
  return out;
}

}  // namespace

struct WstGridDeployment::Impl {
  Params params;
  xmldb::XmlDatabase central_db;
  container::Container central;
  AccountBook accounts;
  SiteDirectory sites;
  std::unique_ptr<wst::TransferService> account;
  std::unique_ptr<wst::TransferService> allocation;

  Impl(Params p)
      : params(std::move(p)),
        central_db(std::move(params.backend), {.write_through_cache = false}),
        central(params.central_container),
        accounts(central_db),
        sites(central_db) {
    make_account();
    make_allocation();
    central.deploy("/Account", *account);
    central.deploy("/ResourceAllocation", *allocation);
  }

  void make_account() {
    wst::TransferService::Hooks hooks;
    // Create: admin stores an account; the resource id IS the user's DN
    // ("the EPR containing the X509 DN of the user").
    hooks.on_create = [this](const xml::Element& representation,
                             container::RequestContext& ctx) {
      require_admin(ctx);
      const xml::Element* dn = representation.child(gb("DN"));
      if (!dn) throw soap::SoapFault("Sender", "account document needs a DN");
      return std::make_pair(dn->text(), representation.clone_element());
    };
    hooks.on_delete = [this](const std::string& id,
                             container::RequestContext& ctx) {
      require_admin(ctx);
      return accounts.remove(id);
    };
    account = std::make_unique<wst::TransferService>(
        "Account", central_db, "accounts", params.central_base + "/Account",
        std::move(hooks));
  }

  void make_allocation() {
    wst::TransferService::Hooks hooks;
    // Create: a new computing site, id = host.
    hooks.on_create = [this](const xml::Element& representation,
                             container::RequestContext& ctx) {
      require_admin(ctx);
      const xml::Element* host = representation.child(gb("Host"));
      if (!host) throw soap::SoapFault("Sender", "site document needs a Host");
      return std::make_pair(host->text(), representation.clone_element());
    };
    hooks.on_delete = [this](const std::string& id,
                             container::RequestContext& ctx) {
      require_admin(ctx);
      return sites.remove(id);
    };
    // Get: two modes on the id's first character.
    hooks.on_get = [this](const std::string& id, container::RequestContext& ctx)
        -> std::unique_ptr<xml::Element> {
      if (!id.empty() && id[0] == kModeAvailable) {
        // "1<application>": all unreserved sites offering the application.
        // Outcall: grid clients must hold a VO account to browse resources
        // (Get on the account service faults for unknown DNs).
        account_privileges_or_fault(*params.outcall_caller,
                                    params.outcall_security,
                                    params.central_base + "/Account",
                                    resolve_caller(ctx));
        std::string app = id.substr(1);
        auto out = std::make_unique<xml::Element>(gb("AvailableResources"));
        for (auto& site : sites.available(
                 app, [](const std::string&, const xml::Element& doc) {
                   return SiteDirectory::inline_reserved(doc);
                 })) {
          out->append(std::move(site));
        }
        return out;
      }
      // Otherwise: who has a reservation on this site?
      auto site = sites.load(id);
      if (!site) return nullptr;
      auto info = std::make_unique<xml::Element>(gb("ReservationInfo"));
      std::string holder = SiteDirectory::inline_holder(*site);
      info->append_element(gb("Owner"))
          .set_text(holder.empty() ? "none" : holder);
      if (const xml::Element* until = site->child(gb("ReservedUntil"))) {
        info->append_element(gb("Until")).set_text(until->text());
      }
      return info;
    };
    // Put: three modes on the id's initial symbol.
    hooks.on_put = [this](const std::string& id, const xml::Element& replacement,
                          container::RequestContext& ctx)
        -> std::unique_ptr<xml::Element> {
      if (id.empty()) throw soap::SoapFault("Sender", "empty allocation id");
      char mode = id[0];
      std::string host = id.substr(1);
      if (!sites.load(host)) {
        throw soap::SoapFault("Sender", "unknown site '" + host + "'");
      }
      std::string caller_dn = resolve_caller(ctx);

      switch (mode) {
        case kModeReserve: {
          // Outcall: only VO members may reserve (Get on the account
          // service faults for unknown DNs).
          account_privileges_or_fault(*params.outcall_caller,
                                      params.outcall_security,
                                      params.central_base + "/Account",
                                      caller_dn);
          sites.reserve(host, caller_dn,
                        std::to_string(params.central_container.clock->now() +
                                       params.reservation_ttl_ms));
          break;
        }
        case kModeUnreserve:
          sites.unreserve(host, caller_dn);
          break;
        case kModeRetime: {
          const xml::Element* until = replacement.child(gb("Until"));
          sites.retime(host, caller_dn,
                       until ? std::optional<std::string>(until->text())
                             : std::nullopt);
          break;
        }
        default:
          throw soap::SoapFault("Sender",
                                std::string("unknown Put mode '") + mode + "'");
      }
      return nullptr;
    };
    allocation = std::make_unique<wst::TransferService>(
        "ResourceAllocation", central_db, "sites",
        params.central_base + "/ResourceAllocation", std::move(hooks));
  }

  void require_admin(const container::RequestContext& ctx) {
    std::string caller_dn = resolve_caller(ctx);
    if (caller_dn != params.admin_dn) {
      throw soap::SoapFault("Sender", "operation is admin-only");
    }
  }

  // --- hosts -----------------------------------------------------------------

  struct Host {
    std::string name;
    std::string base;
    xmldb::XmlDatabase db;
    container::Container container;
    std::unique_ptr<FileStore> files;
    std::unique_ptr<DataVault> vault;
    std::unique_ptr<JobRunner> runner;
    std::unique_ptr<JobBoard> jobs;
    std::unique_ptr<wse::SubscriptionStore> store;
    std::unique_ptr<wse::WseSubscriptionManagerService> manager;
    std::unique_ptr<wse::EventSourceService> source;
    std::unique_ptr<wse::NotificationManager> notifier;
    std::unique_ptr<wst::TransferService> data;
    std::unique_ptr<wst::TransferService> exec;

    Host(HostParams p, Impl& owner)
        : name(p.host),
          base(p.base),
          db(std::move(p.backend), {.write_through_cache = false}),
          container(p.container) {
      files = std::make_unique<FileStore>(p.file_root);
      vault = std::make_unique<DataVault>(*files);
      runner = std::make_unique<JobRunner>(*p.container.clock);
      jobs = std::make_unique<JobBoard>(*runner);
      store = p.subscription_file.empty()
                  ? std::make_unique<wse::SubscriptionStore>()
                  : std::make_unique<wse::SubscriptionStore>(p.subscription_file);
      manager = std::make_unique<wse::WseSubscriptionManagerService>(
          *store, base + "/JobEventSubscriptions", *p.container.clock);
      source = std::make_unique<wse::EventSourceService>(
          "JobEvents", *store, *manager, *p.container.clock);
      notifier = std::make_unique<wse::NotificationManager>(
          *store, *owner.params.notification_sink, *p.container.clock);

      make_data(owner);
      make_exec(owner);
      container.deploy("/Data", *data);
      container.deploy("/Exec", *exec);
      container.deploy("/JobEvents", *source);
      container.deploy("/JobEventSubscriptions", *manager);
    }

    void make_data(Impl& owner) {
      wst::TransferService::Hooks hooks;
      // Create: upload. Resource id is "<DN>/<filename>" — a non-opaque,
      // client-legible name; the backing directory is a hash of the DN,
      // created automatically on first upload.
      hooks.on_create = [this, &owner](const xml::Element& representation,
                                       container::RequestContext& ctx) {
        std::string dn = resolve_caller(ctx);
        // Outcall: uploads need a reservation on this host.
        std::string holder = reservation_holder(
            *owner.params.outcall_caller, owner.params.outcall_security,
            owner.params.central_base + "/ResourceAllocation", name);
        if (holder != dn) {
          throw soap::SoapFault("Sender",
                                "no reservation on '" + name + "' for " + dn);
        }
        std::string filename = representation.attr("name").value_or("");
        if (filename.empty()) {
          throw soap::SoapFault("Sender", "file document needs a name attribute");
        }
        const xml::Element* content = representation.child(gb("Content"));
        vault->put_base64(FileStore::hash_dn(dn), filename,
                          content ? content->text() : std::string());
        // The database keeps only a stub (the bytes live on the
        // filesystem — "the only exception is the Data Service").
        auto stub = std::make_unique<xml::Element>(gb("File"));
        stub->set_attr("name", filename);
        return std::make_pair(dn + "/" + filename, std::move(stub));
      };
      hooks.on_get = [this](const std::string& id, container::RequestContext& ctx)
          -> std::unique_ptr<xml::Element> {
        std::string dn = resolve_caller(ctx);
        std::string dir = FileStore::hash_dn(dn);
        if (id.ends_with("/")) {
          // Directory listing.
          auto listing = std::make_unique<xml::Element>(gb("Listing"));
          for (const std::string& f : vault->list(dir)) {
            listing->append_element(gb("File")).set_attr("name", f);
          }
          return listing;
        }
        size_t slash = id.rfind('/');
        std::string filename = slash == std::string::npos ? id : id.substr(slash + 1);
        std::optional<std::string> content = vault->get_base64(dir, filename);
        if (!content) return nullptr;
        auto doc = std::make_unique<xml::Element>(gb("File"));
        doc->set_attr("name", filename);
        doc->append_element(gb("Content")).set_text(*content);
        return doc;
      };
      hooks.on_put = [this](const std::string& id, const xml::Element& replacement,
                            container::RequestContext& ctx)
          -> std::unique_ptr<xml::Element> {
        std::string dn = resolve_caller(ctx);
        size_t slash = id.rfind('/');
        std::string filename = slash == std::string::npos ? id : id.substr(slash + 1);
        const xml::Element* content = replacement.child(gb("Content"));
        vault->put_base64(FileStore::hash_dn(dn), filename,
                          content ? content->text() : std::string());
        return nullptr;
      };
      hooks.on_delete = [this](const std::string& id,
                               container::RequestContext& ctx) {
        std::string dn = resolve_caller(ctx);
        size_t slash = id.rfind('/');
        std::string filename = slash == std::string::npos ? id : id.substr(slash + 1);
        db.remove("files", id);
        return vault->remove(FileStore::hash_dn(dn), filename);
      };
      data = std::make_unique<wst::TransferService>("Data", db, "files",
                                                    base + "/Data",
                                                    std::move(hooks));
    }

    void make_exec(Impl& owner) {
      wst::TransferService::Hooks hooks;
      // Create: instantiate a job. A running process is an *active*
      // resource: its stored representation can outlive the process
      // itself (the resource-vs-representation ambiguity the paper hit).
      hooks.on_create = [this, &owner](const xml::Element& representation,
                                       container::RequestContext& ctx) {
        jobs->poll();
        std::string dn = resolve_caller(ctx);
        const xml::Element* command = representation.child(gb("Command"));
        if (!command) throw soap::SoapFault("Sender", "job document needs Command");

        // Single outcall: the unified allocation service answers both
        // "is it reserved" and "by whom" in one Get.
        std::string holder = reservation_holder(
            *owner.params.outcall_caller, owner.params.outcall_security,
            owner.params.central_base + "/ResourceAllocation", name);
        if (holder != dn) {
          throw soap::SoapFault("Sender",
                                "no reservation on '" + name + "' for " + dn);
        }

        std::string id = common::new_uuid();
        soap::EndpointReference job_epr(base + "/Exec");
        job_epr.add_reference_property(wst::transfer_id_qname(), id);

        std::string working_dir = files->path_of(FileStore::hash_dn(dn)).string();
        std::string pid = jobs->start(
            command->text(), working_dir,
            [this, job_epr](const std::string&, const JobRunner::Status& status) {
              auto event = JobBoard::completion_event(job_epr, status.exit_code);
              notifier->notify(kJobCompletedTopic, *event,
                               std::string(soap::ns::kGridBox) + "/" +
                                   kJobCompletedTopic);
            });

        auto doc = JobBoard::make_document(dn, command->text());
        JobBoard::set_pid(*doc, pid);
        return std::make_pair(std::move(id), std::move(doc));
      };
      hooks.on_get = [this](const std::string& id, container::RequestContext&)
          -> std::unique_ptr<xml::Element> {
        jobs->poll();
        auto doc = db.load("jobs", id);
        if (!doc) return nullptr;
        // Augment the stored representation with live process state.
        jobs->annotate_status(*doc);
        return doc;
      };
      // Delete: the WS-Transfer ambiguity the paper calls out — we chose
      // "terminate the process AND delete the representation".
      hooks.on_delete = [this](const std::string& id,
                               container::RequestContext&) {
        jobs->poll();
        if (auto doc = db.load("jobs", id)) {
          jobs->terminate(*doc);
        }
        return db.remove("jobs", id);
      };
      exec = std::make_unique<wst::TransferService>("Exec", db, "jobs",
                                                    base + "/Exec",
                                                    std::move(hooks));
    }
  };

  std::vector<std::unique_ptr<Host>> hosts;
};

WstGridDeployment::WstGridDeployment(Params params)
    : impl_(std::make_unique<Impl>(std::move(params))) {}
WstGridDeployment::~WstGridDeployment() = default;

void WstGridDeployment::add_host(HostParams params) {
  impl_->hosts.push_back(std::make_unique<Impl::Host>(std::move(params), *impl_));
}

container::Container& WstGridDeployment::central_container() {
  return impl_->central;
}

container::Container& WstGridDeployment::host_container(const std::string& host) {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return h->container;
  }
  throw std::out_of_range("unknown host " + host);
}

JobRunner& WstGridDeployment::job_runner(const std::string& host) {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return *h->runner;
  }
  throw std::out_of_range("unknown host " + host);
}

xmldb::XmlDatabase& WstGridDeployment::central_db() {
  return impl_->central_db;
}

std::string WstGridDeployment::account_address() const {
  return impl_->params.central_base + "/Account";
}
std::string WstGridDeployment::allocation_address() const {
  return impl_->params.central_base + "/ResourceAllocation";
}
std::string WstGridDeployment::data_address(const std::string& host) const {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return h->base + "/Data";
  }
  throw std::out_of_range("unknown host " + host);
}
std::string WstGridDeployment::exec_address(const std::string& host) const {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return h->base + "/Exec";
  }
  throw std::out_of_range("unknown host " + host);
}
std::string WstGridDeployment::event_source_address(const std::string& host) const {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return h->base + "/JobEvents";
  }
  throw std::out_of_range("unknown host " + host);
}

const WstGridDeployment::Params& WstGridDeployment::params() const {
  return impl_->params;
}

}  // namespace gs::gridbox
