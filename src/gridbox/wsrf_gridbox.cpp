#include "gridbox/wsrf_gridbox.hpp"

#include <set>

#include "wsn/subscription_manager.hpp"
#include "wsrf/base_faults.hpp"

namespace gs::gridbox {

namespace {

// ---------------------------------------------------------------------------
// Outcall proxies shared by the services below (the "pair of calls" the
// paper measures all route through the central AccountService).
// ---------------------------------------------------------------------------

bool remote_account_exists(net::SoapCaller& caller, const std::string& address,
                           const container::ProxySecurity& security,
                           const std::string& dn) {
  class Proxy : public container::ProxyBase {
   public:
    using container::ProxyBase::ProxyBase;
    bool exists(const std::string& dn) {
      auto req = std::make_unique<xml::Element>(gb("AccountExists"));
      req->append_element(gb("DN")).set_text(dn);
      soap::Envelope r = invoke(wsrf_actions::kAccountExists, std::move(req));
      const xml::Element* p = r.payload();
      const xml::Element* e = p ? p->child(gb("Exists")) : nullptr;
      return e && e->text() == "true";
    }
  };
  Proxy proxy(caller, soap::EndpointReference(address), security);
  return proxy.exists(dn);
}

bool remote_check_privilege(net::SoapCaller& caller, const std::string& address,
                            const container::ProxySecurity& security,
                            const std::string& dn,
                            const std::string& privilege) {
  class Proxy : public container::ProxyBase {
   public:
    using container::ProxyBase::ProxyBase;
    bool check(const std::string& dn, const std::string& privilege) {
      auto req = std::make_unique<xml::Element>(gb("CheckPrivilege"));
      req->append_element(gb("DN")).set_text(dn);
      req->append_element(gb("Privilege")).set_text(privilege);
      soap::Envelope r = invoke(wsrf_actions::kCheckPrivilege, std::move(req));
      const xml::Element* p = r.payload();
      const xml::Element* g = p ? p->child(gb("Granted")) : nullptr;
      return g && g->text() == "true";
    }
  };
  Proxy proxy(caller, soap::EndpointReference(address), security);
  return proxy.check(dn, privilege);
}

std::set<std::string> remote_reserved_hosts(
    net::SoapCaller& caller, const std::string& address,
    const container::ProxySecurity& security) {
  class Proxy : public container::ProxyBase {
   public:
    using container::ProxyBase::ProxyBase;
    std::set<std::string> list() {
      soap::Envelope r =
          invoke(wsrf_actions::kListReservedHosts,
                 std::make_unique<xml::Element>(gb("ListReservedHosts")));
      std::set<std::string> out;
      if (const xml::Element* p = r.payload()) {
        for (const xml::Element* h : p->children_named(gb("Host"))) {
          out.insert(h->text());
        }
      }
      return out;
    }
  };
  Proxy proxy(caller, soap::EndpointReference(address), security);
  return proxy.list();
}

// ---------------------------------------------------------------------------
// AccountService — plain (non-resource) web service per the paper; the
// account state machine lives in app::AccountBook.
// ---------------------------------------------------------------------------

class AccountService final : public container::Service {
 public:
  AccountService(xmldb::XmlDatabase& db, std::string admin_dn)
      : container::Service("Account"), book_(db), admin_dn_(std::move(admin_dn)) {
    register_operation(wsrf_actions::kAddAccount,
                       [this](container::RequestContext& ctx) {
                         require_admin(ctx);
                         const xml::Element& p = ctx.payload();
                         const xml::Element* dn = p.child(gb("DN"));
                         if (!dn) throw soap::SoapFault("Sender", "AddAccount needs DN");
                         std::vector<std::string> privileges;
                         for (const xml::Element* priv :
                              p.children_named(gb("Privilege"))) {
                           privileges.push_back(priv->text());
                         }
                         book_.put(dn->text(), *AccountBook::make_document(
                                                   dn->text(), privileges));
                         soap::Envelope r = container::make_response(
                             ctx, wsrf_actions::kAddAccount + "Response");
                         r.add_payload(gb("AddAccountResponse"));
                         return r;
                       });

    register_operation(wsrf_actions::kAccountExists,
                       [this](container::RequestContext& ctx) {
                         const xml::Element* dn = ctx.payload().child(gb("DN"));
                         if (!dn) throw soap::SoapFault("Sender", "needs DN");
                         bool exists = book_.exists(dn->text());
                         soap::Envelope r = container::make_response(
                             ctx, wsrf_actions::kAccountExists + "Response");
                         r.add_payload(gb("AccountExistsResponse"))
                             .append_element(gb("Exists"))
                             .set_text(exists ? "true" : "false");
                         return r;
                       });

    register_operation(
        wsrf_actions::kCheckPrivilege, [this](container::RequestContext& ctx) {
          const xml::Element* dn = ctx.payload().child(gb("DN"));
          const xml::Element* priv = ctx.payload().child(gb("Privilege"));
          if (!dn || !priv) {
            throw soap::SoapFault("Sender", "needs DN and Privilege");
          }
          soap::Envelope r = container::make_response(
              ctx, wsrf_actions::kCheckPrivilege + "Response");
          r.add_payload(gb("CheckPrivilegeResponse"))
              .append_element(gb("Granted"))
              .set_text(book_.has_privilege(dn->text(), priv->text())
                            ? "true"
                            : "false");
          return r;
        });

    register_operation(wsrf_actions::kRemoveAccount,
                       [this](container::RequestContext& ctx) {
                         require_admin(ctx);
                         const xml::Element* dn = ctx.payload().child(gb("DN"));
                         if (!dn) throw soap::SoapFault("Sender", "needs DN");
                         book_.remove(dn->text());
                         soap::Envelope r = container::make_response(
                             ctx, wsrf_actions::kRemoveAccount + "Response");
                         r.add_payload(gb("RemoveAccountResponse"));
                         return r;
                       });
  }

 private:
  void require_admin(const container::RequestContext& ctx) {
    std::string caller = resolve_caller(ctx);
    if (caller != admin_dn_ && !book_.has_privilege(caller, kPrivilegeAdmin)) {
      throw soap::SoapFault("Sender", "caller '" + caller +
                                          "' lacks the admin privilege");
    }
  }

  AccountBook book_;
  std::string admin_dn_;
};

// ---------------------------------------------------------------------------
// ReservationService — WS-Resources are reservations.
// ---------------------------------------------------------------------------

class ReservationService final : public wsrf::WsrfService {
 public:
  ReservationService(wsrf::ResourceHome& home, std::string address,
                     std::string account_address, net::SoapCaller* caller,
                     container::ProxySecurity outcall_security,
                     common::TimeMs ttl_ms, const common::Clock& clock)
      : wsrf::WsrfService("Reservation", home, make_props(), std::move(address)),
        account_address_(std::move(account_address)),
        caller_(caller),
        outcall_security_(outcall_security),
        ttl_ms_(ttl_ms),
        clock_(clock) {
    import_resource_properties();
    import_resource_lifetime();  // claim == SetTerminationTime; destroy works

    register_operation(
        wsrf_actions::kCreateReservation, [this](container::RequestContext& ctx) {
          const xml::Element* host = ctx.payload().child(gb("Host"));
          if (!host) throw soap::SoapFault("Sender", "CreateReservation needs Host");
          std::string owner = resolve_caller(ctx);

          // Outcall: the VO will not reserve for unknown users.
          if (!remote_account_exists(*caller_, account_address_,
                                     outcall_security_, owner)) {
            throw soap::SoapFault("Sender",
                                  "no VO account for '" + owner + "'");
          }
          // One reservation per host at a time.
          for (const std::string& id : this->home().ids()) {
            auto state = this->home().try_load(id);
            if (!state) continue;
            const xml::Element* h = state->child(gb("Host"));
            if (h && h->text() == host->text()) {
              throw soap::SoapFault("Sender", "host '" + host->text() +
                                                  "' is already reserved");
            }
          }

          auto state = std::make_unique<xml::Element>(gb("Reservation"));
          state->append_element(gb("Host")).set_text(host->text());
          state->append_element(gb("Owner")).set_text(owner);
          // Scheduled termination: now + admin-specified delta.
          soap::EndpointReference epr =
              create_resource(std::move(state), clock_.now() + ttl_ms_);

          soap::Envelope r = container::make_response(
              ctx, wsrf_actions::kCreateReservation + "Response");
          r.body().append(epr.to_xml(gb("ReservationEPR")));
          return r;
        });

    register_operation(
        wsrf_actions::kListReservedHosts, [this](container::RequestContext& ctx) {
          soap::Envelope r = container::make_response(
              ctx, wsrf_actions::kListReservedHosts + "Response");
          xml::Element& body = r.add_payload(gb("ListReservedHostsResponse"));
          for (const std::string& id : this->home().ids()) {
            auto state = this->home().try_load(id);
            if (!state) continue;
            if (const xml::Element* h = state->child(gb("Host"))) {
              body.append_element(gb("Host")).set_text(h->text());
            }
          }
          return r;
        });
  }

 private:
  static wsrf::PropertySet make_props() {
    wsrf::PropertySet props;
    props.declare_stored(gb("Host"));
    props.declare_stored(gb("Owner"));
    return props;
  }

  std::string account_address_;
  net::SoapCaller* caller_;
  container::ProxySecurity outcall_security_;
  common::TimeMs ttl_ms_;
  const common::Clock& clock_;
};

// ---------------------------------------------------------------------------
// ResourceAllocationService — plain service consulting Account + Reservation.
// ---------------------------------------------------------------------------

class AllocationService final : public container::Service {
 public:
  AllocationService(xmldb::XmlDatabase& db, std::string account_address,
                    std::string reservation_address, net::SoapCaller* caller,
                    container::ProxySecurity outcall_security,
                    std::string admin_dn)
      : container::Service("ResourceAllocation"),
        sites_(db),
        account_address_(std::move(account_address)),
        reservation_address_(std::move(reservation_address)),
        caller_(caller),
        outcall_security_(outcall_security),
        admin_dn_(std::move(admin_dn)) {
    register_operation(wsrf_actions::kRegisterSite,
                       [this](container::RequestContext& ctx) {
                         require_admin(ctx);
                         SiteInfo site = SiteInfo::from_xml(ctx.payload());
                         if (site.host.empty()) {
                           throw soap::SoapFault("Sender", "RegisterSite needs Host");
                         }
                         sites_.put(site.host, *site.to_xml());
                         soap::Envelope r = container::make_response(
                             ctx, wsrf_actions::kRegisterSite + "Response");
                         r.add_payload(gb("RegisterSiteResponse"));
                         return r;
                       });

    register_operation(wsrf_actions::kUnregisterSite,
                       [this](container::RequestContext& ctx) {
                         require_admin(ctx);
                         const xml::Element* host = ctx.payload().child(gb("Host"));
                         if (!host) throw soap::SoapFault("Sender", "needs Host");
                         sites_.remove(host->text());
                         soap::Envelope r = container::make_response(
                             ctx, wsrf_actions::kUnregisterSite + "Response");
                         r.add_payload(gb("UnregisterSiteResponse"));
                         return r;
                       });

    register_operation(
        wsrf_actions::kGetAvailableResources,
        [this](container::RequestContext& ctx) {
          const xml::Element* app = ctx.payload().child(gb("Application"));
          if (!app) throw soap::SoapFault("Sender", "needs Application");
          std::string caller_dn = resolve_caller(ctx);

          // Outcall 1: does this user have an account in this VO?
          if (!remote_account_exists(*caller_, account_address_,
                                     outcall_security_, caller_dn)) {
            throw soap::SoapFault("Sender",
                                  "no VO account for '" + caller_dn + "'");
          }
          // Outcall 2: which hosts are currently reserved? (The WSRF
          // variant keeps reservations as WS-Resources, so the site
          // directory's availability filter takes them as a predicate.)
          std::set<std::string> reserved = remote_reserved_hosts(
              *caller_, reservation_address_, outcall_security_);

          soap::Envelope r = container::make_response(
              ctx, wsrf_actions::kGetAvailableResources + "Response");
          xml::Element& body =
              r.add_payload(gb("GetAvailableResourcesResponse"));
          for (auto& site : sites_.available(
                   app->text(), [&reserved](const std::string& host,
                                            const xml::Element&) {
                     return reserved.contains(host);
                   })) {
            body.append(std::move(site));
          }
          return r;
        });
  }

 private:
  void require_admin(const container::RequestContext& ctx) {
    std::string caller_dn = resolve_caller(ctx);
    if (caller_dn != admin_dn_) {
      throw soap::SoapFault("Sender", "site registry is admin-only");
    }
  }

  SiteDirectory sites_;
  std::string account_address_;
  std::string reservation_address_;
  net::SoapCaller* caller_;
  container::ProxySecurity outcall_security_;
  std::string admin_dn_;
};

// ---------------------------------------------------------------------------
// DataService — WS-Resources are directories; Files is a computed property.
// ---------------------------------------------------------------------------

class DataService final : public wsrf::WsrfService {
 public:
  DataService(wsrf::ResourceHome& home, std::string address, FileStore& files,
              std::string account_address, net::SoapCaller* caller,
              container::ProxySecurity outcall_security)
      : wsrf::WsrfService("Data", home, make_props(files), std::move(address)),
        vault_(files),
        account_address_(std::move(account_address)),
        caller_(caller),
        outcall_security_(outcall_security) {
    import_resource_properties();
    import_resource_lifetime();

    // Destroy must also remove the directory and its contents; hook in.
    this->home().on_destroyed([this](const std::string& id) {
      vault_.files().remove_directory(id);
    });

    register_operation(
        wsrf_actions::kCreateDirectory, [this](container::RequestContext& ctx) {
          std::string owner = resolve_caller(ctx);
          auto state = std::make_unique<xml::Element>(gb("Directory"));
          state->append_element(gb("Owner")).set_text(owner);
          // Clients do not name directory resources; the service assigns a
          // GUID (the id doubles as the directory name).
          soap::EndpointReference epr = create_resource(std::move(state));
          std::string id = *epr.reference_property(wsrf::resource_id_qname());
          vault_.files().ensure_directory(id);
          // Record the name in the state for the Files property getter.
          auto stored = this->home().load(id);
          stored->append_element(gb("Name")).set_text(id);
          this->home().save(id, *stored);

          soap::Envelope r = container::make_response(
              ctx, wsrf_actions::kCreateDirectory + "Response");
          r.body().append(epr.to_xml(gb("DirectoryEPR")));
          return r;
        });

    register_operation(wsrf_actions::kUpload, [this](container::RequestContext& ctx) {
      std::string id = resolve_resource(ctx);
      auto state = this->home().load(id);
      require_owner(ctx, *state);
      // Outcall: VO policy — stage-in only for current account holders
      // (the upload's "pair of calls" the paper measures).
      if (!remote_account_exists(*caller_, account_address_, outcall_security_,
                                 resolve_caller(ctx))) {
        throw soap::SoapFault("Sender", "no VO account for caller");
      }
      const xml::Element* name = ctx.payload().child(gb("FileName"));
      const xml::Element* content = ctx.payload().child(gb("Content"));
      if (!name || !content) {
        throw soap::SoapFault("Sender", "Upload needs FileName and Content");
      }
      vault_.put_base64(id, name->text(), content->text());
      soap::Envelope r =
          container::make_response(ctx, wsrf_actions::kUpload + "Response");
      r.add_payload(gb("UploadResponse"));
      return r;
    });

    register_operation(wsrf_actions::kDownload, [this](container::RequestContext& ctx) {
      std::string id = resolve_resource(ctx);
      auto state = this->home().load(id);
      require_owner(ctx, *state);
      const xml::Element* name = ctx.payload().child(gb("FileName"));
      if (!name) throw soap::SoapFault("Sender", "Download needs FileName");
      std::optional<std::string> content = vault_.get_base64(id, name->text());
      if (!content) {
        throw soap::SoapFault("Sender", "no file '" + name->text() + "'");
      }
      soap::Envelope r =
          container::make_response(ctx, wsrf_actions::kDownload + "Response");
      r.add_payload(gb("DownloadResponse"))
          .append_element(gb("Content"))
          .set_text(*content);
      return r;
    });

    register_operation(wsrf_actions::kDeleteFile, [this](container::RequestContext& ctx) {
      std::string id = resolve_resource(ctx);
      auto state = this->home().load(id);
      require_owner(ctx, *state);
      const xml::Element* name = ctx.payload().child(gb("FileName"));
      if (!name) throw soap::SoapFault("Sender", "DeleteFile needs FileName");
      if (!vault_.remove(id, name->text())) {
        throw soap::SoapFault("Sender", "no file '" + name->text() + "'");
      }
      soap::Envelope r =
          container::make_response(ctx, wsrf_actions::kDeleteFile + "Response");
      r.add_payload(gb("DeleteFileResponse"));
      return r;
    });
  }

 private:
  static wsrf::PropertySet make_props(FileStore& files) {
    wsrf::PropertySet props;
    props.declare_stored(gb("Owner"));
    // "No information for individual files is actually stored as
    // resources; instead these resource properties are generated
    // dynamically by examining the contents [of the] directory."
    props.declare_computed(gb("Files"), [&files](const xml::Element& state) {
      std::vector<std::unique_ptr<xml::Element>> out;
      const xml::Element* name = state.child(gb("Name"));
      if (!name) return out;
      for (const std::string& file : files.list(name->text())) {
        auto el = std::make_unique<xml::Element>(gb("Files"));
        el->set_text(file);
        out.push_back(std::move(el));
      }
      return out;
    });
    return props;
  }

  void require_owner(const container::RequestContext& ctx,
                     const xml::Element& state) {
    const xml::Element* owner = state.child(gb("Owner"));
    if (!owner || owner->text() != resolve_caller(ctx)) {
      throw soap::SoapFault("Sender", "caller does not own this directory");
    }
  }

  DataVault vault_;
  std::string account_address_;
  net::SoapCaller* caller_;
  container::ProxySecurity outcall_security_;
};

// ---------------------------------------------------------------------------
// ExecService — WS-Resources are jobs; the job state machine lives in
// app::JobBoard.
// ---------------------------------------------------------------------------

class ExecService final : public wsrf::WsrfService {
 public:
  ExecService(wsrf::ResourceHome& home, std::string address, std::string host,
              std::string account_address, net::SoapCaller* caller,
              container::ProxySecurity outcall_security, JobRunner& runner,
              FileStore& files, wsn::NotificationProducer* producer)
      : wsrf::WsrfService("Exec", home, make_props(runner), std::move(address)),
        host_(std::move(host)),
        account_address_(std::move(account_address)),
        caller_(caller),
        outcall_security_(outcall_security),
        jobs_(runner),
        files_(files),
        producer_(producer) {
    import_resource_properties();
    import_resource_lifetime();

    register_operation(wsrf_actions::kStartJob, [this](container::RequestContext& ctx) {
      jobs_.poll();
      const xml::Element& p = ctx.payload();
      const xml::Element* command = p.child(gb("Command"));
      const xml::Element* res_el = p.child(gb("ReservationEPR"));
      const xml::Element* dir_el = p.child(gb("DirectoryEPR"));
      if (!command || !res_el) {
        throw soap::SoapFault("Sender", "StartJob needs Command and ReservationEPR");
      }
      std::string owner = resolve_caller(ctx);
      soap::EndpointReference res_epr = soap::EndpointReference::from_xml(*res_el);

      // Outcall 1: verify the reservation covers this host and this owner.
      wsrf::WsResourceProxy reservation(*caller_, res_epr, outcall_security_);
      auto props = reservation.get_properties({gb("Host"), gb("Owner")});
      std::string res_host, res_owner;
      for (const auto& el : props) {
        if (el->name() == gb("Host")) res_host = el->text();
        if (el->name() == gb("Owner")) res_owner = el->text();
      }
      if (res_host != host_) {
        throw soap::SoapFault("Sender", "reservation is for host '" + res_host +
                                            "', not '" + host_ + "'");
      }
      if (res_owner != owner) {
        throw soap::SoapFault("Sender", "reservation belongs to '" + res_owner +
                                            "', caller is '" + owner + "'");
      }
      // Outcall 2: VO policy — may this user submit jobs?
      if (!remote_check_privilege(*caller_, account_address_, outcall_security_,
                                  owner, kPrivilegeSubmit)) {
        throw soap::SoapFault("Sender",
                              "'" + owner + "' lacks the submit privilege");
      }
      // Outcall 3: claim the reservation by lengthening its lifetime
      // (the paper's Grid-in-a-Box sets it to infinity).
      reservation.set_termination_time(container::LifetimeManager::kNever);

      // Working directory from the co-located DataService.
      std::string working_dir;
      if (dir_el) {
        soap::EndpointReference dir_epr =
            soap::EndpointReference::from_xml(*dir_el);
        auto dir_id = dir_epr.reference_property(wsrf::resource_id_qname());
        if (dir_id) working_dir = files_.path_of(*dir_id).string();
      }

      auto state = JobBoard::make_document(owner, command->text());
      state->append(res_epr.to_xml(gb("ReservationEPR")));

      // Spawn; the exit callback publishes JobCompleted (with the job EPR)
      // and destroys the reservation — the automatic unreserve of the
      // WSRF variant.
      soap::EndpointReference job_epr = create_resource(std::move(state));
      std::string job_id =
          *job_epr.reference_property(wsrf::resource_id_qname());
      std::string pid = jobs_.start(
          command->text(), working_dir,
          [this, job_epr, res_epr](const std::string&,
                                   const JobRunner::Status& status) {
            if (producer_) {
              auto event =
                  JobBoard::completion_event(job_epr, status.exit_code);
              producer_->notify(kJobCompletedTopic, *event);
            }
            try {
              wsrf::WsResourceProxy reservation(*caller_, res_epr,
                                                outcall_security_);
              reservation.destroy();
            } catch (const std::exception&) {
              // Reservation already gone — nothing to unreserve.
            }
          });
      // Record the pid for the computed status properties.
      auto stored = this->home().load(job_id);
      JobBoard::set_pid(*stored, pid);
      this->home().save(job_id, *stored);

      soap::Envelope r =
          container::make_response(ctx, wsrf_actions::kStartJob + "Response");
      r.body().append(job_epr.to_xml(gb("JobEPR")));
      return r;
    });

    // Destroy should kill a running job first; wrap the imported Destroy.
    Service::Operation destroy_op = [this](container::RequestContext& ctx) {
      jobs_.poll();
      std::string id = resolve_resource(ctx);
      if (auto state = this->home().try_load(id)) {
        jobs_.terminate(*state);
      }
      if (!this->home().destroy(id)) {
        wsrf::throw_base_fault(wsrf::FaultType::kResourceUnknown,
                               "no job '" + id + "'");
      }
      soap::Envelope r =
          container::make_response(ctx, wsrf::actions::kDestroy + "Response");
      r.add_payload(xml::QName(soap::ns::kWsrfRl, "DestroyResponse"));
      return r;
    };
    register_operation(wsrf::actions::kDestroy, std::move(destroy_op));
  }

  /// Lets the deployment drive job completion (tests advance a ManualClock
  /// then poll).
  JobRunner& runner() noexcept { return jobs_.runner(); }

 private:
  static wsrf::PropertySet make_props(JobRunner& runner) {
    wsrf::PropertySet props;
    props.declare_stored(gb("Owner"));
    props.declare_stored(gb("Command"));
    auto status_of = [&runner](const xml::Element& state)
        -> std::optional<JobRunner::Status> {
      auto pid = JobBoard::pid_of(state);
      if (!pid) return std::nullopt;
      return runner.status(*pid);
    };
    props.declare_computed(gb("Status"), [status_of](const xml::Element& state) {
      std::vector<std::unique_ptr<xml::Element>> out;
      auto el = std::make_unique<xml::Element>(gb("Status"));
      auto status = status_of(state);
      el->set_text(status ? JobBoard::state_name(status->state) : "unknown");
      out.push_back(std::move(el));
      return out;
    });
    props.declare_computed(gb("ExitCode"), [status_of](const xml::Element& state) {
      std::vector<std::unique_ptr<xml::Element>> out;
      auto status = status_of(state);
      if (status && status->state != JobRunner::State::kRunning) {
        auto el = std::make_unique<xml::Element>(gb("ExitCode"));
        el->set_text(std::to_string(status->exit_code));
        out.push_back(std::move(el));
      }
      return out;
    });
    return props;
  }

  std::string host_;
  std::string account_address_;
  net::SoapCaller* caller_;
  container::ProxySecurity outcall_security_;
  JobBoard jobs_;
  FileStore& files_;
  wsn::NotificationProducer* producer_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Deployment bundle
// ---------------------------------------------------------------------------

struct WsrfGridDeployment::Impl {
  Params params;
  xmldb::XmlDatabase central_db;
  container::Container central;
  std::unique_ptr<wsrf::ResourceHome> reservation_home;
  std::unique_ptr<AccountService> account;
  std::unique_ptr<ReservationService> reservation;
  std::unique_ptr<AllocationService> allocation;

  struct Host {
    std::string name;
    std::string base;
    xmldb::XmlDatabase db;
    container::Container container;
    std::unique_ptr<FileStore> files;
    std::unique_ptr<JobRunner> runner;
    std::unique_ptr<wsrf::ResourceHome> dir_home;
    std::unique_ptr<wsrf::ResourceHome> job_home;
    std::unique_ptr<wsrf::ResourceHome> sub_home;
    std::unique_ptr<wsn::SubscriptionManagerService> manager;
    std::unique_ptr<DataService> data;
    std::unique_ptr<ExecService> exec;
    std::unique_ptr<wsn::NotificationProducer> producer;

    Host(HostParams p, const Params& params)
        : name(p.host),
          base(p.base),
          db(std::move(p.backend), {.write_through_cache = true}),
          container(p.container) {
      files = std::make_unique<FileStore>(p.file_root);
      runner = std::make_unique<JobRunner>(*p.container.clock);
      dir_home = std::make_unique<wsrf::ResourceHome>(db, "directories",
                                                      &container.lifetime());
      job_home =
          std::make_unique<wsrf::ResourceHome>(db, "jobs", &container.lifetime());
      sub_home = std::make_unique<wsrf::ResourceHome>(db, "job-subscriptions",
                                                      &container.lifetime());
      manager = std::make_unique<wsn::SubscriptionManagerService>(
          *sub_home, base + "/JobSubscriptions");
      producer = std::make_unique<wsn::NotificationProducer>(
          wsn::NotificationProducer::Config{params.notification_sink,
                                            base + "/Exec", manager.get(),
                                            p.container.clock},
          [] {
            wsn::TopicNamespace topics;
            topics.add(kJobCompletedTopic);
            return topics;
          }());
      data = std::make_unique<DataService>(
          *dir_home, base + "/Data", *files, params.central_base + "/Account",
          params.outcall_caller, params.outcall_security);
      exec = std::make_unique<ExecService>(
          *job_home, base + "/Exec", name, params.central_base + "/Account",
          params.outcall_caller, params.outcall_security, *runner, *files,
          producer.get());
      producer->register_into(*exec);
      container.deploy("/Data", *data);
      container.deploy("/Exec", *exec);
      container.deploy("/JobSubscriptions", *manager);
    }
  };
  std::vector<std::unique_ptr<Host>> hosts;

  explicit Impl(Params p)
      : params(std::move(p)),
        central_db(std::move(params.backend),
                   {.write_through_cache = params.write_through_cache}),
        central(params.central_container) {
    reservation_home = std::make_unique<wsrf::ResourceHome>(
        central_db, "reservations", &central.lifetime());
    account = std::make_unique<AccountService>(central_db, params.admin_dn);
    reservation = std::make_unique<ReservationService>(
        *reservation_home, params.central_base + "/Reservation",
        params.central_base + "/Account", params.outcall_caller,
        params.outcall_security, params.reservation_ttl_ms,
        *params.central_container.clock);
    allocation = std::make_unique<AllocationService>(
        central_db, params.central_base + "/Account",
        params.central_base + "/Reservation", params.outcall_caller,
        params.outcall_security, params.admin_dn);
    central.deploy("/Account", *account);
    central.deploy("/Reservation", *reservation);
    central.deploy("/ResourceAllocation", *allocation);
  }
};

WsrfGridDeployment::WsrfGridDeployment(Params params)
    : impl_(std::make_unique<Impl>(std::move(params))) {}
WsrfGridDeployment::~WsrfGridDeployment() = default;

void WsrfGridDeployment::add_host(HostParams params) {
  impl_->hosts.push_back(
      std::make_unique<Impl::Host>(std::move(params), impl_->params));
}

container::Container& WsrfGridDeployment::central_container() {
  return impl_->central;
}

container::Container& WsrfGridDeployment::host_container(const std::string& host) {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return h->container;
  }
  throw std::out_of_range("unknown host " + host);
}

JobRunner& WsrfGridDeployment::job_runner(const std::string& host) {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return *h->runner;
  }
  throw std::out_of_range("unknown host " + host);
}

xmldb::XmlDatabase& WsrfGridDeployment::central_db() {
  return impl_->central_db;
}

std::string WsrfGridDeployment::account_address() const {
  return impl_->params.central_base + "/Account";
}
std::string WsrfGridDeployment::allocation_address() const {
  return impl_->params.central_base + "/ResourceAllocation";
}
std::string WsrfGridDeployment::reservation_address() const {
  return impl_->params.central_base + "/Reservation";
}
std::string WsrfGridDeployment::exec_address(const std::string& host) const {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return h->base + "/Exec";
  }
  throw std::out_of_range("unknown host " + host);
}
std::string WsrfGridDeployment::data_address(const std::string& host) const {
  for (auto& h : impl_->hosts) {
    if (h->name == host) return h->base + "/Data";
  }
  throw std::out_of_range("unknown host " + host);
}

const WsrfGridDeployment::Params& WsrfGridDeployment::params() const {
  return impl_->params;
}

}  // namespace gs::gridbox
