// Grid-in-a-Box on the WS-Transfer / WS-Eventing stack (paper §4.2.2).
//
// Four services and "an explicit design decision ... to map onto the CRUD
// operations as much as possible":
//   * Account            — Create stores an account whose EPR carries the
//                          user's X.509 DN; Get answers privilege queries;
//                          Delete removes all privileges. Create/Delete are
//                          administrative.
//   * Data               — Create uploads a file; the resource id is the
//                          deliberately *non-opaque* "<DN>/<filename>",
//                          stored under a directory that is a hash of the
//                          DN. Get returns a directory listing when the id
//                          ends in "/", otherwise the file. Put overwrites;
//                          Delete removes.
//   * ResourceAllocation — unified allocation + reservation service: sites
//                          AND reservations coexist in one service
//                          (WS-Transfer permits multiple resource types per
//                          service). Get dispatches on the id's first
//                          character ('1' + app = available-resources
//                          query; otherwise a who-holds-this-reservation
//                          probe). Put has three modes by initial symbol:
//                          'R' make, 'U' remove, 'T' retime a reservation.
//                          Reservation lifetime is manual — forgetting to
//                          unreserve leaks the resource (a WSRF lifetime
//                          feature WS-Transfer lacks; tests assert the
//                          leak).
//   * Exec               — Create instantiates a job (verifying the
//                          caller's reservation via one outcall to the
//                          unified allocation service); Get polls status;
//                          Delete kills. Completion is published through
//                          WS-Eventing.
#pragma once

#include <memory>

#include "container/container.hpp"
#include "container/proxy.hpp"
#include "gridbox/common.hpp"
#include "wse/service.hpp"
#include "wst/service.hpp"
#include "xmldb/database.hpp"

namespace gs::gridbox {

/// Put-mode prefixes on the unified allocation service.
inline constexpr char kModeReserve = 'R';
inline constexpr char kModeUnreserve = 'U';
inline constexpr char kModeRetime = 'T';
/// Get-mode prefix for the available-resources query.
inline constexpr char kModeAvailable = '1';

class WstGridDeployment {
 public:
  struct Params {
    std::unique_ptr<xmldb::Backend> backend;
    container::ContainerConfig central_container;
    net::SoapCaller* outcall_caller = nullptr;
    container::ProxySecurity outcall_security;
    /// TCP caller for WS-Eventing delivery.
    net::SoapCaller* notification_sink = nullptr;
    std::string central_base;
    common::TimeMs reservation_ttl_ms = 4LL * 3600 * 1000;
    std::string admin_dn = "CN=admin,O=VO";
  };

  struct HostParams {
    std::string host;
    std::string base;
    std::unique_ptr<xmldb::Backend> backend;
    container::ContainerConfig container;
    std::filesystem::path file_root;
    std::filesystem::path subscription_file;  // empty = in-memory
  };

  explicit WstGridDeployment(Params params);
  ~WstGridDeployment();

  void add_host(HostParams params);

  container::Container& central_container();
  container::Container& host_container(const std::string& host);
  JobRunner& job_runner(const std::string& host);
  /// Central-service state (accounts, sites) — lets tests compare the
  /// stored documents across stack bindings.
  xmldb::XmlDatabase& central_db();

  std::string account_address() const;
  std::string allocation_address() const;
  std::string data_address(const std::string& host) const;
  std::string exec_address(const std::string& host) const;
  std::string event_source_address(const std::string& host) const;

  const Params& params() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gs::gridbox
