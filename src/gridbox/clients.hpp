// Grid-in-a-Box clients: the grid user and the admin, one pair per stack.
//
// These drive the paper's Figure 5 workflow end to end: discover available
// resources, reserve, stage data in, start the job, receive the completion
// notification, fetch output, clean up.
#pragma once

#include <optional>

#include "gridbox/wsrf_gridbox.hpp"
#include "gridbox/wst_gridbox.hpp"
#include "wsn/client.hpp"
#include "wse/client.hpp"
#include "wsrf/client.hpp"
#include "wst/client.hpp"

namespace gs::gridbox {

/// Client identity: a DN plus optional signing credential. When unsigned,
/// the DN travels as the OnBehalfOf header.
struct ClientIdentity {
  std::string dn;
  container::ProxySecurity security;
};

/// Stamps the identity fallback header onto an EPR (no-op when signing —
/// the header is ignored server-side in favour of the signature, but
/// harmless).
soap::EndpointReference with_identity(soap::EndpointReference epr,
                                      const ClientIdentity& id);

// ---------------------------------------------------------------------------
// WSRF stack clients
// ---------------------------------------------------------------------------

class WsrfAdminClient {
 public:
  WsrfAdminClient(net::SoapCaller& caller, const WsrfGridDeployment& grid,
                  ClientIdentity identity);

  void add_account(const std::string& dn,
                   const std::vector<std::string>& privileges);
  void remove_account(const std::string& dn);
  void register_site(const SiteInfo& site);
  void unregister_site(const std::string& host);

 private:
  net::SoapCaller& caller_;
  std::string account_address_;
  std::string allocation_address_;
  ClientIdentity identity_;
};

class WsrfUserClient {
 public:
  WsrfUserClient(net::SoapCaller& caller, const WsrfGridDeployment& grid,
                 ClientIdentity identity);

  /// Step 1: what resources are available for my application?
  std::vector<SiteInfo> get_available_resources(const std::string& application);
  /// Step 4: reserve a host; returns the reservation EPR.
  soap::EndpointReference make_reservation(const std::string& host);
  /// Step 5: create a new data (directory) resource on a host.
  soap::EndpointReference create_directory(const std::string& data_address);
  /// Step 7: stage-in data.
  void upload(const soap::EndpointReference& directory, const std::string& name,
              const std::string& content);
  std::vector<std::string> list_files(const soap::EndpointReference& directory);
  std::string download(const soap::EndpointReference& directory,
                       const std::string& name);
  void delete_file(const soap::EndpointReference& directory,
                   const std::string& name);
  /// Step 9: start the application; returns the job EPR.
  soap::EndpointReference start_job(const std::string& exec_address,
                                    const std::string& command,
                                    const soap::EndpointReference& reservation,
                                    const soap::EndpointReference& directory);
  /// Poll job status ("running" / "exited" / "killed").
  std::string job_status(const soap::EndpointReference& job);
  std::optional<int> job_exit_code(const soap::EndpointReference& job);
  /// Step 10a: subscribe for the completion notification.
  wsn::SubscriptionProxy subscribe_completion(
      const std::string& exec_address, const soap::EndpointReference& consumer);
  /// Step 11: cleanup.
  void destroy(const soap::EndpointReference& resource);

 private:
  net::SoapCaller& caller_;
  std::string allocation_address_;
  ClientIdentity identity_;
};

// ---------------------------------------------------------------------------
// WS-Transfer stack clients
// ---------------------------------------------------------------------------

class WstAdminClient {
 public:
  WstAdminClient(net::SoapCaller& caller, const WstGridDeployment& grid,
                 ClientIdentity identity);

  void add_account(const std::string& dn,
                   const std::vector<std::string>& privileges);
  void remove_account(const std::string& dn);
  void register_site(const SiteInfo& site);
  void unregister_site(const std::string& host);

 private:
  net::SoapCaller& caller_;
  std::string account_address_;
  std::string allocation_address_;
  ClientIdentity identity_;
};

class WstUserClient {
 public:
  WstUserClient(net::SoapCaller& caller, const WstGridDeployment& grid,
                ClientIdentity identity);

  std::vector<SiteInfo> get_available_resources(const std::string& application);
  /// Reserve a host (Put mode 'R').
  void make_reservation(const std::string& host);
  /// Manual unreserve (Put mode 'U') — forgetting this leaks the host.
  void unreserve(const std::string& host);
  /// Upload = Create on the Data service; resource id becomes DN/name.
  soap::EndpointReference upload(const std::string& data_address,
                                 const std::string& name,
                                 const std::string& content);
  std::vector<std::string> list_files(const std::string& data_address);
  std::string download(const std::string& data_address, const std::string& name);
  void delete_file(const std::string& data_address, const std::string& name);
  /// Instantiate a job = Create on the Exec service.
  soap::EndpointReference start_job(const std::string& exec_address,
                                    const std::string& command);
  std::string job_status(const soap::EndpointReference& job);
  std::optional<int> job_exit_code(const soap::EndpointReference& job);
  wse::EventSourceProxy::SubscriptionHandle subscribe_completion(
      const std::string& event_source_address,
      const soap::EndpointReference& notify_to);
  /// Delete on any WS-Transfer resource EPR.
  void remove(const soap::EndpointReference& resource);

 private:
  soap::EndpointReference file_epr(const std::string& data_address,
                                   const std::string& id) const;

  net::SoapCaller& caller_;
  std::string allocation_address_;
  ClientIdentity identity_;
};

}  // namespace gs::gridbox
