// Grid-in-a-Box shared substrate: identity resolution, the simulated
// process spawner behind ExecService, and the on-disk file store behind
// DataService.
#pragma once

#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "container/service.hpp"
#include "soap/namespaces.hpp"

namespace gs::gridbox {

/// QName in the Grid-in-a-Box namespace.
xml::QName gb(const char* local);

/// The caller's DN: the X.509-verified identity when the container runs in
/// signing mode, otherwise the OnBehalfOf header (unsecured deployments
/// trust it — test rigs and the no-security scenarios).
std::string resolve_caller(const container::RequestContext& ctx);

/// Reference-property name for the unsecured identity fallback.
xml::QName on_behalf_of_qname();

/// VO privileges.
inline constexpr const char* kPrivilegeSubmit = "submit";
inline constexpr const char* kPrivilegeAdmin = "admin";

/// Topic published when a job finishes (both stacks).
inline constexpr const char* kJobCompletedTopic = "JobCompleted";

/// A registered computing site.
struct SiteInfo {
  std::string host;
  std::string exec_address;
  std::string data_address;
  std::vector<std::string> applications;

  std::unique_ptr<xml::Element> to_xml() const;
  static SiteInfo from_xml(const xml::Element& el);
};

// ---------------------------------------------------------------------------
// Job runner: the process-spawning substrate
// ---------------------------------------------------------------------------

/// Process table with two execution modes. The paper's ExecService spawned
/// Windows processes; here:
///   * "sim:duration=<ms>,exit=<code>" jobs are deterministic simulations
///     driven by the deployment clock (what tests and benches use);
///   * "exec:<shell command>" jobs fork/exec a real `/bin/sh -c` child in
///     the job's working directory (what a production deployment uses).
/// `poll()` retires finished jobs (clock expiry or waitpid) and fires
/// their completion callbacks — services call it on every request.
class JobRunner {
 public:
  enum class State { kRunning, kExited, kKilled };

  struct Status {
    State state = State::kRunning;
    int exit_code = 0;
    common::TimeMs started = 0;
    common::TimeMs ended = 0;  // meaningful when not running
  };

  using ExitCallback = std::function<void(const std::string& pid, const Status&)>;

  explicit JobRunner(const common::Clock& clock) : clock_(clock) {}
  ~JobRunner();

  /// Spawns a job (see the class comment for command forms; anything else
  /// is a simulation that runs 0 ms and exits 0). Returns the process id.
  /// Throws SoapFault("Receiver") when a real process cannot be forked.
  std::string spawn(const std::string& command, const std::string& working_dir,
                    ExitCallback on_exit = nullptr);

  std::optional<Status> status(const std::string& pid);
  /// Kills a running job (state -> kKilled). False when unknown/finished.
  bool kill(const std::string& pid);
  /// Drops a finished job's record; false when still running or unknown.
  bool reap(const std::string& pid);

  /// Retires jobs whose simulated duration has elapsed; fires callbacks.
  /// Returns the number retired.
  size_t poll();

  size_t running_count() const;

 private:
  struct Job {
    std::string command;
    std::string working_dir;
    common::TimeMs deadline;  // simulation deadline; unused for real jobs
    int exit_code;
    Status status;
    ExitCallback on_exit;
    int os_pid = -1;  // >= 0 for a real process
  };

  const common::Clock& clock_;
  mutable std::mutex mu_;
  std::map<std::string, Job> jobs_;
  std::uint64_t next_pid_ = 1000;
};

// ---------------------------------------------------------------------------
// File store: the DataService's filesystem
// ---------------------------------------------------------------------------

/// Per-directory file storage on the real filesystem. The WSRF DataService
/// names directories with GUIDs; the WS-Transfer DataService hashes the
/// user DN into a directory name — both go through this store.
class FileStore {
 public:
  explicit FileStore(std::filesystem::path root);

  /// Creates (or ensures) a directory; returns its name.
  void ensure_directory(const std::string& directory);
  bool directory_exists(const std::string& directory) const;
  /// Removes a directory and all its contents.
  bool remove_directory(const std::string& directory);

  void put(const std::string& directory, const std::string& filename,
           const std::string& content);
  std::optional<std::string> get(const std::string& directory,
                                 const std::string& filename) const;
  bool remove(const std::string& directory, const std::string& filename);
  std::vector<std::string> list(const std::string& directory) const;

  /// Absolute path of a directory (jobs use it as their working dir).
  std::filesystem::path path_of(const std::string& directory) const;

  /// The deterministic DN -> directory hash of the WS-Transfer variant.
  static std::string hash_dn(const std::string& dn);

 private:
  std::filesystem::path safe_path(const std::string& directory,
                                  const std::string& filename = "") const;
  std::filesystem::path root_;
};

}  // namespace gs::gridbox
