// Grid-in-a-Box protocol-side helpers: identity resolution and the wire
// namespace. The business logic (accounts, sites, reservations, files,
// jobs) lives in the stack-agnostic core under src/app; this header
// re-exports those types so both bindings and their callers share one
// vocabulary.
#pragma once

#include "app/gridbox_core.hpp"
#include "container/service.hpp"
#include "soap/namespaces.hpp"

namespace gs::gridbox {

// The application core, re-exported into the binding namespace.
using app::AccountBook;
using app::DataVault;
using app::FileStore;
using app::JobBoard;
using app::JobRunner;
using app::SiteDirectory;
using app::SiteInfo;
using app::gb;
using app::kJobCompletedTopic;
using app::kPrivilegeAdmin;
using app::kPrivilegeSubmit;

/// The caller's DN: the X.509-verified identity when the container runs in
/// signing mode, otherwise the OnBehalfOf header (unsecured deployments
/// trust it — test rigs and the no-security scenarios).
std::string resolve_caller(const container::RequestContext& ctx);

/// Reference-property name for the unsecured identity fallback.
xml::QName on_behalf_of_qname();

}  // namespace gs::gridbox
