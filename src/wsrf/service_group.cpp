#include "wsrf/service_group.hpp"

#include "wsrf/base_faults.hpp"

namespace gs::wsrf {

namespace {
xml::QName sg(const char* local) { return {soap::ns::kWsrfSg, local}; }
}  // namespace

ServiceGroupService::ServiceGroupService(std::string name, ResourceHome& home,
                                         std::string address)
    : WsrfService(std::move(name), home, PropertySet{}, std::move(address)) {
  import_resource_lifetime();  // entries are destroyable resources

  register_operation(sg_actions::kAdd, [this](container::RequestContext& ctx) {
    const xml::Element& payload = ctx.payload();
    const xml::Element* member = payload.child(sg("MemberEPR"));
    if (!member) throw soap::SoapFault("Sender", "Add needs a MemberEPR");
    // Content is optional; rules apply when present (and when rules exist,
    // content is required to match one).
    const xml::Element* content = payload.child(sg("Content"));
    if (!content_rules_.empty()) {
      auto content_children =
          content ? content->child_elements() : std::vector<const xml::Element*>{};
      const xml::Element* root =
          content_children.empty() ? nullptr : content_children.front();
      bool allowed = false;
      for (const auto& rule : content_rules_) {
        if (root && root->name() == rule) {
          allowed = true;
          break;
        }
      }
      if (!allowed) {
        throw_base_fault(FaultType::kAddRefused,
                         "entry content does not satisfy the group's "
                         "membership content rules");
      }
    }

    common::TimeMs termination = container::LifetimeManager::kNever;
    if (const xml::Element* t = payload.child(sg("InitialTerminationTime"))) {
      if (t->text() != "infinity") {
        termination = container::parse_lifetime_ms(t->text());
      }
    }

    auto entry_state = std::make_unique<xml::Element>(sg("Entry"));
    entry_state->append(member->clone());
    if (content) entry_state->append(content->clone());
    soap::EndpointReference entry_epr =
        create_resource(std::move(entry_state), termination);

    soap::Envelope response =
        container::make_response(ctx, sg_actions::kAdd + "Response");
    response.body().append(entry_epr.to_xml(sg("EntryEPR")));
    return response;
  });

  register_operation(sg_actions::kGetEntries, [this](
                         container::RequestContext& ctx) {
    soap::Envelope response =
        container::make_response(ctx, sg_actions::kGetEntries + "Response");
    xml::Element& body = response.add_payload(sg("GetEntriesResponse"));
    for (const std::string& id : this->home().ids()) {
      auto state = this->home().try_load(id);
      if (!state) continue;
      xml::Element& entry = body.append_element(sg("EntryListItem"));
      entry.append(this->home().epr_for(id, this->address()).to_xml(sg("EntryEPR")));
      for (const xml::Element* child : state->child_elements()) {
        entry.append(child->clone());
      }
    }
    return response;
  });
}

void ServiceGroupService::add_content_rule(xml::QName allowed_content_root) {
  content_rules_.push_back(std::move(allowed_content_root));
}

soap::EndpointReference ServiceGroupProxy::add(
    const soap::EndpointReference& member, std::unique_ptr<xml::Element> content,
    common::TimeMs termination_time) {
  auto request = std::make_unique<xml::Element>(sg("Add"));
  request->append(member.to_xml(sg("MemberEPR")));
  if (content) {
    request->append_element(sg("Content")).append(std::move(content));
  }
  if (termination_time != container::LifetimeManager::kNever) {
    request->append_element(sg("InitialTerminationTime"))
        .set_text(std::to_string(termination_time));
  }
  soap::Envelope response = invoke(sg_actions::kAdd, std::move(request));
  const xml::Element* epr = response.payload();
  if (!epr || epr->name() != sg("EntryEPR")) {
    throw soap::SoapFault("Receiver", "malformed Add response");
  }
  return soap::EndpointReference::from_xml(*epr);
}

std::vector<ServiceGroupProxy::Entry> ServiceGroupProxy::entries() {
  soap::Envelope response = invoke(
      sg_actions::kGetEntries, std::make_unique<xml::Element>(sg("GetEntries")));
  std::vector<Entry> out;
  const xml::Element* payload = response.payload();
  if (!payload) return out;
  for (const xml::Element* item : payload->children_named(sg("EntryListItem"))) {
    Entry entry;
    if (const xml::Element* e = item->child(sg("EntryEPR"))) {
      entry.entry = soap::EndpointReference::from_xml(*e);
    }
    if (const xml::Element* m = item->child(sg("MemberEPR"))) {
      entry.member = soap::EndpointReference::from_xml(*m);
    }
    if (const xml::Element* c = item->child(sg("Content"))) {
      auto kids = c->child_elements();
      if (!kids.empty()) entry.content = kids.front()->clone_element();
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace gs::wsrf
