#include "wsrf/service.hpp"

#include "wsrf/base_faults.hpp"
#include "xml/writer.hpp"
#include "xml/xpath.hpp"

namespace gs::wsrf {

namespace {
xml::QName rp(const char* local) { return {soap::ns::kWsrfRp, local}; }
xml::QName rl(const char* local) { return {soap::ns::kWsrfRl, local}; }
}  // namespace

xml::QName property_qname(const xml::Element& el, const std::string& default_ns) {
  std::string ns = el.attr("ns").value_or(default_ns);
  std::string local = el.text();
  // Trim surrounding whitespace from the local name.
  size_t b = local.find_first_not_of(" \t\r\n");
  size_t e = local.find_last_not_of(" \t\r\n");
  if (b == std::string::npos) {
    throw_base_fault(FaultType::kInvalidResourcePropertyQName,
                     "empty resource property name");
  }
  return {ns, local.substr(b, e - b + 1)};
}

WsrfService::WsrfService(std::string name, ResourceHome& home,
                         PropertySet properties, std::string address)
    : container::Service(std::move(name)),
      home_(home),
      properties_(std::move(properties)),
      address_(std::move(address)),
      get_prop_tpl_([] {
        soap::ResponseTemplate::Spec spec;
        spec.action = actions::kGetResourceProperty + "Response";
        spec.fragment = true;
        spec.build_payload = [](xml::Element& body) {
          body.append_element(rp("GetResourcePropertyResponse"))
              .append(soap::ResponseTemplate::placeholder());
        };
        return spec;
      }),
      get_doc_tpl_([] {
        soap::ResponseTemplate::Spec spec;
        spec.action = actions::kGetResourcePropertyDocument + "Response";
        spec.fragment = true;
        spec.build_payload = [](xml::Element& body) {
          body.append_element(rp("GetResourcePropertyDocumentResponse"))
              .append(soap::ResponseTemplate::placeholder());
        };
        return spec;
      }),
      set_ack_tpl_([] {
        soap::ResponseTemplate::Spec spec;
        spec.action = actions::kSetResourceProperties + "Response";
        spec.build_payload = [](xml::Element& body) {
          body.append_element(rp("SetResourcePropertiesResponse"));
        };
        return spec;
      }) {}

std::string WsrfService::resolve_resource(
    const container::RequestContext& ctx) const {
  std::optional<std::string> id = ResourceHome::id_from(ctx.info);
  if (!id) {
    throw_base_fault(FaultType::kResourceUnknown,
                     "request carries no resource identifier header");
  }
  return *id;
}

soap::EndpointReference WsrfService::create_resource(
    std::unique_ptr<xml::Element> initial_state, common::TimeMs termination_time) {
  std::string id = home_.create(std::move(initial_state), termination_time);
  return home_.epr_for(id, address_);
}

void WsrfService::on_property_changed(ChangeListener listener) {
  listeners_.push_back(std::move(listener));
}

void WsrfService::fire_property_changed(const std::string& id,
                                        const xml::QName& prop) {
  for (const auto& listener : listeners_) listener(id, prop);
}

void WsrfService::import_resource_properties() {
  register_operation(actions::kGetResourceProperty, [this](
                         container::RequestContext& ctx) {
    std::string id = resolve_resource(ctx);
    auto state = home_.load(id);
    xml::QName name = property_qname(ctx.payload(), address_);
    const ResourceProperty* prop = properties_.find(name);
    if (!prop) {
      throw_base_fault(FaultType::kInvalidResourcePropertyQName,
                       "unknown resource property " + name.clark());
    }
    if (auto pr = get_prop_tpl_.start(ctx)) {
      auto values = prop->get(*state);
      // A property with no current values serializes its wrapper
      // self-closed, which a fragment cannot reproduce — DOM path then.
      if (!values.empty()) {
        pr->fragment = std::move(values);
        return soap::Envelope::make_pending(std::move(pr));
      }
    }
    soap::Envelope response = container::make_response(
        ctx, actions::kGetResourceProperty + "Response");
    xml::Element& body =
        response.add_payload(rp("GetResourcePropertyResponse"));
    for (auto& el : prop->get(*state)) body.append(std::move(el));
    return response;
  });

  register_operation(actions::kGetMultipleResourceProperties, [this](
                         container::RequestContext& ctx) {
    std::string id = resolve_resource(ctx);
    auto state = home_.load(id);
    soap::Envelope response = container::make_response(
        ctx, actions::kGetMultipleResourceProperties + "Response");
    xml::Element& body =
        response.add_payload(rp("GetMultipleResourcePropertiesResponse"));
    for (const xml::Element* req :
         ctx.payload().children_named(rp("ResourceProperty"))) {
      xml::QName name = property_qname(*req, address_);
      const ResourceProperty* prop = properties_.find(name);
      if (!prop) {
        throw_base_fault(FaultType::kInvalidResourcePropertyQName,
                         "unknown resource property " + name.clark());
      }
      for (auto& el : prop->get(*state)) body.append(std::move(el));
    }
    return response;
  });

  register_operation(actions::kGetResourcePropertyDocument, [this](
                         container::RequestContext& ctx) {
    std::string id = resolve_resource(ctx);
    auto state = home_.load(id);
    if (auto pr = get_doc_tpl_.start(ctx)) {
      pr->fragment.push_back(
          properties_.document(*state, rp("ResourceProperties")));
      return soap::Envelope::make_pending(std::move(pr));
    }
    soap::Envelope response = container::make_response(
        ctx, actions::kGetResourcePropertyDocument + "Response");
    xml::Element& body =
        response.add_payload(rp("GetResourcePropertyDocumentResponse"));
    body.append(properties_.document(*state, rp("ResourceProperties")));
    return response;
  });

  register_operation(actions::kSetResourceProperties, [this](
                         container::RequestContext& ctx) {
    std::string id = resolve_resource(ctx);
    // Set is read-modify-write over the state document; hold the
    // resource's lock stripe across load/mutate/save so concurrent Sets
    // to the same resource cannot lose updates.
    auto resource_lock = home_.lock_resource(id);
    auto state = home_.load(id);
    std::vector<xml::QName> changed;

    for (const xml::Element* op : ctx.payload().child_elements()) {
      if (op->name() == rp("Insert")) {
        for (const xml::Element* value : op->child_elements()) {
          const ResourceProperty* prop = properties_.find(value->name());
          if (!prop || !prop->writable()) {
            throw_base_fault(FaultType::kInvalidResourcePropertyQName,
                             "cannot insert property " + value->name().clark());
          }
          // Insert appends to the existing values.
          auto existing = prop->get(*state);
          std::vector<const xml::Element*> values;
          for (const auto& el : existing) values.push_back(el.get());
          values.push_back(value);
          prop->set(*state, values);
          changed.push_back(value->name());
        }
      } else if (op->name() == rp("Update")) {
        // Group update values by property name; each property is replaced
        // wholesale by its new values.
        std::vector<const xml::Element*> values = {};
        auto kids = op->child_elements();
        for (size_t i = 0; i < kids.size();) {
          xml::QName name = kids[i]->name();
          values.clear();
          size_t j = i;
          while (j < kids.size() && kids[j]->name() == name) {
            values.push_back(kids[j]);
            ++j;
          }
          const ResourceProperty* prop = properties_.find(name);
          if (!prop || !prop->writable()) {
            throw_base_fault(FaultType::kInvalidResourcePropertyQName,
                             "cannot update property " + name.clark());
          }
          prop->set(*state, values);
          changed.push_back(name);
          i = j;
        }
      } else if (op->name() == rp("Delete")) {
        xml::QName name(op->attr("ns").value_or(address_),
                        op->attr("local").value_or(""));
        const ResourceProperty* prop = properties_.find(name);
        if (!prop || !prop->writable()) {
          throw_base_fault(FaultType::kInvalidResourcePropertyQName,
                           "cannot delete property " + name.clark());
        }
        prop->set(*state, {});
        changed.push_back(name);
      } else {
        throw soap::SoapFault("Sender", "unknown SetResourceProperties component " +
                                            op->name().clark());
      }
    }

    home_.save(id, *state);
    resource_lock.unlock();  // listeners may re-enter this resource
    for (const auto& name : changed) fire_property_changed(id, name);

    if (auto pr = set_ack_tpl_.start(ctx)) {
      return soap::Envelope::make_pending(std::move(pr));
    }
    soap::Envelope response = container::make_response(
        ctx, actions::kSetResourceProperties + "Response");
    response.add_payload(rp("SetResourcePropertiesResponse"));
    return response;
  });
}

void WsrfService::import_query_resource_properties() {
  register_operation(actions::kQueryResourceProperties, [this](
                         container::RequestContext& ctx) {
    std::string id = resolve_resource(ctx);
    auto state = home_.load(id);
    const xml::Element* query = ctx.payload().child(rp("QueryExpression"));
    if (!query) {
      throw soap::SoapFault("Sender", "QueryResourceProperties needs a "
                                      "QueryExpression");
    }
    std::string dialect = query->attr("Dialect").value_or("");
    if (dialect != kXPathDialect) {
      throw_base_fault(FaultType::kQueryEvaluationError,
                       "unsupported query dialect '" + dialect + "'");
    }
    auto doc = properties_.document(*state, rp("ResourceProperties"));
    soap::Envelope response = container::make_response(
        ctx, actions::kQueryResourceProperties + "Response");
    xml::Element& body =
        response.add_payload(rp("QueryResourcePropertiesResponse"));
    try {
      xml::XPathExpr expr = xml::XPathExpr::compile(query->text());
      xml::XPathValue value = expr.eval(*doc);
      if (value.is_node_set()) {
        for (const auto& node : value.node_set()) {
          if (node.is_element()) body.append(node.element->clone());
        }
      } else {
        body.set_text(value.to_string());
      }
    } catch (const xml::XPathError& e) {
      throw_base_fault(FaultType::kQueryEvaluationError, e.what());
    }
    return response;
  });
}

void WsrfService::import_query_resources() {
  register_operation(actions::kQueryResources, [this](
                         container::RequestContext& ctx) {
    const xml::Element* query = ctx.payload().child(rp("QueryExpression"));
    if (!query) {
      throw soap::SoapFault("Sender", "QueryResources needs a QueryExpression");
    }
    std::string dialect = query->attr("Dialect").value_or("");
    if (dialect != kXPathDialect) {
      throw_base_fault(FaultType::kQueryEvaluationError,
                       "unsupported query dialect '" + dialect + "'");
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kQueryResources + "Response");
    xml::Element& body = response.add_payload(
        xml::QName("http://gridstacks.dev/wsrf", "QueryResourcesResponse"));
    try {
      xml::XPathExpr expr = xml::XPathExpr::compile(query->text());
      for (auto& match : home_.db().query(home_.collection(), expr)) {
        xml::Element& item = body.append_element(
            xml::QName("http://gridstacks.dev/wsrf", "Match"));
        item.append(home_.epr_for(match.id, address_)
                        .to_xml(xml::QName("http://gridstacks.dev/wsrf",
                                           "ResourceEPR")));
        item.append(std::move(match.document));
      }
    } catch (const xml::XPathError& e) {
      throw_base_fault(FaultType::kQueryEvaluationError, e.what());
    }
    return response;
  });
}

void WsrfService::import_resource_lifetime() {
  register_operation(actions::kDestroy, [this](container::RequestContext& ctx) {
    std::string id = resolve_resource(ctx);
    if (!home_.destroy(id)) {
      throw_base_fault(FaultType::kResourceUnknown,
                       "no resource '" + id + "' to destroy");
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kDestroy + "Response");
    response.add_payload(rl("DestroyResponse"));
    return response;
  });

  register_operation(actions::kSetTerminationTime, [this](
                         container::RequestContext& ctx) {
    std::string id = resolve_resource(ctx);
    if (!home_.exists(id)) {
      throw_base_fault(FaultType::kResourceUnknown, "no resource '" + id + "'");
    }
    const xml::Element* requested =
        ctx.payload().child(rl("RequestedTerminationTime"));
    if (!requested) {
      throw soap::SoapFault("Sender",
                            "SetTerminationTime needs RequestedTerminationTime");
    }
    std::string text = requested->text();
    common::TimeMs t = container::LifetimeManager::kNever;
    if (text != "infinity") {
      try {
        t = container::parse_lifetime_ms(text);
      } catch (const std::exception&) {
        throw_base_fault(FaultType::kUnableToSetTerminationTime,
                         "malformed termination time '" + text + "'");
      }
    }
    if (!home_.set_termination_time(id, t)) {
      throw_base_fault(FaultType::kUnableToSetTerminationTime,
                       "resource '" + id + "' has no managed lifetime");
    }
    soap::Envelope response =
        container::make_response(ctx, actions::kSetTerminationTime + "Response");
    xml::Element& body = response.add_payload(rl("SetTerminationTimeResponse"));
    body.append_element(rl("NewTerminationTime"))
        .set_text(t == container::LifetimeManager::kNever ? "infinity"
                                                          : std::to_string(t));
    return response;
  });
}

}  // namespace gs::wsrf
