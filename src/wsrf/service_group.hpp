// WS-ServiceGroup: represented, managed collections of Web services /
// WS-Resources (registries, index services).
//
// Entries are themselves WS-Resources of the group service: Add() mints an
// entry resource holding the member EPR and its content; the entry EPR
// supports the imported WS-ResourceLifetime port type, so removing a member
// is Destroy on the entry, and entries can be added with a bounded lifetime
// (self-cleaning registries). Content rules restrict what content element
// a member may register — Add violating them raises AddRefusedFault.
#pragma once

#include "container/proxy.hpp"
#include "wsrf/service.hpp"

namespace gs::wsrf {

namespace sg_actions {
const std::string kAdd = std::string(soap::ns::kWsrfSg) + "/Add";
const std::string kGetEntries = std::string(soap::ns::kWsrfSg) + "/GetEntries";
}  // namespace sg_actions

class ServiceGroupService : public WsrfService {
 public:
  ServiceGroupService(std::string name, ResourceHome& home, std::string address);

  /// Restricts entry content to elements with this name. No rules = any
  /// content admitted.
  void add_content_rule(xml::QName allowed_content_root);

 private:
  std::vector<xml::QName> content_rules_;
};

/// Client proxy for a service group.
class ServiceGroupProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  struct Entry {
    soap::EndpointReference entry;   // the entry resource (destroy to remove)
    soap::EndpointReference member;  // the registered service/resource
    std::unique_ptr<xml::Element> content;
  };

  /// Registers a member; returns the new entry's EPR.
  soap::EndpointReference add(const soap::EndpointReference& member,
                              std::unique_ptr<xml::Element> content,
                              common::TimeMs termination_time =
                                  container::LifetimeManager::kNever);

  /// Lists current entries.
  std::vector<Entry> entries();
};

}  // namespace gs::wsrf
