// WS-BaseFaults: the standard exception-reporting format of the WSRF family.
//
// Every WSRF-side fault carries a wsbf:BaseFault-shaped Detail (Timestamp,
// Originator, ErrorCode, Description) and a subcode naming the spec fault
// type (ResourceUnknownFault, InvalidResourcePropertyQNameFault, ...).
#pragma once

#include <string>

#include "common/clock.hpp"
#include "soap/envelope.hpp"

namespace gs::wsrf {

/// Spec-defined fault types used by this implementation.
enum class FaultType {
  kBaseFault,
  kResourceUnknown,
  kInvalidResourcePropertyQName,
  kUnableToSetTerminationTime,
  kQueryEvaluationError,
  kAddRefused,  // WS-ServiceGroup content-rule rejection
};

/// The subcode string for a fault type (what goes on the wire).
std::string fault_subcode(FaultType type);

/// Builds and throws a SoapFault whose detail is a serialized BaseFault.
[[noreturn]] void throw_base_fault(FaultType type, const std::string& description,
                                   const std::string& originator = "");

/// True when a caught SoapFault carries the given WS-BaseFaults subcode.
bool is_base_fault(const soap::SoapFault& fault, FaultType type);

}  // namespace gs::wsrf
