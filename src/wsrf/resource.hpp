// The WS-Resource model: stateful resources behind a service.
//
// WSRF.NET "models Resources as XML documents that can be persisted to
// various backend stores"; a unique resource is selected per request by the
// EPR in the message headers (the WS-Resource Access Pattern). ResourceHome
// is the per-service store of one resource *type* (a WSRF requirement the
// paper contrasts with WS-Transfer's multi-type services), and PropertySet
// is the [Resource]/[ResourceProperty] programming model: stored properties
// live in the state document, computed properties project from it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/locks.hpp"
#include "container/lifetime.hpp"
#include "soap/addressing.hpp"
#include "xml/node.hpp"
#include "xmldb/database.hpp"

namespace gs::wsrf {

/// The EPR reference property that carries the resource identity.
xml::QName resource_id_qname();

/// One declared resource property.
struct ResourceProperty {
  using Getter = std::function<std::vector<std::unique_ptr<xml::Element>>(
      const xml::Element& state)>;
  using Setter = std::function<void(xml::Element& state,
                                    const std::vector<const xml::Element*>& values)>;

  xml::QName name;
  Getter get;
  Setter set;  // null for read-only (computed) properties

  bool writable() const noexcept { return static_cast<bool>(set); }
};

/// The property schema of a resource type (the RP document the service's
/// WSDL would advertise).
class PropertySet {
 public:
  /// A property stored literally as child elements of the state document
  /// (the [Resource] attribute: readable and writable).
  void declare_stored(xml::QName name);
  /// A read-only computed property (the [ResourceProperty] getter).
  void declare_computed(xml::QName name, ResourceProperty::Getter getter);
  /// A computed property with a custom setter.
  void declare_computed_rw(xml::QName name, ResourceProperty::Getter getter,
                           ResourceProperty::Setter setter);

  const ResourceProperty* find(const xml::QName& name) const;
  const std::vector<ResourceProperty>& all() const noexcept { return props_; }

  /// The full resource-properties document view of `state`.
  std::unique_ptr<xml::Element> document(const xml::Element& state,
                                         xml::QName document_name) const;

 private:
  std::vector<ResourceProperty> props_;
};

/// Store of resources of one type, bound to one database collection and
/// optionally to the container's lifetime manager for scheduled
/// termination.
class ResourceHome {
 public:
  ResourceHome(xmldb::XmlDatabase& db, std::string collection,
               container::LifetimeManager* lifetime = nullptr);

  /// Creates a resource from an initial state document and returns its
  /// server-assigned id (a GUID — "resource names generated only by
  /// services"). `termination_time` schedules destruction when a lifetime
  /// manager is attached.
  std::string create(std::unique_ptr<xml::Element> initial_state,
                     common::TimeMs termination_time =
                         container::LifetimeManager::kNever);
  /// As `create`, with a caller-chosen id (Grid-in-a-Box account service
  /// keys accounts by DN).
  void create_with_id(const std::string& id,
                      std::unique_ptr<xml::Element> initial_state,
                      common::TimeMs termination_time =
                          container::LifetimeManager::kNever);

  /// Loads a resource's state; throws ResourceUnknownFault when absent.
  std::unique_ptr<xml::Element> load(const std::string& id) const;
  /// Loads, or returns nullptr instead of faulting.
  std::unique_ptr<xml::Element> try_load(const std::string& id) const;
  /// Persists mutated state.
  void save(const std::string& id, const xml::Element& state);
  /// Destroys the resource; false when it did not exist.
  bool destroy(const std::string& id);
  bool exists(const std::string& id) const;
  std::vector<std::string> ids() const;

  /// Scheduled-termination accessors (require a lifetime manager).
  bool set_termination_time(const std::string& id, common::TimeMs t);
  std::optional<common::TimeMs> termination_time(const std::string& id) const;

  /// Builds the EPR addressing resource `id` at the service `address`.
  soap::EndpointReference epr_for(const std::string& id,
                                  const std::string& address) const;
  /// Extracts the resource id from a request's reference headers.
  static std::optional<std::string> id_from(const soap::MessageInfo& info);

  /// Hook invoked after a resource is destroyed (notification producers
  /// and service-group cleanup attach here).
  void on_destroyed(std::function<void(const std::string& id)> hook);

  /// Rehydrates the home from a durable database after a restart:
  /// re-registers a lifetime handle for every document in the collection,
  /// restoring each resource's scheduled termination from the side
  /// collection where finite termination times are persisted (an
  /// unpersisted or unparsable entry degrades to kNever — a leak, never a
  /// premature destroy). Resources already holding a handle are skipped,
  /// so recover() is idempotent. Returns the number of resources
  /// rehydrated. Container deployments register this as a recovery hook.
  std::size_t recover();

  /// Serializes read-modify-write sequences on one resource: hold the
  /// returned lock across load/mutate/save so concurrent writers to the
  /// same resource cannot interleave (writers to other resources usually
  /// proceed in parallel — ids share a fixed set of lock stripes).
  std::unique_lock<std::mutex> lock_resource(const std::string& id) const {
    return locks_.lock(id);
  }

  xmldb::XmlDatabase& db() noexcept { return db_; }
  const std::string& collection() const noexcept { return collection_; }

 private:
  void register_lifetime(const std::string& id, common::TimeMs termination_time);
  /// Side collection ("<collection>_tt") holding one document per resource
  /// with a finite termination time — what recover() reads to restore
  /// schedules. kNever is represented by absence.
  std::string tt_collection() const { return collection_ + "_tt"; }
  void persist_termination(const std::string& id, common::TimeMs t);

  xmldb::XmlDatabase& db_;
  std::string collection_;
  container::LifetimeManager* lifetime_;
  mutable std::mutex mu_;
  mutable common::StripedLocks locks_;
  std::map<std::string, container::LifetimeManager::Handle> handles_;
  std::vector<std::function<void(const std::string&)>> destroy_hooks_;
};

}  // namespace gs::wsrf
