#include "wsrf/client.hpp"

namespace gs::wsrf {

namespace {

xml::QName rp(const char* local) { return {soap::ns::kWsrfRp, local}; }
xml::QName rl(const char* local) { return {soap::ns::kWsrfRl, local}; }

std::unique_ptr<xml::Element> name_element(xml::QName wrapper,
                                           const xml::QName& prop) {
  auto el = std::make_unique<xml::Element>(std::move(wrapper));
  if (!prop.ns().empty()) el->set_attr("ns", prop.ns());
  el->set_text(prop.local());
  return el;
}

std::vector<std::unique_ptr<xml::Element>> clone_payload_children(
    const soap::Envelope& response) {
  std::vector<std::unique_ptr<xml::Element>> out;
  if (const xml::Element* payload = response.payload()) {
    for (const xml::Element* el : payload->child_elements()) {
      out.push_back(el->clone_element());
    }
  }
  return out;
}

}  // namespace

std::vector<std::unique_ptr<xml::Element>> WsResourceProxy::get_property(
    const xml::QName& name) {
  soap::Envelope response = invoke(
      actions::kGetResourceProperty, name_element(rp("GetResourceProperty"), name));
  return clone_payload_children(response);
}

std::string WsResourceProxy::get_property_text(const xml::QName& name) {
  auto values = get_property(name);
  return values.empty() ? std::string() : values.front()->text();
}

std::vector<std::unique_ptr<xml::Element>> WsResourceProxy::get_properties(
    const std::vector<xml::QName>& names) {
  auto request =
      std::make_unique<xml::Element>(rp("GetMultipleResourceProperties"));
  for (const auto& name : names) {
    request->append(name_element(rp("ResourceProperty"), name));
  }
  soap::Envelope response =
      invoke(actions::kGetMultipleResourceProperties, std::move(request));
  return clone_payload_children(response);
}

std::unique_ptr<xml::Element> WsResourceProxy::get_property_document() {
  soap::Envelope response =
      invoke(actions::kGetResourcePropertyDocument,
             std::make_unique<xml::Element>(rp("GetResourcePropertyDocument")));
  auto children = clone_payload_children(response);
  return children.empty() ? nullptr : std::move(children.front());
}

void WsResourceProxy::update_property(
    const xml::QName& name, std::vector<std::unique_ptr<xml::Element>> values) {
  (void)name;
  auto request = std::make_unique<xml::Element>(rp("SetResourceProperties"));
  xml::Element& update = request->append_element(rp("Update"));
  for (auto& v : values) update.append(std::move(v));
  invoke(actions::kSetResourceProperties, std::move(request));
}

void WsResourceProxy::update_property_text(const xml::QName& name,
                                           const std::string& text) {
  auto value = std::make_unique<xml::Element>(name);
  value->set_text(text);
  std::vector<std::unique_ptr<xml::Element>> values;
  values.push_back(std::move(value));
  update_property(name, std::move(values));
}

void WsResourceProxy::insert_property(std::unique_ptr<xml::Element> value) {
  auto request = std::make_unique<xml::Element>(rp("SetResourceProperties"));
  request->append_element(rp("Insert")).append(std::move(value));
  invoke(actions::kSetResourceProperties, std::move(request));
}

void WsResourceProxy::delete_property(const xml::QName& name) {
  auto request = std::make_unique<xml::Element>(rp("SetResourceProperties"));
  xml::Element& del = request->append_element(rp("Delete"));
  del.set_attr("ns", name.ns());
  del.set_attr("local", name.local());
  invoke(actions::kSetResourceProperties, std::move(request));
}

std::vector<std::unique_ptr<xml::Element>> WsResourceProxy::query(
    const std::string& xpath) {
  auto request = std::make_unique<xml::Element>(rp("QueryResourceProperties"));
  xml::Element& expr = request->append_element(rp("QueryExpression"));
  expr.set_attr("Dialect", kXPathDialect);
  expr.set_text(xpath);
  soap::Envelope response =
      invoke(actions::kQueryResourceProperties, std::move(request));
  return clone_payload_children(response);
}

std::vector<WsResourceProxy::ResourceMatch> WsResourceProxy::query_resources(
    const std::string& xpath) {
  auto request = std::make_unique<xml::Element>(
      xml::QName("http://gridstacks.dev/wsrf", "QueryResources"));
  xml::Element& expr = request->append_element(rp("QueryExpression"));
  expr.set_attr("Dialect", kXPathDialect);
  expr.set_text(xpath);
  soap::Envelope response = invoke(actions::kQueryResources, std::move(request));
  std::vector<ResourceMatch> out;
  const xml::Element* payload = response.payload();
  if (!payload) return out;
  xml::QName match_qn("http://gridstacks.dev/wsrf", "Match");
  xml::QName epr_qn("http://gridstacks.dev/wsrf", "ResourceEPR");
  for (const xml::Element* item : payload->children_named(match_qn)) {
    ResourceMatch match;
    if (const xml::Element* epr = item->child(epr_qn)) {
      match.epr = soap::EndpointReference::from_xml(*epr);
    }
    for (const xml::Element* child : item->child_elements()) {
      if (child->name() != epr_qn) {
        match.state = child->clone_element();
        break;
      }
    }
    out.push_back(std::move(match));
  }
  return out;
}

void WsResourceProxy::destroy() {
  invoke(actions::kDestroy, std::make_unique<xml::Element>(rl("Destroy")));
}

common::TimeMs WsResourceProxy::set_termination_time(common::TimeMs t) {
  auto request = std::make_unique<xml::Element>(rl("SetTerminationTime"));
  request->append_element(rl("RequestedTerminationTime"))
      .set_text(t == container::LifetimeManager::kNever ? "infinity"
                                                        : std::to_string(t));
  soap::Envelope response = invoke(actions::kSetTerminationTime, std::move(request));
  const xml::Element* payload = response.payload();
  const xml::Element* granted =
      payload ? payload->child(rl("NewTerminationTime")) : nullptr;
  if (!granted) throw soap::SoapFault("Receiver", "malformed SetTerminationTime response");
  std::string text = granted->text();
  return text == "infinity" ? container::LifetimeManager::kNever
                            : container::parse_lifetime_ms(text);
}

}  // namespace gs::wsrf
