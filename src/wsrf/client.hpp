// Client proxy for WS-Resources.
//
// Because WSRF defines the message schemas in the service WSDL, this proxy
// returns typed values where possible — the paper notes "the WSRF.NET
// proxies are able to automatically deserialize the XML into C# run-time
// objects", in contrast with the WS-Transfer proxy's raw XML arrays.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "container/proxy.hpp"
#include "wsrf/service.hpp"

namespace gs::wsrf {

class WsResourceProxy : public container::ProxyBase {
 public:
  using container::ProxyBase::ProxyBase;

  /// GetResourceProperty: all values of one property.
  std::vector<std::unique_ptr<xml::Element>> get_property(const xml::QName& name);
  /// Text of the first value (the common scalar-property case).
  std::string get_property_text(const xml::QName& name);

  /// GetMultipleResourceProperties.
  std::vector<std::unique_ptr<xml::Element>> get_properties(
      const std::vector<xml::QName>& names);

  /// GetResourcePropertyDocument: the whole RP document.
  std::unique_ptr<xml::Element> get_property_document();

  /// SetResourceProperties/Update with element values.
  void update_property(const xml::QName& name,
                       std::vector<std::unique_ptr<xml::Element>> values);
  /// Update a scalar property: `<name>text</name>`.
  void update_property_text(const xml::QName& name, const std::string& text);
  /// SetResourceProperties/Insert of one value.
  void insert_property(std::unique_ptr<xml::Element> value);
  /// SetResourceProperties/Delete.
  void delete_property(const xml::QName& name);

  /// QueryResourceProperties with the XPath dialect; returns the selected
  /// elements (empty when the query selected a non-node-set value).
  std::vector<std::unique_ptr<xml::Element>> query(const std::string& xpath);

  /// WS-ResourceLifetime Destroy.
  void destroy();
  /// WS-ResourceLifetime SetTerminationTime; returns the granted time
  /// (kNever for "infinity").
  common::TimeMs set_termination_time(common::TimeMs t);

  /// The multi-resource query extension: every resource of the service
  /// whose state document the XPath selects, as (EPR, state) pairs.
  /// Targets the service address; no resource header is needed.
  struct ResourceMatch {
    soap::EndpointReference epr;
    std::unique_ptr<xml::Element> state;
  };
  std::vector<ResourceMatch> query_resources(const std::string& xpath);
};

}  // namespace gs::wsrf
