// WSRF service base: the WSRF.NET programming model.
//
// A WsrfService owns a ResourceHome (one resource type per service — the
// WSRF constraint the paper highlights) and a PropertySet. Spec port types
// are "imported" with one call each, mirroring the [WSRFPortType] attribute:
//
//   WsrfService svc("Counter", home, props, address);
//   svc.import_resource_properties();   // WS-ResourceProperties operations
//   svc.import_resource_lifetime();     // WS-ResourceLifetime operations
//
// WSRF deliberately does not define Create; `create_resource` is the
// library method (ServiceBase.Create() in WSRF.NET) that the service author
// chooses how — or whether — to expose on the wire.
#pragma once

#include <functional>
#include <string>

#include "container/service.hpp"
#include "container/templated.hpp"
#include "soap/namespaces.hpp"
#include "wsrf/resource.hpp"

namespace gs::wsrf {

/// wsa:Action URIs for the imported port types.
namespace actions {
const std::string kGetResourceProperty =
    std::string(soap::ns::kWsrfRp) + "/GetResourceProperty";
const std::string kGetMultipleResourceProperties =
    std::string(soap::ns::kWsrfRp) + "/GetMultipleResourceProperties";
const std::string kGetResourcePropertyDocument =
    std::string(soap::ns::kWsrfRp) + "/GetResourcePropertyDocument";
const std::string kSetResourceProperties =
    std::string(soap::ns::kWsrfRp) + "/SetResourceProperties";
const std::string kQueryResourceProperties =
    std::string(soap::ns::kWsrfRp) + "/QueryResourceProperties";
const std::string kDestroy = std::string(soap::ns::kWsrfRl) + "/Destroy";
const std::string kSetTerminationTime =
    std::string(soap::ns::kWsrfRl) + "/SetTerminationTime";
/// Implementation-defined (WSRF.NET-style) extension: one XPath evaluated
/// against EVERY resource of the service — the "rich queries over the
/// state of multiple resources" the paper credits to the XML-database
/// backing model. Not an OASIS-defined operation.
const std::string kQueryResources = "http://gridstacks.dev/wsrf/QueryResources";
}  // namespace actions

/// The XPath dialect URI accepted by QueryResourceProperties.
inline constexpr const char* kXPathDialect =
    "http://www.w3.org/TR/1999/REC-xpath-19991116";

class WsrfService : public container::Service {
 public:
  /// `address` is the service URL resources of this service are addressed
  /// at (it goes into every EPR the service mints).
  WsrfService(std::string name, ResourceHome& home, PropertySet properties,
              std::string address);

  // --- port-type imports ------------------------------------------------------

  /// GetResourceProperty / GetMultipleResourceProperties /
  /// GetResourcePropertyDocument / SetResourceProperties.
  void import_resource_properties();
  /// QueryResourceProperties (XPath dialect).
  void import_query_resource_properties();
  /// The multi-resource query extension (see actions::kQueryResources):
  /// returns the EPR and matching state of every resource the expression
  /// selects. Queries run against the *state documents* (what the database
  /// stores), not the projected RP documents.
  void import_query_resources();
  /// Destroy / SetTerminationTime, plus the CurrentTime and
  /// TerminationTime computed properties.
  void import_resource_lifetime();

  // --- the Create() library method --------------------------------------------

  /// Places a new resource in the backing store and returns its EPR.
  soap::EndpointReference create_resource(
      std::unique_ptr<xml::Element> initial_state,
      common::TimeMs termination_time = container::LifetimeManager::kNever);

  // --- notification hook -------------------------------------------------------

  using ChangeListener =
      std::function<void(const std::string& resource_id, const xml::QName& prop)>;
  /// Invoked after SetResourceProperties commits a change (the WSN
  /// producer subscribes here to publish value-changed topics).
  void on_property_changed(ChangeListener listener);

  // --- service-author helpers --------------------------------------------------

  ResourceHome& home() noexcept { return home_; }
  const PropertySet& properties() const noexcept { return properties_; }
  const std::string& address() const noexcept { return address_; }

  /// The resource id addressed by the request; throws ResourceUnknownFault
  /// when the reference header is absent or the resource does not exist.
  std::string resolve_resource(const container::RequestContext& ctx) const;

  void fire_property_changed(const std::string& id, const xml::QName& prop);

 private:
  ResourceHome& home_;
  PropertySet properties_;
  std::string address_;
  std::vector<ChangeListener> listeners_;
  // Wire fast path: compiled skeletons for the hottest WS-RP replies.
  // The property values render as a fragment with the captured writer
  // state; the Set ack is a fully static skeleton.
  container::TemplatedResponder get_prop_tpl_;
  container::TemplatedResponder get_doc_tpl_;
  container::TemplatedResponder set_ack_tpl_;
};

/// Reads the (ns, local) pair off a property-name element:
/// `<el ns="uri">Local</el>`; ns defaults to `default_ns`.
xml::QName property_qname(const xml::Element& el, const std::string& default_ns);

}  // namespace gs::wsrf
