#include "wsrf/base_faults.hpp"

#include "soap/namespaces.hpp"
#include "xml/writer.hpp"

namespace gs::wsrf {

std::string fault_subcode(FaultType type) {
  switch (type) {
    case FaultType::kBaseFault: return "wsbf:BaseFault";
    case FaultType::kResourceUnknown: return "wsbf:ResourceUnknownFault";
    case FaultType::kInvalidResourcePropertyQName:
      return "wsbf:InvalidResourcePropertyQNameFault";
    case FaultType::kUnableToSetTerminationTime:
      return "wsbf:UnableToSetTerminationTimeFault";
    case FaultType::kQueryEvaluationError: return "wsbf:QueryEvaluationErrorFault";
    case FaultType::kAddRefused: return "wsbf:AddRefusedFault";
  }
  return "wsbf:BaseFault";
}

void throw_base_fault(FaultType type, const std::string& description,
                      const std::string& originator) {
  // Detail: a serialized wsbf:BaseFault document.
  xml::Element detail(xml::QName(soap::ns::kWsrfBf, "BaseFault"));
  detail.append_element(soap::ns::kWsrfBf, "Timestamp")
      .set_text(std::to_string(common::RealClock::instance().now()));
  if (!originator.empty()) {
    detail.append_element(soap::ns::kWsrfBf, "Originator").set_text(originator);
  }
  detail.append_element(soap::ns::kWsrfBf, "Description").set_text(description);

  soap::Fault fault;
  fault.code = "Sender";
  fault.subcode = fault_subcode(type);
  fault.reason = description;
  fault.detail = xml::write(detail);
  throw soap::SoapFault(std::move(fault));
}

bool is_base_fault(const soap::SoapFault& fault, FaultType type) {
  return fault.fault().subcode == fault_subcode(type);
}

}  // namespace gs::wsrf
