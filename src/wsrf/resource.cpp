#include "wsrf/resource.hpp"

#include "common/uuid.hpp"
#include "wsrf/base_faults.hpp"

namespace gs::wsrf {

namespace {
constexpr const char* kWsrfNetNs = "http://gridstacks.dev/wsrf";
}  // namespace

xml::QName resource_id_qname() { return {kWsrfNetNs, "ResourceID"}; }

void PropertySet::declare_stored(xml::QName name) {
  ResourceProperty prop;
  prop.name = name;
  prop.get = [name](const xml::Element& state) {
    std::vector<std::unique_ptr<xml::Element>> out;
    for (const xml::Element* child : state.children_named(name)) {
      out.push_back(child->clone_element());
    }
    return out;
  };
  prop.set = [name](xml::Element& state,
                    const std::vector<const xml::Element*>& values) {
    // Replace all existing occurrences with the new values.
    for (;;) {
      xml::Element* existing = state.child(name);
      if (!existing) break;
      state.remove_child(*existing);
    }
    for (const xml::Element* v : values) state.append(v->clone());
  };
  props_.push_back(std::move(prop));
}

void PropertySet::declare_computed(xml::QName name,
                                   ResourceProperty::Getter getter) {
  props_.push_back({std::move(name), std::move(getter), nullptr});
}

void PropertySet::declare_computed_rw(xml::QName name,
                                      ResourceProperty::Getter getter,
                                      ResourceProperty::Setter setter) {
  props_.push_back({std::move(name), std::move(getter), std::move(setter)});
}

const ResourceProperty* PropertySet::find(const xml::QName& name) const {
  for (const auto& p : props_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::unique_ptr<xml::Element> PropertySet::document(
    const xml::Element& state, xml::QName document_name) const {
  auto doc = std::make_unique<xml::Element>(std::move(document_name));
  for (const auto& p : props_) {
    for (auto& el : p.get(state)) doc->append(std::move(el));
  }
  return doc;
}

ResourceHome::ResourceHome(xmldb::XmlDatabase& db, std::string collection,
                           container::LifetimeManager* lifetime)
    : db_(db), collection_(std::move(collection)), lifetime_(lifetime) {}

std::string ResourceHome::create(std::unique_ptr<xml::Element> initial_state,
                                 common::TimeMs termination_time) {
  std::string id = common::new_uuid();
  create_with_id(id, std::move(initial_state), termination_time);
  return id;
}

void ResourceHome::create_with_id(const std::string& id,
                                  std::unique_ptr<xml::Element> initial_state,
                                  common::TimeMs termination_time) {
  db_.store(collection_, id, *initial_state);
  persist_termination(id, termination_time);
  register_lifetime(id, termination_time);
}

void ResourceHome::persist_termination(const std::string& id, common::TimeMs t) {
  if (!lifetime_) return;  // no scheduled termination to survive a restart
  if (t == container::LifetimeManager::kNever) {
    db_.remove(tt_collection(), id);
  } else {
    xml::Element doc{xml::QName("termination")};
    doc.set_attr("ms", std::to_string(t));
    db_.store(tt_collection(), id, doc);
  }
}

void ResourceHome::register_lifetime(const std::string& id,
                                     common::TimeMs termination_time) {
  if (!lifetime_) return;
  container::LifetimeManager::Handle handle = lifetime_->schedule(
      termination_time, [this, id] {
        db_.remove(collection_, id);
        db_.remove(tt_collection(), id);
        std::vector<std::function<void(const std::string&)>> hooks;
        {
          std::lock_guard lock(mu_);
          handles_.erase(id);
          hooks = destroy_hooks_;
        }
        for (const auto& hook : hooks) hook(id);
      });
  std::lock_guard lock(mu_);
  handles_[id] = handle;
}

std::size_t ResourceHome::recover() {
  std::size_t rehydrated = 0;
  for (const std::string& id : db_.ids(collection_)) {
    {
      std::lock_guard lock(mu_);
      if (handles_.count(id)) continue;  // already live in this process
    }
    common::TimeMs t = container::LifetimeManager::kNever;
    if (auto doc = db_.load(tt_collection(), id)) {
      try {
        t = std::stoll(doc->attr("ms").value_or(""));
      } catch (const std::exception&) {
        t = container::LifetimeManager::kNever;
      }
    }
    // A termination time already in the past is re-registered as is: the
    // next lifetime sweep destroys the resource through the normal path
    // (running destroy hooks), exactly as if the container had been up.
    register_lifetime(id, t);
    ++rehydrated;
  }
  return rehydrated;
}

std::unique_ptr<xml::Element> ResourceHome::load(const std::string& id) const {
  auto state = db_.load(collection_, id);
  if (!state) {
    throw_base_fault(FaultType::kResourceUnknown,
                     "no resource '" + id + "' in " + collection_);
  }
  return state;
}

std::unique_ptr<xml::Element> ResourceHome::try_load(const std::string& id) const {
  return db_.load(collection_, id);
}

void ResourceHome::save(const std::string& id, const xml::Element& state) {
  db_.store(collection_, id, state);
}

bool ResourceHome::destroy(const std::string& id) {
  container::LifetimeManager::Handle handle = 0;
  {
    std::lock_guard lock(mu_);
    auto it = handles_.find(id);
    if (it != handles_.end()) {
      handle = it->second;
    }
  }
  if (handle != 0 && lifetime_) {
    // destroy() runs the scheduled callback, which removes the document
    // (and its persisted termination time) and fires the hooks.
    return lifetime_->destroy(handle);
  }
  bool removed = db_.remove(collection_, id);
  if (removed) {
    if (lifetime_) db_.remove(tt_collection(), id);
    std::vector<std::function<void(const std::string&)>> hooks;
    {
      std::lock_guard lock(mu_);
      hooks = destroy_hooks_;
    }
    for (const auto& hook : hooks) hook(id);
  }
  return removed;
}

bool ResourceHome::exists(const std::string& id) const {
  return db_.contains(collection_, id);
}

std::vector<std::string> ResourceHome::ids() const { return db_.ids(collection_); }

bool ResourceHome::set_termination_time(const std::string& id, common::TimeMs t) {
  container::LifetimeManager::Handle handle;
  {
    std::lock_guard lock(mu_);
    auto it = handles_.find(id);
    if (it == handles_.end() || !lifetime_) return false;
    handle = it->second;
  }
  bool ok = lifetime_->set_termination_time(handle, t);
  if (ok) persist_termination(id, t);  // outside mu_: persist takes the db path
  return ok;
}

std::optional<common::TimeMs> ResourceHome::termination_time(
    const std::string& id) const {
  std::lock_guard lock(mu_);
  auto it = handles_.find(id);
  if (it == handles_.end() || !lifetime_) return std::nullopt;
  return lifetime_->termination_time(it->second);
}

soap::EndpointReference ResourceHome::epr_for(const std::string& id,
                                              const std::string& address) const {
  soap::EndpointReference epr(address);
  epr.add_reference_property(resource_id_qname(), id);
  return epr;
}

std::optional<std::string> ResourceHome::id_from(const soap::MessageInfo& info) {
  return info.reference_header(resource_id_qname());
}

void ResourceHome::on_destroyed(std::function<void(const std::string&)> hook) {
  std::lock_guard lock(mu_);
  destroy_hooks_.push_back(std::move(hook));
}

}  // namespace gs::wsrf
