// Durable batch-controller state.
//
// The scheduler is pure in-memory policy; this module is its persistence
// shadow. DurableSchedStore opens three collections through the
// DurableStore facade — jobs, partitions, nodes — and keeps them current:
// attach() subscribes to the scheduler's submit and transition streams so
// every job document is rewritten at each state change, and partitions /
// node registrations are saved explicitly by the wiring that creates
// them. restore() is the inverse, run during the container's recovery
// phase: partitions first, then nodes (marked for re-registration via
// heartbeat), then jobs in submit order so afterok parents always precede
// their children.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "sched/node_registry.hpp"
#include "sched/scheduler.hpp"
#include "xml/node.hpp"
#include "xmldb/durable_store.hpp"

namespace gs::sched {

/// Inverse of service.cpp's job_element(): rebuilds a JobInfo from its
/// persisted document. Missing attributes degrade to defaults.
JobInfo job_from_element(const xml::Element& el);

struct RestoreSummary {
  std::size_t partitions = 0;
  std::size_t nodes = 0;
  std::size_t jobs = 0;        // restored into the scheduler
  std::size_t skipped = 0;     // unparsable or duplicate documents
};

class DurableSchedStore {
 public:
  /// Opens (and version-checks) the sched collections on `store`'s
  /// database. Does not read any job state — call restore() for that.
  DurableSchedStore(xmldb::DurableStore& store, Scheduler& sched);

  /// Subscribes to the scheduler: every accepted submission and every
  /// state transition rewrites that job's document, so the collection
  /// always holds the latest acked view. Call once, after restore().
  void attach();

  /// Rehydrates scheduler state from the collections. Safe to call on a
  /// fresh database (restores nothing) and idempotent on a live scheduler
  /// (Scheduler::restore skips existing ids).
  RestoreSummary restore();

  /// Partition/node state changes have no listener stream — the wiring
  /// that adds them persists them through these.
  void save_partition(const Partition& partition);
  void save_node(const NodeInfo& node);

  static const char* jobs_collection() { return "sched_jobs"; }
  static const char* partitions_collection() { return "sched_partitions"; }
  static const char* nodes_collection() { return "sched_nodes"; }

 private:
  void save_job(const JobInfo& info);

  xmldb::DurableStore& store_;
  Scheduler& sched_;
};

}  // namespace gs::sched
