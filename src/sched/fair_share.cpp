#include "sched/fair_share.hpp"

namespace gs::sched {

void FairShareTracker::set_shares(const std::string& account, double shares) {
  accounts_[account].shares = shares > 0 ? shares : 1.0;
}

void FairShareTracker::record_usage(const std::string& account, double cpu_ms) {
  if (cpu_ms <= 0) return;
  accounts_[account].usage_cpu_ms += cpu_ms;
}

void FairShareTracker::decay(common::TimeMs now) {
  if (!decayed_once_) {
    decayed_once_ = true;
    last_decay_ = now;
    return;
  }
  common::TimeMs elapsed = now - last_decay_;
  if (elapsed <= 0) return;
  last_decay_ = now;
  double factor =
      std::pow(0.5, static_cast<double>(elapsed) / half_life_ms_);
  for (auto& [name, account] : accounts_) {
    account.usage_cpu_ms *= factor;
  }
}

double FairShareTracker::factor(const std::string& account) const {
  auto it = accounts_.find(account);
  if (it == accounts_.end()) return 1.0;

  double total_usage = 0.0;
  double total_shares = 0.0;
  for (const auto& [name, a] : accounts_) {
    total_usage += a.usage_cpu_ms;
    total_shares += a.shares;
  }
  if (total_usage <= 0.0 || total_shares <= 0.0) return 1.0;

  double u = it->second.usage_cpu_ms / total_usage;
  double s = it->second.shares / total_shares;
  if (s <= 0.0) return 0.0;
  return std::pow(2.0, -u / s);
}

double FairShareTracker::usage(const std::string& account) const {
  auto it = accounts_.find(account);
  return it == accounts_.end() ? 0.0 : it->second.usage_cpu_ms;
}

}  // namespace gs::sched
