// The batch controller: a SLURM-shaped scheduler over the JobRunner.
//
// The paper's Grid-in-a-Box ExecService runs one process per request; real
// OGSA deployments front a batch system. This scheduler grows the
// app::JobRunner substrate into that controller:
//
//   * jobs are submitted into partitions (queues) with CPU/memory slot
//     requests, optional time limits, job arrays, and afterok dependencies;
//   * each schedule_pass() places pending jobs in priority order —
//     priority = age + fair-share + partition weight − nice — using
//     first-fit against per-node slots;
//   * when the head job does not fit, it gets a reservation: its shadow
//     time (earliest start reachable by replaying running-job time limits)
//     caps everything placed after it, so backfilled jobs can never delay
//     it (EASY backfill's guarantee); placements made under that cap count
//     as sched.backfill_placed;
//   * a blocked job from a higher preemption tier may preempt running
//     preemptable jobs from lower tiers on shared nodes — victims are
//     killed and requeued (PENDING again after a PREEMPTED transition);
//   * nodes that miss heartbeats go DOWN and their jobs are requeued.
//
// Every state transition (PENDING→RUNNING→COMPLETED/FAILED/CANCELLED/
// PREEMPTED) is reported to listeners OUTSIDE the scheduler lock; the
// service layer forwards them to WSN and WS-Eventing subscribers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/job_runner.hpp"
#include "common/clock.hpp"
#include "sched/fair_share.hpp"
#include "sched/node_registry.hpp"
#include "telemetry/metrics.hpp"

namespace gs::sched {

enum class JobState {
  kPending,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
  kPreempted,  // transient: a preempted job requeues to kPending
};

const char* job_state_name(JobState state);
bool is_terminal(JobState state);

/// What a client submits.
struct JobSpec {
  std::string name;
  std::string account = "default";
  std::string partition;
  std::string command;      // JobRunner command ("sim:..." / "exec:...")
  std::string working_dir;
  unsigned cpus = 1;
  std::uint64_t mem_mb = 100;
  common::TimeMs time_limit_ms = 0;  // 0 = partition default
  int array_count = 1;               // > 1 expands into array tasks
  std::vector<std::string> depends_on;  // job ids; afterok semantics
  int nice = 0;                      // subtracts from priority
};

/// A copyable view of one job's state (what documents and events carry).
struct JobInfo {
  std::string id;
  std::string name;
  std::string account;
  std::string partition;
  std::string command;
  std::string node;  // placement, empty while pending
  unsigned cpus = 1;
  std::uint64_t mem_mb = 0;
  JobState state = JobState::kPending;
  int exit_code = 0;
  bool backfilled = false;
  int preempt_count = 0;
  std::string reason;  // "timeout", "node_fail", "dependency", ...
  common::TimeMs submit_time = 0;
  common::TimeMs start_time = 0;
  common::TimeMs end_time = 0;
  common::TimeMs time_limit_ms = 0;
  std::vector<std::string> depends_on;
};

class Scheduler {
 public:
  struct Config {
    const common::Clock* clock = &common::RealClock::instance();
    app::JobRunner* runner = nullptr;
    NodeRegistry* nodes = nullptr;
    common::TimeMs heartbeat_timeout_ms = 30'000;
    common::TimeMs fairshare_half_life_ms = 3600'000;
    /// Pending jobs examined past the reserved head job per pass.
    int backfill_depth = 1000;
    /// Priority weights (SLURM's multifactor knobs, simplified).
    double weight_age = 1.0;          // per minute queued
    double weight_fairshare = 1000.0; // × fair-share factor in [0, 1]
    double weight_partition = 100.0;  // × partition priority
    telemetry::MetricsRegistry* metrics =
        &telemetry::MetricsRegistry::global();
  };

  struct PassResult {
    size_t placed = 0;
    size_t backfilled = 0;
    size_t preempted = 0;
    size_t requeued = 0;   // node failures
    size_t timed_out = 0;
  };

  using TransitionListener =
      std::function<void(const JobInfo&, JobState from, JobState to)>;
  using SubmitListener = std::function<void(const JobInfo&)>;

  explicit Scheduler(Config config);

  // --- policy -----------------------------------------------------------------

  void add_partition(Partition partition);
  std::vector<Partition> partitions() const;
  void set_account_shares(const std::string& account, double shares);
  double fairshare_factor(const std::string& account) const;

  // --- job lifecycle ----------------------------------------------------------

  /// Validates and queues the job (arrays expand to `array_count` tasks,
  /// ids "<id>" and "<id>_<k>"). Returns the ids. Throws
  /// soap::SoapFault("Sender", ...) for unknown partitions, impossible
  /// sizes, or unknown dependencies.
  std::vector<std::string> submit(const JobSpec& spec);

  /// Cancels a pending or running job (kills the process). False when
  /// unknown or already terminal.
  bool cancel(const std::string& id);

  std::optional<JobInfo> info(const std::string& id) const;
  /// Every non-reaped job, submit order; `state` filters when set.
  std::vector<JobInfo> jobs(std::optional<JobState> state = std::nullopt) const;
  size_t queue_depth() const;
  size_t running_count() const;

  /// The priority the next pass would use (tests inspect ordering).
  double priority_of(const std::string& id) const;

  // --- the scheduling loop ----------------------------------------------------

  /// Retires finished processes (JobRunner::poll) — completions fire here.
  void poll() { runner_->poll(); }

  /// One scheduling cycle: fair-share decay, heartbeat sweep + requeue,
  /// time-limit enforcement, priority placement, backfill, preemption.
  PassResult schedule_pass();

  /// Earliest time a running job can end (its sim: duration when known,
  /// else its time limit); nullopt when nothing runs. Drives simulated
  /// time forward in tests and benches.
  std::optional<common::TimeMs> next_event_time() const;

  /// Registers a transition listener (invoked outside the scheduler lock).
  void on_transition(TransitionListener listener);
  /// Registers a submit listener: fired once per accepted job, outside the
  /// lock, after the job is queued (durable persistence attaches here —
  /// transitions alone never see the initial PENDING).
  void on_submit(SubmitListener listener);

  /// Re-inserts one persisted job after a restart. Terminal jobs keep
  /// their recorded state (the document view stays complete); a job that
  /// was RUNNING or mid-preemption returns to PENDING with reason
  /// "container_restart" — its process died with the container.
  /// Dependency state is rebuilt from the restored parents, so callers
  /// must restore in submit order (submit-time order works: parents are
  /// always older). The id counter advances past the restored id. False
  /// when the id already exists (restore is idempotent).
  bool restore(const JobInfo& persisted);

  NodeRegistry& nodes() noexcept { return *nodes_; }
  app::JobRunner& runner() noexcept { return *runner_; }
  const common::Clock& clock() const noexcept { return *clock_; }

 private:
  struct Job {
    JobInfo info;
    std::string pid;                 // JobRunner pid while running
    int incarnation = 0;             // bumped per placement; guards callbacks
    common::TimeMs sim_duration_ms = -1;  // parsed from "sim:"; -1 = unknown
    std::vector<std::string> waiting_on;  // unresolved deps
    std::uint64_t seq = 0;           // submission order tiebreak
    int nice = 0;
    std::string working_dir;
  };

  struct Transition {
    JobInfo info;
    JobState from;
    JobState to;
  };

  struct Placement {
    std::string id;
    std::string node;
    int incarnation = 0;
    bool backfill = false;
  };

  // All private helpers assume mu_ is held.
  double priority_locked(const Job& job, common::TimeMs now) const;
  const Partition* find_partition(const std::string& name) const;
  void set_state_locked(Job& job, JobState to,
                        std::vector<Transition>& transitions);
  void finish_locked(Job& job, JobState to, std::vector<Transition>& out);
  void requeue_locked(Job& job, const std::string& reason,
                      std::vector<Transition>& out);
  void resolve_dependents_locked(const Job& parent,
                                 std::vector<Transition>& out);
  bool deps_ready(const Job& job) const { return job.waiting_on.empty(); }
  /// Earliest time `cpus`/`mem` fit on `partition` assuming running jobs
  /// end at their limits; nullopt when the job can never fit.
  std::optional<common::TimeMs> shadow_time_locked(
      const std::string& partition, unsigned cpus, std::uint64_t mem_mb,
      common::TimeMs now) const;
  void emit(std::vector<Transition>& transitions);
  /// The JobRunner exit callback (fired outside the runner's lock). Ignored
  /// unless the job is still RUNNING in the same placement incarnation —
  /// the cancel/preempt/timeout paths move the job out of RUNNING before
  /// killing, so their kill's callback (and any stale callback from an
  /// earlier incarnation) cannot double-complete the job.
  void on_runner_exit(const std::string& id, int incarnation,
                      const std::string& pid,
                      const app::JobRunner::Status& status);
  void update_gauges_locked();

  const common::Clock* clock_;
  app::JobRunner* runner_;
  NodeRegistry* nodes_;
  Config config_;

  mutable std::mutex mu_;
  std::map<std::string, Partition> partitions_;
  FairShareTracker fairshare_;
  std::map<std::string, Job> jobs_;          // id -> job
  std::vector<std::string> order_;           // submit order (document view)
  std::map<std::string, std::vector<std::string>> dependents_;
  size_t pending_count_ = 0;
  size_t running_count_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::vector<TransitionListener> listeners_;
  std::vector<SubmitListener> submit_listeners_;
  std::mutex listeners_mu_;

  // Telemetry handles (resolved once; writes are lock-free).
  telemetry::Counter& jobs_submitted_;
  telemetry::Counter& jobs_placed_;
  telemetry::Counter& backfill_placed_;
  telemetry::Counter& jobs_completed_;
  telemetry::Counter& jobs_failed_;
  telemetry::Counter& jobs_cancelled_;
  telemetry::Counter& jobs_preempted_;
  telemetry::Counter& jobs_requeued_;
  telemetry::Counter& jobs_timed_out_;
  telemetry::Counter& nodes_downed_;
  telemetry::Gauge& queue_depth_gauge_;
  telemetry::Gauge& running_gauge_;
  telemetry::Gauge& nodes_up_gauge_;
  telemetry::Gauge& nodes_down_gauge_;
  telemetry::Gauge& cpus_used_gauge_;
  telemetry::Gauge& cpus_total_gauge_;
  telemetry::Histogram& placement_wait_us_;
  telemetry::Histogram& pass_us_;
};

}  // namespace gs::sched
