#include "sched/durable.hpp"

#include <algorithm>

#include "common/parse.hpp"
#include "sched/service.hpp"
#include "soap/namespaces.hpp"

namespace gs::sched {
namespace {

constexpr std::uint32_t kSchemaVersion = 1;

xml::QName s(const char* local) { return {soap::ns::kSched, local}; }

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    if (comma > start) out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::string join_csv(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ',';
    out += p;
  }
  return out;
}

template <typename T>
T attr_num(const xml::Element& el, const char* name, T fallback) {
  if (auto v = el.attr(name)) {
    if (auto n = common::parse_number<T>(*v)) return *n;
  }
  return fallback;
}

JobState job_state_from(const std::string& name) {
  if (name == "RUNNING") return JobState::kRunning;
  if (name == "COMPLETED") return JobState::kCompleted;
  if (name == "FAILED") return JobState::kFailed;
  if (name == "CANCELLED") return JobState::kCancelled;
  if (name == "PREEMPTED") return JobState::kPreempted;
  return JobState::kPending;
}

}  // namespace

JobInfo job_from_element(const xml::Element& el) {
  JobInfo info;
  info.id = el.attr("id").value_or("");
  info.name = el.attr("name").value_or("");
  info.account = el.attr("account").value_or("default");
  info.partition = el.attr("partition").value_or("");
  info.command = el.attr("command").value_or("");
  info.node = el.attr("node").value_or("");
  info.cpus = attr_num<unsigned>(el, "cpus", 1);
  info.mem_mb = attr_num<std::uint64_t>(el, "mem_mb", 0);
  info.state = job_state_from(el.attr("state").value_or("PENDING"));
  info.exit_code = attr_num<int>(el, "exit_code", 0);
  info.backfilled = el.attr("backfilled").value_or("") == "true";
  info.preempt_count = attr_num<int>(el, "preempt_count", 0);
  info.reason = el.attr("reason").value_or("");
  info.submit_time = attr_num<common::TimeMs>(el, "submit_time", 0);
  info.start_time = attr_num<common::TimeMs>(el, "start_time", 0);
  info.end_time = attr_num<common::TimeMs>(el, "end_time", 0);
  info.time_limit_ms = attr_num<common::TimeMs>(el, "time_limit_ms", 0);
  if (auto deps = el.attr("depends_on")) info.depends_on = split_csv(*deps);
  return info;
}

DurableSchedStore::DurableSchedStore(xmldb::DurableStore& store,
                                     Scheduler& sched)
    : store_(store), sched_(sched) {
  store_.open_collection(jobs_collection(), "sched.job", kSchemaVersion);
  store_.open_collection(partitions_collection(), "sched.partition",
                         kSchemaVersion);
  store_.open_collection(nodes_collection(), "sched.node", kSchemaVersion);
}

void DurableSchedStore::save_job(const JobInfo& info) {
  std::unique_ptr<xml::Element> el = job_element(info);
  // job_element is the wire document view, which never exposes the raw
  // command; the durable twin needs it to rerun the job after a restart.
  el->set_attr("command", info.command);
  store_.db().store(jobs_collection(), info.id, *el);
}

void DurableSchedStore::attach() {
  sched_.on_submit([this](const JobInfo& info) { save_job(info); });
  sched_.on_transition(
      [this](const JobInfo& info, JobState, JobState) { save_job(info); });
}

void DurableSchedStore::save_partition(const Partition& partition) {
  xml::Element el{s("Partition")};
  el.set_attr("name", partition.name);
  el.set_attr("priority", std::to_string(partition.priority));
  el.set_attr("preempt_tier", std::to_string(partition.preempt_tier));
  el.set_attr("preemptable", partition.preemptable ? "true" : "false");
  el.set_attr("default_time_limit_ms",
              std::to_string(partition.default_time_limit_ms));
  el.set_attr("max_time_limit_ms", std::to_string(partition.max_time_limit_ms));
  store_.db().store(partitions_collection(), partition.name, el);
}

void DurableSchedStore::save_node(const NodeInfo& node) {
  xml::Element el{s("Node")};
  el.set_attr("name", node.name);
  el.set_attr("partitions", join_csv(node.partitions));
  el.set_attr("cpus", std::to_string(node.cpus));
  el.set_attr("mem_mb", std::to_string(node.mem_mb));
  el.set_attr("state", node_state_name(node.state));
  store_.db().store(nodes_collection(), node.name, el);
}

RestoreSummary DurableSchedStore::restore() {
  RestoreSummary summary;
  xmldb::XmlDatabase& db = store_.db();

  // 1. Partitions — jobs reference them, so they come back first.
  for (const std::string& name : db.ids(partitions_collection())) {
    std::unique_ptr<xml::Element> el = db.load(partitions_collection(), name);
    if (!el) continue;
    Partition p;
    p.name = el->attr("name").value_or(name);
    p.priority = attr_num<int>(*el, "priority", 0);
    p.preempt_tier = attr_num<int>(*el, "preempt_tier", 0);
    p.preemptable = el->attr("preemptable").value_or("") == "true";
    p.default_time_limit_ms =
        attr_num<common::TimeMs>(*el, "default_time_limit_ms", 60'000);
    p.max_time_limit_ms = attr_num<common::TimeMs>(*el, "max_time_limit_ms",
                                                   24LL * 3600 * 1000);
    sched_.add_partition(p);
    ++summary.partitions;
  }

  // 2. Nodes — re-registered UP as of now (the restore IS their report-in;
  // a node that is actually gone goes DOWN at the next heartbeat sweep).
  // Persisted DRAIN sticks.
  for (const std::string& name : db.ids(nodes_collection())) {
    std::unique_ptr<xml::Element> el = db.load(nodes_collection(), name);
    if (!el) continue;
    std::string node_name = el->attr("name").value_or(name);
    sched_.nodes().upsert(node_name,
                          split_csv(el->attr("partitions").value_or("")),
                          attr_num<unsigned>(*el, "cpus", 1),
                          attr_num<std::uint64_t>(*el, "mem_mb", 1024),
                          sched_.clock().now());
    if (el->attr("state").value_or("") ==
        std::string(node_state_name(NodeState::kDrain))) {
      sched_.nodes().drain(node_name);
    }
    ++summary.nodes;
  }

  // 3. Jobs, in submit order (ids sort lexically, so order by the
  // persisted submit_time with id as tiebreak — dependencies always point
  // backwards in that order).
  std::vector<JobInfo> jobs;
  for (const std::string& id : db.ids(jobs_collection())) {
    std::unique_ptr<xml::Element> el = db.load(jobs_collection(), id);
    if (!el) continue;
    JobInfo info = job_from_element(*el);
    if (info.id.empty() || info.partition.empty()) {
      ++summary.skipped;
      continue;
    }
    jobs.push_back(std::move(info));
  }
  std::sort(jobs.begin(), jobs.end(), [](const JobInfo& a, const JobInfo& b) {
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.id < b.id;
  });
  for (const JobInfo& info : jobs) {
    if (sched_.restore(info)) {
      ++summary.jobs;
    } else {
      ++summary.skipped;
    }
  }
  return summary;
}

}  // namespace gs::sched
