// Scheduler client proxy and the simulated node fleet.
//
// SchedClient is the submit-side view: WS-Transfer Create/Get/Delete and
// WSRF resource-property reads against one SchedService, plus the
// controller operations. FleetSimulator is the execute-side view: it
// provisions N simulated nodes and heartbeats them over the same fabric
// (RegisterNode/Heartbeat SOAP calls), so node liveness rides the virtual
// network — a partitioned or faulty route starves heartbeats and the
// controller marks nodes DOWN exactly as a real slurmd outage would.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "container/proxy.hpp"
#include "sched/scheduler.hpp"

namespace gs::sched {

class SchedClient : public container::ProxyBase {
 public:
  SchedClient(net::SoapCaller& caller, const std::string& address,
              container::ProxySecurity security = {})
      : container::ProxyBase(caller, soap::EndpointReference(address),
                             security) {}

  struct PassCounts {
    size_t placed = 0;
    size_t backfilled = 0;
    size_t preempted = 0;
    size_t requeued = 0;
    size_t timed_out = 0;
    size_t queue_depth = 0;
    size_t running = 0;
  };

  /// WS-Transfer Create: submits, returns the job ids (arrays return all
  /// task ids).
  std::vector<std::string> submit(const JobSpec& spec);
  /// WS-Transfer Delete: cancels; false when the job was already terminal.
  bool cancel(const std::string& id);
  /// WS-Transfer Get of one job (`<s:Job .../>`).
  std::unique_ptr<xml::Element> job(const std::string& id);
  /// WS-Transfer Get of the whole document.
  std::unique_ptr<xml::Element> document_wst();
  /// WSRF GetResourcePropertyDocument — the same document, other stack.
  std::unique_ptr<xml::Element> document_wsrf();
  /// WSRF GetResourceProperty: "Queue", "Partitions", "Nodes", "Jobs", or
  /// a job id. Returns the GetResourcePropertyResponse element.
  std::unique_ptr<xml::Element> property(const std::string& name);

  // Controller operations.
  void register_node(const std::string& name,
                     const std::vector<std::string>& partitions, unsigned cpus,
                     std::uint64_t mem_mb);
  /// False = the controller does not know this node (re-register).
  bool heartbeat(const std::string& node);
  void drain(const std::string& node);
  void resume(const std::string& node);
  PassCounts schedule_pass();
};

/// Drives a fleet of simulated nodes against a SchedService: provision()
/// registers them, tick() heartbeats every healthy node. fail()/recover()
/// silence/revive individual nodes — a failed node simply stops calling
/// Heartbeat, and the controller's sweep does the rest.
class FleetSimulator {
 public:
  FleetSimulator(net::SoapCaller& caller, const std::string& sched_address)
      : client_(caller, sched_address) {}

  /// Registers `count` identical nodes named "<prefix><i>".
  void provision(size_t count, const std::vector<std::string>& partitions,
                 unsigned cpus, std::uint64_t mem_mb,
                 const std::string& prefix = "node");

  /// Heartbeats every node not marked failed; re-registers when the
  /// controller answers known="false". Returns heartbeats delivered.
  size_t tick();

  void fail(const std::string& node) { failed_.insert(node); }
  void recover(const std::string& node) { failed_.erase(node); }

  const std::vector<std::string>& names() const noexcept { return names_; }

 private:
  struct Spec {
    std::vector<std::string> partitions;
    unsigned cpus;
    std::uint64_t mem_mb;
  };

  SchedClient client_;
  std::vector<std::string> names_;
  std::map<std::string, Spec> specs_;
  std::set<std::string> failed_;
};

}  // namespace gs::sched
