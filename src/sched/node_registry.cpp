#include "sched/node_registry.hpp"

#include <algorithm>

namespace gs::sched {

const char* node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kUp:
      return "up";
    case NodeState::kDrain:
      return "drain";
    case NodeState::kDown:
      return "down";
  }
  return "unknown";
}

void NodeRegistry::upsert(const std::string& name,
                          std::vector<std::string> partitions, unsigned cpus,
                          std::uint64_t mem_mb, common::TimeMs now) {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) {
    NodeInfo node;
    node.name = name;
    node.partitions = std::move(partitions);
    node.cpus = cpus;
    node.mem_mb = mem_mb;
    node.last_heartbeat = now;
    for (const std::string& p : node.partitions) {
      partition_members_[p].push_back(name);
    }
    index_[name] = nodes_.size();
    nodes_.push_back(std::move(node));
    return;
  }
  NodeInfo& node = nodes_[it->second];
  // Re-registration refreshes capacity and revives DOWN; drains persist
  // (an admin decision outlives node restarts).
  for (const std::string& p : node.partitions) {
    auto& m = partition_members_[p];
    m.erase(std::remove(m.begin(), m.end(), name), m.end());
  }
  node.partitions = std::move(partitions);
  for (const std::string& p : node.partitions) {
    partition_members_[p].push_back(name);
  }
  node.cpus = std::max(cpus, node.cpus_used);
  node.mem_mb = std::max(mem_mb, node.mem_mb_used);
  node.last_heartbeat = now;
  if (node.state == NodeState::kDown) node.state = NodeState::kUp;
}

bool NodeRegistry::heartbeat(const std::string& name, common::TimeMs now) {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return false;
  NodeInfo& node = nodes_[it->second];
  node.last_heartbeat = now;
  if (node.state == NodeState::kDown) node.state = NodeState::kUp;
  return true;
}

std::vector<std::string> NodeRegistry::sweep(common::TimeMs now,
                                             common::TimeMs timeout_ms) {
  std::lock_guard lock(mu_);
  std::vector<std::string> downed;
  for (NodeInfo& node : nodes_) {
    if (node.state == NodeState::kDown) continue;
    if (now - node.last_heartbeat > timeout_ms) {
      node.state = NodeState::kDown;
      downed.push_back(node.name);
    }
  }
  return downed;
}

bool NodeRegistry::drain(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return false;
  nodes_[it->second].state = NodeState::kDrain;
  return true;
}

bool NodeRegistry::resume(const std::string& name, common::TimeMs now) {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return false;
  NodeInfo& node = nodes_[it->second];
  node.state = NodeState::kUp;
  node.last_heartbeat = now;
  return true;
}

bool NodeRegistry::allocate(const std::string& name, unsigned cpus,
                            std::uint64_t mem_mb) {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return false;
  NodeInfo& node = nodes_[it->second];
  if (!node.schedulable() || node.cpus_free() < cpus ||
      node.mem_mb_free() < mem_mb) {
    return false;
  }
  node.cpus_used += cpus;
  node.mem_mb_used += mem_mb;
  return true;
}

void NodeRegistry::release(const std::string& name, unsigned cpus,
                           std::uint64_t mem_mb) {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return;
  NodeInfo& node = nodes_[it->second];
  node.cpus_used -= std::min(node.cpus_used, cpus);
  node.mem_mb_used -= std::min(node.mem_mb_used, mem_mb);
}

std::optional<std::string> NodeRegistry::find_fit(const std::string& partition,
                                                  unsigned cpus,
                                                  std::uint64_t mem_mb) const {
  std::lock_guard lock(mu_);
  const std::vector<std::string>* m = members(partition);
  if (!m) return std::nullopt;
  for (const std::string& name : *m) {
    const NodeInfo& node = nodes_[index_.at(name)];
    if (node.schedulable() && node.cpus_free() >= cpus &&
        node.mem_mb_free() >= mem_mb) {
      return name;
    }
  }
  return std::nullopt;
}

std::optional<NodeInfo> NodeRegistry::info(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return nodes_[it->second];
}

std::vector<NodeInfo> NodeRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  return nodes_;
}

std::vector<NodeInfo> NodeRegistry::partition_nodes(
    const std::string& partition) const {
  std::lock_guard lock(mu_);
  std::vector<NodeInfo> out;
  const std::vector<std::string>* m = members(partition);
  if (!m) return out;
  out.reserve(m->size());
  for (const std::string& name : *m) out.push_back(nodes_[index_.at(name)]);
  return out;
}

size_t NodeRegistry::size() const {
  std::lock_guard lock(mu_);
  return nodes_.size();
}

size_t NodeRegistry::count(NodeState state) const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const NodeInfo& node : nodes_) {
    if (node.state == state) ++n;
  }
  return n;
}

unsigned NodeRegistry::cpus_total() const {
  std::lock_guard lock(mu_);
  unsigned n = 0;
  for (const NodeInfo& node : nodes_) n += node.cpus;
  return n;
}

unsigned NodeRegistry::cpus_used() const {
  std::lock_guard lock(mu_);
  unsigned n = 0;
  for (const NodeInfo& node : nodes_) n += node.cpus_used;
  return n;
}

std::vector<std::string>* NodeRegistry::members(const std::string& partition) {
  auto it = partition_members_.find(partition);
  return it == partition_members_.end() ? nullptr : &it->second;
}

const std::vector<std::string>* NodeRegistry::members(
    const std::string& partition) const {
  auto it = partition_members_.find(partition);
  return it == partition_members_.end() ? nullptr : &it->second;
}

}  // namespace gs::sched
