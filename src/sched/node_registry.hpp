// Node registry: the scheduler's view of the simulated fleet.
//
// Real OGSA grids front batch systems whose controller tracks hundreds to
// thousands of execution nodes (slurmctld's node table). This registry
// holds that table: per-node CPU/memory slots, partition memberships
// (nodes may belong to several partitions, which is how preemption tiers
// share hardware), and liveness driven by heartbeats — nodes report in
// over the virtual fabric through SchedService's Heartbeat operation, and
// `sweep()` marks the silent ones DOWN so the scheduler can requeue their
// jobs. Administrative drain/resume removes a node from placement without
// killing what is already on it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace gs::sched {

enum class NodeState { kUp, kDrain, kDown };

const char* node_state_name(NodeState state);

struct NodeInfo {
  std::string name;
  std::vector<std::string> partitions;
  unsigned cpus = 1;
  std::uint64_t mem_mb = 1024;
  unsigned cpus_used = 0;
  std::uint64_t mem_mb_used = 0;
  NodeState state = NodeState::kUp;
  common::TimeMs last_heartbeat = 0;

  unsigned cpus_free() const noexcept { return cpus - cpus_used; }
  std::uint64_t mem_mb_free() const noexcept { return mem_mb - mem_mb_used; }
  bool schedulable() const noexcept { return state == NodeState::kUp; }
};

class NodeRegistry {
 public:
  NodeRegistry() = default;

  /// Registers (or re-registers) a node. A re-registration of a DOWN node
  /// brings it back UP (the node rebooted and reported in); a DRAIN node
  /// stays drained. Counts as a heartbeat.
  void upsert(const std::string& name, std::vector<std::string> partitions,
              unsigned cpus, std::uint64_t mem_mb, common::TimeMs now);

  /// Records a heartbeat; revives a DOWN node. False for unknown nodes
  /// (the caller should re-register — the controller restarted).
  bool heartbeat(const std::string& name, common::TimeMs now);

  /// Marks every UP/DRAIN node DOWN whose last heartbeat is older than
  /// `timeout_ms`; returns the newly-downed node names so the scheduler
  /// can requeue their jobs.
  std::vector<std::string> sweep(common::TimeMs now, common::TimeMs timeout_ms);

  /// Administrative state transitions. False for unknown nodes.
  bool drain(const std::string& name);
  bool resume(const std::string& name, common::TimeMs now);

  /// Commits `cpus`/`mem_mb` on the node iff it is UP and the slots fit.
  bool allocate(const std::string& name, unsigned cpus, std::uint64_t mem_mb);
  /// Returns slots; allocation on a since-downed node is still returned
  /// (the accounting must balance).
  void release(const std::string& name, unsigned cpus, std::uint64_t mem_mb);

  /// First UP node of `partition` with the free slots, or nullopt. `skip`
  /// entries (node names) are excluded — the backfill loop uses this to
  /// keep the reserved job's shadow nodes untouched.
  std::optional<std::string> find_fit(const std::string& partition,
                                      unsigned cpus, std::uint64_t mem_mb) const;

  std::optional<NodeInfo> info(const std::string& name) const;
  /// Copies of every node, registration order (the document view).
  std::vector<NodeInfo> snapshot() const;
  /// Copies of `partition`'s nodes only (the backfill shadow input).
  std::vector<NodeInfo> partition_nodes(const std::string& partition) const;

  size_t size() const;
  size_t count(NodeState state) const;
  unsigned cpus_total() const;
  unsigned cpus_used() const;

 private:
  std::vector<std::string>* members(const std::string& partition);
  const std::vector<std::string>* members(const std::string& partition) const;

  mutable std::mutex mu_;
  std::vector<NodeInfo> nodes_;                      // registration order
  std::map<std::string, size_t> index_;              // name -> nodes_ index
  std::map<std::string, std::vector<std::string>> partition_members_;
};

}  // namespace gs::sched
