// Partitions and fair-share: the policy half of the batch controller.
//
// Partitions are SLURM-style queues: a named slice of the fleet with a
// priority weight, time-limit policy, and a preemption tier. Nodes may sit
// in several partitions (a "batch" and a "scavenge" partition sharing
// hardware is the classic preemption setup).
//
// Fair-share follows SLURM's classic formula: each account owns a share
// weight, accrues decayed CPU-time usage, and gets the factor
//
//   F = 2^-(U/S)
//
// where U is the account's fraction of all decayed usage and S its
// fraction of all shares. F is 1.0 for an idle account, 0.5 when usage
// exactly matches entitlement, and decays toward 0 for hogs. Usage halves
// every `half_life_ms`, so history fades.
#pragma once

#include <cmath>
#include <map>
#include <string>

#include "common/clock.hpp"

namespace gs::sched {

struct Partition {
  std::string name;
  /// Additive priority weight for jobs submitted here.
  int priority = 0;
  /// Preemption tier: a blocked job from a higher tier may preempt running
  /// preemptable jobs from lower tiers on shared nodes.
  int preempt_tier = 0;
  /// Jobs in this partition may be preempted (and are then requeued).
  bool preemptable = false;
  /// Applied when a job does not name a limit.
  common::TimeMs default_time_limit_ms = 60'000;
  /// Hard cap on any job's limit.
  common::TimeMs max_time_limit_ms = 24LL * 3600 * 1000;

  common::TimeMs effective_limit(common::TimeMs requested) const {
    if (requested <= 0) return default_time_limit_ms;
    return requested < max_time_limit_ms ? requested : max_time_limit_ms;
  }
};

class FairShareTracker {
 public:
  explicit FairShareTracker(common::TimeMs half_life_ms = 3600'000)
      : half_life_ms_(half_life_ms) {}

  /// Declares an account's share weight (default 1.0 on first usage).
  void set_shares(const std::string& account, double shares);

  /// Charges `cpu_ms` of CPU time (cpus × elapsed ms) to the account.
  void record_usage(const std::string& account, double cpu_ms);

  /// Applies exponential decay for the interval since the last decay call.
  void decay(common::TimeMs now);

  /// The fair-share factor in (0, 1]; 1.0 for unknown/idle accounts.
  double factor(const std::string& account) const;

  double usage(const std::string& account) const;

 private:
  struct Account {
    double shares = 1.0;
    double usage_cpu_ms = 0.0;
  };

  common::TimeMs half_life_ms_;
  common::TimeMs last_decay_ = 0;
  bool decayed_once_ = false;
  std::map<std::string, Account> accounts_;
};

}  // namespace gs::sched
