#include "sched/client.hpp"

#include <cstdlib>

#include "soap/namespaces.hpp"
#include "sched/service.hpp"

namespace gs::sched {

namespace {

xml::QName s(const char* local) { return {soap::ns::kSched, local}; }

const std::string kGetResourceProperty =
    std::string(soap::ns::kWsrfRp) + "/GetResourceProperty";
const std::string kGetResourcePropertyDocument =
    std::string(soap::ns::kWsrfRp) + "/GetResourcePropertyDocument";
const std::string kTransferGet = std::string(soap::ns::kTransfer) + "/Get";
const std::string kTransferCreate =
    std::string(soap::ns::kTransfer) + "/Create";
const std::string kTransferDelete =
    std::string(soap::ns::kTransfer) + "/Delete";

std::string join_csv(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ",";
    out += item;
  }
  return out;
}

std::unique_ptr<xml::Element> job_spec_element(const JobSpec& spec) {
  auto el = std::make_unique<xml::Element>(s("Job"));
  el->declare_prefix("s", soap::ns::kSched);
  if (!spec.name.empty()) el->set_attr("name", spec.name);
  el->set_attr("account", spec.account);
  el->set_attr("partition", spec.partition);
  el->set_attr("command", spec.command);
  if (!spec.working_dir.empty()) el->set_attr("working_dir", spec.working_dir);
  el->set_attr("cpus", std::to_string(spec.cpus));
  el->set_attr("mem_mb", std::to_string(spec.mem_mb));
  if (spec.time_limit_ms > 0) {
    el->set_attr("time_limit_ms", std::to_string(spec.time_limit_ms));
  }
  if (spec.array_count > 1) {
    el->set_attr("array_count", std::to_string(spec.array_count));
  }
  if (spec.nice != 0) el->set_attr("nice", std::to_string(spec.nice));
  if (!spec.depends_on.empty()) {
    el->set_attr("depends_on", join_csv(spec.depends_on));
  }
  return el;
}

size_t attr_count(const xml::Element& el, const char* name) {
  auto raw = el.attr(name);
  return raw ? static_cast<size_t>(std::strtoull(raw->c_str(), nullptr, 10)) : 0;
}

std::unique_ptr<xml::Element> clone_payload(const soap::Envelope& env,
                                            const char* what) {
  const xml::Element* payload = env.payload();
  if (!payload) {
    throw std::runtime_error(std::string(what) + ": empty response body");
  }
  return payload->clone_element();
}

}  // namespace

std::vector<std::string> SchedClient::submit(const JobSpec& spec) {
  soap::Envelope response = invoke(kTransferCreate, job_spec_element(spec));
  std::vector<std::string> ids;
  if (const xml::Element* payload = response.payload()) {
    for (const xml::Element* el : payload->children_named(s("JobId"))) {
      ids.push_back(el->text());
    }
  }
  return ids;
}

bool SchedClient::cancel(const std::string& id) {
  auto payload = std::make_unique<xml::Element>(s("JobId"));
  payload->set_text(id);
  soap::Envelope response = invoke(kTransferDelete, std::move(payload));
  const xml::Element* el = response.payload();
  return el && el->attr("cancelled") == std::optional<std::string>("true");
}

std::unique_ptr<xml::Element> SchedClient::job(const std::string& id) {
  auto payload = std::make_unique<xml::Element>(s("JobId"));
  payload->set_text(id);
  return clone_payload(invoke(kTransferGet, std::move(payload)), "Get");
}

std::unique_ptr<xml::Element> SchedClient::document_wst() {
  return clone_payload(invoke(kTransferGet, std::make_unique<xml::Element>(s("Get"))),
                       "Get");
}

std::unique_ptr<xml::Element> SchedClient::document_wsrf() {
  soap::Envelope response = invoke(
      kGetResourcePropertyDocument,
      std::make_unique<xml::Element>(s("GetResourcePropertyDocument")));
  const xml::Element* payload = response.payload();
  if (payload) {
    auto kids = payload->child_elements();
    if (!kids.empty()) return kids.front()->clone_element();
  }
  throw std::runtime_error("GetResourcePropertyDocument: empty response");
}

std::unique_ptr<xml::Element> SchedClient::property(const std::string& name) {
  auto payload = std::make_unique<xml::Element>(s("GetResourceProperty"));
  payload->set_text(name);
  return clone_payload(invoke(kGetResourceProperty, std::move(payload)),
                       "GetResourceProperty");
}

void SchedClient::register_node(const std::string& name,
                                const std::vector<std::string>& partitions,
                                unsigned cpus, std::uint64_t mem_mb) {
  auto payload = std::make_unique<xml::Element>(s("Node"));
  payload->declare_prefix("s", soap::ns::kSched);
  payload->set_attr("name", name);
  payload->set_attr("partitions", join_csv(partitions));
  payload->set_attr("cpus", std::to_string(cpus));
  payload->set_attr("mem_mb", std::to_string(mem_mb));
  invoke(SchedService::register_node_action(), std::move(payload));
}

bool SchedClient::heartbeat(const std::string& node) {
  auto payload = std::make_unique<xml::Element>(s("Heartbeat"));
  payload->set_attr("node", node);
  soap::Envelope response =
      invoke(SchedService::heartbeat_action(), std::move(payload));
  const xml::Element* el = response.payload();
  return el && el->attr("known") == std::optional<std::string>("true");
}

void SchedClient::drain(const std::string& node) {
  auto payload = std::make_unique<xml::Element>(s("Drain"));
  payload->set_attr("node", node);
  invoke(SchedService::drain_action(), std::move(payload));
}

void SchedClient::resume(const std::string& node) {
  auto payload = std::make_unique<xml::Element>(s("Resume"));
  payload->set_attr("node", node);
  invoke(SchedService::resume_action(), std::move(payload));
}

SchedClient::PassCounts SchedClient::schedule_pass() {
  soap::Envelope response =
      invoke(SchedService::schedule_pass_action(),
             std::make_unique<xml::Element>(s("SchedulePass")));
  PassCounts counts;
  if (const xml::Element* el = response.payload()) {
    counts.placed = attr_count(*el, "placed");
    counts.backfilled = attr_count(*el, "backfilled");
    counts.preempted = attr_count(*el, "preempted");
    counts.requeued = attr_count(*el, "requeued");
    counts.timed_out = attr_count(*el, "timed_out");
    counts.queue_depth = attr_count(*el, "queue_depth");
    counts.running = attr_count(*el, "running");
  }
  return counts;
}

void FleetSimulator::provision(size_t count,
                               const std::vector<std::string>& partitions,
                               unsigned cpus, std::uint64_t mem_mb,
                               const std::string& prefix) {
  for (size_t i = 0; i < count; ++i) {
    std::string name = prefix + std::to_string(names_.size());
    client_.register_node(name, partitions, cpus, mem_mb);
    names_.push_back(name);
    specs_[name] = {partitions, cpus, mem_mb};
  }
}

size_t FleetSimulator::tick() {
  size_t delivered = 0;
  for (const std::string& name : names_) {
    if (failed_.count(name)) continue;
    if (!client_.heartbeat(name)) {
      const Spec& spec = specs_.at(name);
      client_.register_node(name, spec.partitions, spec.cpus, spec.mem_mb);
    }
    ++delivered;
  }
  return delivered;
}

}  // namespace gs::sched
