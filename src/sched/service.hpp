// SchedService: the batch controller exposed *the paper's way* — once per
// stack, over one wire service.
//
//   * WSRF:        queue/node/job state are resource properties
//                  (GetResourceProperty selects "Queue", "Partitions",
//                  "Nodes", "Jobs", or a job id;
//                  GetResourcePropertyDocument returns everything);
//   * WS-Transfer: Create submits a job (the representation is the job
//                  spec), Get reads the same document or one job, Delete
//                  cancels;
//   * controller operations (RegisterNode / Heartbeat / Drain / Resume /
//                  SchedulePass) are plain SOAP actions in the sched
//                  namespace — the fleet's nodes report in over the same
//                  fabric the clients use.
//
// Job state transitions (PENDING→RUNNING→COMPLETED/FAILED/CANCELLED/
// PREEMPTED) publish on topic gs:Sched/Job through WS-Notification and/or
// WS-Eventing via attach_job_publisher — scheduler events ride the same
// delivery queues, retries, and eviction machinery as application traffic.
#pragma once

#include <memory>
#include <string>

#include "container/service.hpp"
#include "sched/scheduler.hpp"
#include "wse/service.hpp"
#include "wsn/producer.hpp"

namespace gs::sched {

/// WS-Topics names scheduler traffic is published on; a Simple-dialect
/// subscription on `gs:Sched` receives everything.
inline constexpr const char* kSchedTopic = "gs:Sched";
inline constexpr const char* kJobTopic = "gs:Sched/Job";

/// wsa:Action stamped on WS-Eventing job-state events.
std::string job_state_action();

/// A TopicNamespace containing the scheduler topics — merge or pass to the
/// wsn::NotificationProducer that will carry them.
wsn::TopicNamespace sched_topics();

/// `<s:Job id=".." state=".." .../>` — one job's document/event view.
std::unique_ptr<xml::Element> job_element(const JobInfo& info);

/// The full resource-property document:
///
///   <s:Sched xmlns:s="http://gridstacks.dev/sched">
///     <s:Queue depth=".." running=".."/>
///     <s:Partition name=".." priority=".." preempt_tier=".."
///                  preemptable=".." default_time_limit_ms=".."/>
///     <s:Node name=".." state="up" partitions="batch,scavenge" cpus=".."
///             cpus_used=".." mem_mb=".." mem_mb_used=".."/>
///     <s:Job id=".." name=".." state="RUNNING" .../>
///   </s:Sched>
std::unique_ptr<xml::Element> sched_document(Scheduler& sched);

/// Either or both stacks; null = don't publish there (MonitorProducer's
/// convention). The pointed-to publishers must outlive the scheduler.
struct JobEventPublisher {
  wsn::NotificationProducer* wsn = nullptr;
  wse::NotificationManager* wse = nullptr;
};

/// Registers a transition listener on `sched` that publishes every job
/// state change as `<s:JobStateChange id=".." from=".." to=".."/>` on
/// topic gs:Sched/Job through both configured stacks.
void attach_job_publisher(Scheduler& sched, JobEventPublisher publisher);

class SchedService final : public container::Service {
 public:
  SchedService(std::string address, Scheduler* sched);

  const std::string& address() const noexcept { return address_; }
  Scheduler& scheduler() noexcept { return *sched_; }

  // Controller action URIs (http://gridstacks.dev/sched/<op>).
  static std::string register_node_action();
  static std::string heartbeat_action();
  static std::string drain_action();
  static std::string resume_action();
  static std::string schedule_pass_action();
  static std::string cancel_action();

 private:
  std::string address_;
  Scheduler* sched_;
};

}  // namespace gs::sched
