#include "sched/scheduler.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <set>

#include "soap/envelope.hpp"

namespace gs::sched {

namespace {

/// Known end offset for a command: "sim:duration=<ms>" jobs end exactly
/// then, unrecognized commands are 0 ms simulations (JobRunner's rule),
/// real "exec:" processes are unknowable (-1).
common::TimeMs parse_sim_duration(const std::string& command) {
  if (command.rfind("exec:", 0) == 0) return -1;
  if (command.rfind("sim:", 0) != 0) return 0;
  size_t pos = command.find("duration=");
  if (pos == std::string::npos) return 0;
  common::TimeMs v = 0;
  for (size_t i = pos + 9;
       i < command.size() && std::isdigit(static_cast<unsigned char>(command[i]));
       ++i) {
    v = v * 10 + (command[i] - '0');
  }
  return v;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kCompleted:
      return "COMPLETED";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
    case JobState::kPreempted:
      return "PREEMPTED";
  }
  return "UNKNOWN";
}

bool is_terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

Scheduler::Scheduler(Config config)
    : clock_(config.clock),
      runner_(config.runner),
      nodes_(config.nodes),
      config_(config),
      fairshare_(config.fairshare_half_life_ms),
      jobs_submitted_(config.metrics->counter("sched.jobs_submitted")),
      jobs_placed_(config.metrics->counter("sched.jobs_placed")),
      backfill_placed_(config.metrics->counter("sched.backfill_placed")),
      jobs_completed_(config.metrics->counter("sched.jobs_completed")),
      jobs_failed_(config.metrics->counter("sched.jobs_failed")),
      jobs_cancelled_(config.metrics->counter("sched.jobs_cancelled")),
      jobs_preempted_(config.metrics->counter("sched.jobs_preempted")),
      jobs_requeued_(config.metrics->counter("sched.jobs_requeued")),
      jobs_timed_out_(config.metrics->counter("sched.jobs_timed_out")),
      nodes_downed_(config.metrics->counter("sched.nodes_downed")),
      queue_depth_gauge_(config.metrics->gauge("sched.queue_depth")),
      running_gauge_(config.metrics->gauge("sched.jobs_running")),
      nodes_up_gauge_(config.metrics->gauge("sched.nodes_up")),
      nodes_down_gauge_(config.metrics->gauge("sched.nodes_down")),
      cpus_used_gauge_(config.metrics->gauge("sched.cpus_used")),
      cpus_total_gauge_(config.metrics->gauge("sched.cpus_total")),
      placement_wait_us_(config.metrics->histogram("sched.placement_wait_us")),
      pass_us_(config.metrics->histogram("sched.pass_us")) {}

// --- policy -------------------------------------------------------------------

void Scheduler::add_partition(Partition partition) {
  std::lock_guard lock(mu_);
  partitions_[partition.name] = std::move(partition);
}

std::vector<Partition> Scheduler::partitions() const {
  std::lock_guard lock(mu_);
  std::vector<Partition> out;
  out.reserve(partitions_.size());
  for (const auto& [name, p] : partitions_) out.push_back(p);
  return out;
}

void Scheduler::set_account_shares(const std::string& account, double shares) {
  std::lock_guard lock(mu_);
  fairshare_.set_shares(account, shares);
}

double Scheduler::fairshare_factor(const std::string& account) const {
  std::lock_guard lock(mu_);
  return fairshare_.factor(account);
}

// --- job lifecycle ------------------------------------------------------------

std::vector<std::string> Scheduler::submit(const JobSpec& spec) {
  if (spec.command.empty()) {
    throw soap::SoapFault("Sender", "job has no command");
  }
  if (spec.cpus == 0) {
    throw soap::SoapFault("Sender", "job needs at least 1 cpu");
  }
  if (spec.array_count < 1) {
    throw soap::SoapFault("Sender", "array_count must be >= 1");
  }
  common::TimeMs now = clock_->now();
  std::vector<Transition> transitions;
  std::vector<std::string> ids;
  {
    std::lock_guard lock(mu_);
    const Partition* part = find_partition(spec.partition);
    if (!part) {
      throw soap::SoapFault("Sender",
                            "unknown partition '" + spec.partition + "'");
    }
    // Reject jobs no node of the partition could ever hold — but only once
    // the fleet has registered; before that the job waits for nodes.
    std::vector<NodeInfo> pnodes = nodes_->partition_nodes(spec.partition);
    if (!pnodes.empty()) {
      bool capacity = false;
      for (const NodeInfo& n : pnodes) {
        if (n.cpus >= spec.cpus && n.mem_mb >= spec.mem_mb) {
          capacity = true;
          break;
        }
      }
      if (!capacity) {
        throw soap::SoapFault(
            "Sender", "no node in partition '" + spec.partition +
                          "' can ever satisfy " + std::to_string(spec.cpus) +
                          " cpus / " + std::to_string(spec.mem_mb) + " MB");
      }
    }
    // afterok dependencies: parents must exist; a COMPLETED parent is
    // already satisfied, a FAILED/CANCELLED one dooms the child.
    std::vector<std::string> waiting;
    bool doomed = false;
    for (const std::string& dep : spec.depends_on) {
      auto it = jobs_.find(dep);
      if (it == jobs_.end()) {
        throw soap::SoapFault("Sender", "unknown dependency '" + dep + "'");
      }
      JobState ds = it->second.info.state;
      if (ds == JobState::kCompleted) continue;
      if (is_terminal(ds)) doomed = true;
      waiting.push_back(dep);
    }

    std::string base = "job-" + std::to_string(next_id_++);
    for (int k = 0; k < spec.array_count; ++k) {
      Job job;
      job.info.id = spec.array_count > 1 ? base + "_" + std::to_string(k) : base;
      job.info.name = spec.array_count > 1
                          ? spec.name + "[" + std::to_string(k) + "]"
                          : spec.name;
      job.info.account = spec.account;
      job.info.partition = spec.partition;
      job.info.command = spec.command;
      job.info.cpus = spec.cpus;
      job.info.mem_mb = spec.mem_mb;
      job.info.time_limit_ms = part->effective_limit(spec.time_limit_ms);
      job.info.submit_time = now;
      job.info.depends_on = spec.depends_on;
      job.sim_duration_ms = parse_sim_duration(spec.command);
      job.waiting_on = waiting;
      job.seq = next_seq_++;
      job.nice = spec.nice;
      job.working_dir = spec.working_dir;

      // By value: emplace moves `job` out below, and `ids` needs the id
      // after that.
      const std::string id = job.info.id;
      for (const std::string& dep : waiting) {
        dependents_[dep].push_back(id);
      }
      ++pending_count_;
      jobs_submitted_.add();
      order_.push_back(id);
      auto [jit, inserted] = jobs_.emplace(id, std::move(job));
      ids.push_back(id);
      if (doomed) {
        Job& j = jit->second;
        j.info.reason = "dependency";
        j.info.end_time = now;
        jobs_cancelled_.add();
        set_state_locked(j, JobState::kCancelled, transitions);
      }
    }
    update_gauges_locked();
  }
  emit(transitions);
  {
    std::vector<SubmitListener> listeners;
    {
      std::lock_guard lock(listeners_mu_);
      listeners = submit_listeners_;
    }
    if (!listeners.empty()) {
      for (const std::string& id : ids) {
        std::optional<JobInfo> snapshot = info(id);
        if (!snapshot) continue;
        for (const SubmitListener& l : listeners) l(*snapshot);
      }
    }
  }
  return ids;
}

bool Scheduler::cancel(const std::string& id) {
  std::vector<Transition> transitions;
  std::string pid;
  {
    std::lock_guard lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = it->second;
    if (is_terminal(job.info.state)) return false;
    pid = job.pid;
    job.info.reason = "cancelled";
    job.info.end_time = clock_->now();
    jobs_cancelled_.add();
    finish_locked(job, JobState::kCancelled, transitions);
    update_gauges_locked();
  }
  if (!pid.empty()) {
    runner_->kill(pid);  // its callback sees a non-RUNNING job and bails
    runner_->reap(pid);
  }
  emit(transitions);
  return true;
}

std::optional<JobInfo> Scheduler::info(const std::string& id) const {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.info;
}

std::vector<JobInfo> Scheduler::jobs(std::optional<JobState> state) const {
  std::lock_guard lock(mu_);
  std::vector<JobInfo> out;
  for (const std::string& id : order_) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    if (state && it->second.info.state != *state) continue;
    out.push_back(it->second.info);
  }
  return out;
}

size_t Scheduler::queue_depth() const {
  std::lock_guard lock(mu_);
  return pending_count_;
}

size_t Scheduler::running_count() const {
  std::lock_guard lock(mu_);
  return running_count_;
}

double Scheduler::priority_of(const std::string& id) const {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return 0.0;
  return priority_locked(it->second, clock_->now());
}

// --- the scheduling loop ------------------------------------------------------

Scheduler::PassResult Scheduler::schedule_pass() {
  auto wall0 = std::chrono::steady_clock::now();
  runner_->poll();  // retire finished jobs first — frees their slots

  PassResult result;
  std::vector<Transition> transitions;
  std::vector<std::string> kills;
  std::vector<Placement> placements;
  common::TimeMs now = clock_->now();
  {
    std::lock_guard lock(mu_);
    fairshare_.decay(now);

    // 1. Heartbeat sweep: silent nodes go DOWN, their jobs requeue.
    std::vector<std::string> downed =
        nodes_->sweep(now, config_.heartbeat_timeout_ms);
    if (!downed.empty()) {
      nodes_downed_.add(downed.size());
      std::set<std::string> down_set(downed.begin(), downed.end());
      for (auto& [id, job] : jobs_) {
        if (job.info.state == JobState::kRunning &&
            down_set.count(job.info.node)) {
          kills.push_back(job.pid);
          requeue_locked(job, "node_fail", transitions);
          ++result.requeued;
        }
      }
    }

    // 2. Time limits: a job at or past start + limit is killed.
    for (auto& [id, job] : jobs_) {
      if (job.info.state != JobState::kRunning) continue;
      if (job.info.time_limit_ms > 0 &&
          now - job.info.start_time >= job.info.time_limit_ms) {
        kills.push_back(job.pid);
        job.info.reason = "timeout";
        job.info.exit_code = -1;
        jobs_timed_out_.add();
        jobs_failed_.add();
        finish_locked(job, JobState::kFailed, transitions);
        ++result.timed_out;
      }
    }

    // 3. Eligible pending jobs, priority order (seq breaks ties FIFO).
    struct Cand {
      std::string id;
      double prio;
      std::uint64_t seq;
    };
    std::vector<Cand> cands;
    cands.reserve(pending_count_);
    for (auto& [id, job] : jobs_) {
      if (job.info.state == JobState::kPending && deps_ready(job)) {
        cands.push_back({id, priority_locked(job, now), job.seq});
      }
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.prio != b.prio) return a.prio > b.prio;
      return a.seq < b.seq;
    });

    auto place = [&](Job& job, const std::string& node, bool backfill) {
      nodes_->allocate(node, job.info.cpus, job.info.mem_mb);
      job.info.node = node;
      job.info.start_time = now;
      job.info.end_time = 0;
      job.info.backfilled = backfill;
      job.info.reason.clear();
      ++job.incarnation;
      set_state_locked(job, JobState::kRunning, transitions);
      placements.push_back({job.info.id, node, job.incarnation, backfill});
      ++result.placed;
      jobs_placed_.add();
      if (backfill) {
        ++result.backfilled;
        backfill_placed_.add();
      }
      placement_wait_us_.record(
          static_cast<std::uint64_t>(
              std::max<common::TimeMs>(0, now - job.info.submit_time)) *
          1000);
    };

    // 4. Placement: priority order until the head blocks, then EASY
    //    backfill — everything placed after the head must end before its
    //    shadow time, so the reservation cannot be delayed.
    bool head_blocked = false;
    common::TimeMs shadow = 0;  // 0 = no shadow known -> no backfill
    int examined_past_head = 0;
    for (const Cand& cand : cands) {
      Job& job = jobs_.at(cand.id);
      if (head_blocked && ++examined_past_head > config_.backfill_depth) break;
      auto fit =
          nodes_->find_fit(job.info.partition, job.info.cpus, job.info.mem_mb);
      bool can_place = fit.has_value();
      if (can_place && head_blocked) {
        can_place = shadow > 0 && now + job.info.time_limit_ms <= shadow;
      }
      if (can_place) {
        place(job, *fit, head_blocked);
        continue;
      }
      if (head_blocked) continue;  // only the head gets reservation/preemption

      // Would any node of the partition ever hold it? (Nodes can register
      // after submit, so this is re-checked here, not only at submit.)
      std::vector<NodeInfo> pnodes = nodes_->partition_nodes(job.info.partition);
      if (!pnodes.empty()) {
        bool capacity = false;
        for (const NodeInfo& n : pnodes) {
          if (n.cpus >= job.info.cpus && n.mem_mb >= job.info.mem_mb) {
            capacity = true;
            break;
          }
        }
        if (!capacity) {
          job.info.reason = "exceeds_partition_resources";
          job.info.exit_code = -1;
          jobs_failed_.add();
          finish_locked(job, JobState::kFailed, transitions);
          continue;
        }
      }

      // Preemption: a blocked job from a higher tier may evict running
      // preemptable lower-tier jobs. Pick the capable node needing the
      // fewest victims; evict lowest-priority victims first.
      const Partition* part = find_partition(job.info.partition);
      if (part && part->preempt_tier > 0) {
        std::map<std::string, std::vector<std::pair<double, std::string>>>
            victims_by_node;
        for (auto& [vid, vjob] : jobs_) {
          if (vjob.info.state != JobState::kRunning) continue;
          const Partition* vpart = find_partition(vjob.info.partition);
          if (!vpart || !vpart->preemptable ||
              vpart->preempt_tier >= part->preempt_tier) {
            continue;
          }
          victims_by_node[vjob.info.node].push_back(
              {priority_locked(vjob, now), vid});
        }
        std::string best_node;
        size_t best_k = SIZE_MAX;
        std::vector<std::string> best_victims;
        for (const NodeInfo& n : pnodes) {
          if (!n.schedulable() || n.cpus < job.info.cpus ||
              n.mem_mb < job.info.mem_mb) {
            continue;
          }
          unsigned free_c = n.cpus_free();
          std::uint64_t free_m = n.mem_mb_free();
          std::vector<std::string> victims;
          auto vit = victims_by_node.find(n.name);
          if (vit != victims_by_node.end()) {
            std::sort(vit->second.begin(), vit->second.end());
            for (const auto& [vprio, vid] : vit->second) {
              if (free_c >= job.info.cpus && free_m >= job.info.mem_mb) break;
              const Job& vjob = jobs_.at(vid);
              free_c += vjob.info.cpus;
              free_m += vjob.info.mem_mb;
              victims.push_back(vid);
            }
          }
          if (free_c >= job.info.cpus && free_m >= job.info.mem_mb &&
              victims.size() < best_k) {
            best_k = victims.size();
            best_node = n.name;
            best_victims = std::move(victims);
          }
        }
        if (best_k != SIZE_MAX && best_k > 0) {
          for (const std::string& vid : best_victims) {
            Job& vjob = jobs_.at(vid);
            kills.push_back(vjob.pid);
            requeue_locked(vjob, "preempted", transitions);
            ++result.preempted;
          }
          place(job, best_node, false);
          continue;
        }
      }

      // The head is truly blocked: reserve via its shadow time.
      head_blocked = true;
      shadow = shadow_time_locked(job.info.partition, job.info.cpus,
                                  job.info.mem_mb, now)
                   .value_or(0);
      job.info.reason = "resources";
    }
    update_gauges_locked();
  }

  // Phase 2 — act on the decisions outside mu_ (the runner fires exit
  // callbacks synchronously, and those callbacks take mu_).
  for (const std::string& pid : kills) {
    if (pid.empty()) continue;
    runner_->kill(pid);
    runner_->reap(pid);
  }
  for (const Placement& p : placements) {
    std::string command, wd;
    {
      std::lock_guard lock(mu_);
      auto it = jobs_.find(p.id);
      if (it == jobs_.end()) continue;
      command = it->second.info.command;
      wd = it->second.working_dir;
    }
    std::string pid;
    try {
      const std::string id = p.id;
      const int incarnation = p.incarnation;
      pid = runner_->spawn(command, wd,
                           [this, id, incarnation](
                               const std::string& rpid,
                               const app::JobRunner::Status& status) {
                             on_runner_exit(id, incarnation, rpid, status);
                           });
    } catch (const std::exception& e) {
      std::lock_guard lock(mu_);
      auto it = jobs_.find(p.id);
      if (it != jobs_.end() &&
          it->second.info.state == JobState::kRunning &&
          it->second.incarnation == p.incarnation) {
        Job& job = it->second;
        job.info.reason = std::string("spawn: ") + e.what();
        job.info.exit_code = -1;
        jobs_failed_.add();
        finish_locked(job, JobState::kFailed, transitions);
        update_gauges_locked();
      }
      continue;
    }
    bool orphan = false;
    {
      std::lock_guard lock(mu_);
      auto it = jobs_.find(p.id);
      if (it != jobs_.end() && it->second.info.state == JobState::kRunning &&
          it->second.incarnation == p.incarnation) {
        it->second.pid = pid;
      } else {
        orphan = true;  // cancelled in the spawn window
      }
    }
    if (orphan) {
      runner_->kill(pid);
      runner_->reap(pid);
    }
  }
  emit(transitions);

  pass_us_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall0)
          .count()));
  return result;
}

std::optional<common::TimeMs> Scheduler::next_event_time() const {
  std::lock_guard lock(mu_);
  std::optional<common::TimeMs> best;
  for (const auto& [id, job] : jobs_) {
    if (job.info.state != JobState::kRunning) continue;
    common::TimeMs end;
    if (job.sim_duration_ms >= 0) {
      end = job.info.start_time + job.sim_duration_ms;
      if (job.info.time_limit_ms > 0 &&
          job.info.start_time + job.info.time_limit_ms < end) {
        end = job.info.start_time + job.info.time_limit_ms;
      }
    } else {
      end = job.info.start_time + job.info.time_limit_ms;
    }
    if (!best || end < *best) best = end;
  }
  return best;
}

void Scheduler::on_transition(TransitionListener listener) {
  std::lock_guard lock(listeners_mu_);
  listeners_.push_back(std::move(listener));
}

void Scheduler::on_submit(SubmitListener listener) {
  std::lock_guard lock(listeners_mu_);
  submit_listeners_.push_back(std::move(listener));
}

bool Scheduler::restore(const JobInfo& persisted) {
  std::vector<Transition> transitions;
  {
    std::lock_guard lock(mu_);
    if (persisted.id.empty() || jobs_.count(persisted.id)) return false;

    Job job;
    job.info = persisted;
    job.seq = next_seq_++;
    job.sim_duration_ms = parse_sim_duration(persisted.command);

    // Advance the id counter past restored ids ("job-N" / "job-N_k") so
    // new submissions never collide with recovered jobs.
    if (persisted.id.starts_with("job-")) {
      std::string tail = persisted.id.substr(4);
      if (auto us = tail.find('_'); us != std::string::npos) {
        tail.resize(us);
      }
      try {
        std::uint64_t n = std::stoull(tail);
        if (n >= next_id_) next_id_ = n + 1;
      } catch (const std::exception&) {
        // non-numeric id: counter untouched
      }
    }

    bool doomed = false;
    if (!is_terminal(job.info.state)) {
      if (job.info.state != JobState::kPending) {
        // The process died with the container; back to the queue.
        job.info.state = JobState::kPending;
        job.info.reason = "container_restart";
        job.info.node.clear();
        job.info.start_time = 0;
      }
      // Rebuild afterok state against the already-restored parents.
      for (const std::string& dep : job.info.depends_on) {
        auto it = jobs_.find(dep);
        if (it == jobs_.end()) {
          // The parent never made it to the durable store — we cannot
          // prove it completed, and afterok demands proof.
          doomed = true;
          continue;
        }
        JobState ds = it->second.info.state;
        if (ds == JobState::kCompleted) continue;
        if (is_terminal(ds)) doomed = true;
        job.waiting_on.push_back(dep);
      }
    }

    const std::string id = job.info.id;
    for (const std::string& dep : job.waiting_on) {
      dependents_[dep].push_back(id);
    }
    if (!is_terminal(job.info.state)) ++pending_count_;
    order_.push_back(id);
    auto [jit, inserted] = jobs_.emplace(id, std::move(job));
    if (doomed && !is_terminal(jit->second.info.state)) {
      Job& j = jit->second;
      j.info.reason = "dependency";
      j.info.end_time = clock_->now();
      jobs_cancelled_.add();
      set_state_locked(j, JobState::kCancelled, transitions);
    }
    update_gauges_locked();
  }
  emit(transitions);
  return true;
}

// --- locked helpers -----------------------------------------------------------

double Scheduler::priority_locked(const Job& job, common::TimeMs now) const {
  double age_min =
      static_cast<double>(std::max<common::TimeMs>(0, now - job.info.submit_time)) /
      60'000.0;
  double p = config_.weight_age * age_min +
             config_.weight_fairshare * fairshare_.factor(job.info.account) -
             static_cast<double>(job.nice);
  const Partition* part = find_partition(job.info.partition);
  if (part) p += config_.weight_partition * static_cast<double>(part->priority);
  return p;
}

const Partition* Scheduler::find_partition(const std::string& name) const {
  auto it = partitions_.find(name);
  return it == partitions_.end() ? nullptr : &it->second;
}

void Scheduler::set_state_locked(Job& job, JobState to,
                                 std::vector<Transition>& transitions) {
  JobState from = job.info.state;
  if (from == to) return;
  if (from == JobState::kPending) --pending_count_;
  if (from == JobState::kRunning) --running_count_;
  job.info.state = to;
  if (to == JobState::kPending) ++pending_count_;
  if (to == JobState::kRunning) ++running_count_;
  transitions.push_back({job.info, from, to});
}

void Scheduler::finish_locked(Job& job, JobState to,
                              std::vector<Transition>& out) {
  common::TimeMs now = clock_->now();
  if (job.info.state == JobState::kRunning) {
    nodes_->release(job.info.node, job.info.cpus, job.info.mem_mb);
    fairshare_.record_usage(
        job.info.account,
        static_cast<double>(job.info.cpus) *
            std::max<common::TimeMs>(0, now - job.info.start_time));
    job.pid.clear();
  }
  if (job.info.end_time == 0) job.info.end_time = now;
  set_state_locked(job, to, out);
  resolve_dependents_locked(job, out);
}

void Scheduler::requeue_locked(Job& job, const std::string& reason,
                               std::vector<Transition>& out) {
  common::TimeMs now = clock_->now();
  nodes_->release(job.info.node, job.info.cpus, job.info.mem_mb);
  fairshare_.record_usage(
      job.info.account,
      static_cast<double>(job.info.cpus) *
          std::max<common::TimeMs>(0, now - job.info.start_time));
  job.pid.clear();
  job.info.reason = reason;
  job.info.node.clear();
  job.info.start_time = 0;
  jobs_requeued_.add();
  if (reason == "preempted") {
    ++job.info.preempt_count;
    jobs_preempted_.add();
    set_state_locked(job, JobState::kPreempted, out);
  }
  set_state_locked(job, JobState::kPending, out);
}

void Scheduler::resolve_dependents_locked(const Job& parent,
                                          std::vector<Transition>& out) {
  auto it = dependents_.find(parent.info.id);
  if (it == dependents_.end()) return;
  std::vector<std::string> kids = std::move(it->second);
  dependents_.erase(it);
  bool ok = parent.info.state == JobState::kCompleted;
  for (const std::string& kid_id : kids) {
    auto jit = jobs_.find(kid_id);
    if (jit == jobs_.end()) continue;
    Job& kid = jit->second;
    if (is_terminal(kid.info.state)) continue;
    auto& w = kid.waiting_on;
    w.erase(std::remove(w.begin(), w.end(), parent.info.id), w.end());
    if (!ok) {
      kid.info.reason = "dependency";
      kid.info.end_time = clock_->now();
      jobs_cancelled_.add();
      set_state_locked(kid, JobState::kCancelled, out);
      resolve_dependents_locked(kid, out);  // cascade down the chain
    }
  }
}

std::optional<common::TimeMs> Scheduler::shadow_time_locked(
    const std::string& partition, unsigned cpus, std::uint64_t mem_mb,
    common::TimeMs now) const {
  struct Sim {
    unsigned free_cpus;
    std::uint64_t free_mem;
  };
  std::map<std::string, Sim> sims;
  bool capacity = false;
  for (const NodeInfo& n : nodes_->partition_nodes(partition)) {
    if (!n.schedulable()) continue;
    if (n.cpus >= cpus && n.mem_mb >= mem_mb) capacity = true;
    sims[n.name] = {n.cpus_free(), n.mem_mb_free()};
  }
  if (!capacity) return std::nullopt;
  for (const auto& [name, s] : sims) {
    if (s.free_cpus >= cpus && s.free_mem >= mem_mb) return now;
  }
  // Replay running jobs ending at their limits (any partition — shared
  // nodes hold jobs from other queues too) in time order until a node fits.
  struct Ev {
    common::TimeMs t;
    const Job* job;
  };
  std::vector<Ev> evs;
  for (const auto& [id, job] : jobs_) {
    if (job.info.state != JobState::kRunning) continue;
    if (!sims.count(job.info.node)) continue;
    common::TimeMs end = job.info.start_time + job.info.time_limit_ms;
    if (end < now) end = now;
    evs.push_back({end, &job});
  }
  std::sort(evs.begin(), evs.end(),
            [](const Ev& a, const Ev& b) { return a.t < b.t; });
  for (const Ev& ev : evs) {
    Sim& s = sims[ev.job->info.node];
    s.free_cpus += ev.job->info.cpus;
    s.free_mem += ev.job->info.mem_mb;
    if (s.free_cpus >= cpus && s.free_mem >= mem_mb) return ev.t;
  }
  return std::nullopt;
}

void Scheduler::emit(std::vector<Transition>& transitions) {
  if (transitions.empty()) return;
  std::vector<TransitionListener> listeners;
  {
    std::lock_guard lock(listeners_mu_);
    listeners = listeners_;
  }
  for (const Transition& t : transitions) {
    for (const TransitionListener& l : listeners) l(t.info, t.from, t.to);
  }
  transitions.clear();
}

void Scheduler::on_runner_exit(const std::string& id, int incarnation,
                               const std::string& pid,
                               const app::JobRunner::Status& status) {
  std::vector<Transition> transitions;
  {
    std::lock_guard lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = it->second;
    if (job.info.state != JobState::kRunning || job.incarnation != incarnation) {
      return;  // cancelled/preempted/timed-out — already handled
    }
    job.info.exit_code = status.exit_code;
    job.info.end_time = status.ended;
    JobState to = (status.state == app::JobRunner::State::kExited &&
                   status.exit_code == 0)
                      ? JobState::kCompleted
                      : JobState::kFailed;
    if (to == JobState::kFailed) {
      job.info.reason = status.state == app::JobRunner::State::kKilled
                            ? "killed"
                            : "nonzero_exit";
      jobs_failed_.add();
    } else {
      jobs_completed_.add();
    }
    finish_locked(job, to, transitions);
    update_gauges_locked();
  }
  runner_->reap(pid);
  emit(transitions);
}

void Scheduler::update_gauges_locked() {
  queue_depth_gauge_.set(static_cast<std::int64_t>(pending_count_));
  running_gauge_.set(static_cast<std::int64_t>(running_count_));
  nodes_up_gauge_.set(
      static_cast<std::int64_t>(nodes_->count(NodeState::kUp)));
  nodes_down_gauge_.set(
      static_cast<std::int64_t>(nodes_->count(NodeState::kDown)));
  cpus_used_gauge_.set(static_cast<std::int64_t>(nodes_->cpus_used()));
  cpus_total_gauge_.set(static_cast<std::int64_t>(nodes_->cpus_total()));
}

}  // namespace gs::sched
