#include "sched/service.hpp"

#include <cstdlib>

#include "soap/namespaces.hpp"

namespace gs::sched {

namespace {

xml::QName s(const char* local) { return {soap::ns::kSched, local}; }
xml::QName rp(const char* local) { return {soap::ns::kWsrfRp, local}; }

// Action URIs duplicated from the wsrf/wst service headers so this library
// depends only on gs_container (the strings are spec constants either way).
const std::string kGetResourceProperty =
    std::string(soap::ns::kWsrfRp) + "/GetResourceProperty";
const std::string kGetResourcePropertyDocument =
    std::string(soap::ns::kWsrfRp) + "/GetResourcePropertyDocument";
const std::string kTransferGet = std::string(soap::ns::kTransfer) + "/Get";
const std::string kTransferCreate =
    std::string(soap::ns::kTransfer) + "/Create";
const std::string kTransferDelete =
    std::string(soap::ns::kTransfer) + "/Delete";

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    std::string item = comma == std::string::npos
                           ? text.substr(start)
                           : text.substr(start, comma - start);
    size_t b = item.find_first_not_of(" \t\r\n");
    if (b != std::string::npos) {
      size_t e = item.find_last_not_of(" \t\r\n");
      out.push_back(item.substr(b, e - b + 1));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string join_csv(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ",";
    out += item;
  }
  return out;
}

std::string trimmed_text(const xml::Element& el) {
  std::string text = el.text();
  size_t b = text.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = text.find_last_not_of(" \t\r\n");
  return text.substr(b, e - b + 1);
}

long long attr_ll(const xml::Element& el, const char* name, long long fallback) {
  auto raw = el.attr(name);
  return raw ? std::strtoll(raw->c_str(), nullptr, 10) : fallback;
}

/// The representation WS-Transfer Create accepts (attributes; depends_on
/// is a comma-separated id list).
JobSpec parse_job_spec(const xml::Element& el) {
  JobSpec spec;
  spec.name = el.attr("name").value_or("");
  spec.account = el.attr("account").value_or("default");
  spec.partition = el.attr("partition").value_or("");
  spec.command = el.attr("command").value_or("");
  spec.working_dir = el.attr("working_dir").value_or("");
  spec.cpus = static_cast<unsigned>(attr_ll(el, "cpus", 1));
  spec.mem_mb = static_cast<std::uint64_t>(attr_ll(el, "mem_mb", 100));
  spec.time_limit_ms = attr_ll(el, "time_limit_ms", 0);
  spec.array_count = static_cast<int>(attr_ll(el, "array_count", 1));
  spec.nice = static_cast<int>(attr_ll(el, "nice", 0));
  if (auto deps = el.attr("depends_on")) spec.depends_on = split_csv(*deps);
  return spec;
}

}  // namespace

std::string job_state_action() {
  return std::string(soap::ns::kSched) + "/JobStateChange";
}

wsn::TopicNamespace sched_topics() {
  wsn::TopicNamespace topics;
  topics.add(kJobTopic);  // intermediates register kSchedTopic too
  return topics;
}

std::unique_ptr<xml::Element> job_element(const JobInfo& info) {
  auto el = std::make_unique<xml::Element>(s("Job"));
  el->set_attr("id", info.id);
  el->set_attr("name", info.name);
  el->set_attr("account", info.account);
  el->set_attr("partition", info.partition);
  el->set_attr("state", job_state_name(info.state));
  el->set_attr("cpus", std::to_string(info.cpus));
  el->set_attr("mem_mb", std::to_string(info.mem_mb));
  if (!info.node.empty()) el->set_attr("node", info.node);
  if (!info.reason.empty()) el->set_attr("reason", info.reason);
  if (info.backfilled) el->set_attr("backfilled", "true");
  if (info.preempt_count > 0) {
    el->set_attr("preempt_count", std::to_string(info.preempt_count));
  }
  if (is_terminal(info.state)) {
    el->set_attr("exit_code", std::to_string(info.exit_code));
  }
  el->set_attr("submit_time", std::to_string(info.submit_time));
  if (info.start_time != 0) {
    el->set_attr("start_time", std::to_string(info.start_time));
  }
  if (info.end_time != 0) el->set_attr("end_time", std::to_string(info.end_time));
  el->set_attr("time_limit_ms", std::to_string(info.time_limit_ms));
  if (!info.depends_on.empty()) {
    el->set_attr("depends_on", join_csv(info.depends_on));
  }
  return el;
}

std::unique_ptr<xml::Element> sched_document(Scheduler& sched) {
  auto root = std::make_unique<xml::Element>(s("Sched"));
  root->declare_prefix("s", soap::ns::kSched);

  xml::Element& queue = root->append_element(s("Queue"));
  queue.set_attr("depth", std::to_string(sched.queue_depth()));
  queue.set_attr("running", std::to_string(sched.running_count()));

  for (const Partition& p : sched.partitions()) {
    xml::Element& el = root->append_element(s("Partition"));
    el.set_attr("name", p.name);
    el.set_attr("priority", std::to_string(p.priority));
    el.set_attr("preempt_tier", std::to_string(p.preempt_tier));
    el.set_attr("preemptable", p.preemptable ? "true" : "false");
    el.set_attr("default_time_limit_ms",
                std::to_string(p.default_time_limit_ms));
  }

  for (const NodeInfo& n : sched.nodes().snapshot()) {
    xml::Element& el = root->append_element(s("Node"));
    el.set_attr("name", n.name);
    el.set_attr("state", node_state_name(n.state));
    el.set_attr("partitions", join_csv(n.partitions));
    el.set_attr("cpus", std::to_string(n.cpus));
    el.set_attr("cpus_used", std::to_string(n.cpus_used));
    el.set_attr("mem_mb", std::to_string(n.mem_mb));
    el.set_attr("mem_mb_used", std::to_string(n.mem_mb_used));
    el.set_attr("last_heartbeat", std::to_string(n.last_heartbeat));
  }

  for (const JobInfo& info : sched.jobs()) {
    root->append(job_element(info));
  }
  return root;
}

void attach_job_publisher(Scheduler& sched, JobEventPublisher publisher) {
  sched.on_transition([publisher](const JobInfo& info, JobState from,
                                  JobState to) {
    xml::Element event(s("JobStateChange"));
    event.declare_prefix("s", soap::ns::kSched);
    event.set_attr("id", info.id);
    event.set_attr("name", info.name);
    event.set_attr("account", info.account);
    event.set_attr("partition", info.partition);
    event.set_attr("from", job_state_name(from));
    event.set_attr("to", job_state_name(to));
    if (!info.node.empty()) event.set_attr("node", info.node);
    if (!info.reason.empty()) event.set_attr("reason", info.reason);
    if (info.backfilled) event.set_attr("backfilled", "true");
    if (is_terminal(to)) {
      event.set_attr("exit_code", std::to_string(info.exit_code));
    }
    if (publisher.wsn) publisher.wsn->notify(kJobTopic, event);
    if (publisher.wse) publisher.wse->notify(kJobTopic, event, job_state_action());
  });
}

std::string SchedService::register_node_action() {
  return std::string(soap::ns::kSched) + "/RegisterNode";
}
std::string SchedService::heartbeat_action() {
  return std::string(soap::ns::kSched) + "/Heartbeat";
}
std::string SchedService::drain_action() {
  return std::string(soap::ns::kSched) + "/Drain";
}
std::string SchedService::resume_action() {
  return std::string(soap::ns::kSched) + "/Resume";
}
std::string SchedService::schedule_pass_action() {
  return std::string(soap::ns::kSched) + "/SchedulePass";
}
std::string SchedService::cancel_action() {
  return std::string(soap::ns::kSched) + "/Cancel";
}

SchedService::SchedService(std::string address, Scheduler* sched)
    : container::Service("Sched"), address_(std::move(address)), sched_(sched) {
  // --- WSRF: queue/node/job state as resource properties --------------------
  register_operation(kGetResourceProperty, [this](container::RequestContext& ctx) {
    std::string requested = trimmed_text(ctx.payload());
    if (requested.empty()) {
      throw soap::SoapFault("Sender", "empty sched property name");
    }
    static const std::map<std::string, std::string> kKinds = {
        {"Queue", "Queue"},
        {"Partitions", "Partition"},
        {"Nodes", "Node"},
        {"Jobs", "Job"},
    };
    auto kind = kKinds.find(requested);

    auto doc = sched_document(*sched_);
    soap::Envelope response =
        container::make_response(ctx, kGetResourceProperty + "Response");
    xml::Element& body = response.add_payload(rp("GetResourcePropertyResponse"));
    bool matched = false;
    for (const xml::Element* el : doc->child_elements()) {
      bool wanted = kind != kKinds.end()
                        ? el->name().local() == kind->second
                        : (el->name().local() == "Job" &&
                           el->attr("id") == requested);
      if (wanted) {
        body.append(el->clone());
        matched = true;
      }
    }
    if (!matched && kind == kKinds.end()) {
      throw soap::SoapFault("Sender",
                            "unknown sched property '" + requested + "'");
    }
    return response;
  });

  register_operation(
      kGetResourcePropertyDocument, [this](container::RequestContext& ctx) {
        soap::Envelope response = container::make_response(
            ctx, kGetResourcePropertyDocument + "Response");
        response.add_payload(rp("GetResourcePropertyDocumentResponse"))
            .append(sched_document(*sched_));
        return response;
      });

  // --- WS-Transfer: Create submits, Get reads, Delete cancels ----------------
  register_operation(kTransferCreate, [this](container::RequestContext& ctx) {
    JobSpec spec = parse_job_spec(ctx.payload());
    std::vector<std::string> ids = sched_->submit(spec);
    soap::Envelope response =
        container::make_response(ctx, kTransferCreate + "Response");
    xml::Element& body = response.add_payload(s("CreateResponse"));
    body.declare_prefix("s", soap::ns::kSched);
    for (const std::string& id : ids) {
      body.append_element(s("JobId")).set_text(id);
    }
    return response;
  });

  register_operation(kTransferGet, [this](container::RequestContext& ctx) {
    std::string id = trimmed_text(ctx.payload());
    soap::Envelope response =
        container::make_response(ctx, kTransferGet + "Response");
    if (id.empty()) {
      response.add_payload(sched_document(*sched_));
      return response;
    }
    std::optional<JobInfo> info = sched_->info(id);
    if (!info) throw soap::SoapFault("Sender", "unknown job '" + id + "'");
    response.add_payload(job_element(*info));
    return response;
  });

  register_operation(kTransferDelete, [this](container::RequestContext& ctx) {
    std::string id = trimmed_text(ctx.payload());
    if (id.empty()) throw soap::SoapFault("Sender", "Delete needs a job id");
    if (!sched_->info(id)) {
      throw soap::SoapFault("Sender", "unknown job '" + id + "'");
    }
    bool cancelled = sched_->cancel(id);
    soap::Envelope response =
        container::make_response(ctx, kTransferDelete + "Response");
    response.add_payload(s("DeleteResponse"))
        .set_attr("cancelled", cancelled ? "true" : "false");
    return response;
  });

  register_operation(cancel_action(), [this](container::RequestContext& ctx) {
    std::string id = ctx.payload().attr("id").value_or("");
    if (id.empty()) id = trimmed_text(ctx.payload());
    if (id.empty()) throw soap::SoapFault("Sender", "Cancel needs a job id");
    if (!sched_->info(id)) {
      throw soap::SoapFault("Sender", "unknown job '" + id + "'");
    }
    bool cancelled = sched_->cancel(id);
    soap::Envelope response =
        container::make_response(ctx, cancel_action() + "Response");
    response.add_payload(s("CancelResponse"))
        .set_attr("cancelled", cancelled ? "true" : "false");
    return response;
  });

  // --- controller operations: the fleet reports in over the fabric -----------
  register_operation(register_node_action(), [this](container::RequestContext& ctx) {
    const xml::Element& el = ctx.payload();
    std::string name = el.attr("name").value_or("");
    if (name.empty()) throw soap::SoapFault("Sender", "RegisterNode needs a name");
    std::vector<std::string> parts =
        split_csv(el.attr("partitions").value_or(""));
    unsigned cpus = static_cast<unsigned>(attr_ll(el, "cpus", 1));
    std::uint64_t mem = static_cast<std::uint64_t>(attr_ll(el, "mem_mb", 1024));
    sched_->nodes().upsert(name, std::move(parts), cpus, mem,
                           sched_->clock().now());
    soap::Envelope response =
        container::make_response(ctx, register_node_action() + "Response");
    response.add_payload(s("RegisterNodeResponse")).set_attr("name", name);
    return response;
  });

  register_operation(heartbeat_action(), [this](container::RequestContext& ctx) {
    std::string node = ctx.payload().attr("node").value_or("");
    if (node.empty()) node = trimmed_text(ctx.payload());
    bool known = sched_->nodes().heartbeat(node, sched_->clock().now());
    soap::Envelope response =
        container::make_response(ctx, heartbeat_action() + "Response");
    // known="false" tells the node to re-register (controller restarted).
    response.add_payload(s("HeartbeatResponse"))
        .set_attr("known", known ? "true" : "false");
    return response;
  });

  register_operation(drain_action(), [this](container::RequestContext& ctx) {
    std::string node = ctx.payload().attr("node").value_or("");
    if (!sched_->nodes().drain(node)) {
      throw soap::SoapFault("Sender", "unknown node '" + node + "'");
    }
    soap::Envelope response =
        container::make_response(ctx, drain_action() + "Response");
    response.add_payload(s("DrainResponse")).set_attr("node", node);
    return response;
  });

  register_operation(resume_action(), [this](container::RequestContext& ctx) {
    std::string node = ctx.payload().attr("node").value_or("");
    if (!sched_->nodes().resume(node, sched_->clock().now())) {
      throw soap::SoapFault("Sender", "unknown node '" + node + "'");
    }
    soap::Envelope response =
        container::make_response(ctx, resume_action() + "Response");
    response.add_payload(s("ResumeResponse")).set_attr("node", node);
    return response;
  });

  register_operation(schedule_pass_action(),
                     [this](container::RequestContext& ctx) {
    Scheduler::PassResult r = sched_->schedule_pass();
    soap::Envelope response =
        container::make_response(ctx, schedule_pass_action() + "Response");
    xml::Element& body = response.add_payload(s("SchedulePassResponse"));
    body.set_attr("placed", std::to_string(r.placed));
    body.set_attr("backfilled", std::to_string(r.backfilled));
    body.set_attr("preempted", std::to_string(r.preempted));
    body.set_attr("requeued", std::to_string(r.requeued));
    body.set_attr("timed_out", std::to_string(r.timed_out));
    body.set_attr("queue_depth", std::to_string(sched_->queue_depth()));
    body.set_attr("running", std::to_string(sched_->running_count()));
    return response;
  });
}

}  // namespace gs::sched
