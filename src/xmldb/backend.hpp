// Storage backends for the XML database.
//
// The paper's WSRF.NET "contains built-in support for using an XML
// database ... or an in-memory document collection backend. An interface to
// allow custom backends to be used (useful for legacy systems) is also
// provided." This is that interface plus the two built-ins: an in-memory
// collection map and a file-per-document store with atomic replace.
#pragma once

#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace gs::xmldb {

/// Raw document storage: collections of (id -> XML octets).
class Backend {
 public:
  virtual ~Backend() = default;

  virtual void put(const std::string& collection, const std::string& id,
                   const std::string& octets) = 0;
  virtual std::optional<std::string> get(const std::string& collection,
                                         const std::string& id) = 0;
  /// Returns false when the document did not exist.
  virtual bool remove(const std::string& collection, const std::string& id) = 0;
  virtual std::vector<std::string> list(const std::string& collection) = 0;
  virtual bool contains(const std::string& collection, const std::string& id) = 0;
};

/// Heap-resident backend (fast, non-durable).
class MemoryBackend final : public Backend {
 public:
  void put(const std::string& collection, const std::string& id,
           const std::string& octets) override;
  std::optional<std::string> get(const std::string& collection,
                                 const std::string& id) override;
  bool remove(const std::string& collection, const std::string& id) override;
  std::vector<std::string> list(const std::string& collection) override;
  bool contains(const std::string& collection, const std::string& id) override;

 private:
  std::mutex mu_;
  std::map<std::string, std::map<std::string, std::string>> collections_;
};

/// One file per document under root/collection/, written via a temporary
/// file and atomic rename so readers never observe partial documents.
/// Document ids are fs-escaped, so any id is usable.
///
/// Like Xindice, each collection maintains an index (one `_index` file of
/// member ids) that is rewritten whenever membership changes — inserting a
/// new document or removing one costs strictly more than updating an
/// existing document, which is the cost asymmetry behind the paper's
/// "creating resources ... is always slower than reading or updating them".
class FileBackend final : public Backend {
 public:
  explicit FileBackend(std::filesystem::path root);

  void put(const std::string& collection, const std::string& id,
           const std::string& octets) override;
  std::optional<std::string> get(const std::string& collection,
                                 const std::string& id) override;
  bool remove(const std::string& collection, const std::string& id) override;
  std::vector<std::string> list(const std::string& collection) override;
  bool contains(const std::string& collection, const std::string& id) override;

  const std::filesystem::path& root() const noexcept { return root_; }

 private:
  std::filesystem::path doc_path(const std::string& collection,
                                 const std::string& id) const;
  void rewrite_index_locked(const std::string& collection);
  static std::string escape_id(const std::string& id);
  static std::string unescape_id(const std::string& name);

  std::filesystem::path root_;
  std::mutex mu_;
};

}  // namespace gs::xmldb
