#include "xmldb/wal.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <utility>

#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace gs::xmldb {
namespace {

// Record ops. A frame is [u32 len][u32 crc32(payload)][payload]; the first
// payload byte is the op.
constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpRemove = 2;
constexpr std::uint8_t kOpCommit = 3;

constexpr char kSnapshotMagic[8] = {'G', 'S', 'S', 'N', 'A', 'P', '0', '0'};
constexpr std::uint32_t kSnapshotVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void patch_u32(std::string& out, std::size_t at, std::uint32_t v) {
  out[at] = static_cast<char>(v & 0xff);
  out[at + 1] = static_cast<char>((v >> 8) & 0xff);
  out[at + 2] = static_cast<char>((v >> 16) & 0xff);
  out[at + 3] = static_cast<char>((v >> 24) & 0xff);
}

bool read_u32(std::string_view in, std::size_t& pos, std::uint32_t& out) {
  if (pos + 4 > in.size()) return false;
  out = static_cast<std::uint8_t>(in[pos]) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[pos + 1])) << 8) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[pos + 2])) << 16) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[pos + 3])) << 24);
  pos += 4;
  return true;
}

bool read_u64(std::string_view in, std::size_t& pos, std::uint64_t& out) {
  std::uint32_t lo = 0, hi = 0;
  if (!read_u32(in, pos, lo) || !read_u32(in, pos, hi)) return false;
  out = static_cast<std::uint64_t>(hi) << 32 | lo;
  return true;
}

bool read_bytes(std::string_view in, std::size_t& pos, std::uint64_t len,
                std::string& out) {
  if (pos + len > in.size()) return false;
  out.assign(in.substr(pos, len));
  pos += len;
  return true;
}

// Slicing-by-8 CRC32: eight derived tables let the loop fold 8 bytes per
// iteration with no serial dependency between table lookups. The checksum
// runs over every logged byte, so the byte-at-a-time version showed up as
// the largest WAL-only cost per record (~2.5 cycles/byte vs ~0.4 here).
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

const CrcTables& crc_tables() {
  static const CrcTables tables = [] {
    CrcTables t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[slice][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.append(payload);
  return out;
}

// Frame-in-place variants of encode_frame: build the payload straight into
// the frame buffer (one allocation on the hot write path), then patch the
// length/CRC header over the 8 reserved bytes.
std::string encode_put(const std::string& collection, const std::string& id,
                       const std::string& octets) {
  std::string out;
  out.reserve(8 + 1 + 12 + collection.size() + id.size() + octets.size());
  out.append(8, '\0');
  out.push_back(static_cast<char>(kOpPut));
  put_u32(out, static_cast<std::uint32_t>(collection.size()));
  out.append(collection);
  put_u32(out, static_cast<std::uint32_t>(id.size()));
  out.append(id);
  put_u64(out, octets.size());
  out.append(octets);
  std::string_view payload(out.data() + 8, out.size() - 8);
  patch_u32(out, 0, static_cast<std::uint32_t>(payload.size()));
  patch_u32(out, 4, crc32(payload));
  return out;
}

std::string encode_remove(const std::string& collection,
                          const std::string& id) {
  std::string out;
  out.reserve(8 + 1 + 8 + collection.size() + id.size());
  out.append(8, '\0');
  out.push_back(static_cast<char>(kOpRemove));
  put_u32(out, static_cast<std::uint32_t>(collection.size()));
  out.append(collection);
  put_u32(out, static_cast<std::uint32_t>(id.size()));
  out.append(id);
  std::string_view payload(out.data() + 8, out.size() - 8);
  patch_u32(out, 0, static_cast<std::uint32_t>(payload.size()));
  patch_u32(out, 4, crc32(payload));
  return out;
}

std::string encode_commit(std::uint32_t record_count) {
  std::string payload;
  payload.push_back(static_cast<char>(kOpCommit));
  put_u32(payload, record_count);
  return encode_frame(payload);
}

struct DecodedRecord {
  std::uint8_t op = 0;
  std::string collection;
  std::string id;
  std::string octets;
  std::uint32_t commit_count = 0;
};

enum class FrameResult {
  kOk,         // decoded
  kTorn,       // ran off the end of the log — the normal tail
  kCorrupt,    // CRC or structure failure on a complete-looking frame
};

FrameResult decode_frame(std::string_view log, std::size_t& pos,
                         DecodedRecord& rec) {
  std::size_t start = pos;
  std::uint32_t len = 0, crc = 0;
  if (!read_u32(log, pos, len) || !read_u32(log, pos, crc)) {
    pos = start;
    return FrameResult::kTorn;
  }
  if (pos + len > log.size()) {
    pos = start;
    return FrameResult::kTorn;
  }
  std::string_view payload = log.substr(pos, len);
  pos += len;
  if (crc32(payload) != crc || payload.empty()) return FrameResult::kCorrupt;
  std::size_t p = 0;
  rec.op = static_cast<std::uint8_t>(payload[0]);
  ++p;
  switch (rec.op) {
    case kOpPut: {
      std::uint32_t clen = 0, ilen = 0;
      std::uint64_t olen = 0;
      if (!read_u32(payload, p, clen) ||
          !read_bytes(payload, p, clen, rec.collection) ||
          !read_u32(payload, p, ilen) ||
          !read_bytes(payload, p, ilen, rec.id) ||
          !read_u64(payload, p, olen) ||
          !read_bytes(payload, p, olen, rec.octets) ||
          p != payload.size()) {
        return FrameResult::kCorrupt;
      }
      return FrameResult::kOk;
    }
    case kOpRemove: {
      std::uint32_t clen = 0, ilen = 0;
      if (!read_u32(payload, p, clen) ||
          !read_bytes(payload, p, clen, rec.collection) ||
          !read_u32(payload, p, ilen) ||
          !read_bytes(payload, p, ilen, rec.id) ||
          p != payload.size()) {
        return FrameResult::kCorrupt;
      }
      return FrameResult::kOk;
    }
    case kOpCommit: {
      if (!read_u32(payload, p, rec.commit_count) || p != payload.size())
        return FrameResult::kCorrupt;
      return FrameResult::kOk;
    }
    default:
      return FrameResult::kCorrupt;
  }
}

telemetry::MetricsRegistry& registry_or_global(telemetry::MetricsRegistry* m) {
  return m ? *m : telemetry::MetricsRegistry::global();
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  const auto& t = crc_tables();
  std::uint32_t c = 0xffffffffu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t n = bytes.size();
  while (n >= 8) {
    // Little-endian fold of the CRC into the first word; the two words'
    // bytes index independent tables, so the lookups run in parallel.
    std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                       (static_cast<std::uint32_t>(p[1]) << 8) |
                       (static_cast<std::uint32_t>(p[2]) << 16) |
                       (static_cast<std::uint32_t>(p[3]) << 24);
    std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                       (static_cast<std::uint32_t>(p[5]) << 8) |
                       (static_cast<std::uint32_t>(p[6]) << 16) |
                       (static_cast<std::uint32_t>(p[7]) << 24);
    lo ^= c;
    c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
        t[4][(lo >> 24) & 0xff] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][(hi >> 24) & 0xff];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) c = t[0][(c ^ *p) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

WalBackend::WalBackend(std::shared_ptr<LogDevice> log,
                       std::shared_ptr<LogDevice> snapshot, WalOptions options)
    : log_(std::move(log)),
      snapshot_(std::move(snapshot)),
      options_(options),
      records_logged_(
          registry_or_global(options.metrics).counter("xmldb.wal_records")),
      batches_synced_(
          registry_or_global(options.metrics).counter("xmldb.wal_batches")),
      corrupt_records_(registry_or_global(options.metrics)
                           .counter("xmldb.wal_corrupt_records")),
      compactions_(
          registry_or_global(options.metrics).counter("xmldb.wal_compactions")),
      recovered_records_(registry_or_global(options.metrics)
                             .counter("xmldb.wal_recovered_records")),
      batch_size_(
          registry_or_global(options.metrics).histogram("xmldb.wal_batch_size")),
      commit_us_(
          registry_or_global(options.metrics).histogram("xmldb.wal_commit_us")),
      recovery_us_(registry_or_global(options.metrics)
                       .histogram("xmldb.wal_recovery_us")),
      log_bytes_gauge_(
          registry_or_global(options.metrics).gauge("xmldb.wal_log_bytes")),
      snapshot_bytes_gauge_(registry_or_global(options.metrics)
                                .gauge("xmldb.wal_snapshot_bytes")) {
  recover();
  commit_thread_ = std::thread([this] { commit_loop(); });
}

std::unique_ptr<WalBackend> WalBackend::open(const std::filesystem::path& dir,
                                             WalOptions options) {
  std::filesystem::create_directories(dir);
  return std::make_unique<WalBackend>(
      std::make_shared<FileLogDevice>(dir / "wal.log"),
      std::make_shared<FileLogDevice>(dir / "wal.snap"), options);
}

WalBackend::~WalBackend() {
  {
    std::lock_guard lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (commit_thread_.joinable()) commit_thread_.join();
}

void WalBackend::recover() {
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t applied = 0, corrupt = 0, discarded = 0;

  // Phase 1: the snapshot — a versioned header followed by framed puts. A
  // bad header means the snapshot device is not ours (or torn mid-install,
  // which reset() forbids): treat it as corrupt-and-empty rather than
  // refuse to start.
  std::string snap = snapshot_->contents();
  if (!snap.empty()) {
    bool header_ok = snap.size() >= sizeof(kSnapshotMagic) + 4 &&
                     snap.compare(0, sizeof(kSnapshotMagic), kSnapshotMagic,
                                  sizeof(kSnapshotMagic)) == 0;
    std::size_t pos = sizeof(kSnapshotMagic);
    std::uint32_t version = 0;
    if (header_ok) header_ok = read_u32(snap, pos, version);
    if (header_ok && version == kSnapshotVersion) {
      // Within the snapshot every frame must be whole: it was installed
      // atomically, so a torn or corrupt frame is real corruption.
      while (pos < snap.size()) {
        DecodedRecord rec;
        FrameResult r = decode_frame(snap, pos, rec);
        if (r != FrameResult::kOk || rec.op != kOpPut) {
          ++corrupt;
          telemetry::EventLog::global().emit(
              telemetry::Level::kWarn, "xmldb.wal",
              "corrupt snapshot record, remainder skipped", {});
          break;
        }
        table_[rec.collection][rec.id] = std::move(rec.octets);
        ++applied;
      }
    } else {
      ++corrupt;
      telemetry::EventLog::global().emit(
          telemetry::Level::kWarn, "xmldb.wal",
          "unrecognized snapshot header, starting from log only", {});
    }
  }

  // Phase 2: the log tail. Records accumulate per batch and apply only at
  // a valid commit marker; a torn tail is the normal crash artifact and
  // ends recovery silently, while a CRC failure mid-log (bit rot) skips
  // that record, warns, and keeps scanning for later committed batches.
  std::string log = log_->contents();
  std::size_t pos = 0;
  std::vector<DecodedRecord> batch;
  bool batch_poisoned = false;
  while (pos < log.size()) {
    DecodedRecord rec;
    FrameResult r = decode_frame(log, pos, rec);
    if (r == FrameResult::kTorn) {
      discarded += batch.size();
      batch.clear();
      break;
    }
    if (r == FrameResult::kCorrupt) {
      // decode_frame consumed the whole frame (the length field was
      // plausible, the payload failed its CRC or structure check), so the
      // scan stays frame-aligned and later committed batches still apply.
      // A corrupted length field instead reads as a torn tail above — the
      // one ambiguity a length-prefixed log cannot resolve.
      ++corrupt;
      batch_poisoned = true;
      telemetry::EventLog::global().emit(
          telemetry::Level::kWarn, "xmldb.wal",
          "corrupt log record skipped during recovery", {});
      continue;
    }
    if (rec.op == kOpCommit) {
      if (batch_poisoned || rec.commit_count != batch.size()) {
        // The batch lost records to corruption — applying a subset would
        // expose a partial group commit, so drop the whole batch.
        discarded += batch.size();
        if (!batch_poisoned) ++corrupt;
        telemetry::EventLog::global().emit(
            telemetry::Level::kWarn, "xmldb.wal",
            "discarding batch with corrupt or missing records", {});
      } else {
        for (auto& b : batch) {
          apply(b.op, b.collection, b.id, std::move(b.octets));
          ++applied;
        }
      }
      batch.clear();
      batch_poisoned = false;
    } else {
      batch.push_back(std::move(rec));
    }
  }
  discarded += batch.size();

  {
    std::lock_guard lock(stats_mu_);
    stats_.recovered_records = applied;
    stats_.corrupt_records = corrupt;
    stats_.discarded_records = discarded;
  }
  corrupt_records_.add(static_cast<std::int64_t>(corrupt));
  recovered_records_.add(static_cast<std::int64_t>(applied));
  log_bytes_gauge_.set(static_cast<std::int64_t>(log_->size()));
  snapshot_bytes_gauge_.set(static_cast<std::int64_t>(snapshot_->size()));
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  recovery_us_.record(us);
}

void WalBackend::enqueue(Pending pending, bool notify) {
  {
    std::lock_guard lock(queue_mu_);
    if (device_failed_)
      throw LogDeviceError("wal: log device failed, backend is read-only");
    if (queue_.capacity() == 0) queue_.reserve(64);
    queue_.push_back(std::move(pending));
    ++enqueued_records_;
  }
  if (notify) queue_cv_.notify_one();
}

void WalBackend::put(const std::string& collection, const std::string& id,
                     const std::string& octets) {
  std::promise<bool> done;
  std::future<bool> acked = done.get_future();
  Pending pending;
  pending.frame = encode_put(collection, id, octets);
  pending.op = kOpPut;
  pending.collection = collection;
  pending.id = id;
  pending.octets = octets;
  pending.done = &done;
  pending.enqueued = std::chrono::steady_clock::now();
  enqueue(std::move(pending), /*notify=*/true);
  acked.get();  // rethrows LogDeviceError on failure
}

void WalBackend::put_async(std::string collection, std::string id,
                           std::string octets) {
  Pending pending;
  pending.frame = encode_put(collection, id, octets);
  pending.op = kOpPut;
  pending.collection = std::move(collection);
  pending.id = std::move(id);
  pending.octets = std::move(octets);
  pending.enqueued = std::chrono::steady_clock::now();
  // No per-record wakeup: durability is deferred until drain(), so the
  // whole window piles up and commits as ONE batch — one append, one
  // sync. (A per-record notify would let the commit thread preempt the
  // writer and shred the window into single-record batches.)
  enqueue(std::move(pending), /*notify=*/false);
}

void WalBackend::drain() {
  queue_cv_.notify_one();  // flush anything put_async left unannounced
  std::unique_lock lock(queue_mu_);
  drain_cv_.wait(lock, [this] {
    return device_failed_ || resolved_records_ == enqueued_records_;
  });
  if (device_failed_)
    throw LogDeviceError("wal: log device failed, writes not acknowledged");
}

bool WalBackend::remove(const std::string& collection, const std::string& id) {
  {
    // Absent documents don't earn a log record (or an fsync) — same
    // result a MemoryBackend reports, without the durability round trip.
    std::lock_guard lock(table_mu_);
    auto coll = table_.find(collection);
    if (coll == table_.end() || !coll->second.count(id)) return false;
  }
  std::promise<bool> done;
  std::future<bool> acked = done.get_future();
  Pending pending;
  pending.frame = encode_remove(collection, id);
  pending.op = kOpRemove;
  pending.collection = collection;
  pending.id = id;
  pending.done = &done;
  pending.enqueued = std::chrono::steady_clock::now();
  enqueue(std::move(pending), /*notify=*/true);
  // The apply-time result is authoritative: a racing remove of the same id
  // may win, in which case this one reports false just like MemoryBackend.
  return acked.get();
}

std::optional<std::string> WalBackend::get(const std::string& collection,
                                           const std::string& id) {
  std::lock_guard lock(table_mu_);
  auto coll = table_.find(collection);
  if (coll == table_.end()) return std::nullopt;
  auto doc = coll->second.find(id);
  if (doc == coll->second.end()) return std::nullopt;
  return doc->second;
}

std::vector<std::string> WalBackend::list(const std::string& collection) {
  std::lock_guard lock(table_mu_);
  std::vector<std::string> ids;
  auto coll = table_.find(collection);
  if (coll == table_.end()) return ids;
  ids.reserve(coll->second.size());
  for (const auto& [id, _] : coll->second) ids.push_back(id);
  return ids;
}

bool WalBackend::contains(const std::string& collection,
                          const std::string& id) {
  std::lock_guard lock(table_mu_);
  auto coll = table_.find(collection);
  return coll != table_.end() && coll->second.count(id) > 0;
}

bool WalBackend::apply(std::uint8_t op, const std::string& collection,
                       const std::string& id, std::string octets) {
  std::lock_guard lock(table_mu_);
  if (op == kOpPut) {
    table_[collection][id] = std::move(octets);
    return true;
  }
  auto coll = table_.find(collection);
  if (coll == table_.end()) return false;
  bool erased = coll->second.erase(id) > 0;
  if (coll->second.empty()) table_.erase(coll);
  return erased;
}

void WalBackend::commit_loop() {
  for (;;) {
    std::vector<Pending> batch;
    bool do_compaction = false;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_ || compact_requested_ ||
               (!paused_ && !queue_.empty());
      });
      if (stop_ && queue_.empty() && !compact_requested_) return;
      batch.swap(queue_);
      if (compact_requested_) do_compaction = true;
    }
    if (!batch.empty()) {
      std::size_t batch_size = batch.size();
      if (!commit_batch(std::move(batch))) {
        // Device dead: drain and fail everything still queued, forever.
        std::unique_lock lock(queue_mu_);
        device_failed_ = true;
        auto leftovers = std::move(queue_);
        queue_.clear();
        resolved_records_ += batch_size + leftovers.size();
        lock.unlock();
        for (auto& p : leftovers) {
          if (p.done) {
            p.done->set_exception(std::make_exception_ptr(
                LogDeviceError("wal: log device failed")));
          }
        }
        compact_cv_.notify_all();
        drain_cv_.notify_all();
        continue;
      }
      {
        std::lock_guard lock(queue_mu_);
        resolved_records_ += batch_size;
      }
      drain_cv_.notify_all();
    }
    bool threshold = log_->size() > options_.compact_threshold_bytes;
    if (do_compaction || threshold) {
      do_compact();
      std::lock_guard lock(queue_mu_);
      compact_requested_ = false;
      compact_cv_.notify_all();
    }
  }
}

bool WalBackend::commit_batch(std::vector<Pending> batch) {
  std::string bytes;
  std::size_t total = 0;
  for (const auto& p : batch) total += p.frame.size();
  bytes.reserve(total + 16);
  for (const auto& p : batch) bytes += p.frame;
  bytes += encode_commit(static_cast<std::uint32_t>(batch.size()));
  try {
    log_->append(bytes);
    log_->sync();
  } catch (const LogDeviceError&) {
    auto err = std::make_exception_ptr(
        LogDeviceError("wal: append/sync failed, write not acknowledged"));
    for (auto& p : batch) {
      if (p.done) p.done->set_exception(err);
    }
    return false;
  }

  auto now = std::chrono::steady_clock::now();
  {
    // One table lock for the whole batch — the in-memory apply is the
    // per-record half of commit cost, and readers only ever see whole
    // batches anyway (they couldn't observe a record before its marker).
    std::lock_guard lock(table_mu_);
    for (auto& p : batch) {
      if (p.op == kOpPut) {
        table_[p.collection][p.id] = std::move(p.octets);
        if (p.done) p.done->set_value(true);
        continue;
      }
      bool erased = false;
      auto coll = table_.find(p.collection);
      if (coll != table_.end()) {
        erased = coll->second.erase(p.id) > 0;
        if (coll->second.empty()) table_.erase(coll);
      }
      if (p.done) p.done->set_value(erased);
    }
  }
  // Latency is sampled per batch (the oldest record — it waited longest);
  // a per-record histogram hit would double the apply loop's cost.
  commit_us_.record(std::chrono::duration_cast<std::chrono::microseconds>(
                        now - batch.front().enqueued)
                        .count());

  {
    std::lock_guard lock(stats_mu_);
    ++stats_.batches;
    stats_.records += batch.size();
  }
  records_logged_.add(static_cast<std::int64_t>(batch.size()));
  batches_synced_.add(1);
  batch_size_.record(static_cast<std::int64_t>(batch.size()));
  log_bytes_gauge_.set(static_cast<std::int64_t>(log_->size()));
  return true;
}

void WalBackend::do_compact() {
  // Serialize the table under the lock, install outside it. Ordering:
  // snapshot first, then truncate the log. A crash between the two leaves
  // the old log to replay over the new snapshot — every record in it is a
  // put/remove the snapshot already reflects, and replaying is idempotent.
  std::string snap;
  snap.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(snap, kSnapshotVersion);
  {
    std::lock_guard lock(table_mu_);
    for (const auto& [collection, docs] : table_) {
      for (const auto& [id, octets] : docs) {
        std::string payload;
        payload.push_back(static_cast<char>(kOpPut));
        put_u32(payload, static_cast<std::uint32_t>(collection.size()));
        payload.append(collection);
        put_u32(payload, static_cast<std::uint32_t>(id.size()));
        payload.append(id);
        put_u64(payload, octets.size());
        payload.append(octets);
        snap += encode_frame(payload);
      }
    }
  }
  try {
    snapshot_->reset(snap);
    log_->reset("");
  } catch (const LogDeviceError&) {
    telemetry::EventLog::global().emit(
        telemetry::Level::kWarn, "xmldb.wal",
        "compaction failed, continuing on existing log", {});
    return;
  }
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.compactions;
  }
  compactions_.add(1);
  log_bytes_gauge_.set(static_cast<std::int64_t>(log_->size()));
  snapshot_bytes_gauge_.set(static_cast<std::int64_t>(snapshot_->size()));
}

void WalBackend::compact() {
  std::unique_lock lock(queue_mu_);
  compact_requested_ = true;
  queue_cv_.notify_one();
  compact_cv_.wait(lock,
                   [this] { return !compact_requested_ || device_failed_; });
}

void WalBackend::pause_commits() {
  std::lock_guard lock(queue_mu_);
  paused_ = true;
}

void WalBackend::resume_commits() {
  {
    std::lock_guard lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.notify_one();
}

std::size_t WalBackend::pending() const {
  std::lock_guard lock(queue_mu_);
  return queue_.size();
}

WalStats WalBackend::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace gs::xmldb
