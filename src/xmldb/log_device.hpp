// The byte device beneath the write-ahead log.
//
// The WAL engine (wal.hpp) is written against this interface so the same
// group-commit and recovery code runs over a real file, an in-memory
// buffer, and — the point of the abstraction — a crash-injecting device
// that dies at a seeded byte offset mid-append or tears an fsync in half.
// Durability is two-phase, like a kernel page cache: append() buffers,
// sync() makes everything buffered durable. What a post-crash reopen sees
// is exactly `contents()`: the durable prefix plus whatever fraction of
// the buffered bytes the crash let through.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gs::xmldb {

/// Thrown once a device has crashed (or its backing file failed): every
/// subsequent append/sync fails fast. The WAL maps this to unacknowledged
/// writes — a caller that sees it knows its write may or may not be
/// durable, exactly the promise a torn fsync leaves behind.
class LogDeviceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte log with explicit durability.
class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Buffers bytes at the end of the log. Not durable until sync().
  virtual void append(std::string_view bytes) = 0;
  /// Makes every buffered byte durable. Throws LogDeviceError on failure;
  /// after a failed sync an unknown prefix of the buffered bytes may
  /// still have reached the medium.
  virtual void sync() = 0;
  /// What a reopen would find: the durable bytes.
  virtual std::string contents() const = 0;
  /// Durable size in bytes.
  virtual std::uint64_t size() const = 0;
  /// Atomically replaces the entire log with `bytes` (all-or-nothing —
  /// compaction installs snapshots through this, so a torn snapshot can
  /// never exist). Implies durability of `bytes`.
  virtual void reset(std::string_view bytes) = 0;
};

/// Heap-backed device with deterministic crash injection. `contents()`
/// stays readable after a crash — the medium survives the process — so a
/// test reopens a new WAL over the same device to simulate restart.
class MemoryLogDevice final : public LogDevice {
 public:
  MemoryLogDevice() = default;
  /// Starts with durable contents (reopen-what-the-crash-left surgery).
  explicit MemoryLogDevice(std::string initial);

  void append(std::string_view bytes) override;
  void sync() override;
  std::string contents() const override;
  std::uint64_t size() const override;
  void reset(std::string_view bytes) override;

  /// Seeded kill point: the device dies once `durable + buffered` would
  /// exceed `at_bytes`. Of the bytes past the limit, `tear_keep` more are
  /// still let through (torn write) before everything fails. Both the
  /// append that crosses the limit and every later append/sync throw.
  void crash_at_bytes(std::uint64_t at_bytes, std::uint64_t tear_keep = 0);
  /// Seeded kill point: the nth sync() from now fails after making only
  /// `keep_fraction` of its buffered bytes durable (a partial fsync).
  void crash_at_sync(int nth, double keep_fraction = 0.0);
  /// Immediate, clean death (no tearing) — buffered bytes are lost.
  void crash_now();

  bool crashed() const;
  std::uint64_t sync_count() const;

 private:
  void check_alive_locked() const;

  mutable std::mutex mu_;
  std::string durable_;
  std::string buffered_;
  bool crashed_ = false;
  std::uint64_t syncs_ = 0;
  // Injection plan (0 / negative = disarmed).
  std::uint64_t crash_at_bytes_ = 0;
  std::uint64_t tear_keep_ = 0;
  int crash_at_sync_ = 0;
  double sync_keep_fraction_ = 0.0;
};

/// File-backed device: append + fdatasync on a real descriptor, reset via
/// write-temp-then-rename so compaction is atomic on a real filesystem
/// too. Reopening the same path recovers whatever the last sync made
/// durable (plus, on a healthy close, the destructor's final flush).
class FileLogDevice final : public LogDevice {
 public:
  explicit FileLogDevice(std::filesystem::path path);
  ~FileLogDevice() override;

  void append(std::string_view bytes) override;
  void sync() override;
  std::string contents() const override;
  std::uint64_t size() const override;
  void reset(std::string_view bytes) override;

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  void open_locked();

  std::filesystem::path path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t synced_bytes_ = 0;
  std::uint64_t written_bytes_ = 0;
};

}  // namespace gs::xmldb
