// The facade every stateful layer persists through.
//
// Before this, each subsystem serialized to xmldb ad hoc: the wsrf home
// wrote property documents, the wse store wrote a flat file, sched kept
// everything in memory. DurableStore unifies them behind one contract: a
// layer opens its collection with a schema name and version, and the
// store records that header in a `_meta` collection. On a restart over a
// durable backend the header is checked first — a version drift runs the
// caller's migration hook (or fails loudly) BEFORE any document is
// parsed, so schema evolution is an explicit step, never a parse error
// three layers up.
//
// Documents themselves are NOT wrapped or re-encoded: the header lives in
// its own meta document, and collection octets stay byte-identical to
// what the layer stored. (The wire fast path splices stored octets
// directly into responses; an envelope here would break that.)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xmldb/database.hpp"

namespace gs::xmldb {

/// Collection header as recorded in `_meta`.
struct CollectionHeader {
  std::string collection;
  std::string schema;   // e.g. "wsrf.resource-properties"
  std::uint32_t version = 0;
};

class DurableStore {
 public:
  /// Called when the on-disk version is older than the code's: migrate the
  /// collection's documents in place and return true, after which the
  /// header is rewritten at the new version. Return false to refuse.
  using Migrator = std::function<bool(XmlDatabase& db,
                                      const std::string& collection,
                                      std::uint32_t found_version)>;

  explicit DurableStore(XmlDatabase& db) : db_(db) {}

  /// Registers (or validates) `collection` under `schema`/`version`.
  /// Returns the version found on the medium before this call, 0 when the
  /// collection is new. Throws std::runtime_error on a schema-name
  /// mismatch, a newer-than-code version, or a refused migration.
  std::uint32_t open_collection(const std::string& collection,
                                const std::string& schema,
                                std::uint32_t version,
                                const Migrator& migrate = nullptr);

  /// Headers currently recorded in `_meta` (diagnostics / telemetry).
  std::vector<CollectionHeader> headers();

  XmlDatabase& db() noexcept { return db_; }

  /// Name of the meta collection ("_meta" — the leading underscore keeps
  /// it out of every layer's own namespace).
  static const char* meta_collection();

 private:
  XmlDatabase& db_;
};

}  // namespace gs::xmldb
