// The Xindice-substitute XML document database.
//
// Both stacks in the paper persist resources as XML documents in Xindice;
// the paper attributes most of the hello-world latency to this database
// ("Both counter implementations' performance is dominated by Xindice.
// Creating resources ... is always slower than reading or updating them").
// This class reproduces that cost structure on a pluggable Backend and adds
// the write-through cache whose presence explains WSRF.NET's faster Set.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "xml/node.hpp"
#include "xml/xpath.hpp"
#include "xmldb/backend.hpp"

namespace gs::xmldb {

/// Operation counters (tests and the cache ablation read these).
struct DbStats {
  std::uint64_t stores = 0;
  std::uint64_t loads = 0;
  std::uint64_t removes = 0;
  std::uint64_t backend_reads = 0;   // loads that actually hit the backend
  std::uint64_t cache_hits = 0;
  std::uint64_t queries = 0;
};

/// A query match: document id plus its parsed root.
struct QueryMatch {
  std::string id;
  std::unique_ptr<xml::Element> document;
};

struct DbOptions {
  /// Write-through resource cache: stores update the cache; loads served
  /// from it skip the backend read and the re-parse. This is the
  /// WSRF.NET optimization the paper credits for its faster Set.
  bool write_through_cache = false;
};

class XmlDatabase {
 public:
  using Options = DbOptions;

  explicit XmlDatabase(std::unique_ptr<Backend> backend,
                       Options options = Options());

  /// Serializes and stores a document under (collection, id), replacing any
  /// previous version.
  void store(const std::string& collection, const std::string& id,
             const xml::Element& document);

  /// Loads and parses a document; nullptr when absent.
  std::unique_ptr<xml::Element> load(const std::string& collection,
                                     const std::string& id);

  /// Loads a document's stored octets without parsing them — the wire
  /// fast path splices these straight into a response (the octets were
  /// produced by xml::write at store time, so re-serializing the parsed
  /// document reproduces them byte for byte). Shares the element cache's
  /// hit/miss cost model: with the write-through cache on, hits skip the
  /// backend read; otherwise every call pays it. nullptr when absent.
  std::shared_ptr<const std::string> load_octets(const std::string& collection,
                                                 const std::string& id);

  /// Removes a document; false when absent.
  bool remove(const std::string& collection, const std::string& id);

  bool contains(const std::string& collection, const std::string& id);
  std::vector<std::string> ids(const std::string& collection);

  /// Evaluates `expr` against every document in the collection and returns
  /// the documents where it selects a non-empty result / true value —
  /// the "rich queries over the state of multiple resources" of the paper.
  std::vector<QueryMatch> query(const std::string& collection,
                                const xml::XPathExpr& expr);

  DbStats stats() const;
  void reset_stats();

  Backend& backend() noexcept { return *backend_; }
  bool cache_enabled() const noexcept { return options_.write_through_cache; }

 private:
  static std::string cache_key(const std::string& collection, const std::string& id);

  std::unique_ptr<Backend> backend_;
  Options options_;
  mutable std::mutex mu_;
  // Mutation epoch, bumped (under mu_) by every store/remove. Loads read
  // the backend outside the lock, so a fill races with concurrent
  // mutations; capturing the epoch before the backend read and filling
  // only if it is unchanged makes the coherence rule explicit: a cache
  // entry never outlives the mutation that invalidated it. The guard is
  // global rather than per-key — a spurious miss costs a re-read, a stale
  // hit would resurrect a removed document.
  std::uint64_t epoch_ = 0;
  std::map<std::string, std::unique_ptr<xml::Element>> cache_;
  // Octet twin of cache_ (write-through only): the serialized form kept
  // refcounted so in-flight responses outlive evictions.
  std::map<std::string, std::shared_ptr<const std::string>> octet_cache_;
  DbStats stats_;
};

}  // namespace gs::xmldb
