#include "xmldb/log_device.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace gs::xmldb {

// --- MemoryLogDevice --------------------------------------------------------------

MemoryLogDevice::MemoryLogDevice(std::string initial)
    : durable_(std::move(initial)) {}

void MemoryLogDevice::check_alive_locked() const {
  if (crashed_) throw LogDeviceError("log device crashed");
}

void MemoryLogDevice::append(std::string_view bytes) {
  std::lock_guard lock(mu_);
  check_alive_locked();
  if (crash_at_bytes_ > 0) {
    std::uint64_t total = durable_.size() + buffered_.size();
    if (total + bytes.size() > crash_at_bytes_) {
      // The write crossing the kill point tears: only the bytes up to the
      // limit plus `tear_keep_` extra reach the medium, durably — the
      // partial sector a real torn write leaves behind.
      std::uint64_t admit = crash_at_bytes_ > total ? crash_at_bytes_ - total : 0;
      admit = std::min<std::uint64_t>(admit + tear_keep_, bytes.size());
      buffered_.append(bytes.substr(0, admit));
      durable_ += buffered_;
      buffered_.clear();
      crashed_ = true;
      throw LogDeviceError("log device crashed at seeded byte offset");
    }
  }
  buffered_.append(bytes);
}

void MemoryLogDevice::sync() {
  std::lock_guard lock(mu_);
  check_alive_locked();
  ++syncs_;
  if (crash_at_sync_ > 0 && static_cast<int>(syncs_) >= crash_at_sync_) {
    auto keep = static_cast<std::uint64_t>(
        static_cast<double>(buffered_.size()) * sync_keep_fraction_);
    durable_.append(buffered_.substr(0, keep));
    buffered_.clear();
    crashed_ = true;
    throw LogDeviceError("log device crashed at seeded sync");
  }
  durable_ += buffered_;
  buffered_.clear();
}

std::string MemoryLogDevice::contents() const {
  std::lock_guard lock(mu_);
  return durable_;
}

std::uint64_t MemoryLogDevice::size() const {
  std::lock_guard lock(mu_);
  return durable_.size();
}

void MemoryLogDevice::reset(std::string_view bytes) {
  std::lock_guard lock(mu_);
  check_alive_locked();
  durable_.assign(bytes);
  buffered_.clear();
}

void MemoryLogDevice::crash_at_bytes(std::uint64_t at_bytes,
                                     std::uint64_t tear_keep) {
  std::lock_guard lock(mu_);
  crash_at_bytes_ = at_bytes;
  tear_keep_ = tear_keep;
}

void MemoryLogDevice::crash_at_sync(int nth, double keep_fraction) {
  std::lock_guard lock(mu_);
  crash_at_sync_ = static_cast<int>(syncs_) + nth;
  sync_keep_fraction_ = keep_fraction;
}

void MemoryLogDevice::crash_now() {
  std::lock_guard lock(mu_);
  buffered_.clear();
  crashed_ = true;
}

bool MemoryLogDevice::crashed() const {
  std::lock_guard lock(mu_);
  return crashed_;
}

std::uint64_t MemoryLogDevice::sync_count() const {
  std::lock_guard lock(mu_);
  return syncs_;
}

// --- FileLogDevice ----------------------------------------------------------------

FileLogDevice::FileLogDevice(std::filesystem::path path)
    : path_(std::move(path)) {
  std::lock_guard lock(mu_);
  std::filesystem::create_directories(path_.parent_path());
  open_locked();
}

void FileLogDevice::open_locked() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw LogDeviceError("cannot open log " + path_.string() + ": " +
                         std::strerror(errno));
  }
  off_t end = ::lseek(fd_, 0, SEEK_END);
  synced_bytes_ = written_bytes_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
}

FileLogDevice::~FileLogDevice() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    ::fdatasync(fd_);  // healthy close: flush the tail
    ::close(fd_);
  }
}

void FileLogDevice::append(std::string_view bytes) {
  std::lock_guard lock(mu_);
  if (fd_ < 0) throw LogDeviceError("log device closed: " + path_.string());
  const char* p = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw LogDeviceError("write failed for " + path_.string() + ": " +
                           std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  written_bytes_ += bytes.size();
}

void FileLogDevice::sync() {
  std::lock_guard lock(mu_);
  if (fd_ < 0) throw LogDeviceError("log device closed: " + path_.string());
  if (::fdatasync(fd_) != 0) {
    throw LogDeviceError("fdatasync failed for " + path_.string() + ": " +
                         std::strerror(errno));
  }
  synced_bytes_ = written_bytes_;
}

std::string FileLogDevice::contents() const {
  std::lock_guard lock(mu_);
  std::ifstream in(path_, std::ios::binary);
  if (!in) return {};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::uint64_t FileLogDevice::size() const {
  std::lock_guard lock(mu_);
  return synced_bytes_;
}

void FileLogDevice::reset(std::string_view bytes) {
  std::lock_guard lock(mu_);
  // Write-temp, fsync, rename: readers of `path_` see the old log or the
  // new one, never a prefix.
  std::filesystem::path tmp = path_;
  tmp += ".tmp";
  int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    throw LogDeviceError("cannot open " + tmp.string() + ": " +
                         std::strerror(errno));
  }
  const char* p = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    ssize_t n = ::write(tfd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(tfd);
      throw LogDeviceError("write failed for " + tmp.string() + ": " +
                           std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  ::fdatasync(tfd);
  ::close(tfd);
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) throw LogDeviceError("rename failed for " + path_.string());
  if (fd_ >= 0) ::close(fd_);
  open_locked();
}

}  // namespace gs::xmldb
