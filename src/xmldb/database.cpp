#include "xmldb/database.hpp"

#include <chrono>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace gs::xmldb {

namespace {

// RAII: span for the trace plus a latency histogram sample on exit.
class StorageOp {
 public:
  StorageOp(const char* span_name, const char* histogram_name)
      : span_(span_name, "storage"),
        histogram_(
            telemetry::MetricsRegistry::global().histogram(histogram_name)),
        started_(std::chrono::steady_clock::now()) {}
  ~StorageOp() {
    histogram_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started_)
            .count()));
  }

 private:
  telemetry::SpanScope span_;
  telemetry::Histogram& histogram_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace

XmlDatabase::XmlDatabase(std::unique_ptr<Backend> backend, Options options)
    : backend_(std::move(backend)), options_(options) {}

std::string XmlDatabase::cache_key(const std::string& collection,
                                   const std::string& id) {
  return collection + "\x1f" + id;
}

void XmlDatabase::store(const std::string& collection, const std::string& id,
                        const xml::Element& document) {
  StorageOp op("xmldb.store", "xmldb.store_us");
  std::string octets = xml::write(document);
  std::uint64_t epoch;
  {
    std::lock_guard lock(mu_);
    epoch = epoch_;
  }
  backend_->put(collection, id, octets);
  std::lock_guard lock(mu_);
  ++stats_.stores;
  ++epoch_;  // the bump lands after the backend write, in the same
             // critical section as the cache update, so a load that read
             // the backend before this put sees a changed epoch by the
             // time it could fill the cache.
  if (options_.write_through_cache) {
    if (epoch_ == epoch + 1) {
      // No other mutation interleaved with our put. The octets just
      // serialized are kept as the octet twin of the element cache;
      // uncached databases skip the shared wrapper entirely (store is on
      // the Put hot path).
      cache_[cache_key(collection, id)] = document.clone_element();
      octet_cache_[cache_key(collection, id)] =
          std::make_shared<const std::string>(std::move(octets));
    } else {
      // A concurrent store/remove of unknown order raced our put — our
      // copy may not be what the backend now holds (a later store's
      // value, or nothing after a remove). Drop the entry; the next load
      // repopulates from the backend.
      cache_.erase(cache_key(collection, id));
      octet_cache_.erase(cache_key(collection, id));
    }
  }
}

std::unique_ptr<xml::Element> XmlDatabase::load(const std::string& collection,
                                                const std::string& id) {
  StorageOp op("xmldb.load", "xmldb.load_us");
  std::uint64_t epoch;
  {
    std::lock_guard lock(mu_);
    ++stats_.loads;
    if (options_.write_through_cache) {
      auto it = cache_.find(cache_key(collection, id));
      if (it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second->clone_element();
      }
    }
    epoch = epoch_;
  }
  std::optional<std::string> octets = backend_->get(collection, id);
  {
    std::lock_guard lock(mu_);
    ++stats_.backend_reads;
  }
  if (!octets) return nullptr;
  auto doc = xml::parse_element(*octets);
  if (options_.write_through_cache) {
    std::lock_guard lock(mu_);
    if (epoch_ == epoch) {
      cache_[cache_key(collection, id)] = doc->clone_element();
      octet_cache_[cache_key(collection, id)] =
          std::make_shared<const std::string>(std::move(*octets));
    }
    // else: a store/remove landed after our backend read — what we hold is
    // a valid point-in-time document for the caller, but caching it would
    // shadow the newer state (or resurrect a removed id).
  }
  return doc;
}

std::shared_ptr<const std::string> XmlDatabase::load_octets(
    const std::string& collection, const std::string& id) {
  StorageOp op("xmldb.load", "xmldb.load_us");
  std::uint64_t epoch;
  {
    std::lock_guard lock(mu_);
    ++stats_.loads;
    if (options_.write_through_cache) {
      auto it = octet_cache_.find(cache_key(collection, id));
      if (it != octet_cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
      }
    }
    epoch = epoch_;
  }
  std::optional<std::string> octets = backend_->get(collection, id);
  {
    std::lock_guard lock(mu_);
    ++stats_.backend_reads;
  }
  if (!octets) return nullptr;
  auto shared = std::make_shared<const std::string>(std::move(*octets));
  if (options_.write_through_cache) {
    std::lock_guard lock(mu_);
    if (epoch_ == epoch) octet_cache_[cache_key(collection, id)] = shared;
  }
  return shared;
}

bool XmlDatabase::remove(const std::string& collection, const std::string& id) {
  StorageOp op("xmldb.remove", "xmldb.remove_us");
  bool removed = backend_->remove(collection, id);
  std::lock_guard lock(mu_);
  ++stats_.removes;
  ++epoch_;  // after the backend remove: a load that saw the document
             // before it vanished now fails its epoch check and won't
             // resurrect it in the cache.
  // Erase even when the backend reported the document absent: a cache
  // entry may exist for an id a concurrent store just created, and the
  // caller's intent is "this id is gone".
  cache_.erase(cache_key(collection, id));
  octet_cache_.erase(cache_key(collection, id));
  return removed;
}

bool XmlDatabase::contains(const std::string& collection, const std::string& id) {
  {
    std::lock_guard lock(mu_);
    if (options_.write_through_cache &&
        cache_.contains(cache_key(collection, id))) {
      return true;
    }
  }
  return backend_->contains(collection, id);
}

std::vector<std::string> XmlDatabase::ids(const std::string& collection) {
  return backend_->list(collection);
}

std::vector<QueryMatch> XmlDatabase::query(const std::string& collection,
                                           const xml::XPathExpr& expr) {
  StorageOp op("xmldb.query", "xmldb.query_us");
  std::vector<QueryMatch> out;
  for (const std::string& id : backend_->list(collection)) {
    std::unique_ptr<xml::Element> doc = load(collection, id);
    if (!doc) continue;  // raced with a remove
    xml::XPathValue value = expr.eval(*doc);
    bool matches = value.is_node_set() ? !value.node_set().empty()
                                       : value.to_boolean();
    if (matches) out.push_back({id, std::move(doc)});
  }
  std::lock_guard lock(mu_);
  ++stats_.queries;
  return out;
}

DbStats XmlDatabase::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void XmlDatabase::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = DbStats{};
}

}  // namespace gs::xmldb
