// WAL-backed storage engine: the durable Backend.
//
// ROADMAP item 3 makes durability the prerequisite for federation: "once
// acked writes survive kill -9, replication is ship the same log to a
// follower". This backend is that durability half. Every put/remove is a
// CRC-framed record appended to a LogDevice; a group-commit thread drains
// concurrent writers into ONE append + ONE sync, then stamps the batch
// with a commit marker. Recovery replays snapshot + log tail and applies
// only batches whose commit marker made it to the medium — so after a
// crash at ANY byte offset, exactly the acknowledged writes are visible:
// an acked write implies its batch's marker is durable, and a batch whose
// marker is missing (the in-flight one) is discarded wholesale, never
// leaking a write whose caller saw an exception.
//
// Reads are served from the in-memory table (updated only after the log
// sync, so the table never runs ahead of the medium). When the log
// exceeds a threshold, the commit thread compacts: the whole table is
// written as a versioned snapshot (atomically, via LogDevice::reset) and
// the log is truncated. A crash between those two steps is safe — the old
// log replayed over the new snapshot is idempotent.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "xmldb/backend.hpp"
#include "xmldb/log_device.hpp"

namespace gs::telemetry {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace gs::telemetry

namespace gs::xmldb {

/// CRC32 (IEEE 802.3) over `bytes` — the record checksum.
std::uint32_t crc32(std::string_view bytes);

struct WalOptions {
  /// Compaction trigger: when the log grows past this, the commit thread
  /// snapshots the table and truncates the log.
  std::uint64_t compact_threshold_bytes = 8ull << 20;
  /// Time source for snapshot timestamps and recovery accounting (tests
  /// pass a ManualClock for deterministic headers).
  const common::Clock* clock = &common::RealClock::instance();
  /// Metrics destination; nullptr = the process-wide registry.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// Counters a recovery/commit test reads directly (the same figures are
/// published as xmldb.wal_* metrics).
struct WalStats {
  std::uint64_t recovered_records = 0;   // applied during open
  std::uint64_t corrupt_records = 0;     // CRC/frame failures skipped
  std::uint64_t discarded_records = 0;   // trailing uncommitted batch
  std::uint64_t compactions = 0;
  std::uint64_t batches = 0;             // group commits synced
  std::uint64_t records = 0;             // records logged since open
};

class WalBackend final : public Backend {
 public:
  /// Opens (and recovers) the engine over the two devices. The devices
  /// are shared so a crash test can keep them across backend lifetimes —
  /// the medium survives the process.
  WalBackend(std::shared_ptr<LogDevice> log,
             std::shared_ptr<LogDevice> snapshot, WalOptions options = {});
  /// File engine under `dir` (wal.log + wal.snap).
  static std::unique_ptr<WalBackend> open(const std::filesystem::path& dir,
                                          WalOptions options = {});
  ~WalBackend() override;

  // Backend. put/remove return only after the record's batch is synced
  // and applied (the durability ack); they throw LogDeviceError when the
  // device has failed — such writes are unacknowledged.
  void put(const std::string& collection, const std::string& id,
           const std::string& octets) override;
  /// Pipelined durable write: enqueues the record and returns without
  /// waiting for the sync — the bulk path (import, recovery replay, the
  /// ROADMAP-3 follower shipping the same log), where group commit
  /// coalesces a whole window into one append+sync. Durability is
  /// deferred: nothing is acknowledged until drain() returns.
  void put_async(std::string collection, std::string id, std::string octets);
  /// Barrier for put_async: blocks until every previously enqueued write
  /// is synced and applied. Throws LogDeviceError if the device died
  /// first — those writes were never acknowledged. Do not call while
  /// commits are paused.
  void drain();
  std::optional<std::string> get(const std::string& collection,
                                 const std::string& id) override;
  bool remove(const std::string& collection, const std::string& id) override;
  std::vector<std::string> list(const std::string& collection) override;
  bool contains(const std::string& collection, const std::string& id) override;

  /// Forces a compaction on the commit thread (tests; the threshold path
  /// is the production trigger). Blocks until done.
  void compact();

  /// Test hooks: with commits paused, concurrent writers pile up and
  /// resume() releases them as one deterministic batch; pending() is how
  /// many writes are enqueued awaiting commit.
  void pause_commits();
  void resume_commits();
  std::size_t pending() const;

  WalStats stats() const;
  std::uint64_t log_bytes() const { return log_->size(); }
  std::uint64_t snapshot_bytes() const { return snapshot_->size(); }

 private:
  struct Pending {
    std::string frame;       // encoded record
    std::uint8_t op;
    std::string collection;
    std::string id;
    std::string octets;
    /// Owned by the synchronous caller's stack frame (it outlives the
    /// commit: put/remove block on the future before returning); null for
    /// put_async records, whose ack is the next drain().
    std::promise<bool>* done = nullptr;
    std::chrono::steady_clock::time_point enqueued;
  };

  void recover();
  void commit_loop();
  /// Appends + syncs one batch, applies it to the table, resolves
  /// promises. Returns false when the device failed.
  bool commit_batch(std::vector<Pending> batch);
  void do_compact();
  bool apply(std::uint8_t op, const std::string& collection,
             const std::string& id, std::string octets);
  void enqueue(Pending pending, bool notify);

  std::shared_ptr<LogDevice> log_;
  std::shared_ptr<LogDevice> snapshot_;
  WalOptions options_;

  mutable std::mutex table_mu_;
  std::map<std::string, std::map<std::string, std::string>> table_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  // Values, not pointers: a record is four strings and a pointer, so the
  // move into/out of the queue is cheap and the per-record heap
  // allocation a unique_ptr would cost is the expensive part.
  std::vector<Pending> queue_;
  bool stop_ = false;
  bool paused_ = false;
  bool device_failed_ = false;
  bool compact_requested_ = false;
  std::condition_variable compact_cv_;
  // drain() barrier accounting (under queue_mu_): every enqueued record is
  // eventually resolved — committed or failed — by the commit thread.
  std::uint64_t enqueued_records_ = 0;
  std::uint64_t resolved_records_ = 0;
  std::condition_variable drain_cv_;

  mutable std::mutex stats_mu_;
  WalStats stats_;

  // Metric handles (resolved once; hot-path writes are lock-free).
  telemetry::Counter& records_logged_;
  telemetry::Counter& batches_synced_;
  telemetry::Counter& corrupt_records_;
  telemetry::Counter& compactions_;
  telemetry::Counter& recovered_records_;
  telemetry::Histogram& batch_size_;
  telemetry::Histogram& commit_us_;
  telemetry::Histogram& recovery_us_;
  telemetry::Gauge& log_bytes_gauge_;
  telemetry::Gauge& snapshot_bytes_gauge_;

  std::thread commit_thread_;
};

}  // namespace gs::xmldb
