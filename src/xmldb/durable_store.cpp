#include "xmldb/durable_store.hpp"

#include <stdexcept>

#include "telemetry/event_log.hpp"
#include "xml/node.hpp"

namespace gs::xmldb {
namespace {

constexpr char kMeta[] = "_meta";

std::unique_ptr<xml::Element> header_document(const std::string& schema,
                                              std::uint32_t version) {
  auto doc = std::make_unique<xml::Element>(xml::QName("collection"));
  doc->set_attr("schema", schema);
  doc->set_attr("version", std::to_string(version));
  return doc;
}

}  // namespace

const char* DurableStore::meta_collection() { return kMeta; }

std::uint32_t DurableStore::open_collection(const std::string& collection,
                                            const std::string& schema,
                                            std::uint32_t version,
                                            const Migrator& migrate) {
  std::unique_ptr<xml::Element> header = db_.load(kMeta, collection);
  if (!header) {
    db_.store(kMeta, collection, *header_document(schema, version));
    return 0;
  }

  std::string found_schema = header->attr("schema").value_or("");
  std::uint32_t found_version = 0;
  try {
    found_version = static_cast<std::uint32_t>(
        std::stoul(header->attr("version").value_or("0")));
  } catch (const std::exception&) {
    found_version = 0;
  }

  if (found_schema != schema) {
    throw std::runtime_error("durable collection '" + collection +
                             "' holds schema '" + found_schema +
                             "', expected '" + schema + "'");
  }
  if (found_version > version) {
    throw std::runtime_error(
        "durable collection '" + collection + "' is at version " +
        std::to_string(found_version) + ", newer than this build's " +
        std::to_string(version) + " — refusing to open");
  }
  if (found_version < version) {
    if (!migrate || !migrate(db_, collection, found_version)) {
      throw std::runtime_error(
          "durable collection '" + collection + "' needs migration from " +
          std::to_string(found_version) + " to " + std::to_string(version) +
          " and no migrator accepted it");
    }
    telemetry::EventLog::global().emit(
        telemetry::Level::kInfo, "xmldb.durable",
        "migrated collection " + collection + " v" +
            std::to_string(found_version) + " -> v" + std::to_string(version),
        {});
    db_.store(kMeta, collection, *header_document(schema, version));
  }
  return found_version;
}

std::vector<CollectionHeader> DurableStore::headers() {
  std::vector<CollectionHeader> out;
  for (const std::string& collection : db_.ids(kMeta)) {
    std::unique_ptr<xml::Element> doc = db_.load(kMeta, collection);
    if (!doc) continue;
    CollectionHeader h;
    h.collection = collection;
    h.schema = doc->attr("schema").value_or("");
    try {
      h.version = static_cast<std::uint32_t>(
          std::stoul(doc->attr("version").value_or("0")));
    } catch (const std::exception&) {
      h.version = 0;
    }
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace gs::xmldb
