#include "xmldb/backend.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

namespace gs::xmldb {

void MemoryBackend::put(const std::string& collection, const std::string& id,
                        const std::string& octets) {
  std::lock_guard lock(mu_);
  collections_[collection][id] = octets;
}

std::optional<std::string> MemoryBackend::get(const std::string& collection,
                                              const std::string& id) {
  std::lock_guard lock(mu_);
  auto col = collections_.find(collection);
  if (col == collections_.end()) return std::nullopt;
  auto doc = col->second.find(id);
  if (doc == col->second.end()) return std::nullopt;
  return doc->second;
}

bool MemoryBackend::remove(const std::string& collection, const std::string& id) {
  std::lock_guard lock(mu_);
  auto col = collections_.find(collection);
  if (col == collections_.end()) return false;
  return col->second.erase(id) > 0;
}

std::vector<std::string> MemoryBackend::list(const std::string& collection) {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  auto col = collections_.find(collection);
  if (col != collections_.end()) {
    out.reserve(col->second.size());
    for (const auto& [id, octets] : col->second) out.push_back(id);
  }
  return out;
}

bool MemoryBackend::contains(const std::string& collection, const std::string& id) {
  std::lock_guard lock(mu_);
  auto col = collections_.find(collection);
  return col != collections_.end() && col->second.contains(id);
}

FileBackend::FileBackend(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::string FileBackend::escape_id(const std::string& id) {
  // Percent-escape everything outside [A-Za-z0-9._-] so ids like
  // "CN=alice/jobs/1" are valid single-segment file names.
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : id) {
    if (std::isalnum(c) || c == '.' || c == '_' || c == '-') {
      out += static_cast<char>(c);
    } else {
      out += '%';
      out += kHex[c >> 4];
      out += kHex[c & 0xF];
    }
  }
  return out;
}

std::string FileBackend::unescape_id(const std::string& name) {
  std::string out;
  for (size_t i = 0; i < name.size(); ++i) {
    if (name[i] == '%' && i + 2 < name.size()) {
      auto nibble = [](char c) {
        return c <= '9' ? c - '0' : c - 'A' + 10;
      };
      out += static_cast<char>((nibble(name[i + 1]) << 4) | nibble(name[i + 2]));
      i += 2;
    } else {
      out += name[i];
    }
  }
  return out;
}

std::filesystem::path FileBackend::doc_path(const std::string& collection,
                                            const std::string& id) const {
  return root_ / escape_id(collection) / (escape_id(id) + ".xml");
}

void FileBackend::put(const std::string& collection, const std::string& id,
                      const std::string& octets) {
  std::lock_guard lock(mu_);
  std::filesystem::path dir = root_ / escape_id(collection);
  std::filesystem::create_directories(dir);
  std::filesystem::path target = doc_path(collection, id);
  std::error_code ec;
  bool is_insert = !std::filesystem::exists(target, ec);
  std::filesystem::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp.string());
    out.write(octets.data(), static_cast<std::streamsize>(octets.size()));
    out.flush();
    if (!out) throw std::runtime_error("write failed for " + tmp.string());
  }
  std::filesystem::rename(tmp, target);
  if (is_insert) rewrite_index_locked(collection);
}

void FileBackend::rewrite_index_locked(const std::string& collection) {
  // Collection membership index, Xindice-style: rebuilt whenever a
  // document is added or removed. Deliberately a full rewrite — the cost
  // that makes inserts slower than updates.
  std::filesystem::path dir = root_ / escape_id(collection);
  std::string index;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (!name.ends_with(".xml")) continue;
    index += name;
    index += '\n';
  }
  std::filesystem::path tmp = dir / "_index.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << index;
  }
  std::filesystem::rename(tmp, dir / "_index");
}

std::optional<std::string> FileBackend::get(const std::string& collection,
                                            const std::string& id) {
  std::lock_guard lock(mu_);
  std::ifstream in(doc_path(collection, id), std::ios::binary);
  if (!in) return std::nullopt;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool FileBackend::remove(const std::string& collection, const std::string& id) {
  std::lock_guard lock(mu_);
  std::error_code ec;
  bool removed = std::filesystem::remove(doc_path(collection, id), ec) && !ec;
  if (removed) rewrite_index_locked(collection);
  return removed;
}

std::vector<std::string> FileBackend::list(const std::string& collection) {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  std::filesystem::path dir = root_ / escape_id(collection);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (!name.ends_with(".xml")) continue;
    out.push_back(unescape_id(name.substr(0, name.size() - 4)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool FileBackend::contains(const std::string& collection, const std::string& id) {
  std::lock_guard lock(mu_);
  std::error_code ec;
  return std::filesystem::exists(doc_path(collection, id), ec);
}

}  // namespace gs::xmldb
